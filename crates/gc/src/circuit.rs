//! Boolean circuits and builders.

use serde::{Deserialize, Serialize};

/// Wire identifier.
pub type WireId = usize;

/// A gate in a boolean circuit. NOT is expressed as XOR with the constant
/// one wire so that free-XOR covers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gate {
    /// `out = a ⊕ b` (free under free-XOR garbling).
    Xor {
        /// Left input.
        a: WireId,
        /// Right input.
        b: WireId,
        /// Output wire.
        out: WireId,
    },
    /// `out = a ∧ b` (costs a garbled table).
    And {
        /// Left input.
        a: WireId,
        /// Right input.
        b: WireId,
        /// Output wire.
        out: WireId,
    },
}

/// A boolean circuit over two parties' bit inputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    /// Total wires. Wires `0` and `1` are the constants 0 and 1.
    pub wires: usize,
    /// Garbler's input wires (party A).
    pub inputs_a: Vec<WireId>,
    /// Evaluator's input wires (party B).
    pub inputs_b: Vec<WireId>,
    /// Gates in topological order.
    pub gates: Vec<Gate>,
    /// Output wires, LSB first.
    pub outputs: Vec<WireId>,
}

impl Circuit {
    /// Number of AND gates (the garbling cost driver).
    #[must_use]
    pub fn and_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::And { .. })).count()
    }

    /// Number of XOR gates (free under free-XOR).
    #[must_use]
    pub fn xor_count(&self) -> usize {
        self.gates.len() - self.and_count()
    }

    /// Evaluates the circuit in the clear (reference semantics).
    ///
    /// # Panics
    ///
    /// Panics if input lengths disagree with the circuit.
    #[must_use]
    pub fn eval_plain(&self, a_bits: &[bool], b_bits: &[bool]) -> Vec<bool> {
        assert_eq!(a_bits.len(), self.inputs_a.len(), "party A input width");
        assert_eq!(b_bits.len(), self.inputs_b.len(), "party B input width");
        let mut w = vec![false; self.wires];
        w[1] = true;
        for (wire, &bit) in self.inputs_a.iter().zip(a_bits) {
            w[*wire] = bit;
        }
        for (wire, &bit) in self.inputs_b.iter().zip(b_bits) {
            w[*wire] = bit;
        }
        for g in &self.gates {
            match *g {
                Gate::Xor { a, b, out } => w[out] = w[a] ^ w[b],
                Gate::And { a, b, out } => w[out] = w[a] & w[b],
            }
        }
        self.outputs.iter().map(|&o| w[o]).collect()
    }
}

/// Incremental circuit builder.
#[derive(Debug, Default)]
pub struct Builder {
    wires: usize,
    gates: Vec<Gate>,
}

impl Builder {
    /// Creates a builder with the two constant wires allocated.
    #[must_use]
    pub fn new() -> Self {
        Builder { wires: 2, gates: Vec::new() }
    }

    /// The constant-0 wire.
    #[must_use]
    pub fn zero(&self) -> WireId {
        0
    }

    /// The constant-1 wire.
    #[must_use]
    pub fn one(&self) -> WireId {
        1
    }

    /// Allocates a fresh input wire.
    pub fn input(&mut self) -> WireId {
        let w = self.wires;
        self.wires += 1;
        w
    }

    /// `a ⊕ b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.wires;
        self.wires += 1;
        self.gates.push(Gate::Xor { a, b, out });
        out
    }

    /// `a ∧ b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.wires;
        self.wires += 1;
        self.gates.push(Gate::And { a, b, out });
        out
    }

    /// `¬a` (XOR with constant 1 — free).
    pub fn not(&mut self, a: WireId) -> WireId {
        self.xor(a, 1)
    }

    /// `a ∨ b = ¬(¬a ∧ ¬b)`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let na = self.not(a);
        let nb = self.not(b);
        let n = self.and(na, nb);
        self.not(n)
    }

    /// `sel ? t : f` per bit.
    pub fn mux(&mut self, sel: WireId, t: WireId, f: WireId) -> WireId {
        // f ⊕ sel·(t ⊕ f): one AND per bit.
        let d = self.xor(t, f);
        let sd = self.and(sel, d);
        self.xor(f, sd)
    }

    /// Ripple-carry addition of two little-endian bit vectors mod `2^n`.
    /// One AND per bit position (the carry MAJ via the free-XOR trick).
    ///
    /// # Panics
    ///
    /// Panics if the operands differ in width.
    pub fn add(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len(), "adder operand width");
        let mut carry = self.zero();
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axc = self.xor(a[i], carry);
            let bxc = self.xor(b[i], carry);
            let s = self.xor(axc, b[i]);
            out.push(s);
            if i + 1 < a.len() {
                // carry' = carry ⊕ ((a⊕carry)(b⊕carry))
                let t = self.and(axc, bxc);
                carry = self.xor(carry, t);
            }
        }
        out
    }

    /// Finalizes into a [`Circuit`].
    #[must_use]
    pub fn finish(
        self,
        inputs_a: Vec<WireId>,
        inputs_b: Vec<WireId>,
        outputs: Vec<WireId>,
    ) -> Circuit {
        Circuit { wires: self.wires, inputs_a, inputs_b, gates: self.gates, outputs }
    }
}

/// Builds the ℓ-bit GC-ReLU over additive shares: inputs are party A's
/// share and party B's share (little-endian bits), output is
/// `relu((x_a + x_b) mod 2^ℓ)`.
///
/// Structure: an ℓ-bit ripple-carry adder reconstructs `x` inside the
/// circuit, the MSB is the sign, and every output bit is `x_i ∧ ¬sign`.
#[must_use]
pub fn relu_on_shares(bits: u32) -> Circuit {
    let n = bits as usize;
    let mut b = Builder::new();
    let a_in: Vec<WireId> = (0..n).map(|_| b.input()).collect();
    let b_in: Vec<WireId> = (0..n).map(|_| b.input()).collect();
    let sum = b.add(&a_in, &b_in);
    let sign = sum[n - 1];
    let keep = b.not(sign);
    let outputs: Vec<WireId> = sum.iter().map(|&s| b.and(keep, s)).collect();
    b.finish(a_in, b_in, outputs)
}

/// Builds an ℓ-bit unsigned millionaires' comparator: output bit is
/// `a < b` for the two parties' private values.
#[must_use]
pub fn less_than(bits: u32) -> Circuit {
    let n = bits as usize;
    let mut b = Builder::new();
    let a_in: Vec<WireId> = (0..n).map(|_| b.input()).collect();
    let b_in: Vec<WireId> = (0..n).map(|_| b.input()).collect();
    // lt_i = (¬a_i ∧ b_i) ∨ ((a_i == b_i) ∧ lt_{i-1}), from LSB up.
    let mut lt = b.zero();
    for i in 0..n {
        let eq = {
            let x = b.xor(a_in[i], b_in[i]);
            b.not(x)
        };
        let na = b.not(a_in[i]);
        let here = b.and(na, b_in[i]);
        let carry = b.and(eq, lt);
        lt = b.or(here, carry);
    }
    b.finish(a_in, b_in, vec![lt])
}

/// Encodes the two parties' ℓ-bit values as circuit input bit vectors
/// (little-endian), for a circuit whose inputs are `ℓ + ℓ` bits.
#[must_use]
pub fn encode_inputs(circ: &Circuit, a: u64, b: u64, bits: u32) -> (Vec<bool>, Vec<bool>) {
    let to_bits = |v: u64| (0..bits).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
    let _ = circ;
    (to_bits(a), to_bits(b))
}

/// Decodes a little-endian bit vector to u64.
#[must_use]
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_matches_wrapping_add() {
        let n = 8u32;
        let mut b = Builder::new();
        let a_in: Vec<WireId> = (0..n).map(|_| b.input()).collect();
        let b_in: Vec<WireId> = (0..n).map(|_| b.input()).collect();
        let sum = b.add(&a_in, &b_in);
        let circ = b.finish(a_in, b_in, sum);
        for (x, y) in [(0u64, 0u64), (255, 1), (100, 156), (77, 33), (128, 128)] {
            let (xa, xb) = encode_inputs(&circ, x, y, 8);
            let out = circ.eval_plain(&xa, &xb);
            assert_eq!(bits_to_u64(&out), (x + y) & 0xff, "{x}+{y}");
        }
    }

    #[test]
    fn relu_on_shares_plain_semantics() {
        let circ = relu_on_shares(8);
        for x in [-128i64, -3, -1, 0, 1, 77, 127] {
            let enc = (x as u64) & 0xff;
            for r in [0u64, 17, 200, 255] {
                let (xa, xb) = encode_inputs(&circ, r, enc.wrapping_sub(r) & 0xff, 8);
                let out = bits_to_u64(&circ.eval_plain(&xa, &xb));
                let expect = if x > 0 { x as u64 } else { 0 };
                assert_eq!(out, expect, "x={x} r={r}");
            }
        }
    }

    #[test]
    fn less_than_exhaustive_4bit() {
        let circ = less_than(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let (xa, xb) = encode_inputs(&circ, a, b, 4);
                assert_eq!(circ.eval_plain(&xa, &xb)[0], a < b, "{a} < {b}");
            }
        }
    }

    #[test]
    fn relu_gate_counts_scale_linearly() {
        let c16 = relu_on_shares(16);
        let c32 = relu_on_shares(32);
        // Adder: ℓ−1 ANDs; gating: ℓ ANDs → ~2ℓ.
        assert_eq!(c16.and_count(), 15 + 16);
        assert_eq!(c32.and_count(), 31 + 32);
        assert!(c32.wires > c16.wires);
    }
}
