//! Yao's Garbled Circuits — the baseline AQ2PNN's ABReLU replaces.
//!
//! The paper motivates ABReLU by the bulk of GC-based ReLU ("ReLU requires
//! 67.9 K wires", Sec. 2.2, citing HAAC). To make that comparison live
//! rather than quoted, this crate implements a real garbling scheme from
//! scratch:
//!
//! * [`circuit`] — boolean circuit builder with ripple-carry adders,
//!   comparators, multiplexers and an ℓ-bit ReLU over *additive shares*
//!   (the circuit first reconstructs `x = x_a + x_b mod 2^ℓ`, then gates
//!   every bit on the sign — the same function ABReLU computes).
//! * [`garble`] — point-and-permute garbling with **free XOR** (XOR gates
//!   cost nothing; AND gates carry a 4-row table of 128-bit ciphertexts)
//!   and a ChaCha-based hash as the KDF.
//! * [`evaluate`] — the evaluator, plus output decoding.
//! * [`cost`] — wire/gate/byte accounting used by the `gc_vs_abrelu`
//!   bench harness.
//!
//! This is a functional baseline for cost comparison, not hardened crypto
//! (the KDF is a seeded ChaCha PRG, fine for counting bytes and validating
//! correctness).
//!
//! # Example
//!
//! ```
//! use aq2pnn_gc::circuit::{self, relu_on_shares};
//! use aq2pnn_gc::{evaluate, garble};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let circ = relu_on_shares(8);
//! let mut rng = StdRng::seed_from_u64(1);
//! let garbled = garble::garble(&circ, &mut rng);
//!
//! // shares of x = -3 on Z_256: (100, 153); relu(-3) = 0.
//! let inputs = circuit::encode_inputs(&circ, 100, 153, 8);
//! let labels = garble::select_input_labels(&garbled, &inputs);
//! let out = evaluate::evaluate(&circ, &garbled, &labels);
//! assert_eq!(evaluate::decode_with(&circ, &garbled, &out), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod cost;
pub mod evaluate;
pub mod garble;
