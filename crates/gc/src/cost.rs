//! Cost accounting for garbled circuits — the numbers behind the
//! GC-vs-ABReLU comparison (paper Sec. 2.2).

use crate::circuit::Circuit;
use serde::{Deserialize, Serialize};

/// Size of one wire label in bytes.
pub const LABEL_BYTES: u64 = 16;

/// Communication/size profile of garbling + evaluating a circuit once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcCost {
    /// Total wires in the circuit (the paper's "67.9 K wires" metric).
    pub wires: u64,
    /// AND gates (each ships a 4-row table).
    pub and_gates: u64,
    /// XOR gates (free).
    pub xor_gates: u64,
    /// Bytes for the garbled tables.
    pub table_bytes: u64,
    /// Bytes for the garbler's own input labels.
    pub garbler_input_bytes: u64,
    /// Bytes for the evaluator's input labels, delivered via OT — counted
    /// as 2 labels per bit (the standard 1-of-2 OT payload).
    pub evaluator_ot_bytes: u64,
}

impl GcCost {
    /// Profiles a circuit.
    #[must_use]
    pub fn of(circ: &Circuit) -> Self {
        let and_gates = circ.and_count() as u64;
        GcCost {
            wires: circ.wires as u64,
            and_gates,
            xor_gates: circ.xor_count() as u64,
            table_bytes: and_gates * 4 * LABEL_BYTES,
            garbler_input_bytes: circ.inputs_a.len() as u64 * LABEL_BYTES,
            evaluator_ot_bytes: circ.inputs_b.len() as u64 * 2 * LABEL_BYTES,
        }
    }

    /// Total bytes on the wire for one evaluation.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.table_bytes + self.garbler_input_bytes + self.evaluator_ot_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::relu_on_shares;

    #[test]
    fn relu_cost_structure() {
        let c = relu_on_shares(16);
        let cost = GcCost::of(&c);
        assert_eq!(cost.and_gates, 31);
        assert_eq!(cost.table_bytes, 31 * 64);
        assert_eq!(cost.garbler_input_bytes, 16 * 16);
        assert_eq!(cost.evaluator_ot_bytes, 16 * 32);
        assert!(cost.total_bytes() > 2500);
    }

    #[test]
    fn cost_grows_with_width() {
        let c16 = GcCost::of(&relu_on_shares(16));
        let c32 = GcCost::of(&relu_on_shares(32));
        assert!(c32.total_bytes() > 2 * c16.total_bytes() - 200);
        assert!(c32.wires > c16.wires);
    }
}
