//! Garbled-circuit evaluation.

use crate::circuit::{Circuit, Gate};
use crate::garble::{hash, Garbled, InputLabels, Label};

fn xor_label(a: Label, b: Label) -> Label {
    [a[0] ^ b[0], a[1] ^ b[1]]
}

fn lsb(l: Label) -> bool {
    l[0] & 1 == 1
}

/// Evaluates a garbled circuit from active input labels, returning the
/// active labels of the output wires.
///
/// # Panics
///
/// Panics if input widths disagree with the circuit.
#[must_use]
pub fn evaluate(circ: &Circuit, garbled: &Garbled, inputs: &InputLabels) -> Vec<Label> {
    assert_eq!(inputs.a.len(), circ.inputs_a.len(), "party A width");
    assert_eq!(inputs.b.len(), circ.inputs_b.len(), "party B width");
    let mut active: Vec<Label> = vec![[0, 0]; circ.wires];
    // Constants: evaluator holds the constant wires' active labels.
    active[0] = garbled.label(0, false);
    active[1] = garbled.label(1, true);
    // secrecy: allow(secret-index, "`wire` is the public circuit topology; only `bit` is secret — the tuple pattern over-taints both")
    for (wire, &bit) in circ.inputs_a.iter().zip(&inputs.a) {
        active[*wire] = garbled.label(*wire, bit);
    }
    // secrecy: allow(secret-index, "`wire` is the public circuit topology; only `bit` is secret — the tuple pattern over-taints both")
    for (wire, &bit) in circ.inputs_b.iter().zip(&inputs.b) {
        active[*wire] = garbled.label(*wire, bit);
    }
    let mut table_idx = 0usize;
    for (gid, g) in circ.gates.iter().enumerate() {
        match *g {
            Gate::Xor { a, b, out } => {
                active[out] = xor_label(active[a], active[b]);
            }
            Gate::And { a, b, out } => {
                let (la, lb) = (active[a], active[b]);
                let row = 2 * usize::from(lsb(la)) + usize::from(lsb(lb));
                // secrecy: allow(secret-index, "point-and-permute: the row index is the labels' LSBs, uniformly masked by the garbler's permute bits, so the access pattern is independent of the true wire values")
                let ct = garbled.tables[table_idx].rows[row];
                active[out] = xor_label(hash(la, lb, gid as u64), ct);
                table_idx += 1;
            }
        }
    }
    circ.outputs.iter().map(|&o| active[o]).collect()
}

/// Decodes output labels against the circuit's output wires.
///
/// # Panics
///
/// Panics if a label matches neither candidate (corruption or a wrong
/// evaluation).
#[must_use]
// secrecy: declassify — decoding maps active output labels to the cleartext
// circuit output, which this step reveals by design.
pub fn decode_with(circ: &Circuit, garbled: &Garbled, outputs: &[Label]) -> u64 {
    let mut v = 0u64;
    for (i, (&l, &wire)) in outputs.iter().zip(&circ.outputs).enumerate() {
        if l == garbled.label(wire, true) {
            v |= 1 << i;
        } else {
            assert_eq!(l, garbled.label(wire, false), "invalid output label");
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{encode_inputs, less_than, relu_on_shares};
    use crate::garble::{garble, select_input_labels};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn garbled_relu_matches_plaintext() {
        let bits = 8u32;
        let circ = relu_on_shares(bits);
        let mut rng = StdRng::seed_from_u64(7);
        let garbled = garble(&circ, &mut rng);
        for x in [-128i64, -50, -1, 0, 1, 42, 127] {
            let enc = (x as u64) & 0xff;
            for r in [3u64, 200] {
                let inputs = encode_inputs(&circ, r, enc.wrapping_sub(r) & 0xff, bits);
                let labels = select_input_labels(&garbled, &inputs);
                let out = evaluate(&circ, &garbled, &labels);
                let got = decode_with(&circ, &garbled, &out);
                assert_eq!(got, if x > 0 { x as u64 } else { 0 }, "x={x} r={r}");
            }
        }
    }

    #[test]
    fn garbled_less_than_exhaustive_4bit() {
        let circ = less_than(4);
        let mut rng = StdRng::seed_from_u64(8);
        let garbled = garble(&circ, &mut rng);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let inputs = encode_inputs(&circ, a, b, 4);
                let labels = select_input_labels(&garbled, &inputs);
                let out = evaluate(&circ, &garbled, &labels);
                assert_eq!(decode_with(&circ, &garbled, &out), u64::from(a < b), "{a}<{b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid output label")]
    fn corrupted_label_detected() {
        let circ = relu_on_shares(8);
        let mut rng = StdRng::seed_from_u64(9);
        let garbled = garble(&circ, &mut rng);
        let inputs = encode_inputs(&circ, 1, 1, 8);
        let labels = select_input_labels(&garbled, &inputs);
        let mut out = evaluate(&circ, &garbled, &labels);
        out[0][0] ^= 0xdead;
        let _ = decode_with(&circ, &garbled, &out);
    }
}
