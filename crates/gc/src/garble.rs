//! Point-and-permute garbling with free XOR.

use crate::circuit::{Circuit, Gate, WireId};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A 128-bit wire label.
pub type Label = [u64; 2];

fn xor_label(a: Label, b: Label) -> Label {
    [a[0] ^ b[0], a[1] ^ b[1]]
}

fn lsb(l: Label) -> bool {
    l[0] & 1 == 1
}

/// KDF: hashes two labels and a gate id into a label-sized pad.
///
/// Built on seeded ChaCha via `StdRng` — deterministic and collision-
/// scattered, sufficient for a cost/correctness baseline (not hardened).
#[must_use]
pub fn hash(a: Label, b: Label, gate: u64) -> Label {
    let seed = a[0].rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ a[1].rotate_left(33)
        ^ b[0].wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ b[1].rotate_left(49)
        ^ gate.wrapping_mul(0x1656_67b1_9e37_79f9);
    let mut rng = StdRng::seed_from_u64(seed);
    [rng.next_u64(), rng.next_u64()]
}

/// A garbled AND-gate table: four rows indexed by the inputs' permute bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GarbledTable {
    /// Rows indexed `2·p_a + p_b`.
    pub rows: [Label; 4],
}

/// The garbler's output: tables, input label pairs, output decode info.
///
/// `Debug` is implemented manually below and redacts `delta` and the wire
/// labels — knowing the free-XOR offset decodes every wire of the circuit.
#[derive(Clone)]
pub struct Garbled {
    /// Free-XOR global offset `R` (lsb forced to 1).
    pub delta: Label,
    /// Zero-labels for every wire.
    pub zero_labels: Vec<Label>,
    /// Tables for AND gates, in gate order.
    pub tables: Vec<GarbledTable>,
    /// The circuit's wires count (for evaluators).
    pub wires: usize,
}

impl std::fmt::Debug for Garbled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Garbled")
            .field("delta", &"<redacted>")
            .field("zero_labels", &"<redacted>")
            .field("tables", &self.tables.len())
            .field("wires", &self.wires)
            .finish()
    }
}

impl Garbled {
    /// The label of `wire` carrying bit `bit`.
    #[must_use]
    pub fn label(&self, wire: WireId, bit: bool) -> Label {
        if bit {
            xor_label(self.zero_labels[wire], self.delta)
        } else {
            self.zero_labels[wire]
        }
    }

    /// Transfer size of the garbled circuit in bytes: AND tables only
    /// (free XOR), 4 rows × 16 bytes.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.tables.len() as u64 * 4 * 16
    }
}

/// Garbles a circuit.
///
/// # Panics
///
/// Panics if the circuit references out-of-range wires.
#[must_use]
pub fn garble(circ: &Circuit, rng: &mut StdRng) -> Garbled {
    let mut delta: Label = [rng.gen(), rng.gen()];
    delta[0] |= 1; // permute-bit offset
    let mut zero_labels: Vec<Label> = vec![[0, 0]; circ.wires];
    // Constants and inputs get fresh labels.
    for l in &mut zero_labels {
        *l = [rng.gen(), rng.gen()];
    }
    let mut tables = Vec::with_capacity(circ.and_count());
    for (gid, g) in circ.gates.iter().enumerate() {
        match *g {
            Gate::Xor { a, b, out } => {
                zero_labels[out] = xor_label(zero_labels[a], zero_labels[b]);
            }
            Gate::And { a, b, out } => {
                let out_zero: Label = [rng.gen(), rng.gen()];
                zero_labels[out] = out_zero;
                let mut rows = [[0u64; 2]; 4];
                for bit_a in [false, true] {
                    for bit_b in [false, true] {
                        let la =
                            if bit_a { xor_label(zero_labels[a], delta) } else { zero_labels[a] };
                        let lb =
                            if bit_b { xor_label(zero_labels[b], delta) } else { zero_labels[b] };
                        let out_bit = bit_a & bit_b;
                        let lo = if out_bit { xor_label(out_zero, delta) } else { out_zero };
                        let row = 2 * usize::from(lsb(la)) + usize::from(lsb(lb));
                        rows[row] = xor_label(hash(la, lb, gid as u64), lo);
                    }
                }
                tables.push(GarbledTable { rows });
            }
        }
    }
    Garbled { delta, zero_labels, tables, wires: circ.wires }
}

/// Selects the active input labels for a plaintext input assignment
/// `(a_bits, b_bits)` — in a real deployment party B's labels arrive via
/// OT; here the selection is done directly for cost/correctness testing.
#[must_use]
pub fn select_input_labels(garbled: &Garbled, inputs: &(Vec<bool>, Vec<bool>)) -> InputLabels {
    InputLabels { a: inputs.0.clone(), b: inputs.1.clone(), garbled_delta: garbled.delta }
}

/// The active input-bit assignment (labels are derived inside the
/// evaluator entry point, mirroring label transfer).
#[derive(Clone)]
pub struct InputLabels {
    /// Party A bits.
    pub a: Vec<bool>,
    /// Party B bits.
    pub b: Vec<bool>,
    /// Copied delta (internal).
    pub garbled_delta: Label,
}

/// `Debug` redacts the plaintext input bits and the free-XOR offset; only
/// the (public) input widths are printed.
impl std::fmt::Debug for InputLabels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InputLabels")
            .field("a_len", &self.a.len())
            .field("b_len", &self.b.len())
            .field("bits", &"<redacted>")
            .field("garbled_delta", &"<redacted>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::relu_on_shares;

    #[test]
    fn free_xor_labels_consistent() {
        let circ = relu_on_shares(8);
        let mut rng = StdRng::seed_from_u64(3);
        let g = garble(&circ, &mut rng);
        // XOR gate output-zero-label = XOR of input zero labels.
        for gate in &circ.gates {
            if let Gate::Xor { a, b, out } = *gate {
                assert_eq!(g.zero_labels[out], xor_label(g.zero_labels[a], g.zero_labels[b]));
            }
        }
    }

    #[test]
    fn table_bytes_formula() {
        let circ = relu_on_shares(16);
        let mut rng = StdRng::seed_from_u64(4);
        let g = garble(&circ, &mut rng);
        assert_eq!(g.table_bytes(), circ.and_count() as u64 * 64);
    }

    #[test]
    fn labels_differ_per_bit() {
        let circ = relu_on_shares(8);
        let mut rng = StdRng::seed_from_u64(5);
        let g = garble(&circ, &mut rng);
        let w = circ.inputs_a[0];
        assert_ne!(g.label(w, false), g.label(w, true));
        assert_eq!(xor_label(g.label(w, false), g.label(w, true)), g.delta);
    }
}
