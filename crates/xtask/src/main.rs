//! Workspace task runner. Two tasks:
//!
//! ```text
//! cargo xtask lint [--deny] [--json PATH] [--self-test]
//! ```
//!
//! runs the `secrecy-lint` secret-independence analysis over every
//! protocol crate's `src/` tree (`crates/*` minus `bench`, the lint
//! itself and this runner). `--deny` exits nonzero on any violation
//! (CI mode); `--json` writes the machine-readable report; `--self-test`
//! checks the lint still catches every seeded violation in
//! `crates/secrecy-lint/fixtures/violations.rs`.
//!
//! ```text
//! cargo xtask report PATH
//! ```
//!
//! rebuilds the paper-style per-layer cost report from a `trace.json`
//! emitted by a traced run (`private_mnist_service --trace DIR`); `PATH`
//! is the trace file or the directory containing it.

use aq2pnn_obs::chrome::parse_chrome_trace;
use aq2pnn_obs::json::Json;
use aq2pnn_obs::report::CostReport;
use aq2pnn_obs::MetricsSnapshot;
use secrecy_lint::{Config, Linter, Rule};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose `src/` the lint skips: the lint and runner themselves
/// (no protocol data), and the bench harness (vendored baseline copies,
/// measurement-only code).
const SKIP_CRATES: &[&str] = &["bench", "secrecy-lint", "xtask"];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = …/crates/xtask
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn lint_main(args: &[String]) -> ExitCode {
    let deny = args.iter().any(|a| a == "--deny");
    let self_test = args.iter().any(|a| a == "--self-test");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    if self_test {
        return run_self_test();
    }

    let root = workspace_root();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        eprintln!("xtask: cannot read {}", crates_dir.display());
        return ExitCode::FAILURE;
    };
    let mut crate_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if SKIP_CRATES.contains(&name) {
            continue;
        }
        collect_rs(&dir.join("src"), &mut files);
    }

    let mut linter = Linter::new(Config::aq2pnn());
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("xtask: cannot read {}", path.display());
            return ExitCode::FAILURE;
        };
        let rel = path.strip_prefix(&root).unwrap_or(path);
        linter.add_file(&rel.display().to_string(), &src);
    }
    let report = linter.run();

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule.name(), v.message);
    }
    let used = report.allows.iter().filter(|a| a.used).count();
    println!(
        "secrecy-lint: {} files, {} functions, {} violation(s), {}/{} allow annotation(s) used",
        report.files,
        report.functions,
        report.violations.len(),
        used,
        report.allows.len()
    );
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, report.to_json()) {
            eprintln!("xtask: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        println!("secrecy-lint: JSON report written to {p}");
    }
    if deny && !report.is_clean() {
        eprintln!("secrecy-lint: violations present in --deny mode");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Expected rule hits in the seeded fixture. The fixture exists so CI can
/// prove the lint still *fires*: a lint that silently stopped reporting
/// would otherwise look identical to a clean tree.
const FIXTURE_EXPECT: &[(&str, Rule)] = &[
    ("branch", Rule::SecretBranch),
    ("index", Rule::SecretIndex),
    ("alloc", Rule::SecretAlloc),
    ("sink", Rule::SecretSink),
    ("compare", Rule::SecretCompare),
    ("unused-allow", Rule::UnusedAllow),
];

fn run_self_test() -> ExitCode {
    let fixture = workspace_root().join("crates/secrecy-lint/fixtures/violations.rs");
    let Ok(src) = std::fs::read_to_string(&fixture) else {
        eprintln!("xtask: cannot read fixture {}", fixture.display());
        return ExitCode::FAILURE;
    };
    let mut linter = Linter::new(Config::aq2pnn());
    linter.add_file("fixtures/violations.rs", &src);
    let report = linter.run();
    let mut ok = true;
    for (label, rule) in FIXTURE_EXPECT {
        let n = report.violations.iter().filter(|v| v.rule == *rule).count();
        if n == 0 {
            eprintln!("self-test FAILED: seeded `{label}` violation not detected");
            ok = false;
        } else {
            println!("self-test: {label}: {n} hit(s)");
        }
    }
    if ok {
        println!("secrecy-lint self-test passed ({} violations total)", report.violations.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `cargo xtask report PATH`: renders the per-layer cost table from a
/// Chrome `trace.json` (file, or a directory holding one).
fn report_main(args: &[String]) -> ExitCode {
    let Some(arg) = args.first() else {
        eprintln!("usage: cargo xtask report PATH  (trace.json or its directory)");
        return ExitCode::FAILURE;
    };
    let mut path = PathBuf::from(arg);
    if path.is_dir() {
        path.push("trace.json");
    }
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_chrome_trace(&doc) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("xtask: {} is not a valid Chrome trace: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        eprintln!("xtask: {} holds no span events", path.display());
        return ExitCode::FAILURE;
    }
    println!("{}", CostReport::from_chrome(&events).render());
    // Sibling metrics.json (same --trace dir): summarize the
    // batched-service family when present. The service writes either a
    // bare snapshot or `{"party0": snapshot, "party1": snapshot}`.
    if let Some(dir) = path.parent() {
        let mpath = dir.join("metrics.json");
        if let Ok(src) = std::fs::read_to_string(&mpath) {
            if let Ok(doc) = Json::parse(&src) {
                let labeled: Vec<(String, &Json)> = if doc.get("metrics_version").is_some() {
                    vec![(String::new(), &doc)]
                } else if let Json::Obj(entries) = &doc {
                    entries.iter().map(|(k, v)| (format!("{k}: "), v)).collect()
                } else {
                    Vec::new()
                };
                for (label, sub) in labeled {
                    match MetricsSnapshot::from_json(sub) {
                        Ok(snap) => {
                            if let Some(line) = dealer_summary(&snap) {
                                println!("{label}{line}");
                            }
                        }
                        Err(e) => eprintln!("xtask: {}: {e}", mpath.display()),
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// One-line dealer/batch summary from a metrics snapshot, `None` when the
/// run recorded none of the v2 batched-service metrics.
fn dealer_summary(snap: &MetricsSnapshot) -> Option<String> {
    let hits = snap.counters.get("dealer.hits").copied();
    let misses = snap.counters.get("dealer.misses").copied();
    let generated = snap.counters.get("dealer.generated").copied();
    let batch = snap.histograms.get("engine.batch_size");
    if hits.is_none() && misses.is_none() && generated.is_none() && batch.is_none() {
        return None;
    }
    let (h, m) = (hits.unwrap_or(0), misses.unwrap_or(0));
    let total = h + m;
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = if total == 0 { 0.0 } else { 100.0 * h as f64 / total as f64 };
    let mut line = format!(
        "dealer hits {h} / misses {m} ({hit_rate:.1}% hit), generated {}",
        generated.unwrap_or(0)
    );
    if let Some(hist) = batch {
        #[allow(clippy::cast_precision_loss)]
        let mean = if hist.count == 0 { 0.0 } else { hist.sum / hist.count as f64 };
        line.push_str(&format!(", {} batches (mean size {mean:.1})", hist.count));
    }
    Some(line)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_main(&args[1..]),
        Some("report") => report_main(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--deny] [--json PATH] [--self-test]\n\
                 \x20      cargo xtask report PATH"
            );
            ExitCode::FAILURE
        }
    }
}
