//! Workspace task runner. Three tasks:
//!
//! ```text
//! cargo xtask lint             [--deny] [--json PATH] [--self-test]
//! cargo xtask lint-concurrency [--deny] [--json PATH] [--self-test]
//! ```
//!
//! run the `secrecy-lint` analyses over every protocol crate's `src/`
//! tree (`crates/*` minus `bench`, the lint itself and this runner):
//! `lint` is the secret-independence (taint) pass, `lint-concurrency`
//! the concurrency-soundness pass (lock-order cycles, blocking while
//! locked, condvar misuse, guard escapes). `--deny` exits nonzero on any
//! violation (CI mode); `--json` writes the machine-readable report;
//! `--self-test` runs the pass against its seeded good/bad fixtures
//! under `crates/secrecy-lint/fixtures/` and fails on any missing or
//! extra diagnostic.
//!
//! ```text
//! cargo xtask report PATH
//! ```
//!
//! rebuilds the paper-style per-layer cost report from a `trace.json`
//! emitted by a traced run (`private_mnist_service --trace DIR`); `PATH`
//! is the trace file or the directory containing it. A flight-recorder
//! dump (`flightrec-<stream>.json`, written by the server when a session
//! faults or is reaped) is detected by its top-level `flightrec` marker
//! and rendered as a per-session incident timeline instead.
//!
//! ```text
//! cargo xtask watch ADDR [--once] [--interval-ms N]
//! ```
//!
//! polls a running server's `--admin` endpoint and renders a one-screen
//! operational dashboard (health, session accounting, SLO quantiles,
//! dealer state, live session table). `--once` scrapes a single time
//! and exits — the shape CI uses to smoke-test a deployment.

use aq2pnn_obs::chrome::{parse_chrome_trace, ChromeEvent};
use aq2pnn_obs::json::Json;
use aq2pnn_obs::report::CostReport;
use aq2pnn_obs::ArgValue;
use aq2pnn_obs::{parse_text, quantile, MetricsSnapshot, SloClass};
use aq2pnn_transport::http_get;
use secrecy_lint::selftest::{self, Pass};
use secrecy_lint::{ConcLinter, Config, Linter, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// Crates whose `src/` the lint skips: the lint and runner themselves
/// (no protocol data), and the bench harness (vendored baseline copies,
/// measurement-only code).
const SKIP_CRATES: &[&str] = &["bench", "secrecy-lint", "xtask"];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = …/crates/xtask
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Which analysis pass a lint invocation drives.
fn pass_label(pass: Pass) -> &'static str {
    match pass {
        Pass::Secrecy => "secrecy-lint",
        Pass::Conc => "concurrency-lint",
    }
}

/// The `(violations, clean)` fixture pair for a pass.
fn fixtures_for(pass: Pass) -> (&'static str, &'static str) {
    match pass {
        Pass::Secrecy => ("fixtures/violations.rs", "fixtures/clean.rs"),
        Pass::Conc => ("fixtures/conc_violations.rs", "fixtures/conc_clean.rs"),
    }
}

fn lint_main(pass: Pass, args: &[String]) -> ExitCode {
    let deny = args.iter().any(|a| a == "--deny");
    let self_test = args.iter().any(|a| a == "--self-test");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    if self_test {
        return run_self_test(pass);
    }

    let root = workspace_root();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        eprintln!("xtask: cannot read {}", crates_dir.display());
        return ExitCode::FAILURE;
    };
    let mut crate_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if SKIP_CRATES.contains(&name) {
            continue;
        }
        collect_rs(&dir.join("src"), &mut files);
    }

    let mut secrecy = (pass == Pass::Secrecy).then(|| Linter::new(Config::aq2pnn()));
    let mut conc = (pass == Pass::Conc).then(ConcLinter::new);
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("xtask: cannot read {}", path.display());
            return ExitCode::FAILURE;
        };
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let rel = rel.display().to_string();
        if let Some(l) = secrecy.as_mut() {
            l.add_file(&rel, &src);
        }
        if let Some(l) = conc.as_mut() {
            l.add_file(&rel, &src);
        }
    }
    let report: Report = match (secrecy, conc) {
        (Some(l), _) => l.run(),
        (_, Some(l)) => l.run(),
        _ => unreachable!(),
    };

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule.name(), v.message);
    }
    let used = report.allows.iter().filter(|a| a.used).count();
    println!(
        "{}: {} files, {} functions, {} violation(s), {}/{} allow annotation(s) used",
        pass_label(pass),
        report.files,
        report.functions,
        report.violations.len(),
        used,
        report.allows.len()
    );
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, report.to_json()) {
            eprintln!("xtask: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        println!("{}: JSON report written to {p}", pass_label(pass));
    }
    if deny && !report.is_clean() {
        eprintln!("{}: violations present in --deny mode", pass_label(pass));
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs a pass against its seeded fixtures via the shared harness in
/// `secrecy_lint::selftest`: the violations fixture must produce exactly
/// its `expect:` markers, the clean fixture must produce nothing. A lint
/// that silently stopped firing would otherwise look identical to a
/// clean tree.
fn run_self_test(pass: Pass) -> ExitCode {
    let (bad, good) = fixtures_for(pass);
    let base = workspace_root().join("crates/secrecy-lint");
    let mut errors = Vec::new();
    for (name, clean) in [(bad, false), (good, true)] {
        let path = base.join(name);
        let Ok(src) = std::fs::read_to_string(&path) else {
            eprintln!("xtask: cannot read fixture {}", path.display());
            return ExitCode::FAILURE;
        };
        let errs = if clean {
            selftest::check_clean(pass, name, &src)
        } else {
            selftest::check_fixture(pass, name, &src)
        };
        let verdict = if errs.is_empty() { "ok" } else { "FAILED" };
        println!("self-test: {name}: {verdict}");
        errors.extend(errs);
    }
    if errors.is_empty() {
        println!("{} self-test passed", pass_label(pass));
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("self-test FAILED: {e}");
        }
        ExitCode::FAILURE
    }
}

/// `cargo xtask report PATH`: renders the per-layer cost table from a
/// Chrome `trace.json` (file, or a directory holding one).
fn report_main(args: &[String]) -> ExitCode {
    let Some(arg) = args.first() else {
        eprintln!("usage: cargo xtask report PATH  (trace.json or its directory)");
        return ExitCode::FAILURE;
    };
    let mut path = PathBuf::from(arg);
    if path.is_dir() {
        path.push("trace.json");
    }
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    // A flight-recorder dump is a Chrome trace with extra top-level
    // markers; it describes one faulted session, not a layer-cost run.
    if doc.get("flightrec").is_some() {
        return flightrec_report(&doc, &path);
    }
    let events = match parse_chrome_trace(&doc) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("xtask: {} is not a valid Chrome trace: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        eprintln!("xtask: {} holds no span events", path.display());
        return ExitCode::FAILURE;
    }
    println!("{}", CostReport::from_chrome(&events).render());
    // Sibling metrics.json (same --trace dir): summarize the
    // batched-service family when present. The service writes either a
    // bare snapshot or `{"party0": snapshot, "party1": snapshot}`.
    if let Some(dir) = path.parent() {
        let mpath = dir.join("metrics.json");
        if let Ok(src) = std::fs::read_to_string(&mpath) {
            if let Ok(doc) = Json::parse(&src) {
                let labeled: Vec<(String, &Json)> = if doc.get("metrics_version").is_some() {
                    vec![(String::new(), &doc)]
                } else if let Json::Obj(entries) = &doc {
                    entries.iter().map(|(k, v)| (format!("{k}: "), v)).collect()
                } else {
                    Vec::new()
                };
                for (label, sub) in labeled {
                    match MetricsSnapshot::from_json(sub) {
                        Ok(snap) => {
                            for line in metrics_summary(&snap) {
                                println!("{label}{line}");
                            }
                        }
                        Err(e) => eprintln!("xtask: {}: {e}", mpath.display()),
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// The combined dealer + server summary for one snapshot. A run that
/// recorded server metrics but no dealer family ran with the background
/// dealer off — say so explicitly rather than silently omitting the
/// line, so a report reader can tell "disabled" from "no data".
fn metrics_summary(snap: &MetricsSnapshot) -> Vec<String> {
    let server = server_summary(snap);
    let mut lines = Vec::new();
    match dealer_summary(snap) {
        Some(line) => lines.push(line),
        None if !server.is_empty() => lines.push("dealer: disabled".to_owned()),
        None => {}
    }
    lines.extend(server);
    lines.extend(slo_summary(snap));
    lines
}

/// One-line dealer/batch summary from a metrics snapshot, `None` when the
/// run recorded none of the v2 batched-service metrics.
fn dealer_summary(snap: &MetricsSnapshot) -> Option<String> {
    let hits = snap.counters.get("dealer.hits").copied();
    let misses = snap.counters.get("dealer.misses").copied();
    let generated = snap.counters.get("dealer.generated").copied();
    let batch = snap.histograms.get("engine.batch_size");
    if hits.is_none() && misses.is_none() && generated.is_none() && batch.is_none() {
        return None;
    }
    let (h, m) = (hits.unwrap_or(0), misses.unwrap_or(0));
    let total = h + m;
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = if total == 0 { 0.0 } else { 100.0 * h as f64 / total as f64 };
    let mut line = format!(
        "dealer hits {h} / misses {m} ({hit_rate:.1}% hit), generated {}",
        generated.unwrap_or(0)
    );
    if let Some(hist) = batch {
        #[allow(clippy::cast_precision_loss)]
        let mean = if hist.count == 0 { 0.0 } else { hist.sum / hist.count as f64 };
        line.push_str(&format!(", {} batches (mean size {mean:.1})", hist.count));
    }
    if let Some(ms) = snap.counters.get("dealer.starved_ms").filter(|&&ms| ms > 0) {
        line.push_str(&format!(", starved {ms} ms"));
    }
    Some(line)
}

/// Per-class SLO quantile lines (schema v4), empty when the run recorded
/// no `server.slo.*_ms` histograms.
fn slo_summary(snap: &MetricsSnapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for class in SloClass::ALL {
        let Some(h) = snap.histograms.get(class.hist_name()) else { continue };
        if h.count == 0 {
            continue;
        }
        lines.push(format!(
            "slo {}: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms ({} samples)",
            class.label(),
            quantile(h, 0.50),
            quantile(h, 0.90),
            quantile(h, 0.99),
            h.count
        ));
    }
    if let Some(&v) = snap.counters.get("server.slo_violations").filter(|&&v| v > 0) {
        lines.push(format!("slo violations: {v}"));
    }
    lines
}

/// Multi-tenant server summary from a metrics snapshot (schema v3):
/// one header line of `server.sessions_*` accounting, then one line per
/// multiplexed stream aggregating its `session.<id>.*` recovery counters.
/// Empty when the run recorded no server metrics.
fn server_summary(snap: &MetricsSnapshot) -> Vec<String> {
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let families = ["admitted", "completed", "shed", "reaped", "rejected", "faulted"];
    if families.iter().all(|f| !snap.counters.contains_key(&format!("server.sessions_{f}"))) {
        return Vec::new();
    }
    let mut lines = Vec::new();
    let mut head = format!(
        "server sessions: admitted {}, completed {}, shed {}, reaped {}, rejected {}, faulted {}",
        c("server.sessions_admitted"),
        c("server.sessions_completed"),
        c("server.sessions_shed"),
        c("server.sessions_reaped"),
        c("server.sessions_rejected"),
        c("server.sessions_faulted"),
    );
    if let Some(ms) = snap.gauges.get("server.drain_ms") {
        head.push_str(&format!(" (drain {ms:.0} ms)"));
    }
    lines.push(head);
    // Group `session.<id>.<field>` counters by stream ID.
    let mut streams: std::collections::BTreeMap<u64, Vec<(String, u64)>> =
        std::collections::BTreeMap::new();
    for (key, &v) in &snap.counters {
        let Some(rest) = key.strip_prefix("session.") else { continue };
        let Some((id, field)) = rest.split_once('.') else { continue };
        let Ok(id) = id.parse::<u64>() else { continue };
        streams.entry(id).or_default().push((field.to_owned(), v));
    }
    for (id, fields) in streams {
        let f = |name: &str| fields.iter().find(|(k, _)| k == name).map_or(0, |&(_, v)| v);
        let repairs = f("retransmits") + f("naks_sent") + f("duplicates");
        let faults = f("corrupt_frames") + f("misrouted") + f("reconnects");
        let verdict = if repairs + faults == 0 { " — clean" } else { "" };
        lines.push(format!(
            "  stream {id}: retransmits {}, naks {}, dups {}, corrupt {}, misrouted {}, \
             reconnects {}{verdict}",
            f("retransmits"),
            f("naks_sent"),
            f("duplicates"),
            f("corrupt_frames"),
            f("misrouted"),
            f("reconnects"),
        ));
    }
    lines
}

/// Renders a flight-recorder dump (one faulted/reaped session) as an
/// incident timeline: every span relative to the session epoch, plus the
/// drop count when the bounded ring wrapped.
fn flightrec_report(doc: &Json, path: &Path) -> ExitCode {
    let stream = doc.get("stream").and_then(Json::as_u64).unwrap_or(0);
    let dropped = doc.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    let events = match parse_chrome_trace(doc) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("xtask: {} is not a valid flight recorder dump: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    println!("flight recorder: stream {stream}, {} event(s), {dropped} dropped", events.len());
    let mut sorted: Vec<&ChromeEvent> = events.iter().collect();
    sorted.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    for e in &sorted {
        let args: Vec<String> = e
            .args
            .iter()
            .map(|(k, v)| match v {
                ArgValue::U64(n) => format!("{k}={n}"),
                ArgValue::F64(n) => format!("{k}={n}"),
                ArgValue::Str(s) => format!("{k}={s}"),
            })
            .collect();
        let args = if args.is_empty() { String::new() } else { format!("  [{}]", args.join(" ")) };
        println!(
            "  +{:>10.3} ms  {:>8.3} ms  {}/{}{args}",
            e.ts_us / 1_000.0,
            e.dur_us / 1_000.0,
            e.cat,
            e.name
        );
    }
    ExitCode::SUCCESS
}

/// `cargo xtask watch ADDR`: poll a server's `--admin` endpoint and
/// render the operational dashboard.
fn watch_main(args: &[String]) -> ExitCode {
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!("usage: cargo xtask watch ADDR [--once] [--interval-ms N]");
        return ExitCode::FAILURE;
    };
    let once = args.iter().any(|a| a == "--once");
    let interval = args
        .iter()
        .position(|a| a == "--interval-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000u64);
    let deadline = Duration::from_secs(2);
    loop {
        match scrape_dashboard(&addr, deadline) {
            Ok(dash) => print!("{dash}"),
            Err(e) => {
                eprintln!("xtask: watch {addr}: {e}");
                if once {
                    return ExitCode::FAILURE;
                }
            }
        }
        if once {
            return ExitCode::SUCCESS;
        }
        println!("---");
        std::thread::sleep(Duration::from_millis(interval));
    }
}

/// One scrape of `/healthz` + `/metrics` + `/sessions`, rendered as the
/// dashboard text. Split from `watch_main` so the render logic is
/// testable against canned exposition text.
fn scrape_dashboard(addr: &str, deadline: Duration) -> Result<String, String> {
    let health = http_get(addr, "/healthz", deadline).map_err(|e| format!("/healthz: {e}"))?;
    let metrics = http_get(addr, "/metrics", deadline).map_err(|e| format!("/metrics: {e}"))?;
    let snap = parse_text(&metrics).map_err(|e| format!("/metrics parse: {e}"))?;
    let sessions = http_get(addr, "/sessions", deadline).map_err(|e| format!("/sessions: {e}"))?;
    Ok(render_dashboard(health.trim(), &snap, &sessions))
}

/// The dashboard body from already-fetched pieces.
fn render_dashboard(health: &str, snap: &MetricsSnapshot, sessions: &str) -> String {
    let mut out = format!("health: {health}\n");
    let inflight = snap.gauges.get("server.inflight").copied().unwrap_or(0.0);
    out.push_str(&format!("inflight: {inflight:.0}\n"));
    for line in metrics_summary(snap) {
        out.push_str(&line);
        out.push('\n');
    }
    if let Some(h) = snap.histograms.get("server.queue_wait_ms").filter(|h| h.count > 0) {
        out.push_str(&format!(
            "queue wait: p50 {:.2} ms, p99 {:.2} ms ({} waits)\n",
            quantile(h, 0.50),
            quantile(h, 0.99),
            h.count
        ));
    }
    out.push_str(sessions);
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_main(Pass::Secrecy, &args[1..]),
        Some("lint-concurrency") => lint_main(Pass::Conc, &args[1..]),
        Some("report") => report_main(&args[1..]),
        Some("watch") => watch_main(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask lint             [--deny] [--json PATH] [--self-test]\n\
                 \x20      cargo xtask lint-concurrency [--deny] [--json PATH] [--self-test]\n\
                 \x20      cargo xtask report PATH\n\
                 \x20      cargo xtask watch ADDR       [--once] [--interval-ms N]"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A v2 snapshot shaped like a server run with the background dealer
    /// off: the server family is present, the dealer family absent.
    const V2_SERVER_NO_DEALER: &str = r#"{
        "metrics_version": 2,
        "counters": {
            "server.sessions_admitted": 4,
            "server.sessions_completed": 4,
            "server.sessions_shed": 0,
            "server.sessions_reaped": 0,
            "server.sessions_rejected": 0,
            "server.sessions_faulted": 0
        },
        "gauges": {},
        "histograms": {}
    }"#;

    #[test]
    fn server_without_dealer_reports_dealer_disabled() {
        let doc = Json::parse(V2_SERVER_NO_DEALER).expect("fixture json");
        let snap = MetricsSnapshot::from_json(&doc).expect("fixture snapshot");
        let lines = metrics_summary(&snap);
        assert_eq!(lines.first().map(String::as_str), Some("dealer: disabled"));
        assert!(
            lines.iter().any(|l| l.contains("admitted 4, completed 4")),
            "server accounting line missing: {lines:?}"
        );
    }

    #[test]
    fn dealer_metrics_suppress_the_disabled_line() {
        let doc = Json::parse(
            r#"{"metrics_version": 2,
                "counters": {"dealer.hits": 9, "dealer.misses": 1,
                             "server.sessions_admitted": 1},
                "gauges": {}, "histograms": {}}"#,
        )
        .expect("json");
        let snap = MetricsSnapshot::from_json(&doc).expect("snapshot");
        let lines = metrics_summary(&snap);
        assert!(lines[0].starts_with("dealer hits 9 / misses 1"), "{lines:?}");
        assert!(!lines.iter().any(|l| l == "dealer: disabled"), "{lines:?}");
    }

    #[test]
    fn pure_client_snapshot_stays_silent_about_the_dealer() {
        let doc = Json::parse(
            r#"{"metrics_version": 1,
                "counters": {"transport.frames_sent": 12},
                "gauges": {}, "histograms": {}}"#,
        )
        .expect("json");
        let snap = MetricsSnapshot::from_json(&doc).expect("snapshot");
        assert!(metrics_summary(&snap).is_empty());
    }

    #[test]
    fn dashboard_renders_slo_and_queue_wait_from_v4_exposition() {
        let text = "# SCHEMA 4\n\
                    # TYPE server.inflight gauge\n\
                    server.inflight 2\n\
                    # TYPE server.sessions_admitted counter\n\
                    server.sessions_admitted 5\n\
                    # TYPE server.sessions_completed counter\n\
                    server.sessions_completed 3\n\
                    # TYPE server.slo.e2e_ms histogram\n\
                    server.slo.e2e_ms_bucket{le=\"0.25\"} 1\n\
                    server.slo.e2e_ms_bucket{le=\"0.5\"} 4\n\
                    server.slo.e2e_ms_bucket{le=\"+Inf\"} 4\n\
                    server.slo.e2e_ms_sum 1.5\n\
                    server.slo.e2e_ms_count 4\n\
                    # TYPE server.queue_wait_ms histogram\n\
                    server.queue_wait_ms_bucket{le=\"0.25\"} 2\n\
                    server.queue_wait_ms_bucket{le=\"+Inf\"} 2\n\
                    server.queue_wait_ms_sum 0.2\n\
                    server.queue_wait_ms_count 2\n";
        let snap = parse_text(text).expect("v4 exposition parses");
        let dash = render_dashboard("ok", &snap, "stream age_ms\n7 12\n");
        assert!(dash.starts_with("health: ok\ninflight: 2\n"), "{dash}");
        assert!(dash.contains("slo e2e: p50 "), "{dash}");
        assert!(dash.contains("queue wait: p50 "), "{dash}");
        assert!(dash.contains("dealer: disabled"), "{dash}");
        assert!(dash.ends_with("stream age_ms\n7 12\n"), "{dash}");
    }
}
