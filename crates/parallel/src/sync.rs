//! Loom-aware synchronization facade for the hand-rolled sync layer.
//!
//! Every long-lived concurrent structure in the workspace (the dealer
//! pool, this crate's [`Worker`](crate::Worker)) builds on these
//! primitives instead of `std::sync` directly. Under normal builds they
//! are thin wrappers over `std` with **poison recovery**: a panicked
//! holder never cascades `PoisonError` panics into other threads — the
//! data is returned as-is and higher layers degrade via their own typed
//! errors (`DealerExhausted`, inline fallback). Under
//! `RUSTFLAGS="--cfg loom"` the same call sites compile against the
//! vendored loom model checker, so the `loom_*` tests exhaustively
//! explore the real production lock/condvar protocol, not a copy.
//!
//! API shape: `lock()` returns the guard directly (never a
//! `LockResult`), and `Condvar::wait` consumes and returns the guard by
//! value — `st = cv.wait(st)` — which is the one shape both backends
//! share.

use std::sync::PoisonError;

#[cfg(loom)]
use loom::sync as imp;
#[cfg(not(loom))]
use std::sync as imp;

pub use std::sync::atomic::Ordering;

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

/// Mutual exclusion with poison recovery (std) or model-checked
/// scheduling (loom).
pub struct Mutex<T>(imp::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T>(imp::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `t`.
    pub fn new(t: T) -> Self {
        Self(imp::Mutex::new(t))
    }

    /// Acquires the mutex, recovering the data from a poisoned lock
    /// instead of propagating the holder's panic.
    // sync: allow(guard-escape, "the facade's whole job is handing the guard to its caller")
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        T::fmt(self, f)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar(imp::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Self(imp::Condvar::new())
    }

    /// Atomically releases `guard` and waits for a notification, then
    /// re-acquires the lock. Always call in a predicate loop:
    /// `while !ready { st = cv.wait(st); }`.
    // sync: allow(guard-escape, "wait must return the re-acquired guard by contract")
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard(self.0.wait(guard.0).unwrap_or_else(PoisonError::into_inner))
    }

    /// Wakes one waiter (if any; otherwise the notification is lost).
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Model-aware thread spawning for the long-lived background workers.
pub mod thread {
    /// Handle to a spawned background thread.
    pub struct JoinHandle(Imp);

    #[cfg(loom)]
    type Imp = loom::thread::JoinHandle<()>;
    #[cfg(not(loom))]
    type Imp = std::thread::JoinHandle<()>;

    impl JoinHandle {
        /// Waits for the thread to finish; a panic on the worker thread
        /// is reported as `Err` rather than propagated.
        pub fn join(self) -> std::thread::Result<()> {
            self.0.join()
        }
    }

    impl std::fmt::Debug for JoinHandle {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    /// Spawns a named thread (the name is dropped under loom, which
    /// names model threads itself).
    pub fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle {
        #[cfg(loom)]
        {
            let _ = name;
            JoinHandle(loom::thread::spawn(f))
        }
        #[cfg(not(loom))]
        {
            JoinHandle(
                std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(f)
                    .expect("spawn background thread"),
            )
        }
    }
}
