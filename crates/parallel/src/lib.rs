//! Scoped-thread data parallelism for the protocol hot paths.
//!
//! The registry-free stand-in for `rayon`: output buffers are split into
//! contiguous chunks and each chunk is processed on its own scoped thread
//! (`std::thread::scope`). Because every output element is written by
//! exactly one thread in a deterministic order, parallel execution is
//! **bit-identical** to sequential execution — a hard requirement for the
//! 2PC kernels, whose two parties must stay in exact agreement.
//!
//! Thread count comes from `AQ2PNN_THREADS` (if set) or the machine's
//! available parallelism; callers pass a `min_chunk` so tiny inputs run
//! inline without spawn overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The maximum number of worker threads fan-outs will use: the
/// `AQ2PNN_THREADS` environment variable when set (minimum 1), otherwise
/// the machine's available parallelism.
///
/// The environment variable is re-read on every call (tests and benches
/// toggle it at runtime), but the machine probe is cached: on Linux,
/// `available_parallelism` re-reads cgroup files each call, which is
/// microseconds — enough to dominate a small packing kernel's gate check.
#[must_use]
pub fn max_threads() -> usize {
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    if let Ok(v) = std::env::var("AQ2PNN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    *MACHINE
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Splits `data` into at most [`max_threads`] contiguous chunks of at least
/// `min_chunk` elements and runs `f(start_index, chunk)` on each, in
/// parallel. Falls back to a single inline call when the input is small or
/// only one thread is available.
///
/// `f` receives the chunk's offset into `data` so workers can index
/// read-only context consistently.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], min_chunk: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let min_chunk = min_chunk.max(1);
    let threads = max_threads().min(len.div_ceil(min_chunk)).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for (i, piece) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(i * chunk, piece));
        }
    });
}

/// Overwrites every slot of `out` with `f(index)` across the worker pool —
/// the fill counterpart of [`par_chunks_mut`] for kernels whose output is
/// a pure function of the slot index (OT mask rows, decryption keys,
/// comparison-code matrices). Deterministic and bit-identical at any
/// thread count.
pub fn par_fill_indexed<T: Send, F>(out: &mut [T], min_chunk: usize, f: F)
where
    F: Fn(usize) -> T + Sync,
{
    par_chunks_mut(out, min_chunk, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + j);
        }
    });
}

/// Runs `f(index)` for every index in `0..n` across the worker pool and
/// collects the results in order. Used when the work items produce owned
/// values rather than writing into a shared output slice.
pub fn par_map_indexed<R: Send, F>(n: usize, min_chunk: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    par_chunks_mut(&mut out, min_chunk, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(start + j));
        }
    });
    out.into_iter().map(|v| v.expect("every index visited")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_element_once() {
        let mut data = vec![0u64; 10_007];
        par_chunks_mut(&mut data, 16, |start, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v += (start + j) as u64 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 1024, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let mut data: Vec<u32> = Vec::new();
        par_chunks_mut(&mut data, 8, |_, _| {});
    }

    #[test]
    fn fill_indexed_overwrites_every_slot() {
        let mut data = vec![u64::MAX; 4097];
        par_fill_indexed(&mut data, 8, |i| (i as u64) * 3);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn map_indexed_preserves_order() {
        let squares = par_map_indexed(1000, 8, |i| i * i);
        assert!(squares.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn thread_cap_respected() {
        assert!(max_threads() >= 1);
    }
}
