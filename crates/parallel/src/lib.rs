//! Scoped-thread data parallelism for the protocol hot paths.
//!
//! The registry-free stand-in for `rayon`: output buffers are split into
//! contiguous chunks and each chunk is processed on its own scoped thread
//! (`std::thread::scope`). Because every output element is written by
//! exactly one thread in a deterministic order, parallel execution is
//! **bit-identical** to sequential execution — a hard requirement for the
//! 2PC kernels, whose two parties must stay in exact agreement.
//!
//! Thread count comes from `AQ2PNN_THREADS` (if set) or the machine's
//! available parallelism; callers pass a `min_chunk` so tiny inputs run
//! inline without spawn overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sync;

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::{AtomicU64, Condvar, Mutex, Ordering};

/// The maximum number of worker threads fan-outs will use: the
/// `AQ2PNN_THREADS` environment variable when set (minimum 1), otherwise
/// the machine's available parallelism.
///
/// The environment variable is re-read on every call (tests and benches
/// toggle it at runtime), but the machine probe is cached: on Linux,
/// `available_parallelism` re-reads cgroup files each call, which is
/// microseconds — enough to dominate a small packing kernel's gate check.
#[must_use]
pub fn max_threads() -> usize {
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    if let Ok(v) = std::env::var("AQ2PNN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    *MACHINE
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Splits `data` into at most [`max_threads`] contiguous chunks of at least
/// `min_chunk` elements and runs `f(start_index, chunk)` on each, in
/// parallel. Falls back to a single inline call when the input is small or
/// only one thread is available.
///
/// `f` receives the chunk's offset into `data` so workers can index
/// read-only context consistently.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], min_chunk: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let min_chunk = min_chunk.max(1);
    let threads = max_threads().min(len.div_ceil(min_chunk)).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for (i, piece) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(i * chunk, piece));
        }
    });
}

/// Overwrites every slot of `out` with `f(index)` across the worker pool —
/// the fill counterpart of [`par_chunks_mut`] for kernels whose output is
/// a pure function of the slot index (OT mask rows, decryption keys,
/// comparison-code matrices). Deterministic and bit-identical at any
/// thread count.
pub fn par_fill_indexed<T: Send, F>(out: &mut [T], min_chunk: usize, f: F)
where
    F: Fn(usize) -> T + Sync,
{
    par_chunks_mut(out, min_chunk, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + j);
        }
    });
}

/// Runs `f(index)` for every index in `0..n` across the worker pool and
/// collects the results in order. Used when the work items produce owned
/// values rather than writing into a shared output slice.
pub fn par_map_indexed<R: Send, F>(n: usize, min_chunk: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    par_chunks_mut(&mut out, min_chunk, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(start + j));
        }
    });
    out.into_iter().map(|v| v.expect("every index visited")).collect()
}

/// A boxed unit of work for a [`Worker`].
type Job = Box<dyn FnOnce() + Send + 'static>;

struct WorkerState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct WorkerShared {
    state: Mutex<WorkerState>,
    cv: Condvar,
    panicked_jobs: AtomicU64,
}

/// A long-lived background worker thread with a FIFO job queue.
///
/// Unlike the scoped fan-outs above — which exist only for the duration of
/// one kernel call — a `Worker` persists across protocol operations, so
/// subsystems can move work *off* the critical path entirely (the offline
/// dealer pre-generates Beaver material here while the online pass runs on
/// the caller's thread). Jobs run strictly in submission order on one
/// thread, so a producer that must consume a deterministic RNG stream in
/// order can rely on FIFO execution.
///
/// Dropping the `Worker` signals shutdown: the job currently running
/// finishes, queued-but-unstarted jobs are discarded, and the thread is
/// joined. Long-running jobs should therefore poll their own cancellation
/// flag if prompt shutdown matters.
///
/// A job that panics does **not** kill the worker: the panic is caught,
/// counted (see [`Worker::panicked_jobs`]), and the loop moves on to the
/// next job. Combined with the poison-recovering locks in
/// [`crate::sync`], a panicking producer degrades service instead of
/// wedging every thread that shares its queue.
pub struct Worker {
    shared: Arc<WorkerShared>,
    handle: Option<crate::sync::thread::JoinHandle>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("pending", &self.pending()).finish_non_exhaustive()
    }
}

impl Worker {
    /// Spawns a named background worker thread with an empty queue.
    #[must_use]
    pub fn spawn(name: &str) -> Worker {
        let shared = Arc::new(WorkerShared {
            state: Mutex::new(WorkerState { jobs: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            panicked_jobs: AtomicU64::new(0),
        });
        let run = Arc::clone(&shared);
        let handle = crate::sync::thread::spawn_named(name, move || loop {
            let job = {
                let mut st = run.state.lock();
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = run.cv.wait(st);
                }
            };
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                run.panicked_jobs.fetch_add(1, Ordering::Relaxed);
            }
        });
        Worker { shared, handle: Some(handle) }
    }

    /// Enqueues a job; it runs after all previously submitted jobs.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut st = self.shared.state.lock();
        if !st.shutdown {
            st.jobs.push_back(Box::new(job));
        }
        drop(st);
        self.shared.cv.notify_one();
    }

    /// The number of jobs queued but not yet started (the running job, if
    /// any, is not counted).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.state.lock().jobs.len()
    }

    /// How many submitted jobs have panicked (and been swallowed) so far.
    /// Submitters that need to distinguish "worker idle" from "worker gave
    /// up" poll this alongside their own progress signals.
    #[must_use]
    pub fn panicked_jobs(&self) -> u64 {
        self.shared.panicked_jobs.load(Ordering::Relaxed)
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            st.jobs.clear();
        }
        self.shared.cv.notify_one();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_element_once() {
        let mut data = vec![0u64; 10_007];
        par_chunks_mut(&mut data, 16, |start, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v += (start + j) as u64 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 1024, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let mut data: Vec<u32> = Vec::new();
        par_chunks_mut(&mut data, 8, |_, _| {});
    }

    #[test]
    fn fill_indexed_overwrites_every_slot() {
        let mut data = vec![u64::MAX; 4097];
        par_fill_indexed(&mut data, 8, |i| (i as u64) * 3);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn map_indexed_preserves_order() {
        let squares = par_map_indexed(1000, 8, |i| i * i);
        assert!(squares.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn thread_cap_respected() {
        assert!(max_threads() >= 1);
    }

    /// Blocks until the worker has drained everything submitted so far,
    /// by rendezvousing on a sentinel job.
    fn drain(w: &Worker) {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        w.submit(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_one();
        });
        let mut done = pair.0.lock();
        while !*done {
            done = pair.1.wait(done);
        }
    }

    #[test]
    fn worker_runs_jobs_in_submission_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let w = Worker::spawn("test-worker");
        for i in 0..32u32 {
            let log = Arc::clone(&log);
            w.submit(move || log.lock().push(i));
        }
        drain(&w);
        assert_eq!(*log.lock(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn worker_drop_joins_cleanly() {
        let w = Worker::spawn("drop-worker");
        w.submit(|| {});
        drop(w); // must not hang or panic
    }

    #[test]
    fn worker_survives_panicking_job() {
        let w = Worker::spawn("panic-worker");
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        w.submit(move || l1.lock().push(1));
        w.submit(|| panic!("job blows up"));
        let l2 = Arc::clone(&log);
        w.submit(move || l2.lock().push(2));
        drain(&w);
        assert_eq!(*log.lock(), vec![1, 2], "jobs around the panic must still run");
        assert_eq!(w.panicked_jobs(), 1);
        drop(w); // the thread is still alive to join
    }
}

/// Exhaustive schedule exploration of the worker's submit / FIFO drain /
/// shutdown handshake. Run with `RUSTFLAGS="--cfg loom" cargo test -p
/// aq2pnn-parallel --lib loom_` — the `sync` facade then backs these
/// exact production code paths with the vendored loom model checker.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::sync::{Condvar, Mutex};
    use super::Worker;
    use std::sync::Arc;

    /// Submits racing the worker's pop loop: both jobs must run, in
    /// submission order, and the drain rendezvous must never miss a
    /// wakeup (a lost notify deadlocks the model and fails the test).
    #[test]
    fn loom_worker_fifo_and_drain() {
        loom::model(|| {
            let w = Worker::spawn("w");
            let log = Arc::new(Mutex::new(Vec::new()));
            let l1 = Arc::clone(&log);
            w.submit(move || l1.lock().push(1));
            let l2 = Arc::clone(&log);
            w.submit(move || l2.lock().push(2));
            let done = Arc::new((Mutex::new(false), Condvar::new()));
            let d2 = Arc::clone(&done);
            w.submit(move || {
                *d2.0.lock() = true;
                d2.1.notify_one();
            });
            {
                let mut flag = done.0.lock();
                while !*flag {
                    flag = done.1.wait(flag);
                }
            }
            assert_eq!(*log.lock(), vec![1, 2], "FIFO order violated");
            drop(w);
        });
        assert!(loom::explored() > 1, "model must explore real interleavings");
    }

    /// Shutdown racing submitted work: `drop(w)` may cancel queued jobs,
    /// but whatever ran must be an in-order prefix, and the drop/join
    /// handshake must terminate under every schedule.
    #[test]
    fn loom_worker_shutdown_race() {
        loom::model(|| {
            let w = Worker::spawn("w");
            let log = Arc::new(Mutex::new(Vec::new()));
            let l1 = Arc::clone(&log);
            w.submit(move || l1.lock().push(1));
            let l2 = Arc::clone(&log);
            w.submit(move || l2.lock().push(2));
            drop(w);
            let l = log.lock();
            assert!(
                [&[][..], &[1][..], &[1, 2][..]].contains(&l.as_slice()),
                "executed jobs not an in-order prefix: {l:?}"
            );
        });
    }
}
