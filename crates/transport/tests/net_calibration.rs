//! Calibration of the analytic [`NetworkModel`] against the *measured*
//! behavior of the real session-over-TCP stack on loopback.
//!
//! Two claims are kept honest here (details in EXPERIMENTS.md,
//! "NetworkModel calibration"):
//!
//! 1. **Bytes** — the per-message wire overhead of the deployed stack is
//!    exactly [`SESSION_WIRE_FRAMING_BYTES`] per frame (36-byte session
//!    header + 4-byte length prefix) plus a bounded trickle of standalone
//!    acks, measured from [`TcpTransport::wire_bytes`]. The model's
//!    per-message overhead constant must sit within 2× of the measured
//!    userspace framing plus nominal kernel headers.
//! 2. **Wall-clock** — an α–β model parameterized from two loopback
//!    measurements (small-message RTT → α, bulk one-way transfer → β)
//!    predicts the wall-clock of a fresh mixed workload to within a loose
//!    factor. The always-on bound is deliberately generous (shared CI
//!    hosts); the `#[ignore]`d strict variant runs in the release-mode CI
//!    fault-matrix job.

use aq2pnn_transport::{
    Bytes, NetworkModel, Session, SessionConfig, TcpConfig, TcpTransport, Transport,
    FRAME_HEADER_LEN, SESSION_WIRE_FRAMING_BYTES,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Nominal Ethernet + IPv4 + TCP header bytes per segment, the quantity
/// the paper-LAN model's constant stands for (userspace cannot observe
/// these; loopback does not emit them).
const KERNEL_FRAMING_BYTES: u64 = 66;

struct TcpPair {
    a: Arc<Session>,
    b: Arc<Session>,
    a_raw: Arc<TcpTransport>,
}

fn tcp_session_pair() -> TcpPair {
    let listener = Arc::new(TcpTransport::listen("127.0.0.1:0").expect("bind loopback"));
    let addr = listener.local_addr().expect("addr");
    let connector =
        Arc::new(TcpTransport::connect(addr, TcpConfig::default()).expect("dial loopback"));
    let scfg = SessionConfig::default();
    TcpPair {
        a: Arc::new(Session::new(Arc::clone(&connector) as Arc<dyn Transport>, scfg)),
        b: Arc::new(Session::new(Arc::clone(&listener) as Arc<dyn Transport>, scfg)),
        a_raw: connector,
    }
}

/// Echo `rounds` ping-pong messages of `size` bytes; returns elapsed time.
fn ping_pong(pair: &TcpPair, rounds: usize, size: usize) -> Duration {
    let b = Arc::clone(&pair.b);
    let echo = std::thread::spawn(move || {
        for _ in 0..rounds {
            let msg = b.recv(Some(Duration::from_secs(20))).expect("echo recv");
            b.send(msg).expect("echo send");
        }
    });
    let start = Instant::now();
    for i in 0..rounds {
        pair.a.send(Bytes::from(vec![i as u8; size])).expect("ping send");
        pair.a.recv(Some(Duration::from_secs(20))).expect("pong recv");
    }
    let elapsed = start.elapsed();
    echo.join().expect("echo thread");
    elapsed
}

/// The measured per-message wire overhead must be the session+prefix
/// framing (plus at most a bounded ack trickle), and the model constant
/// must agree with measurement + nominal kernel headers to within 2×.
#[test]
fn measured_wire_overhead_matches_the_model_constant() {
    let pair = tcp_session_pair();
    let rounds = 64usize;
    let size = 1000usize;
    ping_pong(&pair, rounds, size);

    let (sent, _) = pair.a_raw.wire_bytes();
    let payload = (rounds * size) as u64;
    assert!(sent > payload, "wire bytes must include framing");
    let overhead_per_msg = (sent - payload) / rounds as u64;
    // Exact framing is 32 B/frame; standalone acks (one 32-byte frame per
    // `ack_every` data frames, plus handshake slack) can at most double it.
    assert!(
        (SESSION_WIRE_FRAMING_BYTES..=2 * SESSION_WIRE_FRAMING_BYTES).contains(&overhead_per_msg),
        "measured overhead {overhead_per_msg} B/msg outside \
         [{SESSION_WIRE_FRAMING_BYTES}, {}]",
        2 * SESSION_WIRE_FRAMING_BYTES
    );
    assert_eq!(SESSION_WIRE_FRAMING_BYTES, FRAME_HEADER_LEN as u64 + 4);

    // Model-vs-measurement: the deployed stack's true per-message cost is
    // measured userspace framing + nominal kernel headers. The calibrated
    // model (`with_session_framing`) must be within 2×.
    eprintln!("measured wire overhead: {overhead_per_msg} B/msg over {rounds} frames");
    let measured_total = overhead_per_msg + KERNEL_FRAMING_BYTES;
    let model = NetworkModel::paper_lan().with_session_framing().per_message_overhead_bytes;
    let ratio = model.max(measured_total) as f64 / model.min(measured_total) as f64;
    assert!(
        ratio <= 2.0,
        "model per-message overhead ({model} B) is {ratio:.2}x off the \
         measured {measured_total} B"
    );
}

/// Fits α (latency) and β (bandwidth) from loopback measurements, then
/// checks the fitted model predicts a fresh mixed workload's wall-clock
/// within `tolerance`×.
fn calibrate_and_check(tolerance: f64) {
    // α: small-message ping-pong; one round = 2 messages = 2 α.
    let pair = tcp_session_pair();
    let rounds = 200usize;
    let rtt_total = ping_pong(&pair, rounds, 16);
    let latency_s = rtt_total.as_secs_f64() / (rounds as f64 * 2.0);

    // β: bulk one-way transfer, receiver confirms completion once.
    let bulk_msgs = 48usize;
    let bulk_size = 1 << 18; // 256 KiB
    let b = Arc::clone(&pair.b);
    let sink = std::thread::spawn(move || {
        for _ in 0..bulk_msgs {
            b.recv(Some(Duration::from_secs(30))).expect("bulk recv");
        }
        b.send(Bytes::from_static(b"done")).expect("done send");
    });
    let start = Instant::now();
    for _ in 0..bulk_msgs {
        pair.a.send(Bytes::from(vec![0xA5; bulk_size])).expect("bulk send");
    }
    pair.a.recv(Some(Duration::from_secs(30))).expect("done recv");
    let bulk_elapsed = start.elapsed().as_secs_f64();
    sink.join().expect("sink thread");
    let bulk_bytes = (bulk_msgs * bulk_size) as u64;
    let bandwidth_bps = bulk_bytes as f64 * 8.0 / bulk_elapsed;

    let fitted = NetworkModel {
        bandwidth_bps,
        latency_s,
        per_message_overhead_bytes: SESSION_WIRE_FRAMING_BYTES,
    };

    // Fresh mixed workload: 64 ping-pongs of 8 KiB.
    let (wl_rounds, wl_size) = (64usize, 8192usize);
    let measured = ping_pong(&pair, wl_rounds, wl_size).as_secs_f64();
    let predicted = fitted.transfer_seconds((2 * wl_rounds * wl_size) as u64, 2 * wl_rounds as u64);
    let ratio = (measured / predicted).max(predicted / measured);
    eprintln!(
        "loopback fit: alpha = {:.1} us, beta = {:.2} Gbps; workload measured {:.3} ms, \
         predicted {:.3} ms (ratio {ratio:.2})",
        latency_s * 1e6,
        bandwidth_bps / 1e9,
        measured * 1e3,
        predicted * 1e3
    );
    assert!(
        ratio <= tolerance,
        "alpha-beta model off by {ratio:.1}x (tolerance {tolerance}x): \
         measured {measured:.4}s vs predicted {predicted:.4}s"
    );
}

/// Always-on sanity: the fitted α–β model is not grossly wrong. The bound
/// is loose because shared CI hosts jitter loopback timings heavily.
#[test]
fn fitted_alpha_beta_model_predicts_wall_clock_loosely() {
    calibrate_and_check(20.0);
}

/// Strict calibration, run by the release-mode CI fault-matrix job where
/// timing noise is lower and optimized code dominates syscall overhead
/// less.
#[test]
#[ignore = "timing-sensitive: release-mode CI fault-matrix job runs this"]
fn fitted_alpha_beta_model_predicts_wall_clock_strictly() {
    calibrate_and_check(6.0);
}
