//! Property-based tests for the wire format and channel accounting.

use aq2pnn_transport::{
    duplex, pack_bits, pack_bits_reference, packed_len, unpack_bits, unpack_bits_at,
    unpack_bits_reference, NetworkModel,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pack_unpack_roundtrip(
        bits in 1u32..=64,
        raw in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let elems: Vec<u64> = raw.iter().map(|&x| x & mask).collect();
        let packed = pack_bits(&elems, bits);
        prop_assert_eq!(packed.len(), packed_len(bits, elems.len()));
        prop_assert_eq!(unpack_bits(&packed, bits, elems.len()), elems);
    }

    #[test]
    fn fast_paths_match_bit_loop_reference(
        bits in 1u32..=64,
        raw in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        // The whole-byte-width copies and the parallel 8-element-group
        // packer must produce the exact byte stream (and recover the exact
        // elements) of the original single-threaded bit loop, for every
        // width — including the byte-aligned widths 8/16/24/…/64 that take
        // the memcpy path and awkward widths straddling group boundaries.
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let elems: Vec<u64> = raw.iter().map(|&x| x & mask).collect();
        let packed = pack_bits(&elems, bits);
        prop_assert_eq!(&packed, &pack_bits_reference(&elems, bits));
        prop_assert_eq!(
            unpack_bits(&packed, bits, elems.len()),
            unpack_bits_reference(&packed, bits, elems.len())
        );
    }

    #[test]
    fn unpack_bits_at_matches_bulk_unpack(
        bits in 1u32..=17,
        raw in proptest::collection::vec(any::<u64>(), 1..80),
    ) {
        // The single-element extractor must agree with the bulk unpacker
        // at every index, across the sub-byte widths (1..=7), whole-byte
        // widths (8, 16) and byte-straddling widths (9..=17) — the ranges
        // where the chosen-slot read crosses byte and group boundaries.
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let elems: Vec<u64> = raw.iter().map(|&x| x & mask).collect();
        let packed = pack_bits(&elems, bits);
        let bulk = unpack_bits(&packed, bits, elems.len());
        for (i, &want) in bulk.iter().enumerate() {
            prop_assert_eq!(unpack_bits_at(&packed, bits, i), want);
        }
    }

    #[test]
    fn sub_byte_pack_fast_paths_roundtrip(
        bits in 1u32..=17,
        raw in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        // Sub-byte and straddling widths drive the grouped/parallel pack
        // fast paths; the byte stream must match the scalar bit-loop
        // reference exactly and round-trip element for element.
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let elems: Vec<u64> = raw.iter().map(|&x| x & mask).collect();
        let packed = pack_bits(&elems, bits);
        prop_assert_eq!(&packed, &pack_bits_reference(&elems, bits));
        prop_assert_eq!(unpack_bits(&packed, bits, elems.len()), elems);
        prop_assert_eq!(
            unpack_bits_reference(&packed, bits, elems.len()),
            unpack_bits(&packed, bits, elems.len())
        );
    }

    #[test]
    fn packed_len_is_tight(bits in 1u32..=64, count in 0usize..512) {
        let len = packed_len(bits, count);
        let total_bits = count as u64 * u64::from(bits);
        prop_assert_eq!(len as u64, total_bits.div_ceil(8));
    }

    #[test]
    fn channel_accounting_matches_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        let (a, b) = duplex();
        let mut sent = 0u64;
        for p in &payloads {
            sent += p.len() as u64;
            a.send(bytes::Bytes::from(p.clone())).unwrap();
        }
        let mut recvd = 0u64;
        for _ in &payloads {
            recvd += b.recv().unwrap().len() as u64;
        }
        prop_assert_eq!(a.stats().bytes_sent, sent);
        prop_assert_eq!(b.stats().bytes_received, recvd);
        prop_assert_eq!(a.stats().messages_sent, payloads.len() as u64);
    }

    #[test]
    fn network_time_is_monotone(
        bytes_a in 0u64..1_000_000,
        extra in 1u64..1_000_000,
        msgs in 0u64..100,
    ) {
        let net = NetworkModel::paper_lan();
        prop_assert!(net.transfer_seconds(bytes_a + extra, msgs) > net.transfer_seconds(bytes_a, msgs));
        prop_assert!(net.transfer_seconds(bytes_a, msgs + 1) > net.transfer_seconds(bytes_a, msgs));
    }

    #[test]
    fn online_totals_exclude_offline_phases(
        online in 1usize..64,
        offline in 1usize..64,
    ) {
        let (a, b) = duplex();
        a.set_phase("conv0");
        a.send(bytes::Bytes::from(vec![0u8; online])).unwrap();
        a.set_phase("offline-f.conv0");
        a.send(bytes::Bytes::from(vec![0u8; offline])).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        let st = a.stats();
        prop_assert_eq!(st.online_total_bytes(), online as u64);
        prop_assert_eq!(st.total_bytes(), (online + offline) as u64);
    }
}
