//! The [`Transport`] trait — the pluggable link beneath an
//! [`crate::Endpoint`] — and the in-process [`MemTransport`].
//!
//! A `Transport` moves opaque byte messages between the two parties. The
//! contract is deliberately weak: messages may be *lost, duplicated,
//! corrupted or delayed* by fallible implementations ([`crate::TcpTransport`]
//! after a mid-stream disconnect, [`crate::FaultyTransport`] by design).
//! The [`crate::Session`] reliability layer restores exactly-once in-order
//! delivery on top of any `Transport`; the in-process [`MemTransport`] is
//! already reliable and is used directly by [`crate::duplex`].

use crate::TransportError;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bidirectional, message-oriented link to the peer party.
///
/// Implementations must be usable from several threads (`Send + Sync`);
/// the [`crate::Endpoint`] above serializes protocol traffic but clones
/// may issue concurrent calls.
pub trait Transport: Send + Sync {
    /// Sends one opaque message to the peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the link is down, or any
    /// implementation-specific failure.
    fn send(&self, bytes: Bytes) -> Result<(), TransportError>;

    /// Receives the next message, blocking at most until `deadline`
    /// (forever when `None`).
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when the deadline expires,
    /// [`TransportError::Disconnected`] when the link is down.
    fn recv(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError>;

    /// Tears the link down. The peer observes
    /// [`TransportError::Disconnected`]; a reconnectable transport can be
    /// revived afterwards via [`Transport::reconnect`].
    fn shutdown(&self);

    /// Attempts to re-establish a torn-down link (one attempt; backoff
    /// policy lives in the [`crate::Session`] layer).
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] by default: most transports cannot
    /// reconnect.
    fn reconnect(&self) -> Result<(), TransportError> {
        Err(TransportError::Disconnected)
    }

    /// Whether [`Transport::reconnect`] can ever succeed.
    fn supports_reconnect(&self) -> bool {
        false
    }

    /// Human-readable description for diagnostics (`mem`, `tcp:…`).
    fn descriptor(&self) -> String;
}

enum Msg {
    Frame(Bytes),
    Closed,
}

/// One side of an in-process transport pair: reliable, ordered, unbounded.
///
/// This is the crossbeam-backed channel that has always modeled the two
/// ZCU104 boards' link, now behind the [`Transport`] trait. It supports
/// [`Transport::shutdown`] (both sides then observe `Disconnected`) but
/// not reconnection.
pub struct MemTransport {
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    /// Loopback sender into our own queue: lets `shutdown` wake a blocked
    /// local `recv`, and `recv` re-arm the closed marker it consumed.
    self_tx: Sender<Msg>,
    closed: Arc<AtomicBool>,
}

/// Creates a connected in-process transport pair.
#[must_use]
pub fn mem_pair() -> (MemTransport, MemTransport) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    let closed = Arc::new(AtomicBool::new(false));
    let a = MemTransport {
        tx: atx.clone(),
        rx: arx,
        self_tx: btx.clone(),
        closed: Arc::clone(&closed),
    };
    let b = MemTransport { tx: btx, rx: brx, self_tx: atx, closed };
    (a, b)
}

impl Drop for MemTransport {
    /// Dropping one side closes the pair: the loopback sender keeps the
    /// peer's queue alive, so without an explicit close marker the peer
    /// would block forever instead of observing `Disconnected`.
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl MemTransport {
    fn handle_msg(&self, msg: Msg) -> Result<Bytes, TransportError> {
        match msg {
            Msg::Frame(b) => Ok(b),
            Msg::Closed => {
                // Re-arm so later receives (and clones) fail too.
                let _ = self.self_tx.send(Msg::Closed);
                Err(TransportError::Disconnected)
            }
        }
    }
}

impl Transport for MemTransport {
    fn send(&self, bytes: Bytes) -> Result<(), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        self.tx.send(Msg::Frame(bytes)).map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError> {
        match deadline {
            None => {
                let msg = self.rx.recv().map_err(|_| TransportError::Disconnected)?;
                self.handle_msg(msg)
            }
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(msg) => self.handle_msg(msg),
                Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
                Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
            },
        }
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _ = self.tx.send(Msg::Closed);
        let _ = self.self_tx.send(Msg::Closed);
    }

    fn descriptor(&self) -> String {
        "mem".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_deadline() {
        let (a, b) = mem_pair();
        a.send(Bytes::from(vec![1, 2, 3])).unwrap();
        assert_eq!(&b.recv(None).unwrap()[..], &[1, 2, 3]);
        assert_eq!(b.recv(Some(Duration::from_millis(5))), Err(TransportError::Timeout));
    }

    #[test]
    fn drop_peer_disconnects() {
        let (a, b) = mem_pair();
        drop(b);
        assert_eq!(a.send(Bytes::from(vec![0])), Err(TransportError::Disconnected));
        assert_eq!(a.recv(None), Err(TransportError::Disconnected));
    }

    #[test]
    fn shutdown_wakes_both_sides_persistently() {
        let (a, b) = mem_pair();
        let waiter = std::thread::spawn(move || b.recv(None));
        std::thread::sleep(Duration::from_millis(10));
        a.shutdown();
        assert_eq!(waiter.join().unwrap(), Err(TransportError::Disconnected));
        assert_eq!(a.recv(Some(Duration::from_millis(5))), Err(TransportError::Disconnected));
        assert_eq!(a.send(Bytes::from(vec![0])), Err(TransportError::Disconnected));
    }
}
