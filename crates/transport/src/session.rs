//! The reliability layer: exactly-once, in-order delivery over any
//! [`Transport`], surviving drops, duplicates, corruption and full
//! disconnects.
//!
//! A [`Session`] numbers outgoing application messages with consecutive
//! sequence numbers, keeps a **bounded replay buffer** of frames the peer
//! has not yet acknowledged, and resynchronizes after failures:
//!
//! * **Loss** — the receiver notices (a gap when a later frame arrives, or
//!   silence past its probe interval) and sends a `Nak` carrying its
//!   cumulative ack; the sender retransmits everything from that point.
//! * **Duplication** — frames below the cumulative ack are discarded (and
//!   re-acked, so a lost `Ack` cannot wedge the sender's replay buffer).
//! * **Corruption** — the frame CRC fails, the frame is treated as lost.
//! * **Disconnect** — both sides run capped exponential backoff with
//!   deterministic jitter, re-establish the link ([`Transport::reconnect`]),
//!   exchange `Hello` frames advertising their counters, and the sender
//!   replays every unacknowledged frame. The protocol threads never die;
//!   the inference resumes from the exact message where the link failed,
//!   which is what makes a mid-inference disconnect invisible to the
//!   engine (same logits, bit for bit).
//!
//! A session is bound to one **stream ID** (0 for point-to-point links;
//! the server-assigned ID for multiplexed sessions). Every outgoing frame
//! is stamped with it, frames carrying a different ID are counted
//! ([`SessionTelemetry::misrouted`]) and discarded, and a typed `Shed`
//! frame or a peer speaking another frame version terminates the session
//! with the matching [`TransportError`] instead of a hang.
//!
//! Every header field an eavesdropper sees (kind, stream, seq, ack,
//! length) is a function of the message *schedule* — which both parties
//! already know — and of link faults, never of secret payloads. See
//! DESIGN.md §9.

use crate::frame::{Frame, FrameKind};
use crate::transport::Transport;
use crate::TransportError;
use aq2pnn_obs::{Counter, MetricsRegistry};
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Session`].
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// How long a receive waits in silence before probing the peer with a
    /// `Nak` (which requests retransmission of anything we are missing).
    pub probe_interval: Duration,
    /// Consecutive silent probes before the session declares the link dead
    /// ([`TransportError::RetriesExhausted`]). Any received frame resets
    /// the count.
    pub max_probes: u32,
    /// First reconnect backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff cap.
    pub backoff_max: Duration,
    /// Reconnect attempts before giving up.
    pub max_reconnect_attempts: u32,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Replay buffer capacity in frames. A sender whose unacknowledged
    /// backlog reaches this bound solicits acks (`Ping`) instead of
    /// growing without limit.
    pub replay_capacity: usize,
    /// Send a standalone `Ack` after this many received data frames (acks
    /// also piggyback on every outgoing frame).
    pub ack_every: u64,
    /// Deadline for the `Hello` exchange after a reconnect.
    pub handshake_timeout: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            probe_interval: Duration::from_millis(200),
            max_probes: 300,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            max_reconnect_attempts: 10,
            jitter_seed: 0x5e55_10f1,
            replay_capacity: 1024,
            ack_every: 16,
            handshake_timeout: Duration::from_secs(2),
        }
    }
}

/// Counters describing how much repair work a session performed — the
/// soak tests assert these stay bounded under each fault schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionTelemetry {
    /// Data frames retransmitted (after `Nak`s or reconnect handshakes).
    pub retransmits: u64,
    /// Successful reconnect + resync handshakes.
    pub reconnects: u64,
    /// `Nak` probes sent.
    pub naks_sent: u64,
    /// Frames discarded with a failed checksum or malformed header.
    pub corrupt_frames: u64,
    /// Duplicate data frames discarded.
    pub duplicates: u64,
    /// Out-of-order (ahead-of-ack) data frames observed.
    pub gaps: u64,
    /// Backoff sleeps performed while reconnecting.
    pub backoff_sleeps: u64,
    /// Total milliseconds spent in backoff sleeps.
    pub backoff_ms: u64,
    /// Frames discarded because they carried another session's stream ID.
    pub misrouted: u64,
}

/// Metric handles mirroring [`SessionTelemetry`], incremented at the same
/// sites. Detached by default (handles count locally, nothing exported);
/// [`Session::attach_metrics`] rebinds them to a live registry under the
/// per-stream `session.*` names (see [`session_metric_name`]).
#[derive(Default, Clone)]
struct SessionMetrics {
    retransmits: Counter,
    reconnects: Counter,
    naks_sent: Counter,
    corrupt_frames: Counter,
    duplicates: Counter,
    gaps: Counter,
    backoff_sleeps: Counter,
    backoff_ms: Counter,
    misrouted: Counter,
}

/// Metric name for one session-recovery counter. Stream 0 keeps the
/// historical flat `session.<field>` names (schema v1/v2 dashboards stay
/// valid); multiplexed streams get `session.<id>.<field>` so one client's
/// retransmits never pollute another's counters — the per-stream
/// telemetry fix this PR's chaos soak asserts on.
#[must_use]
pub fn session_metric_name(stream: u64, field: &str) -> String {
    if stream == 0 {
        format!("session.{field}")
    } else {
        format!("session.{stream}.{field}")
    }
}

impl SessionMetrics {
    fn bound_to(reg: &MetricsRegistry, stream: u64) -> Self {
        let name = |field: &str| session_metric_name(stream, field);
        SessionMetrics {
            retransmits: reg.counter(&name("retransmits")),
            reconnects: reg.counter(&name("reconnects")),
            naks_sent: reg.counter(&name("naks_sent")),
            corrupt_frames: reg.counter(&name("corrupt_frames")),
            duplicates: reg.counter(&name("duplicates")),
            gaps: reg.counter(&name("gaps")),
            backoff_sleeps: reg.counter(&name("backoff_sleeps")),
            backoff_ms: reg.counter(&name("backoff_ms")),
            misrouted: reg.counter(&name("misrouted")),
        }
    }
}

/// Pairs each telemetry bump with its metric handle so the two views can
/// never drift apart.
macro_rules! note {
    ($($fn_name:ident => $field:ident),* $(,)?) => {
        impl SessionState {
            $(fn $fn_name(&mut self) {
                self.telemetry.$field += 1;
                self.metrics.$field.inc();
            })*
        }
    };
}

note! {
    note_retransmit => retransmits,
    note_reconnect => reconnects,
    note_nak => naks_sent,
    note_corrupt => corrupt_frames,
    note_duplicate => duplicates,
    note_gap => gaps,
    note_misrouted => misrouted,
}

impl SessionState {
    fn note_backoff(&mut self, slept: Duration) {
        let ms = u64::try_from(slept.as_millis()).unwrap_or(u64::MAX);
        self.telemetry.backoff_sleeps += 1;
        self.telemetry.backoff_ms += ms;
        self.metrics.backoff_sleeps.inc();
        self.metrics.backoff_ms.add(ms);
    }
}

struct SessionState {
    next_send_seq: u64,
    next_recv_seq: u64,
    /// Highest cumulative ack received from the peer.
    peer_acked: u64,
    /// Unacknowledged data frames, oldest first: `(seq, payload)`.
    replay: VecDeque<(u64, Bytes)>,
    /// In-order application payloads received but not yet handed to the
    /// caller (e.g. drained while waiting for acks during send).
    inbox: VecDeque<Bytes>,
    recv_since_ack: u64,
    telemetry: SessionTelemetry,
    metrics: SessionMetrics,
    /// When `Some`, every frame written to the link (data, control,
    /// retransmissions alike) is appended — the eavesdropper's true wire
    /// view, used by the leakage harness.
    wire_capture: Option<Vec<Vec<u8>>>,
}

/// Reliable, resumable message channel over an unreliable [`Transport`].
///
/// `Session` itself implements [`Transport`], so an [`crate::Endpoint`]
/// can sit on top of it unchanged; byte accounting at the endpoint level
/// keeps counting application payloads only, exactly as over the
/// in-process link.
pub struct Session {
    link: Arc<dyn Transport>,
    cfg: SessionConfig,
    /// Stream ID stamped on every outgoing frame; frames tagged otherwise
    /// are misrouted and discarded.
    stream: u64,
    st: Mutex<SessionState>,
}

impl Drop for Session {
    /// Dropping the session closes the link so a peer blocked in `recv`
    /// observes `Disconnected` instead of hanging (mirrors
    /// [`crate::MemTransport`]'s drop behavior).
    fn drop(&mut self) {
        self.link.shutdown();
    }
}

/// splitmix64: deterministic jitter / fault-schedule hashing.
#[must_use]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Session {
    /// Wraps `link` in a reliability session on stream 0 (the
    /// point-to-point default).
    #[must_use]
    pub fn new(link: Arc<dyn Transport>, cfg: SessionConfig) -> Self {
        Session::with_stream(link, cfg, 0)
    }

    /// Wraps `link` in a reliability session bound to `stream` — the ID a
    /// multi-tenant server assigned at admission. Both ends of one logical
    /// session must agree on the ID; frames stamped otherwise are counted
    /// as misrouted and dropped.
    #[must_use]
    pub fn with_stream(link: Arc<dyn Transport>, cfg: SessionConfig, stream: u64) -> Self {
        Session {
            link,
            cfg,
            stream,
            st: Mutex::new(SessionState {
                next_send_seq: 0,
                next_recv_seq: 0,
                peer_acked: 0,
                replay: VecDeque::new(),
                inbox: VecDeque::new(),
                recv_since_ack: 0,
                telemetry: SessionTelemetry::default(),
                metrics: SessionMetrics::default(),
                wire_capture: None,
            }),
        }
    }

    /// Repair-work counters so far.
    pub fn telemetry(&self) -> SessionTelemetry {
        self.lock().telemetry
    }

    /// The stream ID this session stamps on its frames.
    #[must_use]
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Binds the session's repair counters to `reg` under the per-stream
    /// `session.*` metric names (and replays counts accumulated before the
    /// attach, so the exported values always equal [`Self::telemetry`]).
    pub fn attach_metrics(&self, reg: &MetricsRegistry) {
        let mut st = self.lock();
        let m = SessionMetrics::bound_to(reg, self.stream);
        let t = st.telemetry;
        m.retransmits.add(t.retransmits);
        m.reconnects.add(t.reconnects);
        m.naks_sent.add(t.naks_sent);
        m.corrupt_frames.add(t.corrupt_frames);
        m.duplicates.add(t.duplicates);
        m.gaps.add(t.gaps);
        m.backoff_sleeps.add(t.backoff_sleeps);
        m.backoff_ms.add(t.backoff_ms);
        m.misrouted.add(t.misrouted);
        st.metrics = m;
    }

    /// Starts capturing every frame written to the link (including
    /// retransmissions and control frames). Discards any prior capture.
    pub fn start_wire_capture(&self) {
        self.lock().wire_capture = Some(Vec::new());
    }

    /// Stops capturing and returns the frames in write order.
    pub fn take_wire_capture(&self) -> Vec<Vec<u8>> {
        self.lock().wire_capture.take().unwrap_or_default()
    }

    // sync: allow(guard-escape, "single poison-recovery point; callers hold st for one protocol op")
    fn lock(&self) -> MutexGuard<'_, SessionState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes one frame to the link (stamped with this session's stream
    /// ID), recording it in the wire capture. Link failure here is NOT
    /// recovered — callers decide (data frames are safe in the replay
    /// buffer; control frames are best-effort).
    fn write_frame(&self, st: &mut SessionState, frame: Frame) -> Result<(), TransportError> {
        let encoded = frame.on_stream(self.stream).encode();
        if let Some(cap) = &mut st.wire_capture {
            cap.push(encoded.clone());
        }
        self.link.send(Bytes::from(encoded))
    }

    /// Best-effort control frame: link errors are swallowed (the
    /// subsequent data-path operation will hit the same failure and drive
    /// recovery).
    fn write_control(&self, st: &mut SessionState, kind: FrameKind) {
        let ack = st.next_recv_seq;
        let _ = self.write_frame(st, Frame::control(kind, 0, ack));
    }

    /// Handles one decoded frame. Returns a payload when `frame` is the
    /// next in-order data frame; queues/discards otherwise.
    fn process_frame(
        &self,
        st: &mut SessionState,
        frame: Frame,
    ) -> Result<Option<Bytes>, TransportError> {
        // Another session's traffic leaked onto this link: count it and
        // drop it before it can disturb our sequencing state.
        if frame.stream != self.stream {
            st.note_misrouted();
            return Ok(None);
        }
        // A typed overload refusal from the server is terminal.
        if frame.kind == FrameKind::Shed {
            return Err(TransportError::Shed);
        }
        // Every frame carries a cumulative ack: prune the replay buffer.
        if frame.ack > st.peer_acked {
            if frame.ack > st.next_send_seq {
                return Err(TransportError::SequenceGap {
                    expected: st.next_send_seq,
                    got: frame.ack,
                });
            }
            st.peer_acked = frame.ack;
            while st.replay.front().is_some_and(|(s, _)| *s < frame.ack) {
                st.replay.pop_front();
            }
        }
        match frame.kind {
            FrameKind::Data => {
                if frame.seq == st.next_recv_seq {
                    st.next_recv_seq += 1;
                    st.recv_since_ack += 1;
                    if st.recv_since_ack >= self.cfg.ack_every {
                        st.recv_since_ack = 0;
                        self.write_control(st, FrameKind::Ack);
                    }
                    return Ok(Some(Bytes::from(frame.payload)));
                }
                if frame.seq < st.next_recv_seq {
                    // Duplicate (retransmission overlap): re-ack so the
                    // sender can prune.
                    st.note_duplicate();
                    self.write_control(st, FrameKind::Ack);
                } else {
                    // Gap: something before this frame was lost.
                    st.note_gap();
                    st.note_nak();
                    self.write_control(st, FrameKind::Nak);
                }
            }
            FrameKind::Ack => {}
            FrameKind::Nak => self.retransmit_from(st, frame.ack)?,
            FrameKind::Ping => self.write_control(st, FrameKind::Ack),
            FrameKind::Hello => {
                // Peer resynced without us noticing a disconnect: answer
                // and replay what it is missing.
                let hello = Frame::control(FrameKind::Hello, st.next_send_seq, st.next_recv_seq);
                let _ = self.write_frame(st, hello);
                self.retransmit_from(st, frame.ack)?;
            }
            // Handled above; kept for match exhaustiveness.
            FrameKind::Shed => return Err(TransportError::Shed),
        }
        Ok(None)
    }

    /// Retransmits every replay-buffered frame with `seq >= from`.
    fn retransmit_from(&self, st: &mut SessionState, from: u64) -> Result<(), TransportError> {
        if let Some((front, _)) = st.replay.front() {
            if from < *front {
                // The peer wants frames we no longer hold — unrecoverable.
                return Err(TransportError::SequenceGap { expected: *front, got: from });
            }
        }
        let ack = st.next_recv_seq;
        let frames: Vec<Frame> = st
            .replay
            .iter()
            .filter(|(s, _)| *s >= from)
            .map(|(s, p)| Frame::data(*s, ack, p.to_vec()))
            .collect();
        for f in frames {
            st.note_retransmit();
            // Best-effort: a failure here resurfaces on the data path.
            if self.write_frame(st, f).is_err() {
                break;
            }
        }
        Ok(())
    }

    /// Reads one frame with `deadline`, decoding and dispatching it.
    /// `Ok(Some(payload))` delivers application data; `Ok(None)` means a
    /// control/duplicate frame was absorbed.
    fn pump(
        &self,
        st: &mut SessionState,
        deadline: Duration,
    ) -> Result<Option<Bytes>, TransportError> {
        match self.link.recv(Some(deadline)) {
            Ok(bytes) => match Frame::decode(&bytes) {
                Ok(frame) => self.process_frame(st, frame),
                // An incompatible peer cannot be Nak'd into compliance:
                // every frame it ever sends will fail the same way.
                Err(e @ TransportError::VersionMismatch { .. }) => Err(e),
                Err(_) => {
                    // Treated as loss; the Nak asks for retransmission.
                    st.note_corrupt();
                    st.note_nak();
                    self.write_control(st, FrameKind::Nak);
                    Ok(None)
                }
            },
            Err(e) => Err(e),
        }
    }

    /// Capped exponential backoff with deterministic jitter, reconnect,
    /// `Hello` handshake, and replay of unacknowledged frames.
    fn reconnect_and_resync(&self, st: &mut SessionState) -> Result<(), TransportError> {
        if !self.link.supports_reconnect() {
            return Err(TransportError::Disconnected);
        }
        for attempt in 0..self.cfg.max_reconnect_attempts {
            let base = self
                .cfg
                .backoff_base
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.cfg.backoff_max);
            let jitter_range = (base.as_millis() as u64 / 2).max(1);
            let jitter = splitmix64(self.cfg.jitter_seed ^ u64::from(attempt)) % jitter_range;
            let slept = base + Duration::from_millis(jitter);
            std::thread::sleep(slept);
            st.note_backoff(slept);
            if self.link.reconnect().is_err() {
                continue;
            }
            match self.handshake(st) {
                Ok(()) => {
                    st.note_reconnect();
                    return Ok(());
                }
                Err(e @ TransportError::SequenceGap { .. }) => return Err(e),
                Err(_) => {
                    // Stale backlog connection or lost Hello: tear the
                    // attempt down and retry from backoff.
                    self.link.shutdown();
                }
            }
        }
        Err(TransportError::RetriesExhausted(format!(
            "link did not come back after {} reconnect attempts",
            self.cfg.max_reconnect_attempts
        )))
    }

    /// One `Hello` exchange over a freshly reconnected link, followed by
    /// replay of everything the peer reports missing.
    fn handshake(&self, st: &mut SessionState) -> Result<(), TransportError> {
        let hello = Frame::control(FrameKind::Hello, st.next_send_seq, st.next_recv_seq);
        self.write_frame(st, hello)?;
        let deadline = Instant::now() + self.cfg.handshake_timeout;
        loop {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return Err(TransportError::Timeout);
            };
            let bytes = self.link.recv(Some(remaining))?;
            let frame = match Frame::decode(&bytes) {
                Ok(f) => f,
                Err(e @ TransportError::VersionMismatch { .. }) => return Err(e),
                Err(_) => {
                    st.note_corrupt();
                    continue;
                }
            };
            if frame.stream != self.stream {
                st.note_misrouted();
                continue;
            }
            if frame.kind == FrameKind::Hello {
                if frame.ack > st.next_send_seq {
                    return Err(TransportError::SequenceGap {
                        expected: st.next_send_seq,
                        got: frame.ack,
                    });
                }
                st.peer_acked = st.peer_acked.max(frame.ack);
                while st.replay.front().is_some_and(|(s, _)| *s < frame.ack) {
                    st.replay.pop_front();
                }
                self.retransmit_from(st, frame.ack)?;
                return Ok(());
            }
            // Data/control from before the disconnect (stale in-flight
            // frames): process normally — in-order data is still valid.
            if let Some(payload) = self.process_frame(st, frame)? {
                st.inbox.push_back(payload);
            }
        }
    }

    /// Blocks until the peer acknowledges enough frames for the replay
    /// buffer to accept one more.
    fn wait_for_replay_room(&self, st: &mut SessionState) -> Result<(), TransportError> {
        let mut probes = 0u32;
        while st.replay.len() >= self.cfg.replay_capacity.max(1) {
            self.write_control(st, FrameKind::Ping);
            match self.pump(st, self.cfg.probe_interval) {
                Ok(Some(payload)) => st.inbox.push_back(payload),
                Ok(None) => {}
                Err(TransportError::Timeout) => {
                    probes += 1;
                    if probes > self.cfg.max_probes {
                        return Err(TransportError::RetriesExhausted(format!(
                            "replay buffer full ({} frames) and peer stopped acking",
                            st.replay.len()
                        )));
                    }
                }
                Err(TransportError::Disconnected) => self.reconnect_and_resync(st)?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Blocks until the peer has acknowledged every data frame this
    /// session ever sent (the replay buffer is empty), probing with
    /// `Ping` and retransmitting the unacked tail as needed.
    ///
    /// Call this before dropping the session when the *peer* may still
    /// need the tail of the conversation: dropping closes the link, and a
    /// frame lost on the wire after the local side stops driving the
    /// protocol would otherwise be unrepairable — the peer would observe
    /// a disconnect instead of a recoverable loss.
    ///
    /// The first round only probes (no retransmission), so over a healthy
    /// link a flush never produces duplicate frames at the peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when `budget` expires with frames still
    /// unacknowledged; link errors pass through. Callers that only flush
    /// opportunistically (the peer may already have torn the link down)
    /// can ignore the result.
    pub fn flush(&self, budget: Duration) -> Result<(), TransportError> {
        // sync: allow(blocking-while-locked, "the flush loop owns the session until the tail is acked; see send")
        let deadline = Instant::now() + budget;
        let mut st = self.lock();
        let mut first = true;
        while !st.replay.is_empty() {
            if !first {
                // A probe round came back (or timed out) without the tail
                // being acked: assume loss and replay from the peer's
                // last cumulative ack.
                let from = st.peer_acked;
                self.retransmit_from(&mut st, from)?;
            }
            first = false;
            self.write_control(&mut st, FrameKind::Ping);
            match self.pump(&mut st, self.cfg.probe_interval) {
                Ok(Some(payload)) => st.inbox.push_back(payload),
                Ok(None) | Err(TransportError::Timeout) => {}
                Err(e) => return Err(e),
            }
            if Instant::now() >= deadline && !st.replay.is_empty() {
                return Err(TransportError::Timeout);
            }
        }
        Ok(())
    }
}

impl Transport for Session {
    fn send(&self, bytes: Bytes) -> Result<(), TransportError> {
        // sync: allow(blocking-while-locked, "session state must stay locked across the reliability protocol; one session per connection, no cross-lock contention")
        let mut st = self.lock();
        self.wait_for_replay_room(&mut st)?;
        let seq = st.next_send_seq;
        st.next_send_seq += 1;
        st.replay.push_back((seq, bytes.clone()));
        let frame = Frame::data(seq, st.next_recv_seq, bytes.to_vec());
        match self.write_frame(&mut st, frame) {
            Ok(()) => Ok(()),
            Err(TransportError::Disconnected) => {
                // The frame sits in the replay buffer; resync replays it.
                self.reconnect_and_resync(&mut st)
            }
            Err(e) => Err(e),
        }
    }

    fn recv(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError> {
        // sync: allow(blocking-while-locked, "the pump loop owns the session for the whole receive; see send")
        let mut st = self.lock();
        let overall = deadline.map(|d| Instant::now() + d);
        let mut probes = 0u32;
        loop {
            // Resync and replay-room waits may have parked payloads here.
            if let Some(payload) = st.inbox.pop_front() {
                return Ok(payload);
            }
            let mut step = self.cfg.probe_interval;
            if let Some(end) = overall {
                let now = Instant::now();
                let Some(remaining) = end.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(TransportError::Timeout);
                };
                step = step.min(remaining);
            }
            match self.pump(&mut st, step) {
                Ok(Some(payload)) => return Ok(payload),
                Ok(None) => probes = 0,
                Err(TransportError::Timeout) => {
                    if overall.is_some_and(|end| Instant::now() >= end) {
                        return Err(TransportError::Timeout);
                    }
                    probes += 1;
                    if probes > self.cfg.max_probes {
                        return Err(TransportError::RetriesExhausted(format!(
                            "no frame received after {} probes of {:?}",
                            self.cfg.max_probes, self.cfg.probe_interval
                        )));
                    }
                    // Silence can mean a dropped frame: ask for anything
                    // we are missing.
                    st.note_nak();
                    self.write_control(&mut st, FrameKind::Nak);
                }
                Err(TransportError::Disconnected) => self.reconnect_and_resync(&mut st)?,
                Err(e) => return Err(e),
            }
        }
    }

    fn shutdown(&self) {
        self.link.shutdown();
    }

    fn reconnect(&self) -> Result<(), TransportError> {
        // sync: allow(blocking-while-locked, "resync rewrites sequencing state; the lock must span backoff + handshake")
        let mut st = self.lock();
        self.reconnect_and_resync(&mut st)
    }

    fn supports_reconnect(&self) -> bool {
        self.link.supports_reconnect()
    }

    fn descriptor(&self) -> String {
        format!("session({})", self.link.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::mem_pair;

    fn session_pair(cfg: SessionConfig) -> (Session, Session) {
        let (a, b) = mem_pair();
        (Session::new(Arc::new(a), cfg), Session::new(Arc::new(b), cfg))
    }

    #[test]
    fn in_order_roundtrip() {
        let (a, b) = session_pair(SessionConfig::default());
        a.send(Bytes::from(vec![1])).unwrap();
        a.send(Bytes::from(vec![2, 2])).unwrap();
        assert_eq!(&b.recv(None).unwrap()[..], &[1]);
        assert_eq!(&b.recv(None).unwrap()[..], &[2, 2]);
        assert_eq!(a.telemetry().retransmits, 0);
    }

    #[test]
    fn flush_waits_for_the_tail_ack_without_duplicates() {
        let cfg =
            SessionConfig { probe_interval: Duration::from_millis(10), ..SessionConfig::default() };
        let (a, b) = session_pair(cfg);
        a.send(Bytes::from(vec![9])).unwrap();
        // The receiver pumps until the link closes (a peer still driving
        // the protocol), so the flush Ping gets its Ack.
        let reader = std::thread::spawn(move || {
            let first = b.recv(None).unwrap();
            while b.recv(Some(Duration::from_millis(200))).is_ok() {}
            (first, b.telemetry())
        });
        a.flush(Duration::from_secs(2)).unwrap();
        assert_eq!(a.telemetry().retransmits, 0, "healthy link must not replay");
        drop(a); // closes the link, releasing the reader
        let (first, tel) = reader.join().unwrap();
        assert_eq!(&first[..], &[9]);
        assert_eq!(tel.duplicates, 0, "flush over a healthy link sent duplicates");
    }

    #[test]
    fn flush_repairs_a_dropped_tail_frame() {
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Swallows exactly one send (by outgoing index) — the tail-loss
        /// scenario `flush` exists for.
        struct DropNth {
            inner: Arc<dyn Transport>,
            n: u64,
            sent: AtomicU64,
        }
        impl Transport for DropNth {
            fn send(&self, bytes: Bytes) -> Result<(), TransportError> {
                if self.sent.fetch_add(1, Ordering::SeqCst) == self.n {
                    return Ok(());
                }
                self.inner.send(bytes)
            }
            fn recv(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError> {
                self.inner.recv(deadline)
            }
            fn shutdown(&self) {
                self.inner.shutdown();
            }
            fn reconnect(&self) -> Result<(), TransportError> {
                self.inner.reconnect()
            }
            fn supports_reconnect(&self) -> bool {
                self.inner.supports_reconnect()
            }
            fn descriptor(&self) -> String {
                format!("drop-nth({})", self.inner.descriptor())
            }
        }

        let cfg =
            SessionConfig { probe_interval: Duration::from_millis(10), ..SessionConfig::default() };
        let (raw_a, raw_b) = mem_pair();
        // Outgoing sends: 0 = data [1], 1 = data [2] (dropped tail).
        let lossy = DropNth { inner: Arc::new(raw_a), n: 1, sent: AtomicU64::new(0) };
        let a = Session::new(Arc::new(lossy), cfg);
        let b = Session::new(Arc::new(raw_b), cfg);
        a.send(Bytes::from(vec![1])).unwrap();
        a.send(Bytes::from(vec![2])).unwrap();
        let reader = std::thread::spawn(move || {
            let one = b.recv(None).unwrap();
            let two = b.recv(None).unwrap();
            while b.recv(Some(Duration::from_millis(200))).is_ok() {}
            (one, two)
        });
        // Without the flush, dropping `a` here would strand frame [2]
        // forever; with it, the Ping solicits an Ack exposing the gap and
        // the tail is replayed.
        a.flush(Duration::from_secs(5)).unwrap();
        assert!(a.telemetry().retransmits >= 1, "the dropped tail must be replayed");
        drop(a);
        let (one, two) = reader.join().unwrap();
        assert_eq!(&one[..], &[1]);
        assert_eq!(&two[..], &[2]);
    }

    #[test]
    fn recv_deadline_surfaces_timeout() {
        let cfg =
            SessionConfig { probe_interval: Duration::from_millis(10), ..SessionConfig::default() };
        let (a, _b) = session_pair(cfg);
        assert_eq!(a.recv(Some(Duration::from_millis(30))), Err(TransportError::Timeout));
    }

    #[test]
    fn silence_exhausts_probes() {
        let cfg = SessionConfig {
            probe_interval: Duration::from_millis(5),
            max_probes: 3,
            ..SessionConfig::default()
        };
        let (a, _b) = session_pair(cfg);
        assert!(matches!(a.recv(None), Err(TransportError::RetriesExhausted(_))));
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn attached_metrics_mirror_telemetry() {
        let cfg = SessionConfig {
            probe_interval: Duration::from_millis(5),
            max_probes: 2,
            ..SessionConfig::default()
        };
        let (a, b) = session_pair(cfg);
        // One Nak accrues before the registry exists…
        let _ = a.recv(Some(Duration::from_millis(20)));
        let pre_naks = a.telemetry().naks_sent;
        let reg = MetricsRegistry::new();
        a.attach_metrics(&reg);
        // …and more afterwards; the export must equal the full telemetry.
        let _ = a.recv(Some(Duration::from_millis(20)));
        b.send(Bytes::from(vec![7])).unwrap();
        a.recv(None).unwrap();
        let t = a.telemetry();
        assert!(t.naks_sent > pre_naks || pre_naks > 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["session.naks_sent"], t.naks_sent);
        assert_eq!(snap.counters["session.retransmits"], t.retransmits);
        assert_eq!(snap.counters["session.reconnects"], t.reconnects);
        assert_eq!(snap.counters["session.backoff_sleeps"], t.backoff_sleeps);
    }

    #[test]
    fn mismatched_stream_frames_are_counted_and_dropped() {
        let cfg =
            SessionConfig { probe_interval: Duration::from_millis(10), ..SessionConfig::default() };
        let (raw_a, raw_b) = mem_pair();
        let (raw_a, raw_b) = (Arc::new(raw_a), Arc::new(raw_b));
        let a = Session::with_stream(raw_a, cfg, 7);
        // A frame from stream 9 must not advance stream 7's sequencing.
        raw_b.send(Bytes::from(Frame::data(0, 0, vec![1]).on_stream(9).encode())).unwrap();
        assert_eq!(a.recv(Some(Duration::from_millis(40))), Err(TransportError::Timeout));
        assert_eq!(a.telemetry().misrouted, 1);
        // The right stream still delivers.
        raw_b.send(Bytes::from(Frame::data(0, 0, vec![2]).on_stream(7).encode())).unwrap();
        assert_eq!(&a.recv(None).unwrap()[..], &[2]);
    }

    #[test]
    fn shed_frame_surfaces_typed_error() {
        let (raw_a, raw_b) = mem_pair();
        let a = Session::with_stream(Arc::new(raw_a), SessionConfig::default(), 3);
        raw_b
            .send(Bytes::from(Frame::control(FrameKind::Shed, 0, 0).on_stream(3).encode()))
            .unwrap();
        assert_eq!(a.recv(None), Err(TransportError::Shed));
    }

    #[test]
    fn per_stream_metrics_use_namespaced_names() {
        let cfg = SessionConfig {
            probe_interval: Duration::from_millis(5),
            max_probes: 2,
            ..SessionConfig::default()
        };
        let (raw_a, _raw_b) = mem_pair();
        let a = Session::with_stream(Arc::new(raw_a), cfg, 42);
        let reg = MetricsRegistry::new();
        a.attach_metrics(&reg);
        let _ = a.recv(Some(Duration::from_millis(20)));
        let snap = reg.snapshot();
        assert!(snap.counters.contains_key("session.42.naks_sent"));
        assert!(!snap.counters.contains_key("session.naks_sent"));
    }

    #[test]
    fn replay_prunes_on_piggybacked_acks() {
        let (a, b) = session_pair(SessionConfig::default());
        for i in 0..5u8 {
            a.send(Bytes::from(vec![i])).unwrap();
        }
        for _ in 0..5 {
            b.recv(None).unwrap();
        }
        // b replies; its frame acks everything a sent.
        b.send(Bytes::from(vec![9])).unwrap();
        a.recv(None).unwrap();
        let st = a.lock();
        assert!(st.replay.is_empty(), "replay still holds {} frames", st.replay.len());
        assert_eq!(st.peer_acked, 5);
    }
}
