//! The [`Endpoint`] accounting layer: phase-labeled byte/round counters
//! over any [`Transport`].
//!
//! An `Endpoint` counts **application payload bytes** — the quantity the
//! paper's tables report and the INST-Q compiler predicts. Session framing,
//! retransmissions and control traffic live *below* this layer (see
//! [`crate::Session`]), so `compiled bytes == measured bytes` holds over a
//! lossy TCP link exactly as it does in-process.

use crate::transport::{mem_pair, Transport};
use crate::{pack_bits, packed_len, unpack_bits, ChannelStats, TransportError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

#[derive(Default)]
struct EndpointState {
    stats: ChannelStats,
    phase: String,
    receiving: bool,
    /// When `Some`, every sent message's bytes are appended here — the
    /// transcript-uniformity leakage harness reads the raw wire view an
    /// eavesdropper (or the peer) would observe.
    capture: Option<Vec<Vec<u8>>>,
}

/// One end of a bidirectional party-to-party channel.
///
/// Endpoints are cheap to clone (`Arc` internals) so a party can hand the
/// same link to several protocol modules; counters are shared across clones.
///
/// All sends are counted against the endpoint's current *phase* label (see
/// [`Endpoint::set_phase`]), enabling the operator-wise communication
/// profiling of paper Table 5.
#[derive(Clone)]
pub struct Endpoint {
    link: Arc<dyn Transport>,
    state: Arc<Mutex<EndpointState>>,
    /// Deadline applied by [`Endpoint::recv`] when set; `None` blocks
    /// forever, matching the historical in-process behavior.
    default_deadline: Option<Duration>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Endpoint")
            .field("link", &self.link.descriptor())
            .field("phase", &state.phase)
            .field("bytes_sent", &state.stats.bytes_sent)
            .field("bytes_received", &state.stats.bytes_received)
            .finish()
    }
}

/// Restores an endpoint's previous phase label on drop.
/// Created by [`Endpoint::phase_scope`].
#[must_use = "dropping the guard immediately restores the previous phase"]
pub struct PhaseGuard {
    ep: Endpoint,
    prev: String,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.ep.set_phase(std::mem::take(&mut self.prev));
    }
}

/// Creates a connected pair of [`Endpoint`]s — the 2PC link between party
/// *i* and party *j* — over an in-process transport.
#[must_use]
pub fn duplex() -> (Endpoint, Endpoint) {
    duplex_with_timeout(None)
}

/// Like [`duplex`], but every [`Endpoint::recv`] applies `timeout` as its
/// deadline, turning a silently hung protocol thread into a typed
/// [`TransportError::Timeout`].
#[must_use]
pub fn duplex_with_timeout(timeout: Option<Duration>) -> (Endpoint, Endpoint) {
    let (a, b) = mem_pair();
    (Endpoint::over_transport(Arc::new(a), timeout), Endpoint::over_transport(Arc::new(b), timeout))
}

impl Endpoint {
    /// Wraps an arbitrary [`Transport`] (a [`crate::Session`] over TCP, a
    /// [`crate::FaultyTransport`], …) in the accounting layer. Protocol
    /// code upward is oblivious to what carries its bytes.
    #[must_use]
    pub fn over_transport(link: Arc<dyn Transport>, default_deadline: Option<Duration>) -> Self {
        Endpoint { link, state: Arc::default(), default_deadline }
    }

    /// Description of the underlying link (for diagnostics).
    #[must_use]
    pub fn link_descriptor(&self) -> String {
        self.link.descriptor()
    }

    /// Labels subsequent traffic with `phase` for per-operator accounting.
    pub fn set_phase(&self, phase: impl Into<String>) {
        self.state.lock().phase = phase.into();
    }

    /// The current phase label.
    #[must_use]
    pub fn phase(&self) -> String {
        self.state.lock().phase.clone()
    }

    /// Switches to `phase` and returns a guard that restores the previous
    /// label when dropped. Unlike a manual `set_phase` save/restore pair,
    /// scopes nest safely (LIFO) and survive early returns — the fix for
    /// misattribution when e.g. an offline weight-mask opening runs inside
    /// an online layer phase and something unwinds midway.
    pub fn phase_scope(&self, phase: impl Into<String>) -> PhaseGuard {
        let prev = {
            let mut st = self.state.lock();
            std::mem::replace(&mut st.phase, phase.into())
        };
        PhaseGuard { ep: self.clone(), prev }
    }

    /// Snapshot of the accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.state.lock().stats.clone()
    }

    /// Cheap scalar totals (no per-phase map clone) — the delta source for
    /// per-span byte attribution.
    #[must_use]
    pub fn totals(&self) -> crate::ChannelTotals {
        self.state.lock().stats.totals()
    }

    /// Resets all counters (phase label is kept).
    pub fn reset_stats(&self) {
        let mut st = self.state.lock();
        st.stats = ChannelStats::default();
        st.receiving = false;
    }

    /// Starts capturing the raw bytes of every subsequent send. Any
    /// previously captured transcript is discarded.
    ///
    /// The capture is the eavesdropper's view of this endpoint's outbound
    /// traffic; the leakage harness compares captures across secret inputs
    /// to check the transcript carries no plaintext-dependent signal.
    pub fn start_capture(&self) {
        self.state.lock().capture = Some(Vec::new());
    }

    /// Stops capturing and returns the captured messages (in send order).
    /// Returns an empty list if capture was never started.
    #[must_use]
    pub fn take_capture(&self) -> Vec<Vec<u8>> {
        self.state.lock().capture.take().unwrap_or_default()
    }

    /// Sends a raw byte message to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer dropped, or any
    /// error surfaced by the underlying link (e.g.
    /// [`TransportError::RetriesExhausted`] from a session that could not
    /// repair a fault).
    pub fn send(&self, bytes: Bytes) -> Result<(), TransportError> {
        // Deliver first, account after: a failed send reached neither the
        // wire nor the eavesdropper, so it must not move counters, flip the
        // round direction, or enter the transcript capture.
        let len = bytes.len() as u64;
        let captured = {
            let st = self.state.lock();
            st.capture.is_some().then(|| bytes.to_vec())
        };
        self.link.send(bytes)?;
        let mut st = self.state.lock();
        let was_receiving = st.receiving;
        st.receiving = false;
        let phase = st.phase.clone();
        st.stats.record_send(&phase, len, was_receiving);
        if let (Some(cap), Some(raw)) = (&mut st.capture, captured) {
            cap.push(raw);
        }
        Ok(())
    }

    /// Receives the next raw byte message from the peer, blocking at most
    /// for the endpoint's default deadline (forever when none was set).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer dropped,
    /// [`TransportError::Timeout`] when a default deadline expires.
    pub fn recv(&self) -> Result<Bytes, TransportError> {
        self.recv_deadline(self.default_deadline)
    }

    /// Receives the next raw byte message, blocking at most until
    /// `deadline` (forever when `None`).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] when the deadline expires,
    /// [`TransportError::Disconnected`] if the peer dropped.
    pub fn recv_deadline(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError> {
        let bytes = self.link.recv(deadline)?;
        let mut st = self.state.lock();
        st.receiving = true;
        let phase = st.phase.clone();
        st.stats.record_recv(&phase, bytes.len() as u64);
        Ok(bytes)
    }

    /// Sends `elems` bit-packed at `bits` per element — the FPGA wire format
    /// (`⌈n·bits/8⌉` bytes).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer dropped.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=64`.
    pub fn send_bits(&self, elems: &[u64], bits: u32) -> Result<(), TransportError> {
        self.send(Bytes::from(pack_bits(elems, bits)))
    }

    /// Receives `count` elements bit-packed at `bits` per element.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer dropped, or
    /// [`TransportError::Corrupt`] when the received message is shorter
    /// than the packed length — a framing desync, not a panic.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=64`.
    pub fn recv_bits(&self, bits: u32, count: usize) -> Result<Vec<u64>, TransportError> {
        let bytes = self.recv()?;
        let need = packed_len(bits, count);
        if bytes.len() < need {
            return Err(TransportError::Corrupt(format!(
                "bit-packed message too short: got {} bytes, expected {need} \
                 ({count} elems at {bits} bits)",
                bytes.len()
            )));
        }
        Ok(unpack_bits(&bytes, bits, count))
    }

    /// Simultaneous exchange: sends `elems` and receives the peer's `count`
    /// elements, both bit-packed at `bits`.
    ///
    /// This is the "Data Exchange" step of the paper's workflow (Step 5 /
    /// mask reveal in Beaver multiplication) where both parties transmit at
    /// once.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer dropped.
    pub fn exchange_bits(
        &self,
        elems: &[u64],
        bits: u32,
        count: usize,
    ) -> Result<Vec<u64>, TransportError> {
        self.send_bits(elems, bits)?;
        self.recv_bits(bits, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (a, b) = duplex();
        a.send(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&b.recv().unwrap()[..], b"hello");
        assert_eq!(a.stats().bytes_sent, 5);
        assert_eq!(b.stats().bytes_received, 5);
    }

    #[test]
    fn bits_roundtrip_counts_packed_bytes() {
        let (a, b) = duplex();
        a.send_bits(&[1, 2, 3, 4], 12).unwrap();
        assert_eq!(b.recv_bits(12, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(a.stats().bytes_sent, 6); // 48 bits
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = duplex();
        drop(b);
        assert_eq!(a.send(Bytes::from_static(b"x")), Err(TransportError::Disconnected));
        assert_eq!(a.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn default_deadline_times_out() {
        let (a, _b) = duplex_with_timeout(Some(Duration::from_millis(5)));
        assert_eq!(a.recv(), Err(TransportError::Timeout));
    }

    #[test]
    fn recv_deadline_overrides() {
        let (a, b) = duplex();
        assert_eq!(a.recv_deadline(Some(Duration::from_millis(5))), Err(TransportError::Timeout));
        b.send(Bytes::from_static(b"late")).unwrap();
        assert_eq!(&a.recv_deadline(Some(Duration::from_millis(100))).unwrap()[..], b"late");
    }

    #[test]
    fn short_bits_message_is_corrupt_not_panic() {
        let (a, b) = duplex();
        a.send(Bytes::from_static(b"\x01")).unwrap(); // 1 byte
        let err = b.recv_bits(16, 4).unwrap_err(); // needs 8 bytes
        assert!(matches!(err, TransportError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn rounds_count_direction_flips() {
        let (a, b) = duplex();
        // a: send, recv, send => 2 rounds initiated by a (first send from
        // idle state counts 0; a send after a receive counts 1).
        a.send(Bytes::from_static(b"1")).unwrap();
        b.recv().unwrap();
        b.send(Bytes::from_static(b"2")).unwrap();
        a.recv().unwrap();
        a.send(Bytes::from_static(b"3")).unwrap();
        b.recv().unwrap();
        assert_eq!(a.stats().rounds, 1);
        assert_eq!(b.stats().rounds, 1);
    }

    #[test]
    fn phases_attribute_traffic() {
        let (a, b) = duplex();
        a.set_phase("conv");
        a.send_bits(&[0; 8], 16).unwrap();
        a.set_phase("relu");
        a.send_bits(&[0; 4], 16).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        let st = a.stats();
        assert_eq!(st.phase("conv").bytes_sent, 16);
        assert_eq!(st.phase("relu").bytes_sent, 8);
    }

    #[test]
    fn failed_send_is_not_counted_or_captured() {
        // Regression: a send that never reached the wire used to move the
        // byte/message counters, flip the round direction, and land in the
        // leakage-harness capture.
        let (a, b) = duplex();
        a.start_capture();
        a.send(Bytes::from_static(b"ok")).unwrap();
        b.recv().unwrap();
        drop(b);
        assert_eq!(a.send(Bytes::from_static(b"lost")), Err(TransportError::Disconnected));
        let st = a.stats();
        assert_eq!(st.bytes_sent, 2, "failed send must not count bytes");
        assert_eq!(st.messages_sent, 1, "failed send must not count a message");
        assert_eq!(a.take_capture(), vec![b"ok".to_vec()], "failed send must not be captured");
    }

    #[test]
    fn phase_scopes_nest_and_restore() {
        let (a, b) = duplex();
        a.set_phase("conv0");
        {
            let _offline = a.phase_scope("offline-f");
            a.send(Bytes::from_static(b"mask")).unwrap();
            {
                let _inner = a.phase_scope("offline-f/resync");
                a.send(Bytes::from_static(b"rs")).unwrap();
            }
            // Inner scope restored the outer offline label, not "conv0".
            assert_eq!(a.phase(), "offline-f");
            a.send(Bytes::from_static(b"mask2")).unwrap();
        }
        assert_eq!(a.phase(), "conv0");
        a.send(Bytes::from_static(b"x")).unwrap();
        for _ in 0..4 {
            b.recv().unwrap();
        }
        let st = a.stats();
        assert_eq!(st.phase("offline-f").bytes_sent, 9);
        assert_eq!(st.phase("offline-f/resync").bytes_sent, 2);
        assert_eq!(st.phase("conv0").bytes_sent, 1);
    }

    #[test]
    fn per_phase_rounds_attribute_to_sending_phase() {
        let (a, b) = duplex();
        let t = std::thread::spawn(move || {
            b.recv().unwrap();
            b.send(Bytes::from_static(b"r")).unwrap();
            b.recv().unwrap();
        });
        a.set_phase("gemm");
        a.send(Bytes::from_static(b"q")).unwrap();
        a.recv().unwrap();
        a.set_phase("abrelu");
        a.send(Bytes::from_static(b"s")).unwrap(); // flip happens here
        t.join().unwrap();
        let st = a.stats();
        assert_eq!(st.rounds, 1);
        assert_eq!(st.phase("abrelu").rounds, 1, "round charged to the sending phase");
        assert_eq!(st.phase("gemm").rounds, 0);
    }

    #[test]
    fn totals_match_stats() {
        let (a, b) = duplex();
        a.send(Bytes::from_static(b"abc")).unwrap();
        b.recv().unwrap();
        b.send(Bytes::from_static(b"d")).unwrap();
        a.recv().unwrap();
        assert_eq!(a.totals(), a.stats().totals());
        assert_eq!(a.totals().total_bytes(), 4);
    }

    #[test]
    fn exchange_on_two_threads() {
        let (a, b) = duplex();
        let t = std::thread::spawn(move || b.exchange_bits(&[9, 8], 8, 2).unwrap());
        let got_a = a.exchange_bits(&[1, 2], 8, 2).unwrap();
        let got_b = t.join().unwrap();
        assert_eq!(got_a, vec![9, 8]);
        assert_eq!(got_b, vec![1, 2]);
    }

    #[test]
    fn clones_share_counters() {
        let (a, b) = duplex();
        let a2 = a.clone();
        a.send(Bytes::from_static(b"xy")).unwrap();
        a2.send(Bytes::from_static(b"z")).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        assert_eq!(a.stats().bytes_sent, 3);
        assert_eq!(a.stats().messages_sent, 2);
    }

    #[test]
    fn reset_clears() {
        let (a, b) = duplex();
        a.send(Bytes::from_static(b"abc")).unwrap();
        b.recv().unwrap();
        a.reset_stats();
        assert_eq!(a.stats(), ChannelStats::default());
    }
}
