//! The session frame format: length-prefixed, sequence-numbered,
//! checksummed, stream-tagged.
//!
//! Every message the [`crate::Session`] reliability layer puts on a link is
//! one frame:
//!
//! ```text
//! offset  size  field
//!      0     2  magic 0xA2 0x2F
//!      2     1  format version (currently 2)
//!      3     1  kind (Data/Ack/Nak/Hello/Ping/Shed)
//!      4     8  stream (LE) — session/stream ID for server-side demux
//!     12     8  seq    (LE) — Data: this frame's sequence number
//!     20     8  ack    (LE) — cumulative: next seq the sender expects
//!     28     4  payload length (LE)
//!     32     4  CRC-32 (IEEE) over header[0..32] ++ payload
//!     36     …  payload
//! ```
//!
//! The sequence number counts **Data** frames only; control frames carry
//! `seq = 0`. `ack` is cumulative on every frame, so any traffic — data,
//! probes, retransmission requests — lets the peer prune its replay
//! buffer. The CRC turns link-level corruption into a typed
//! [`TransportError::Corrupt`] instead of protocol desynchronization.
//!
//! Version 2 (this PR) inserted the `stream` field so a multi-tenant
//! server can multiplex many client sessions over one frame vocabulary:
//! a point-to-point session uses stream 0, a server-admitted session uses
//! the ID the server's Hello reply assigned. Decoding a version-1 frame
//! (or any other version) yields the typed
//! [`TransportError::VersionMismatch`] so old peers fail fast instead of
//! desynchronizing. The `Shed` kind is the server's typed overload reply:
//! "not admitted, go away" — carrying the refusal in-band means an
//! overloaded server never answers with a hang.
//!
//! Frame *payloads* are secret carriers (shares, masked openings, OT
//! ciphertexts). Header metadata — kind, stream, seq, ack, length — is
//! observable by design and must therefore never depend on secrets; see
//! DESIGN.md §9.

use crate::TransportError;

/// Frame header length in bytes.
pub const FRAME_HEADER_LEN: usize = 36;

/// Hard cap on a frame payload (64 MiB): a corrupted or hostile length
/// field must not drive an unbounded allocation.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

const MAGIC: [u8; 2] = [0xA2, 0x2F];
const VERSION: u8 = 2;

/// What a frame means to the session layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Application payload at sequence number `seq`.
    Data,
    /// Pure cumulative acknowledgement (no payload).
    Ack,
    /// Retransmission request: "resend everything from `ack`".
    Nak,
    /// Reconnect handshake: advertises both counters so the two sides can
    /// resynchronize after a disconnect. Also the admission handshake: a
    /// client's first Hello carries stream 0, the server's reply carries
    /// the assigned stream ID in `seq`.
    Hello,
    /// Ack solicitation, sent when the replay buffer is under pressure.
    Ping,
    /// Typed overload refusal: the server is over its admission bound and
    /// will not serve this connection. Receiving one is terminal for the
    /// session ([`TransportError::Shed`]).
    Shed,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Nak => 2,
            FrameKind::Hello => 3,
            FrameKind::Ping => 4,
            FrameKind::Shed => 5,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => FrameKind::Data,
            1 => FrameKind::Ack,
            2 => FrameKind::Nak,
            3 => FrameKind::Hello,
            4 => FrameKind::Ping,
            5 => FrameKind::Shed,
            _ => return None,
        })
    }
}

/// A decoded session frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Session/stream ID. 0 for point-to-point links; server-admitted
    /// sessions stamp every frame with the ID assigned at admission so the
    /// demux can route (and count misrouted frames).
    pub stream: u64,
    /// Data sequence number (0 for control frames, except `Hello` which
    /// carries the sender's `next_send_seq` — or, in an admission reply,
    /// the assigned stream ID).
    pub seq: u64,
    /// Cumulative acknowledgement: the next sequence number the frame's
    /// sender expects to receive.
    pub ack: u64,
    /// Application payload (empty for control frames).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a control frame (no payload, stream 0).
    #[must_use]
    pub fn control(kind: FrameKind, seq: u64, ack: u64) -> Self {
        Frame { kind, stream: 0, seq, ack, payload: Vec::new() }
    }

    /// Builds a data frame (stream 0).
    #[must_use]
    pub fn data(seq: u64, ack: u64, payload: Vec<u8>) -> Self {
        Frame { kind: FrameKind::Data, stream: 0, seq, ack, payload }
    }

    /// Returns the frame re-stamped onto `stream`.
    #[must_use]
    pub fn on_stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }

    /// Serializes the frame (header + checksum + payload).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.stream.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.ack.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&out[..32]);
        crc.update(&self.payload);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and validates one frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::VersionMismatch`] when the version byte is not
    /// ours (e.g. a pre-stream-ID peer); [`TransportError::Corrupt`] when
    /// the magic, kind, length or checksum is wrong. The error text names
    /// the malformed *field*; it never echoes payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Frame, TransportError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(TransportError::Corrupt(format!(
                "frame shorter than header: {} < {FRAME_HEADER_LEN} bytes",
                bytes.len()
            )));
        }
        if bytes[..2] != MAGIC {
            return Err(TransportError::Corrupt("bad magic".into()));
        }
        if bytes[2] != VERSION {
            return Err(TransportError::VersionMismatch { ours: VERSION, theirs: bytes[2] });
        }
        let Some(kind) = FrameKind::from_byte(bytes[3]) else {
            return Err(TransportError::Corrupt(format!("unknown kind {}", bytes[3])));
        };
        let stream = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let ack = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(TransportError::Corrupt(format!("payload length {len} exceeds cap")));
        }
        if bytes.len() != FRAME_HEADER_LEN + len {
            return Err(TransportError::Corrupt(format!(
                "length field {len} disagrees with frame size {}",
                bytes.len()
            )));
        }
        let stored_crc = u32::from_le_bytes(bytes[32..36].try_into().expect("4 bytes"));
        let mut crc = Crc32::new();
        crc.update(&bytes[..32]);
        crc.update(&bytes[FRAME_HEADER_LEN..]);
        if crc.finish() != stored_crc {
            return Err(TransportError::Corrupt("checksum mismatch".into()));
        }
        Ok(Frame { kind, stream, seq, ack, payload: bytes[FRAME_HEADER_LEN..].to_vec() })
    }
}

/// Incremental CRC-32 (IEEE 802.3 polynomial, reflected).
pub struct Crc32 {
    state: u32,
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

impl Crc32 {
    /// Fresh checksum state.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state =
                CRC_TABLE[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926, the standard check value.
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_data_and_control() {
        let d = Frame::data(42, 17, vec![1, 2, 3, 250]);
        assert_eq!(Frame::decode(&d.encode()).unwrap(), d);
        let c = Frame::control(FrameKind::Nak, 0, 99);
        assert_eq!(Frame::decode(&c.encode()).unwrap(), c);
        let s = Frame::control(FrameKind::Shed, 0, 0);
        assert_eq!(Frame::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn stream_id_roundtrips() {
        let d = Frame::data(5, 2, vec![7; 9]).on_stream(0xDEAD_BEEF_CAFE);
        let back = Frame::decode(&d.encode()).unwrap();
        assert_eq!(back.stream, 0xDEAD_BEEF_CAFE);
        assert_eq!(back, d);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let d = Frame::data(0, 0, Vec::new());
        assert_eq!(Frame::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let encoded = Frame::data(7, 3, (0..64).collect()).on_stream(3).encode();
        for i in 0..encoded.len() {
            for bit in 0..8 {
                let mut bad = encoded.clone();
                bad[i] ^= 1 << bit;
                assert!(Frame::decode(&bad).is_err(), "flip of byte {i} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn version_one_peer_rejected_with_typed_error() {
        // A version-1 frame (28-byte header, no stream field) must decode
        // to VersionMismatch, not be misparsed as v2 fields.
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC);
        v1.push(1); // old version byte
        v1.push(0); // Data
        v1.extend_from_slice(&7u64.to_le_bytes()); // seq
        v1.extend_from_slice(&3u64.to_le_bytes()); // ack
        v1.extend_from_slice(&4u32.to_le_bytes()); // len
        let mut crc = Crc32::new();
        crc.update(&v1);
        crc.update(&[1, 2, 3, 4]);
        v1.extend_from_slice(&crc.finish().to_le_bytes());
        v1.extend_from_slice(&[1, 2, 3, 4]);
        // Pad so the length check isn't what trips first.
        while v1.len() < FRAME_HEADER_LEN {
            v1.push(0);
        }
        assert_eq!(Frame::decode(&v1), Err(TransportError::VersionMismatch { ours: 2, theirs: 1 }));
    }

    #[test]
    fn truncation_and_padding_detected() {
        let encoded = Frame::data(1, 1, vec![9; 16]).encode();
        assert!(Frame::decode(&encoded[..encoded.len() - 1]).is_err());
        let mut padded = encoded;
        padded.push(0);
        assert!(Frame::decode(&padded).is_err());
        assert!(Frame::decode(&[]).is_err());
    }

    #[test]
    fn oversized_length_field_rejected_without_allocation() {
        let mut encoded = Frame::data(1, 1, vec![0; 8]).encode();
        encoded[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Frame::decode(&encoded), Err(TransportError::Corrupt(_))));
    }
}
