//! Bit-packing of ring elements into the wire format.
//!
//! `n` elements of an `ℓ`-bit ring occupy `⌈n·ℓ/8⌉` bytes on the wire —
//! the fine-grained bit-width reconfigurability that the paper gets from the
//! FPGA fabric and that CPU/GPU frameworks (fixed 32/64-bit lanes) cannot
//! exploit. Elements are laid down LSB-first in a little-endian bit stream.
//!
//! The hot widths (sub-byte comparison codes and the paper rings ℓ = 12/20)
//! route through the width-specialized 8-element group kernels in
//! [`aq2pnn_ring::simd`], selected per ISA level at runtime (DESIGN.md
//! §7.4). The wire format is kernel-independent: every specialized path is
//! property-tested byte-identical to the generic bit loop.

use aq2pnn_ring::simd;
use aq2pnn_ring::IsaLevel;

/// Number of bytes `count` elements of `bits`-bit width occupy on the wire.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64`.
#[must_use]
pub fn packed_len(bits: u32, count: usize) -> usize {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    (count * bits as usize).div_ceil(8)
}

/// Parallel fan-out threshold for the bit-packed general case, in 8-element
/// groups (each group is exactly `bits` bytes on the wire).
const PAR_MIN_GROUPS: usize = 2048;

/// Packs `elems`, each truncated to its low `bits` bits, into a dense
/// little-endian bit stream.
///
/// Widths that are a whole number of bytes (8/16/24/…/64 bits) take a fast
/// path: each element is a straight copy of its low `bits/8` little-endian
/// bytes, with no bit shifting. Other widths use the generic bit loop,
/// fanned out across threads in 8-element groups — 8 elements span exactly
/// `bits` bytes, so group boundaries are byte-aligned and workers never
/// share a byte.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64`.
///
/// # Example
///
/// ```
/// use aq2pnn_transport::{pack_bits, unpack_bits};
///
/// let elems = [0x3ffu64, 0x001, 0x2aa];
/// let bytes = pack_bits(&elems, 10);
/// assert_eq!(bytes.len(), 4); // ceil(30 / 8)
/// assert_eq!(unpack_bits(&bytes, 10, 3), elems);
/// ```
#[must_use]
pub fn pack_bits(elems: &[u64], bits: u32) -> Vec<u8> {
    pack_bits_with_isa(elems, bits, IsaLevel::active())
}

/// [`pack_bits`] with an explicit ISA level — the entry point benches and
/// per-ISA property tests use. The produced bytes are identical for every
/// level; only throughput differs.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64`.
#[must_use]
#[allow(clippy::cast_possible_truncation)] // low-byte truncation is the packing operation itself
pub fn pack_bits_with_isa(elems: &[u64], bits: u32, isa: IsaLevel) -> Vec<u8> {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    let mut out = vec![0u8; packed_len(bits, elems.len())];
    if bits.is_multiple_of(8) {
        // Byte-aligned fast path: the LSB-first bit stream of a whole-byte
        // width is exactly the element's low bytes in little-endian order.
        // Common widths get const-size copies (a variable-length
        // `copy_from_slice` per element would cost a `memcpy` call each).
        let width = bits as usize / 8;
        match width {
            1 => {
                for (o, &e) in out.iter_mut().zip(elems) {
                    *o = e as u8;
                }
            }
            2 => {
                for (chunk, &e) in out.chunks_exact_mut(2).zip(elems) {
                    chunk.copy_from_slice(&(e as u16).to_le_bytes());
                }
            }
            4 => {
                for (chunk, &e) in out.chunks_exact_mut(4).zip(elems) {
                    chunk.copy_from_slice(&(e as u32).to_le_bytes());
                }
            }
            8 => {
                for (chunk, &e) in out.chunks_exact_mut(8).zip(elems) {
                    chunk.copy_from_slice(&e.to_le_bytes());
                }
            }
            _ => {
                for (chunk, &e) in out.chunks_exact_mut(width).zip(elems) {
                    for (i, o) in chunk.iter_mut().enumerate() {
                        *o = (e >> (8 * i)) as u8;
                    }
                }
            }
        }
        return out;
    }
    // 8 elements of any width span exactly `bits` bytes, so group
    // boundaries are byte-aligned, workers never share a byte, and the
    // specialized kernels (sub-byte comparison codes, the ℓ = 12/20 paper
    // rings) can fill whole groups without bit-straddle logic.
    let group_fn = simd::pack_group8_fn(isa, bits);
    let group_bytes = bits as usize;
    let full_groups = elems.len() / 8;
    let serial = full_groups < PAR_MIN_GROUPS || aq2pnn_parallel::max_threads() == 1;
    if group_fn.is_none() && serial {
        // Unspecialized width, nothing to fan out: one pass of the bit loop.
        pack_into(elems, bits, &mut out);
        return out;
    }
    let fill = |src: &[u64], buf: &mut [u8]| match group_fn {
        Some(f) => f(src, buf),
        None => pack_into(src, bits, buf),
    };
    let (head, tail) = out.split_at_mut(full_groups * group_bytes);
    if serial {
        for (g, buf) in head.chunks_mut(group_bytes).enumerate() {
            fill(&elems[g * 8..g * 8 + 8], buf);
        }
    } else {
        let mut groups: Vec<&mut [u8]> = head.chunks_mut(group_bytes).collect();
        aq2pnn_parallel::par_chunks_mut(&mut groups, PAR_MIN_GROUPS, |start, chunk| {
            for (gi, buf) in chunk.iter_mut().enumerate() {
                let g = start + gi;
                fill(&elems[g * 8..g * 8 + 8], buf);
            }
        });
    }
    // Remainder (< 8 elements) starts on a byte boundary by construction.
    pack_into(&elems[full_groups * 8..], bits, tail);
    out
}

/// Packs a run of elements LSB-first starting at bit 0 of `out`.
#[inline(always)]
fn pack_into(elems: &[u64], bits: u32, out: &mut [u8]) {
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut bitpos = 0usize;
    for &e in elems {
        let mut remaining = bits as usize;
        let mut val = e & mask;
        let mut pos = bitpos;
        while remaining > 0 {
            let byte = pos / 8;
            let off = pos % 8;
            let take = (8 - off).min(remaining);
            out[byte] |= ((val & ((1u64 << take) - 1)) as u8) << off;
            val >>= take;
            remaining -= take;
            pos += take;
        }
        bitpos += bits as usize;
    }
}

/// Unpacks `count` elements of `bits`-bit width from a dense bit stream
/// produced by [`pack_bits`].
///
/// Mirrors the [`pack_bits`] structure: whole-byte widths are straight
/// little-endian byte reads, other widths decode in parallel 8-element
/// groups on byte-aligned boundaries.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64` or if `bytes` is too short to hold
/// `count` elements.
#[must_use]
pub fn unpack_bits(bytes: &[u8], bits: u32, count: usize) -> Vec<u64> {
    unpack_bits_with_isa(bytes, bits, count, IsaLevel::active())
}

/// [`unpack_bits`] with an explicit ISA level — the entry point benches and
/// per-ISA property tests use. The decoded elements are identical for every
/// level; only throughput differs.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64` or if `bytes` is too short to hold
/// `count` elements.
#[must_use]
pub fn unpack_bits_with_isa(bytes: &[u8], bits: u32, count: usize, isa: IsaLevel) -> Vec<u64> {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    assert!(
        bytes.len() >= packed_len(bits, count),
        "buffer of {} bytes too short for {count} x {bits}-bit elements",
        bytes.len()
    );
    if bits.is_multiple_of(8) {
        let width = bits as usize / 8;
        let data = &bytes[..count * width];
        return match width {
            1 => data.iter().map(|&b| u64::from(b)).collect(),
            2 => {
                data.chunks_exact(2).map(|c| u64::from(u16::from_le_bytes([c[0], c[1]]))).collect()
            }
            4 => data
                .chunks_exact(4)
                .map(|c| u64::from(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                .collect(),
            8 => data
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect(),
            _ => data
                .chunks_exact(width)
                .map(|c| c.iter().rev().fold(0u64, |acc, &b| (acc << 8) | u64::from(b)))
                .collect(),
        };
    }
    // Mirror of the grouped pack path: specialized widths decode whole
    // 8-element groups through the per-ISA kernel, the rest use the bit
    // loop per group.
    let group_fn = simd::unpack_group8_fn(isa, bits);
    let mut out = vec![0u64; count];
    let group_bytes = bits as usize;
    let full_groups = count / 8;
    let serial = full_groups < PAR_MIN_GROUPS || aq2pnn_parallel::max_threads() == 1;
    if group_fn.is_none() && serial {
        unpack_into(bytes, bits, &mut out);
        return out;
    }
    let fill = |src: &[u8], grp: &mut [u64]| match group_fn {
        Some(f) => f(src, grp),
        None => unpack_into(src, bits, grp),
    };
    let (head, tail) = out.split_at_mut(full_groups * 8);
    if serial {
        for (g, grp) in head.chunks_mut(8).enumerate() {
            fill(&bytes[g * group_bytes..(g + 1) * group_bytes], grp);
        }
    } else {
        let mut groups: Vec<&mut [u64]> = head.chunks_mut(8).collect();
        aq2pnn_parallel::par_chunks_mut(&mut groups, PAR_MIN_GROUPS, |start, chunk| {
            for (gi, grp) in chunk.iter_mut().enumerate() {
                let g = start + gi;
                fill(&bytes[g * group_bytes..(g + 1) * group_bytes], grp);
            }
        });
    }
    unpack_into(&bytes[full_groups * group_bytes..], bits, tail);
    out
}

/// Unpacks `out.len()` elements LSB-first starting at bit 0 of `bytes`.
#[inline(always)]
fn unpack_into(bytes: &[u8], bits: u32, out: &mut [u64]) {
    let mut bitpos = 0usize;
    for slot in out {
        let mut val = 0u64;
        let mut got = 0usize;
        let mut pos = bitpos;
        while got < bits as usize {
            let byte = pos / 8;
            let off = pos % 8;
            let take = (8 - off).min(bits as usize - got);
            let chunk = u64::from(bytes[byte] >> off) & ((1u64 << take) - 1);
            val |= chunk << got;
            got += take;
            pos += take;
        }
        *slot = val;
        bitpos += bits as usize;
    }
}

/// Extracts the single element at position `index` from a bit stream
/// produced by [`pack_bits`], without unpacking the rest.
///
/// This is the OT receiver's obliviousness dividend: of the `Σ n_k`
/// encrypted slots on the wire it decrypts exactly one per item, so
/// unpacking all of them is wasted work proportional to the *sender's*
/// batch size.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64` or the stream is too short to
/// contain element `index`.
#[must_use]
pub fn unpack_bits_at(bytes: &[u8], bits: u32, index: usize) -> u64 {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    assert!(
        bytes.len() >= packed_len(bits, index + 1),
        "buffer of {} bytes too short for the requested element at {bits} bits",
        bytes.len()
    );
    let mut val = 0u64;
    let mut got = 0usize;
    let mut pos = index * bits as usize;
    // secrecy: allow(secret-branch, "chosen-slot extraction is receiver-local by design: the OT receiver owns the secret index and reads only its own slot from the packed wire bytes")
    // secrecy: allow(secret-compare, "bit-offset arithmetic on the receiver-owned index, same locality argument")
    // secrecy: allow(secret-index, "the byte offset follows the receiver-owned index; no cross-party observable depends on it")
    while got < bits as usize {
        let byte = pos / 8;
        let off = pos % 8;
        let take = (8 - off).min(bits as usize - got);
        let chunk = u64::from(bytes[byte] >> off) & ((1u64 << take) - 1);
        val |= chunk << got;
        got += take;
        pos += take;
    }
    val
}

/// Reference scalar packer: the generic per-element bit loop with no fast
/// paths or parallelism. Ground truth for property tests and benches.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64`.
#[must_use]
pub fn pack_bits_reference(elems: &[u64], bits: u32) -> Vec<u8> {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    let mut out = vec![0u8; packed_len(bits, elems.len())];
    pack_into(elems, bits, &mut out);
    out
}

/// Reference scalar unpacker matching [`pack_bits_reference`].
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64` or if `bytes` is too short to hold
/// `count` elements.
#[must_use]
pub fn unpack_bits_reference(bytes: &[u8], bits: u32, count: usize) -> Vec<u64> {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    assert!(
        bytes.len() >= packed_len(bits, count),
        "buffer of {} bytes too short for {count} x {bits}-bit elements",
        bytes.len()
    );
    let mut out = vec![0u64; count];
    unpack_into(bytes, bits, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_rounding() {
        assert_eq!(packed_len(1, 8), 1);
        assert_eq!(packed_len(1, 9), 2);
        assert_eq!(packed_len(12, 2), 3);
        assert_eq!(packed_len(16, 1000), 2000);
        assert_eq!(packed_len(14, 1000), 1750);
        assert_eq!(packed_len(64, 3), 24);
        assert_eq!(packed_len(8, 0), 0);
    }

    #[test]
    fn roundtrip_byte_aligned() {
        let elems = [0u64, 1, 127, 128, 255];
        assert_eq!(unpack_bits(&pack_bits(&elems, 8), 8, 5), elems);
    }

    #[test]
    fn roundtrip_odd_widths() {
        for bits in [1u32, 3, 7, 12, 13, 14, 16, 24, 33, 63, 64] {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let elems: Vec<u64> =
                (0..17).map(|i| (0x9e3779b97f4a7c15u64.wrapping_mul(i + 1)) & mask).collect();
            let packed = pack_bits(&elems, bits);
            assert_eq!(packed.len(), packed_len(bits, elems.len()));
            assert_eq!(unpack_bits(&packed, bits, elems.len()), elems, "bits={bits}");
        }
    }

    #[test]
    fn every_isa_matches_reference_bytes_on_every_width() {
        // The wire format is kernel-independent: for every ISA level the
        // host can run (plus scalar), the packed bytes and decoded elements
        // must be identical to the generic bit-loop reference. Widths cover
        // the specialized set (1/2/4/12/20), the dispatch boundaries around
        // it (11/13/21), and unspecialized odd widths.
        for isa in IsaLevel::available() {
            for bits in [1u32, 2, 3, 4, 5, 11, 12, 13, 16, 20, 21, 31, 32, 33, 63, 64] {
                let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
                for count in [0usize, 1, 7, 8, 9, 16, 61] {
                    let elems: Vec<u64> = (0..count as u64)
                        .map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 11) & mask)
                        .collect();
                    let packed = pack_bits_with_isa(&elems, bits, isa);
                    assert_eq!(
                        packed,
                        pack_bits_reference(&elems, bits),
                        "pack isa={isa} bits={bits} count={count}"
                    );
                    assert_eq!(
                        unpack_bits_with_isa(&packed, bits, count, isa),
                        elems,
                        "unpack isa={isa} bits={bits} count={count}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_paths_match_reference() {
        // 61 elements: 7 full 8-element groups plus a 5-element remainder,
        // so both the grouped and tail code paths are exercised.
        for bits in [1u32, 2, 5, 8, 11, 14, 16, 23, 24, 31, 32, 40, 48, 56, 63, 64] {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let elems: Vec<u64> =
                (0..61).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 7) & mask).collect();
            let fast = pack_bits(&elems, bits);
            assert_eq!(fast, pack_bits_reference(&elems, bits), "pack bits={bits}");
            assert_eq!(
                unpack_bits(&fast, bits, elems.len()),
                unpack_bits_reference(&fast, bits, elems.len()),
                "unpack bits={bits}"
            );
        }
    }

    #[test]
    fn unpack_at_matches_full_unpack() {
        for bits in [1u32, 2, 3, 4, 7, 12, 13, 16, 33, 63, 64] {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let elems: Vec<u64> =
                (0..23).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 3) & mask).collect();
            let packed = pack_bits(&elems, bits);
            for (i, &e) in elems.iter().enumerate() {
                assert_eq!(unpack_bits_at(&packed, bits, i), e, "bits={bits} index={i}");
            }
        }
    }

    #[test]
    fn truncates_high_bits() {
        let bytes = pack_bits(&[0xffff], 4);
        assert_eq!(unpack_bits(&bytes, 4, 1), vec![0xf]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_short_buffer_panics() {
        let _ = unpack_bits(&[0u8], 16, 1);
    }

    #[test]
    fn fourteen_bit_saves_exactly_an_eighth_vs_sixteen() {
        // The Table 7/8 mechanism: 14-bit wire format is 14/16 of 16-bit.
        let n = 4096;
        let l16 = packed_len(16, n);
        let l14 = packed_len(14, n);
        assert_eq!(l14 * 16, l16 * 14);
    }
}
