//! Bit-packing of ring elements into the wire format.
//!
//! `n` elements of an `ℓ`-bit ring occupy `⌈n·ℓ/8⌉` bytes on the wire —
//! the fine-grained bit-width reconfigurability that the paper gets from the
//! FPGA fabric and that CPU/GPU frameworks (fixed 32/64-bit lanes) cannot
//! exploit. Elements are laid down LSB-first in a little-endian bit stream.

/// Number of bytes `count` elements of `bits`-bit width occupy on the wire.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64`.
#[must_use]
pub fn packed_len(bits: u32, count: usize) -> usize {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    (count * bits as usize).div_ceil(8)
}

/// Packs `elems`, each truncated to its low `bits` bits, into a dense
/// little-endian bit stream.
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64`.
///
/// # Example
///
/// ```
/// use aq2pnn_transport::{pack_bits, unpack_bits};
///
/// let elems = [0x3ffu64, 0x001, 0x2aa];
/// let bytes = pack_bits(&elems, 10);
/// assert_eq!(bytes.len(), 4); // ceil(30 / 8)
/// assert_eq!(unpack_bits(&bytes, 10, 3), elems);
/// ```
#[must_use]
pub fn pack_bits(elems: &[u64], bits: u32) -> Vec<u8> {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut out = vec![0u8; packed_len(bits, elems.len())];
    let mut bitpos = 0usize;
    for &e in elems {
        let e = e & mask;
        let mut remaining = bits as usize;
        let mut val = e;
        let mut pos = bitpos;
        while remaining > 0 {
            let byte = pos / 8;
            let off = pos % 8;
            let take = (8 - off).min(remaining);
            out[byte] |= ((val & ((1u64 << take) - 1)) as u8) << off;
            val >>= take;
            remaining -= take;
            pos += take;
        }
        bitpos += bits as usize;
    }
    out
}

/// Unpacks `count` elements of `bits`-bit width from a dense bit stream
/// produced by [`pack_bits`].
///
/// # Panics
///
/// Panics if `bits` is not in `1..=64` or if `bytes` is too short to hold
/// `count` elements.
#[must_use]
pub fn unpack_bits(bytes: &[u8], bits: u32, count: usize) -> Vec<u64> {
    assert!((1..=64).contains(&bits), "element width must be 1..=64 bits");
    assert!(
        bytes.len() >= packed_len(bits, count),
        "buffer of {} bytes too short for {count} x {bits}-bit elements",
        bytes.len()
    );
    let mut out = Vec::with_capacity(count);
    let mut bitpos = 0usize;
    for _ in 0..count {
        let mut val = 0u64;
        let mut got = 0usize;
        let mut pos = bitpos;
        while got < bits as usize {
            let byte = pos / 8;
            let off = pos % 8;
            let take = (8 - off).min(bits as usize - got);
            let chunk = (bytes[byte] >> off) as u64 & ((1u64 << take) - 1);
            val |= chunk << got;
            got += take;
            pos += take;
        }
        out.push(val);
        bitpos += bits as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_rounding() {
        assert_eq!(packed_len(1, 8), 1);
        assert_eq!(packed_len(1, 9), 2);
        assert_eq!(packed_len(12, 2), 3);
        assert_eq!(packed_len(16, 1000), 2000);
        assert_eq!(packed_len(14, 1000), 1750);
        assert_eq!(packed_len(64, 3), 24);
        assert_eq!(packed_len(8, 0), 0);
    }

    #[test]
    fn roundtrip_byte_aligned() {
        let elems = [0u64, 1, 127, 128, 255];
        assert_eq!(unpack_bits(&pack_bits(&elems, 8), 8, 5), elems);
    }

    #[test]
    fn roundtrip_odd_widths() {
        for bits in [1u32, 3, 7, 12, 13, 14, 16, 24, 33, 63, 64] {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let elems: Vec<u64> = (0..17).map(|i| (0x9e3779b97f4a7c15u64.wrapping_mul(i + 1)) & mask).collect();
            let packed = pack_bits(&elems, bits);
            assert_eq!(packed.len(), packed_len(bits, elems.len()));
            assert_eq!(unpack_bits(&packed, bits, elems.len()), elems, "bits={bits}");
        }
    }

    #[test]
    fn truncates_high_bits() {
        let bytes = pack_bits(&[0xffff], 4);
        assert_eq!(unpack_bits(&bytes, 4, 1), vec![0xf]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_short_buffer_panics() {
        let _ = unpack_bits(&[0u8], 16, 1);
    }

    #[test]
    fn fourteen_bit_saves_exactly_an_eighth_vs_sixteen() {
        // The Table 7/8 mechanism: 14-bit wire format is 14/16 of 16-bit.
        let n = 4096;
        let l16 = packed_len(16, n);
        let l14 = packed_len(14, n);
        assert_eq!(l14 * 16, l16 * 14);
    }
}
