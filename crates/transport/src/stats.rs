//! Per-endpoint, per-phase communication accounting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for one labelled protocol phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Bytes written to the wire during this phase.
    pub bytes_sent: u64,
    /// Bytes read from the wire during this phase.
    pub bytes_received: u64,
    /// Messages written during this phase.
    pub messages_sent: u64,
    /// Messages read during this phase.
    pub messages_received: u64,
    /// Direction flips receive→send attributed to this phase. A flip is
    /// charged to the phase active at the **send** that completes it —
    /// the send pays the round-trip latency, so its phase owns the round.
    pub rounds: u64,
}

impl PhaseStats {
    /// Total traffic (both directions) in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// Aggregate communication statistics of one [`crate::Endpoint`].
///
/// A *round* is counted each time the direction of traffic flips from
/// receiving to sending — the round-trip count that multiplies the link
/// latency in the [`crate::NetworkModel`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total messages received.
    pub messages_received: u64,
    /// Direction flips receive→send (communication rounds initiated).
    pub rounds: u64,
    /// Per-phase breakdown, keyed by the label passed to
    /// [`crate::Endpoint::set_phase`].
    pub phases: BTreeMap<String, PhaseStats>,
}

/// Scalar totals of one endpoint — a cheap `Copy` snapshot (no per-phase
/// map clone) for delta accounting on hot paths, e.g. per-span byte
/// attribution in the tracing layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTotals {
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total messages received.
    pub messages_received: u64,
    /// Direction flips receive→send.
    pub rounds: u64,
}

impl ChannelTotals {
    /// Total traffic (both directions) in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Component-wise difference `self − earlier` (saturating, so a stats
    /// reset between snapshots yields zeros instead of wrapping).
    #[must_use]
    pub fn since(&self, earlier: &ChannelTotals) -> ChannelTotals {
        ChannelTotals {
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            messages_received: self.messages_received.saturating_sub(earlier.messages_received),
            rounds: self.rounds.saturating_sub(earlier.rounds),
        }
    }
}

impl ChannelStats {
    /// Total traffic (both directions) in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// The scalar totals (drops the per-phase breakdown).
    #[must_use]
    pub fn totals(&self) -> ChannelTotals {
        ChannelTotals {
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            messages_sent: self.messages_sent,
            messages_received: self.messages_received,
            rounds: self.rounds,
        }
    }

    /// Total traffic in mebibytes — the paper's communication unit.
    #[must_use]
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Stats for one phase (zeros if the phase never ran).
    #[must_use]
    pub fn phase(&self, name: &str) -> PhaseStats {
        self.phases.get(name).copied().unwrap_or_default()
    }

    /// Total traffic excluding phases labelled with an `offline` prefix —
    /// the *online* communication the paper's tables report (the weight
    /// mask `F` is pre-deployed, paper Sec. 4.1.2).
    #[must_use]
    pub fn online_total_bytes(&self) -> u64 {
        self.phases
            .iter()
            .filter(|(k, _)| !k.starts_with("offline"))
            .map(|(_, p)| p.total_bytes())
            .sum()
    }

    /// Online traffic in mebibytes.
    #[must_use]
    pub fn online_total_mib(&self) -> f64 {
        self.online_total_bytes() as f64 / (1024.0 * 1024.0)
    }

    pub(crate) fn record_send(&mut self, phase: &str, bytes: u64, was_receiving: bool) {
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        let p = self.phases.entry(phase.to_owned()).or_default();
        if was_receiving {
            self.rounds += 1;
            p.rounds += 1;
        }
        p.bytes_sent += bytes;
        p.messages_sent += 1;
    }

    pub(crate) fn record_recv(&mut self, phase: &str, bytes: u64) {
        self.bytes_received += bytes;
        self.messages_received += 1;
        let p = self.phases.entry(phase.to_owned()).or_default();
        p.bytes_received += bytes;
        p.messages_received += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accumulation() {
        let mut s = ChannelStats::default();
        s.record_send("conv", 100, false);
        s.record_recv("conv", 50);
        s.record_send("relu", 10, true);
        assert_eq!(s.bytes_sent, 110);
        assert_eq!(s.bytes_received, 50);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.phase("conv").total_bytes(), 150);
        assert_eq!(s.phase("relu").bytes_sent, 10);
        assert_eq!(s.phase("never"), PhaseStats::default());
    }

    #[test]
    fn direction_flip_attributes_round_to_sending_phase() {
        let mut s = ChannelStats::default();
        // Receive under "conv", then send under "relu": the flip is paid by
        // the send, so the round belongs to "relu", not "conv".
        s.record_send("conv", 10, false);
        s.record_recv("conv", 10);
        s.record_send("relu", 10, true);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.phase("relu").rounds, 1);
        assert_eq!(s.phase("conv").rounds, 0);
    }

    #[test]
    fn direction_flip_in_unlabeled_phase_is_not_lost() {
        // Regression: flips inside the default ("") phase used to vanish
        // from the per-phase view entirely — only the global counter moved.
        let mut s = ChannelStats::default();
        s.record_recv("", 4);
        s.record_send("", 4, true);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.phase("").rounds, 1);
        let phase_rounds: u64 = s.phases.values().map(|p| p.rounds).sum();
        assert_eq!(phase_rounds, s.rounds, "per-phase rounds must sum to the global count");
    }

    #[test]
    fn totals_snapshot_and_delta() {
        let mut s = ChannelStats::default();
        s.record_send("a", 100, false);
        let before = s.totals();
        s.record_recv("a", 40);
        s.record_send("b", 60, true);
        let delta = s.totals().since(&before);
        assert_eq!(delta.bytes_sent, 60);
        assert_eq!(delta.bytes_received, 40);
        assert_eq!(delta.rounds, 1);
        assert_eq!(delta.total_bytes(), 100);
        // Saturation: delta against a later snapshot yields zeros.
        assert_eq!(before.since(&s.totals()), ChannelTotals::default());
    }

    #[test]
    fn mib_conversion() {
        let s = ChannelStats { bytes_sent: 1 << 20, ..Default::default() };
        assert!((s.total_mib() - 1.0).abs() < 1e-12);
    }
}
