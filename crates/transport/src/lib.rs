//! Two-party communication substrate for AQ2PNN.
//!
//! The AQ2PNN evaluation (paper Sec. 6) treats **communication volume** as a
//! first-class metric: every table reports MiB exchanged, and the central
//! claim is that adaptive bit-widths shrink it. This crate therefore makes
//! byte accounting exact and unavoidable:
//!
//! * [`duplex`] builds an in-process bidirectional channel pair
//!   (crossbeam-backed) emulating the two ZCU104 boards' Ethernet link.
//! * Every [`Endpoint`] counts bytes, messages and communication rounds per
//!   *phase* (e.g. `"2pc-conv2d"`, `"abrelu"`), so the operator-wise
//!   profiling of Table 5 falls out of the counters.
//! * Ring elements are **bit-packed** ([`pack_bits`]/[`unpack_bits`]): `n`
//!   elements of an `ℓ`-bit ring serialize to `⌈n·ℓ/8⌉` bytes, exactly the
//!   FPGA wire format. A 14-bit model really does send 14/16 of the bytes a
//!   16-bit model sends — this is what reproduces the communication columns
//!   of Tables 7/8.
//! * [`NetworkModel`] converts (bytes, messages) into wall-clock seconds for
//!   a given bandwidth/latency, defaulting to the paper's 1000 Mbps LAN.
//!
//! # Fault-tolerant transport stack
//!
//! Deployed two-party inference runs over real, fallible links. The stack
//! (bottom to top):
//!
//! * [`Transport`] — the pluggable raw link: [`MemTransport`] (in-process,
//!   reliable) or [`TcpTransport`] (loopback/LAN, can drop mid-stream).
//! * [`FaultyTransport`] — a deterministic fault-injection proxy driven by a
//!   seeded [`FaultPlan`] (drop/delay/duplicate/corrupt/disconnect-at-N).
//! * [`Session`] — the reliability layer: length-prefixed, sequence-numbered,
//!   CRC-32-checksummed [`Frame`]s, cumulative acks with a bounded replay
//!   buffer, Nak-based retransmission, and reconnect with capped
//!   exponential backoff — so an inference survives a mid-protocol
//!   disconnect and completes bit-identically.
//! * [`Endpoint`] — phase-labeled byte accounting over any of the above.
//!   It counts application payloads only, so `compiled bytes == measured
//!   bytes` holds regardless of retransmissions below.
//!
//! # Example
//!
//! ```
//! use aq2pnn_transport::{duplex, NetworkModel};
//!
//! let (a, b) = duplex();
//! a.set_phase("demo");
//! a.send_bits(&[0b1010, 0b0101], 4)?;        // two 4-bit elements: 1 byte
//! let got = b.recv_bits(4, 2)?;
//! assert_eq!(got, vec![0b1010, 0b0101]);
//! assert_eq!(a.stats().bytes_sent, 1);
//!
//! let net = NetworkModel::paper_lan();
//! let secs = net.transfer_seconds(1 << 20, 10);
//! assert!(secs > 0.0);
//! # Ok::<(), aq2pnn_transport::TransportError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod error;
mod fault;
mod frame;
mod line;
mod network;
mod packing;
mod session;
mod stats;
mod tcp;
mod transport;

pub use bytes::Bytes;
pub use channel::{duplex, duplex_with_timeout, Endpoint, PhaseGuard};
pub use error::TransportError;
pub use fault::{FaultAction, FaultPlan, FaultStats, FaultyTransport};
pub use frame::{Crc32, Frame, FrameKind, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
pub use line::{http_get, LineReader, MAX_LINE_LEN};
pub use network::{NetworkModel, SESSION_WIRE_FRAMING_BYTES};
pub use packing::{
    pack_bits, pack_bits_reference, pack_bits_with_isa, packed_len, unpack_bits, unpack_bits_at,
    unpack_bits_reference, unpack_bits_with_isa,
};
pub use session::{session_metric_name, Session, SessionConfig, SessionTelemetry};
pub use stats::{ChannelStats, ChannelTotals, PhaseStats};
pub use tcp::{TcpConfig, TcpTransport};
pub use transport::{mem_pair, MemTransport, Transport};
