//! A minimal line-protocol reader for the server's admin endpoint.
//!
//! The admin listener speaks the simplest protocol that `curl` and a
//! shell `/dev/tcp` redirect can drive: the client sends one request
//! line (`GET /metrics HTTP/1.0` or just `GET /metrics`), the server
//! replies with a plaintext body and closes. [`LineReader`] reads a
//! single bounded, deadline-limited line from a stream — no buffering
//! layer, no header parsing beyond skipping, no allocations past the
//! line itself. [`http_get`] is the matching one-shot client used by
//! `cargo xtask watch`, the chaos tests and CI.

use crate::error::TransportError;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Longest accepted request line; anything longer is [`TransportError::Corrupt`].
/// Admin paths are a handful of bytes, so this bounds a hostile (or
/// confused) client's memory use at the door.
pub const MAX_LINE_LEN: usize = 1024;

/// Reads `\n`-terminated lines off a [`TcpStream`] one byte batch at a
/// time, with a length bound and an overall deadline.
pub struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    /// Wraps `stream`. The stream's read timeout is managed per call.
    #[must_use]
    pub fn new(stream: TcpStream) -> Self {
        LineReader { stream, buf: Vec::new() }
    }

    /// Reads one line (stripping the trailing `\n` / `\r\n`). Fails with
    /// [`TransportError::Timeout`] when `deadline` expires first,
    /// [`TransportError::Corrupt`] when a line exceeds [`MAX_LINE_LEN`],
    /// and [`TransportError::Disconnected`] on EOF mid-line.
    ///
    /// # Errors
    ///
    /// See above; OS-level failures map through [`TransportError::from`].
    pub fn read_line(&mut self, deadline: Duration) -> Result<String, TransportError> {
        let start = Instant::now();
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|_| TransportError::Corrupt("admin request line not UTF-8".into()));
            }
            if self.buf.len() > MAX_LINE_LEN {
                return Err(TransportError::Corrupt("admin request line too long".into()));
            }
            let remaining = deadline
                .checked_sub(start.elapsed())
                .filter(|d| !d.is_zero())
                .ok_or(TransportError::Timeout)?;
            self.stream.set_read_timeout(Some(remaining))?;
            let mut chunk = [0u8; 256];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Writes the full `body` to the stream (used for replies).
    ///
    /// # Errors
    ///
    /// OS-level failures map through [`TransportError::from`].
    pub fn write_all(&mut self, body: &[u8]) -> Result<(), TransportError> {
        self.stream.write_all(body)?;
        self.stream.flush()?;
        Ok(())
    }

    /// The wrapped stream, for shutdown.
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

/// One-shot HTTP/1.0-style GET against an admin endpoint: connects,
/// sends the request line, reads the whole response until EOF, and
/// returns the body (everything after the header blank line; the whole
/// response when no header block is present). Fails on a non-`200`
/// status line.
///
/// # Errors
///
/// Connection/read failures map through [`TransportError::from`];
/// non-200 responses surface as [`TransportError::Io`] carrying the
/// status line.
pub fn http_get(
    addr: impl ToSocketAddrs,
    path: &str,
    deadline: Duration,
) -> Result<String, TransportError> {
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| TransportError::Io("admin address did not resolve".into()))?;
    let mut stream = TcpStream::connect_timeout(&addr, deadline)?;
    stream.set_read_timeout(Some(deadline))?;
    stream.set_nodelay(true)?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.take(1 << 22).read_to_string(&mut response)?; // 4 MiB cap
    let (head, body) = match response.split_once("\r\n\r\n") {
        Some((head, body)) => (head, body),
        None => ("", response.as_str()),
    };
    if let Some(status) = head.lines().next() {
        if !status.contains(" 200 ") {
            return Err(TransportError::Io(format!("admin replied {status}")));
        }
    }
    Ok(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn reads_bounded_lines_with_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\n").unwrap();
            // Leave the connection open: the next read must hit the
            // deadline, not block forever.
            std::thread::sleep(Duration::from_millis(300));
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = LineReader::new(stream);
        let d = Duration::from_millis(200);
        assert_eq!(r.read_line(d).unwrap(), "GET /metrics HTTP/1.0");
        assert_eq!(r.read_line(d).unwrap(), "Host: x");
        assert_eq!(r.read_line(Duration::from_millis(50)), Err(TransportError::Timeout));
        server.join().unwrap();
    }

    #[test]
    fn oversized_line_is_corrupt_not_oom() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(&vec![b'a'; MAX_LINE_LEN + 300]).unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = LineReader::new(stream);
        assert!(matches!(r.read_line(Duration::from_millis(500)), Err(TransportError::Corrupt(_))));
        server.join().unwrap();
    }

    #[test]
    fn http_get_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut r = LineReader::new(s);
            let line = r.read_line(Duration::from_millis(500)).unwrap();
            assert!(line.starts_with("GET /healthz"));
            r.write_all(b"HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
        });
        let body = http_get(addr, "/healthz", Duration::from_millis(500)).unwrap();
        assert_eq!(body, "ok");
        server.join().unwrap();
    }

    #[test]
    fn http_get_surfaces_non_200() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut r = LineReader::new(s);
            let _ = r.read_line(Duration::from_millis(500));
            r.write_all(b"HTTP/1.0 404 Not Found\r\n\r\nno").unwrap();
        });
        assert!(matches!(
            http_get(addr, "/nope", Duration::from_millis(500)),
            Err(TransportError::Io(_))
        ));
        server.join().unwrap();
    }
}
