//! The transport failure model.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the transport layer.
///
/// The in-process [`crate::duplex`] link can only ever report
/// [`Disconnected`](TransportError::Disconnected); the fallible transports
/// ([`crate::TcpTransport`], [`crate::Session`], [`crate::FaultyTransport`])
/// use the full set. Every protocol layer above propagates these as
/// `Result` — a dropped frame must never panic a party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The other endpoint disconnected (dropped, or the underlying link
    /// failed) before/while communicating.
    Disconnected,
    /// A receive deadline expired before a message arrived.
    Timeout,
    /// A frame failed validation (bad magic, length, or checksum). The
    /// string describes what was malformed — it derives from frame
    /// *metadata*, never from payload contents.
    Corrupt(String),
    /// The session saw a sequence number it cannot reconcile: the peer
    /// requested (or delivered) a position outside the replay window.
    SequenceGap {
        /// The sequence number this side expected next.
        expected: u64,
        /// The sequence number actually observed.
        got: u64,
    },
    /// Recovery gave up: reconnect attempts or receive probes hit their
    /// configured cap without the link coming back.
    RetriesExhausted(String),
    /// An OS-level I/O failure that is not a clean disconnect or timeout.
    Io(String),
    /// The peer speaks a different frame-format version (e.g. a
    /// pre-stream-ID v1 peer talking to a v2 endpoint). Terminal: the two
    /// sides cannot even agree on header layout, so no recovery applies.
    VersionMismatch {
        /// The frame version this side encodes.
        ours: u8,
        /// The version byte observed on the wire.
        theirs: u8,
    },
    /// The server refused admission: it is at its configured session bound
    /// and answered with a typed `Shed` frame instead of serving (or
    /// hanging). Terminal for this connection; the client may retry later
    /// against a fresh connection.
    Shed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer endpoint disconnected"),
            TransportError::Timeout => write!(f, "receive deadline expired"),
            TransportError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            TransportError::SequenceGap { expected, got } => {
                write!(f, "unreconcilable sequence gap: expected {expected}, got {got}")
            }
            TransportError::RetriesExhausted(what) => {
                write!(f, "retries exhausted: {what}")
            }
            TransportError::Io(what) => write!(f, "transport i/o failure: {what}"),
            TransportError::VersionMismatch { ours, theirs } => {
                write!(f, "frame version mismatch: we speak v{ours}, peer sent v{theirs}")
            }
            TransportError::Shed => write!(f, "server shed the session: admission bound reached"),
        }
    }
}

impl Error for TransportError {}

impl TransportError {
    /// True for errors the session layer can try to recover from by
    /// re-requesting or reconnecting (as opposed to giving up).
    #[must_use]
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            TransportError::Disconnected | TransportError::Timeout | TransportError::Corrupt(_)
        )
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => TransportError::Timeout,
            ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected => TransportError::Disconnected,
            _ => TransportError::Io(e.kind().to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_classification() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            TransportError::from(Error::new(ErrorKind::TimedOut, "t")),
            TransportError::Timeout
        );
        assert_eq!(
            TransportError::from(Error::new(ErrorKind::BrokenPipe, "p")),
            TransportError::Disconnected
        );
        assert!(matches!(
            TransportError::from(Error::new(ErrorKind::PermissionDenied, "d")),
            TransportError::Io(_)
        ));
    }

    #[test]
    fn recoverability() {
        assert!(TransportError::Timeout.is_recoverable());
        assert!(TransportError::Disconnected.is_recoverable());
        assert!(!TransportError::RetriesExhausted("dead".into()).is_recoverable());
        assert!(!TransportError::SequenceGap { expected: 4, got: 9 }.is_recoverable());
        assert!(!TransportError::VersionMismatch { ours: 2, theirs: 1 }.is_recoverable());
        assert!(!TransportError::Shed.is_recoverable());
    }
}
