//! Analytic network timing model.

use serde::{Deserialize, Serialize};

/// Converts measured traffic into wall-clock link time.
///
/// The paper connects the two ZCU104 boards "with Ethernet LAN at a
/// bandwidth of 1000 Mbps" (Sec. 6). Transfer time is modeled as
/// `messages · latency + (bytes + messages · overhead) · 8 / bandwidth`,
/// the standard α–β cost model.
///
/// Because the number of handshakes stays constant when the feature-map
/// size grows, throughput degrades sub-linearly with input scaling — the
/// observation of paper Sec. 6.4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way per-message latency in seconds (propagation + handshake).
    pub latency_s: f64,
    /// Framing overhead per message in bytes (Ethernet + IP + TCP headers).
    pub per_message_overhead_bytes: u64,
}

/// Per-message framing the fault-tolerant session stack itself adds on a
/// real socket: the 28-byte session frame header plus the 4-byte TCP
/// transport length prefix. Measured ground truth via
/// [`crate::TcpTransport::wire_bytes`]; see the `net_calibration` test and
/// EXPERIMENTS.md ("NetworkModel calibration").
pub const SESSION_WIRE_FRAMING_BYTES: u64 = (crate::FRAME_HEADER_LEN as u64) + 4;

impl NetworkModel {
    /// The paper's setup: 1000 Mbps LAN, ~50 µs effective per-message
    /// latency, standard ~66-byte Ethernet/IP/TCP framing.
    #[must_use]
    pub fn paper_lan() -> Self {
        NetworkModel {
            bandwidth_bps: 1_000_000_000.0,
            latency_s: 50e-6,
            per_message_overhead_bytes: 66,
        }
    }

    /// The same link, but as seen by the deployed session transport: each
    /// message additionally carries [`SESSION_WIRE_FRAMING_BYTES`] of
    /// checksummed session framing on top of the kernel's Ethernet/IP/TCP
    /// headers. Calibrated against measured [`crate::TcpTransport`] wire
    /// bytes (the `net_calibration` test keeps this constant honest).
    #[must_use]
    pub fn with_session_framing(mut self) -> Self {
        self.per_message_overhead_bytes += SESSION_WIRE_FRAMING_BYTES;
        self
    }

    /// An ideal link: infinite bandwidth, zero latency. Useful to isolate
    /// compute time in ablations.
    #[must_use]
    pub fn ideal() -> Self {
        NetworkModel { bandwidth_bps: f64::INFINITY, latency_s: 0.0, per_message_overhead_bytes: 0 }
    }

    /// Seconds to move `bytes` of payload split over `messages` messages.
    #[must_use]
    pub fn transfer_seconds(&self, bytes: u64, messages: u64) -> f64 {
        let framed = bytes + messages * self.per_message_overhead_bytes;
        messages as f64 * self.latency_s + framed as f64 * 8.0 / self.bandwidth_bps
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::paper_lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lan_bandwidth_dominates_large_transfers() {
        let net = NetworkModel::paper_lan();
        // 1 GiB over one message ≈ 8.6 s at 1 Gbps.
        let t = net.transfer_seconds(1 << 30, 1);
        assert!(t > 8.0 && t < 9.0, "{t}");
    }

    #[test]
    fn latency_dominates_many_small_messages() {
        let net = NetworkModel::paper_lan();
        let t = net.transfer_seconds(1000, 1000);
        assert!(t > 0.04, "{t}"); // ≥ 1000 × 50 µs
    }

    #[test]
    fn ideal_is_free() {
        assert_eq!(NetworkModel::ideal().transfer_seconds(1 << 30, 1 << 20), 0.0);
    }

    #[test]
    fn default_is_paper_lan() {
        assert_eq!(NetworkModel::default(), NetworkModel::paper_lan());
    }

    #[test]
    fn session_framing_raises_overhead_only() {
        let base = NetworkModel::paper_lan();
        let framed = base.with_session_framing();
        assert_eq!(
            framed.per_message_overhead_bytes,
            base.per_message_overhead_bytes + SESSION_WIRE_FRAMING_BYTES
        );
        assert_eq!(framed.bandwidth_bps, base.bandwidth_bps);
        assert!(framed.transfer_seconds(1000, 10) > base.transfer_seconds(1000, 10));
    }
}
