//! Deterministic fault injection: wrap any [`Transport`] and make it
//! misbehave on a seeded, reproducible schedule.
//!
//! [`FaultyTransport`] sits *between* a [`crate::Session`] and its link —
//! the session sees drops, delays, duplicates, corruption and disconnects
//! exactly as a real flaky network would produce them, and must repair
//! every one. Fault decisions are pure functions of `(seed, direction,
//! frame index)` via splitmix64, so a failing schedule replays identically
//! from its seed: every CI failure is reproducible locally.
//!
//! Faults act on the **sender side** of a frame: a "dropped" frame is
//! simply never forwarded, a "corrupted" one has a pseudorandomly chosen
//! bit flipped, a "disconnect" tears the underlying link down (both
//! parties observe it, like a cable pull).

use crate::session::splitmix64;
use crate::transport::Transport;
use crate::TransportError;
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// What happens to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward unchanged.
    Pass,
    /// Never forward.
    Drop,
    /// Forward twice.
    Duplicate,
    /// Flip one pseudorandomly chosen bit, then forward.
    Corrupt,
    /// Sleep, then forward.
    Delay,
    /// Tear the link down (then report `Disconnected`).
    Disconnect,
}

/// A seeded fault schedule: per-mille rates for each fault class plus
/// explicit disconnect points.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for all pseudorandom decisions.
    pub seed: u64,
    /// Out of 1000 sent frames, how many are dropped.
    pub drop_per_mille: u16,
    /// … duplicated.
    pub duplicate_per_mille: u16,
    /// … corrupted (one bit flip).
    pub corrupt_per_mille: u16,
    /// … delayed by [`FaultPlan::delay`].
    pub delay_per_mille: u16,
    /// Sleep applied to delayed frames.
    pub delay: Duration,
    /// Outgoing frame indices at which the link is torn down
    /// ("disconnect at frame N"). Recovery requires the wrapped transport
    /// to support reconnection.
    pub disconnect_at: Vec<u64>,
}

impl FaultPlan {
    /// A clean link (no faults) — useful as a matrix baseline.
    #[must_use]
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// A mixed lossy link: some of everything except disconnects.
    #[must_use]
    pub fn lossy(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 20,
            duplicate_per_mille: 20,
            corrupt_per_mille: 20,
            delay_per_mille: 10,
            delay: Duration::from_millis(2),
            disconnect_at: Vec::new(),
        }
    }

    /// The deterministic action for outgoing frame number `index`.
    #[must_use]
    pub fn action(&self, index: u64) -> FaultAction {
        if self.disconnect_at.contains(&index) {
            return FaultAction::Disconnect;
        }
        let roll = splitmix64(self.seed ^ (index.wrapping_mul(0x9E37_79B9))) % 1000;
        let mut edge = u64::from(self.drop_per_mille);
        if roll < edge {
            return FaultAction::Drop;
        }
        edge += u64::from(self.duplicate_per_mille);
        if roll < edge {
            return FaultAction::Duplicate;
        }
        edge += u64::from(self.corrupt_per_mille);
        if roll < edge {
            return FaultAction::Corrupt;
        }
        edge += u64::from(self.delay_per_mille);
        if roll < edge {
            return FaultAction::Delay;
        }
        FaultAction::Pass
    }
}

/// Count of injected faults, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames forwarded twice.
    pub duplicated: u64,
    /// Frames forwarded with a flipped bit.
    pub corrupted: u64,
    /// Frames forwarded late.
    pub delayed: u64,
    /// Link teardowns.
    pub disconnects: u64,
}

/// A [`Transport`] proxy that injects faults from a [`FaultPlan`].
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    sent: AtomicU64,
    stats: Mutex<FaultStats>,
}

impl FaultyTransport {
    /// Wraps `inner` with the fault schedule `plan`.
    #[must_use]
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            sent: AtomicU64::new(0),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn bump(&self, f: impl FnOnce(&mut FaultStats)) {
        f(&mut self.stats.lock().unwrap_or_else(PoisonError::into_inner));
    }
}

impl Transport for FaultyTransport {
    fn send(&self, bytes: Bytes) -> Result<(), TransportError> {
        let index = self.sent.fetch_add(1, Ordering::SeqCst);
        match self.plan.action(index) {
            FaultAction::Pass => self.inner.send(bytes),
            FaultAction::Drop => {
                self.bump(|s| s.dropped += 1);
                Ok(())
            }
            FaultAction::Duplicate => {
                self.bump(|s| s.duplicated += 1);
                self.inner.send(bytes.clone())?;
                self.inner.send(bytes)
            }
            FaultAction::Corrupt => {
                self.bump(|s| s.corrupted += 1);
                let mut mutated = bytes.to_vec();
                if !mutated.is_empty() {
                    let bit = splitmix64(self.plan.seed ^ !index) as usize % (mutated.len() * 8);
                    mutated[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.send(Bytes::from(mutated))
            }
            FaultAction::Delay => {
                self.bump(|s| s.delayed += 1);
                std::thread::sleep(self.plan.delay);
                self.inner.send(bytes)
            }
            FaultAction::Disconnect => {
                self.bump(|s| s.disconnects += 1);
                self.inner.shutdown();
                Err(TransportError::Disconnected)
            }
        }
    }

    fn recv(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError> {
        self.inner.recv(deadline)
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn reconnect(&self) -> Result<(), TransportError> {
        self.inner.reconnect()
    }

    fn supports_reconnect(&self) -> bool {
        self.inner.supports_reconnect()
    }

    fn descriptor(&self) -> String {
        format!("faulty(seed={}, {})", self.plan.seed, self.inner.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::mem_pair;

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::lossy(7);
        let first: Vec<FaultAction> = (0..256).map(|i| plan.action(i)).collect();
        let second: Vec<FaultAction> = (0..256).map(|i| plan.action(i)).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|a| *a != FaultAction::Pass), "lossy plan never fired");
        assert!(first.iter().filter(|a| **a == FaultAction::Pass).count() > 200);
    }

    #[test]
    fn disconnect_at_fires_exactly_there() {
        let plan = FaultPlan { disconnect_at: vec![3], ..FaultPlan::clean() };
        assert_eq!(plan.action(2), FaultAction::Pass);
        assert_eq!(plan.action(3), FaultAction::Disconnect);
    }

    #[test]
    fn drop_swallows_frame() {
        let (a, b) = mem_pair();
        // drop everything
        let plan = FaultPlan { drop_per_mille: 1000, ..FaultPlan::clean() };
        let faulty = FaultyTransport::new(Arc::new(a), plan);
        faulty.send(Bytes::from(vec![1, 2, 3])).unwrap();
        assert_eq!(b.recv(Some(Duration::from_millis(10))), Err(TransportError::Timeout));
        assert_eq!(faulty.stats().dropped, 1);
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let (a, b) = mem_pair();
        let plan = FaultPlan { corrupt_per_mille: 1000, ..FaultPlan::clean() };
        let faulty = FaultyTransport::new(Arc::new(a), plan);
        let original = vec![0u8; 32];
        faulty.send(Bytes::from(original.clone())).unwrap();
        let got = b.recv(None).unwrap();
        let flipped: u32 = got.iter().zip(&original).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn disconnect_kills_both_sides() {
        let (a, b) = mem_pair();
        let plan = FaultPlan { disconnect_at: vec![0], ..FaultPlan::clean() };
        let faulty = FaultyTransport::new(Arc::new(a), plan);
        assert_eq!(faulty.send(Bytes::from(vec![0])), Err(TransportError::Disconnected));
        assert_eq!(b.recv(Some(Duration::from_millis(10))), Err(TransportError::Disconnected));
        assert_eq!(faulty.stats().disconnects, 1);
    }
}
