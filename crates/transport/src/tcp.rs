//! Real TCP transport (std, loopback-tested) with connect/read/write
//! deadlines and explicit reconnect.
//!
//! Wire format: each message is `[len: u32 LE][bytes]`. The transport is
//! deliberately dumb — no sequencing, no integrity, no retransmission.
//! Reliability across disconnects is the [`crate::Session`] layer's job;
//! this type only (a) moves delimited messages over a socket, (b) turns
//! socket failures into typed [`TransportError`]s, and (c) can tear down
//! and re-establish the connection on request.
//!
//! One side is the **listener** (binds, accepts, re-accepts after a drop),
//! the other the **connector** (dials, re-dials). After a connection
//! breaks, both sides return [`TransportError::Disconnected`] until
//! [`Transport::reconnect`] succeeds — an intervening silent re-dial would
//! lose frames without the session handshake noticing.

use crate::transport::Transport;
use crate::TransportError;
use bytes::Bytes;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Hard cap on one wire message (length prefix value).
const MAX_WIRE_MSG: usize = 128 << 20;
/// Poll granularity while waiting in `accept`.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Socket-level timeouts and options for a [`TcpTransport`].
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Deadline for one dial attempt (connector side).
    pub connect_timeout: Duration,
    /// Deadline for one accept attempt (listener side).
    pub accept_timeout: Duration,
    /// Socket write timeout; a stalled peer fails the link instead of
    /// blocking forever.
    pub write_timeout: Option<Duration>,
    /// Disable Nagle's algorithm (the protocol is latency-bound on many
    /// small round trips).
    pub nodelay: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            accept_timeout: Duration::from_secs(2),
            write_timeout: Some(Duration::from_secs(10)),
            nodelay: true,
        }
    }
}

enum Role {
    Listener(TcpListener),
    Connector(SocketAddr),
    /// A socket handed over by an external accept loop (the multi-tenant
    /// server's acceptor). There is nothing to re-establish: once the
    /// connection breaks, it stays broken and the session above surfaces a
    /// typed error instead of reconnecting.
    Accepted,
}

/// An established connection plus the resumable read state for the frame
/// in progress — a receive that hits its deadline mid-frame keeps the
/// partial bytes and continues on the next call instead of desyncing the
/// stream.
struct Conn {
    stream: TcpStream,
    hdr: [u8; 4],
    hdr_got: usize,
    body: Vec<u8>,
    body_got: usize,
    have_len: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn { stream, hdr: [0; 4], hdr_got: 0, body: Vec::new(), body_got: 0, have_len: false }
    }
}

struct TcpState {
    conn: Option<Conn>,
    /// Set once a connection existed and then failed: send/recv refuse
    /// with `Disconnected` until an explicit `reconnect`.
    broken: bool,
}

/// A [`Transport`] over one `std::net::TcpStream`.
pub struct TcpTransport {
    role: Role,
    cfg: TcpConfig,
    state: Mutex<TcpState>,
    /// A `try_clone` of the current connection's socket, refreshed on
    /// every (re)establish. [`Transport::shutdown`] closes it *without*
    /// taking `state`: `recv`/`send` hold the state lock for the whole
    /// blocking socket operation, so a shutdown that queued on that lock
    /// would stall for the reader's full deadline instead of waking it.
    /// Lock order: `state` before `shadow` (shadow is a leaf).
    shadow: Mutex<Option<TcpStream>>,
    wire_sent: AtomicU64,
    wire_received: AtomicU64,
}

impl TcpTransport {
    /// Binds `addr` and waits for the peer to dial (the accept itself
    /// happens lazily on first use or [`Transport::reconnect`], so binding
    /// never blocks).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the address cannot be bound.
    pub fn listen(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr).map_err(TransportError::from)?;
        Ok(TcpTransport {
            role: Role::Listener(listener),
            cfg: TcpConfig::default(),
            state: Mutex::new(TcpState { conn: None, broken: false }),
            shadow: Mutex::new(None),
            wire_sent: AtomicU64::new(0),
            wire_received: AtomicU64::new(0),
        })
    }

    /// Dials `addr` (eagerly, with `cfg.connect_timeout`).
    ///
    /// # Errors
    ///
    /// [`TransportError`] if resolution or the dial fails.
    pub fn connect(addr: impl ToSocketAddrs, cfg: TcpConfig) -> Result<Self, TransportError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(TransportError::from)?
            .next()
            .ok_or_else(|| TransportError::Io("address resolved to nothing".into()))?;
        let t = TcpTransport {
            role: Role::Connector(addr),
            cfg,
            state: Mutex::new(TcpState { conn: None, broken: false }),
            shadow: Mutex::new(None),
            wire_sent: AtomicU64::new(0),
            wire_received: AtomicU64::new(0),
        };
        // Dial before taking the state lock — the mutex must never be
        // held across connection establishment (it blocks on the network).
        let conn = t.establish()?;
        t.stash_shadow(&conn.stream);
        t.lock().conn = Some(conn);
        Ok(t)
    }

    /// Wraps a socket that an external accept loop already established —
    /// the per-client transport inside a multi-tenant server. The
    /// transport cannot reconnect ([`Transport::supports_reconnect`] is
    /// false): the client owns re-dialing, and a fresh dial lands on a
    /// fresh accepted transport.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the socket options cannot be applied.
    pub fn from_accepted(stream: TcpStream, cfg: TcpConfig) -> Result<Self, TransportError> {
        stream.set_nodelay(cfg.nodelay).map_err(TransportError::from)?;
        stream.set_write_timeout(cfg.write_timeout).map_err(TransportError::from)?;
        let shadow = stream.try_clone().ok();
        Ok(TcpTransport {
            role: Role::Accepted,
            cfg,
            state: Mutex::new(TcpState { conn: Some(Conn::new(stream)), broken: false }),
            shadow: Mutex::new(shadow),
            wire_sent: AtomicU64::new(0),
            wire_received: AtomicU64::new(0),
        })
    }

    /// Listener variant of [`TcpTransport::connect`]-style construction
    /// with a custom config.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the address cannot be bound.
    pub fn listen_with(addr: impl ToSocketAddrs, cfg: TcpConfig) -> Result<Self, TransportError> {
        let mut t = Self::listen(addr)?;
        t.cfg = cfg;
        Ok(t)
    }

    /// The bound address (listener side; useful with port 0).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on a connector-side call or socket failure.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        match &self.role {
            Role::Listener(l) => l.local_addr().map_err(TransportError::from),
            Role::Connector(_) => Err(TransportError::Io("connector has no listen addr".into())),
            Role::Accepted => Err(TransportError::Io("accepted socket has no listen addr".into())),
        }
    }

    /// Raw bytes moved over the socket (sent, received) including the
    /// 4-byte length prefixes — the measured ground truth the
    /// [`crate::NetworkModel`] calibration compares against.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.wire_sent.load(Ordering::Relaxed), self.wire_received.load(Ordering::Relaxed))
    }

    /// Publishes the wire-byte counters as `tcp.wire_tx_bytes` /
    /// `tcp.wire_rx_bytes` gauges. Comparing these against the endpoint's
    /// payload totals exposes the framing + retransmission overhead of the
    /// whole session stack.
    pub fn publish_wire_gauges(&self, reg: &aq2pnn_obs::MetricsRegistry) {
        let (tx, rx) = self.wire_bytes();
        #[allow(clippy::cast_precision_loss)]
        {
            reg.gauge_set("tcp.wire_tx_bytes", tx as f64);
            reg.gauge_set("tcp.wire_rx_bytes", rx as f64);
        }
    }

    // sync: allow(guard-escape, "single poison-recovery point; callers hold st for one framed message")
    fn lock(&self) -> std::sync::MutexGuard<'_, TcpState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Refreshes the out-of-band shutdown handle for the current socket.
    /// A failed `try_clone` leaves it `None` (shutdown then degrades to
    /// waiting on the state lock — correct, just not prompt).
    fn stash_shadow(&self, stream: &TcpStream) {
        let clone = stream.try_clone().ok();
        *self.shadow.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = clone;
    }

    /// One connection-establishment attempt for this role.
    fn establish(&self) -> Result<Conn, TransportError> {
        let stream = match &self.role {
            // The external accept loop owns establishment; this transport
            // only ever holds the one socket it was born with.
            Role::Accepted => return Err(TransportError::Disconnected),
            Role::Connector(addr) => TcpStream::connect_timeout(addr, self.cfg.connect_timeout)
                .map_err(TransportError::from)?,
            Role::Listener(listener) => {
                listener.set_nonblocking(true).map_err(TransportError::from)?;
                let deadline = Instant::now() + self.cfg.accept_timeout;
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).map_err(TransportError::from)?;
                            break stream;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if Instant::now() >= deadline {
                                return Err(TransportError::Timeout);
                            }
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(e) => return Err(TransportError::from(e)),
                    }
                }
            }
        };
        stream.set_nodelay(self.cfg.nodelay).map_err(TransportError::from)?;
        stream.set_write_timeout(self.cfg.write_timeout).map_err(TransportError::from)?;
        Ok(Conn::new(stream))
    }

    /// Connection for the current operation: present, or (only before the
    /// first failure) established on demand.
    fn ensure_conn(&self, st: &mut TcpState) -> Result<(), TransportError> {
        if st.conn.is_none() {
            if st.broken {
                return Err(TransportError::Disconnected);
            }
            let conn = self.establish()?;
            self.stash_shadow(&conn.stream);
            st.conn = Some(conn);
        }
        Ok(())
    }

    fn fail_conn(st: &mut TcpState) {
        if let Some(c) = st.conn.take() {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        st.broken = true;
    }

    /// Reads as much as possible of `buf[*got..]`, honoring `deadline`.
    fn read_some(
        stream: &mut TcpStream,
        buf: &mut [u8],
        got: &mut usize,
        deadline: Option<Instant>,
    ) -> Result<(), TransportError> {
        while *got < buf.len() {
            let timeout = match deadline {
                None => None,
                Some(d) => {
                    let now = Instant::now();
                    let Some(rem) = d.checked_duration_since(now).filter(|r| !r.is_zero()) else {
                        return Err(TransportError::Timeout);
                    };
                    Some(rem)
                }
            };
            stream.set_read_timeout(timeout).map_err(TransportError::from)?;
            match stream.read(&mut buf[*got..]) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => *got += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Timeout)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::from(e)),
            }
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&self, bytes: Bytes) -> Result<(), TransportError> {
        // sync: allow(blocking-while-locked, "the socket lives inside the state; framing requires exclusive stream access")
        let mut st = self.lock();
        self.ensure_conn(&mut st)?;
        let len = bytes.len();
        if len > MAX_WIRE_MSG {
            return Err(TransportError::Io(format!("message of {len} bytes exceeds wire cap")));
        }
        let res = {
            let conn = st.conn.as_mut().expect("ensured above");
            conn.stream
                .write_all(&(len as u32).to_le_bytes())
                .and_then(|()| conn.stream.write_all(&bytes))
                .and_then(|()| conn.stream.flush())
        };
        match res {
            Ok(()) => {
                self.wire_sent.fetch_add(4 + len as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                // A partial write desyncs the stream delimiting; the
                // connection is unusable regardless of the error kind.
                Self::fail_conn(&mut st);
                let mapped = TransportError::from(e);
                Err(if mapped == TransportError::Timeout {
                    TransportError::Disconnected
                } else {
                    mapped
                })
            }
        }
    }

    fn recv(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError> {
        // sync: allow(blocking-while-locked, "reads must own the stream to keep length-prefixed frames intact")
        let mut st = self.lock();
        self.ensure_conn(&mut st)?;
        let abs_deadline = deadline.map(|d| Instant::now() + d);
        loop {
            let conn = st.conn.as_mut().ok_or(TransportError::Disconnected)?;
            if conn.have_len {
                let mut body = std::mem::take(&mut conn.body);
                let mut got = conn.body_got;
                let res = Self::read_some(&mut conn.stream, &mut body, &mut got, abs_deadline);
                conn.body_got = got;
                match res {
                    Ok(()) => {
                        conn.have_len = false;
                        conn.hdr_got = 0;
                        conn.body_got = 0;
                        self.wire_received.fetch_add(4 + body.len() as u64, Ordering::Relaxed);
                        return Ok(Bytes::from(body));
                    }
                    Err(TransportError::Timeout) => {
                        conn.body = body;
                        return Err(TransportError::Timeout);
                    }
                    Err(e) => {
                        Self::fail_conn(&mut st);
                        return Err(e);
                    }
                }
            } else {
                let mut got = conn.hdr_got;
                let res = Self::read_some(&mut conn.stream, &mut conn.hdr, &mut got, abs_deadline);
                conn.hdr_got = got;
                match res {
                    Ok(()) => {
                        let len = u32::from_le_bytes(conn.hdr) as usize;
                        if len > MAX_WIRE_MSG {
                            // The stream delimiting itself is gone.
                            Self::fail_conn(&mut st);
                            return Err(TransportError::Corrupt(format!(
                                "wire length {len} exceeds cap"
                            )));
                        }
                        conn.have_len = true;
                        conn.body = vec![0; len];
                        conn.body_got = 0;
                    }
                    Err(TransportError::Timeout) => return Err(TransportError::Timeout),
                    Err(e) => {
                        Self::fail_conn(&mut st);
                        return Err(e);
                    }
                }
            }
        }
    }

    fn shutdown(&self) {
        // Close the socket through the shadow handle FIRST, without the
        // state lock: a peer blocked inside `recv` (which holds that lock
        // for its whole deadline) is woken immediately instead of the
        // shutdown queueing behind it — the server's reaper and drain
        // force-close rely on this being prompt.
        let shadow = {
            // Scoped so the leaf `shadow` guard is released before the
            // `state` lock below — the only acquisition order is state →
            // shadow (see `stash_shadow`), never the reverse.
            self.shadow.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
        };
        if let Some(s) = shadow {
            let _ = s.shutdown(Shutdown::Both);
        }
        Self::fail_conn(&mut self.lock());
    }

    fn reconnect(&self) -> Result<(), TransportError> {
        // Establish outside the state borrow so a slow accept doesn't hold
        // partial state; swap in atomically afterwards.
        let conn = self.establish()?;
        let mut st = self.lock();
        if let Some(old) = st.conn.take() {
            let _ = old.stream.shutdown(Shutdown::Both);
        }
        self.stash_shadow(&conn.stream);
        st.conn = Some(conn);
        st.broken = false;
        Ok(())
    }

    fn supports_reconnect(&self) -> bool {
        !matches!(self.role, Role::Accepted)
    }

    fn descriptor(&self) -> String {
        match &self.role {
            Role::Listener(l) => {
                format!(
                    "tcp-listen:{}",
                    l.local_addr().map_or_else(|_| "?".into(), |a| a.to_string())
                )
            }
            Role::Connector(a) => format!("tcp-connect:{a}"),
            Role::Accepted => "tcp-accepted".into(),
        }
    }
}
