//! Minimal SIGINT/SIGTERM latch for the serving binary.
//!
//! The workspace bans external dependencies, so this binds `signal(2)`
//! directly instead of pulling in `libc`/`signal-hook`. The handler does
//! the only async-signal-safe thing possible — it stores to a static
//! atomic — and the serve loop polls [`shutdown_requested`] to start a
//! graceful drain.
//!
//! This module is the crate's **single documented `unsafe` exception**
//! (the crate root is `deny(unsafe_code)`): registering a signal handler
//! is inherently an FFI call. The unsafety is confined to
//! [`install_handlers`]; everything observable from safe code is an
//! atomic bool.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// POSIX `SIGTERM` (polite kill).
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a single relaxed store, nothing else.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

extern "C" {
    /// `sighandler_t signal(int signum, sighandler_t handler)` — the one
    /// libc symbol this crate touches.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Registers the latch for SIGINT and SIGTERM. Idempotent; later
/// registrations win harmlessly (same handler).
pub fn install_handlers() {
    // SAFETY: `on_signal` is an `extern "C" fn(i32)` whose body is a
    // single atomic store (async-signal-safe per POSIX); `signal(2)` with
    // a valid function pointer cannot fault. The return value (previous
    // handler) is deliberately ignored.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// Whether a SIGINT/SIGTERM arrived since [`install_handlers`].
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Clears the latch (tests; a second signal re-latches it).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}
