//! The service's application protocol: admission frames and the request
//! header. Everything here is **public structure** (model names, ring
//! widths, batch geometry) — no image or weight data crosses in the
//! clear.
//!
//! # Admission (raw transport, before any session exists)
//!
//! ```text
//! user  → provider   Hello  (stream 0, seq 0)          "may I come in?"
//! provider → user    Hello  (stream 0, seq = <id>)     admitted on stream <id>
//!                  | Shed   (stream 0)                  overload / draining
//! ```
//!
//! Both frames use the v2 wire format, so a v1 peer is rejected with
//! [`TransportError::VersionMismatch`] before any state is allocated.
//! After admission both sides construct `Session::with_stream(<id>)` and
//! all further traffic is reliable and stream-stamped.
//!
//! # Request header (first message on the established session)
//!
//! ```text
//! user  → provider   [model_len u16][model utf8][q1_bits u32][batch u32][count u32]
//! provider → user    [0u8]                       accepted
//!                  | [1u8][msg_len u16][msg]     rejected (typed reason)
//! ```

use aq2pnn_transport::TransportError;

/// Largest batch a server accepts per online pass.
pub const MAX_BATCH: u32 = 256;
/// Largest total image count a server accepts per session.
pub const MAX_IMAGES: u32 = 100_000;

/// A parsed session request: which model to serve and the batch geometry
/// both parties will run in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceRequest {
    /// Registry name of the model to serve.
    pub model: String,
    /// Activation ring width ℓ1 (the ℓ-profile half of the template cache
    /// key).
    pub q1_bits: u32,
    /// Images per batched online pass.
    pub batch: u32,
    /// Total images in the session; the final pass covers the remainder.
    pub count: u32,
}

impl InferenceRequest {
    /// Serializes the request header.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let name = self.model.as_bytes();
        let mut out = Vec::with_capacity(2 + name.len() + 12);
        out.extend_from_slice(&u16::try_from(name.len().min(0xFFFF)).unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&name[..name.len().min(0xFFFF)]);
        out.extend_from_slice(&self.q1_bits.to_le_bytes());
        out.extend_from_slice(&self.batch.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out
    }

    /// Parses a request header.
    ///
    /// # Errors
    ///
    /// [`TransportError::Corrupt`] on any malformed header (truncated,
    /// non-UTF-8 name, trailing bytes) — the server counts this against
    /// the sender and tears the session down.
    pub fn decode(bytes: &[u8]) -> Result<InferenceRequest, TransportError> {
        let fail = |what: &str| TransportError::Corrupt(format!("request header: {what}"));
        if bytes.len() < 2 {
            return Err(fail("truncated length"));
        }
        let name_len = usize::from(u16::from_le_bytes([bytes[0], bytes[1]]));
        let rest = &bytes[2..];
        if rest.len() != name_len + 12 {
            return Err(fail("length mismatch"));
        }
        let model = std::str::from_utf8(&rest[..name_len])
            .map_err(|_| fail("model name not UTF-8"))?
            .to_owned();
        let word = |off: usize| {
            u32::from_le_bytes([
                rest[name_len + off],
                rest[name_len + off + 1],
                rest[name_len + off + 2],
                rest[name_len + off + 3],
            ])
        };
        Ok(InferenceRequest { model, q1_bits: word(0), batch: word(4), count: word(8) })
    }

    /// Validates the geometry bounds that hold for *any* model; the server
    /// additionally checks the model name against its registry.
    ///
    /// # Errors
    ///
    /// A human-readable reason, sent back verbatim in the rejection reply.
    pub fn validate(&self) -> Result<(), String> {
        if !(6..=48).contains(&self.q1_bits) {
            return Err(format!("q1_bits {} outside 6..=48", self.q1_bits));
        }
        if self.batch == 0 || self.batch > MAX_BATCH {
            return Err(format!("batch {} outside 1..={MAX_BATCH}", self.batch));
        }
        if self.count == 0 || self.count > MAX_IMAGES {
            return Err(format!("count {} outside 1..={MAX_IMAGES}", self.count));
        }
        Ok(())
    }
}

/// Serializes the accept/reject reply to a request header.
#[must_use]
pub fn encode_reply(result: &Result<(), String>) -> Vec<u8> {
    match result {
        Ok(()) => vec![0u8],
        Err(msg) => {
            let m = msg.as_bytes();
            let len = m.len().min(0xFFFF);
            let mut out = Vec::with_capacity(3 + len);
            out.push(1u8);
            out.extend_from_slice(&u16::try_from(len).unwrap_or(0).to_le_bytes());
            out.extend_from_slice(&m[..len]);
            out
        }
    }
}

/// Parses the accept/reject reply.
///
/// # Errors
///
/// [`TransportError::Corrupt`] on a malformed reply.
pub fn decode_reply(bytes: &[u8]) -> Result<Result<(), String>, TransportError> {
    let fail = |what: &str| TransportError::Corrupt(format!("request reply: {what}"));
    match bytes.first() {
        Some(0) if bytes.len() == 1 => Ok(Ok(())),
        Some(1) if bytes.len() >= 3 => {
            let len = usize::from(u16::from_le_bytes([bytes[1], bytes[2]]));
            if bytes.len() != 3 + len {
                return Err(fail("length mismatch"));
            }
            let msg =
                std::str::from_utf8(&bytes[3..]).map_err(|_| fail("reason not UTF-8"))?.to_owned();
            Ok(Err(msg))
        }
        _ => Err(fail("unknown tag or truncated")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let req = InferenceRequest { model: "lenet5".into(), q1_bits: 14, batch: 4, count: 33 };
        assert_eq!(InferenceRequest::decode(&req.encode()).unwrap(), req);
        assert!(req.validate().is_ok());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(InferenceRequest::decode(&[]).is_err());
        assert!(InferenceRequest::decode(&[9, 0, 1, 2]).is_err());
        let mut ok =
            InferenceRequest { model: "m".into(), q1_bits: 16, batch: 1, count: 1 }.encode();
        ok.push(0xFF); // trailing byte
        assert!(InferenceRequest::decode(&ok).is_err());
    }

    #[test]
    fn bounds_are_enforced() {
        let mut req = InferenceRequest { model: "m".into(), q1_bits: 16, batch: 1, count: 1 };
        assert!(req.validate().is_ok());
        req.q1_bits = 50;
        assert!(req.validate().is_err());
        req.q1_bits = 16;
        req.batch = 0;
        assert!(req.validate().is_err());
        req.batch = 1;
        req.count = MAX_IMAGES + 1;
        assert!(req.validate().is_err());
    }

    #[test]
    fn reply_roundtrips() {
        assert_eq!(decode_reply(&encode_reply(&Ok(()))).unwrap(), Ok(()));
        let rej = encode_reply(&Err("no such model".into()));
        assert_eq!(decode_reply(&rej).unwrap(), Err("no such model".to_owned()));
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[7]).is_err());
    }
}
