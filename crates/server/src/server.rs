//! The multi-tenant inference server: accept loop, bounded admission,
//! per-session workers, reaper and graceful drain (DESIGN.md §13).
//!
//! # Lock classes (audited by `cargo xtask lint-concurrency`)
//!
//! * `server.sessions` — the live-session table. Leaf lock: held only to
//!   push/scan/remove slots; all transport teardown happens on clones
//!   *after* the guard drops.
//! * `server.workers` — the session-worker sweep list. Leaf lock: worker
//!   handles are moved out under the guard and joined outside it.
//! * `server.templates` — inside [`TemplateCache`]; leaf (see its docs).
//!
//! No thread ever holds two of these at once, and the run gate is a bare
//! atomic, so the class graph is trivially acyclic. Blocking calls
//! (accept, recv, join, sleep) always run guard-free.

use crate::acceptor::Acceptor;
use crate::activity::ActivityTransport;
use crate::proto::{encode_reply, InferenceRequest};
use crate::registry::{ModelRegistry, TemplateCache};
use aq2pnn::dealer::{DealerConfig, DealerHub};
use aq2pnn::engine::BatchInput;
use aq2pnn::{PartyContext, ProtocolConfig};
use aq2pnn_obs::{
    ArgValue, Counter, FlightRecorder, Histogram, MetricsRegistry, SloClass, SloTracker, Tracer,
    SLO_BUCKET_BOUNDS_MS,
};
use aq2pnn_parallel::sync::{AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};
use aq2pnn_parallel::Worker;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::{
    Endpoint, Frame, FrameKind, Session, SessionConfig, Transport, TransportError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for an [`InferenceServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Sessions served concurrently (2PC online passes in flight).
    pub max_sessions: usize,
    /// Additional admitted sessions parked waiting for a serve slot.
    /// Admission beyond `max_sessions + queue_depth` is answered with a
    /// typed `Shed` frame and a close — never a hang.
    pub queue_depth: usize,
    /// How long an admitted client gets to send its `Hello` and request
    /// header before the session is rejected.
    pub admission_timeout: Duration,
    /// Per-receive deadline during the 2PC protocol (a black-holed peer
    /// becomes a typed timeout, not a stuck worker).
    pub io_deadline: Duration,
    /// Wall-clock budget for one whole session; the reaper tears down
    /// overstayers.
    pub session_deadline: Duration,
    /// Reaper teardown for sessions with no link traffic this long
    /// (slow-loris defense).
    pub idle_timeout: Duration,
    /// Reaper scan cadence.
    pub reap_interval: Duration,
    /// Graceful-drain budget: how long [`InferenceServer::drain`] waits
    /// for in-flight sessions before force-closing them.
    pub drain_timeout: Duration,
    /// Reliability-layer configuration for every per-client session.
    pub session: SessionConfig,
    /// Background offline dealer, shared across sessions through one
    /// [`DealerHub`]; `None` generates triples inline on the online path.
    pub dealer: Option<DealerConfig>,
    /// End-to-end latency budget in milliseconds; completed sessions
    /// exceeding it bump the `server.slo_violations` counter. `None`
    /// tracks latency histograms without a budget.
    pub slo_ms: Option<u64>,
    /// Directory for flight-recorder dumps (`flightrec-<stream>.json`).
    /// `None` disables per-session recording entirely; when set, every
    /// session records into a bounded ring that is dropped on clean
    /// completion and dumped here when the session faults, is rejected
    /// or is reaped.
    pub flightrec_dir: Option<std::path::PathBuf>,
    /// Retained records per session flight recorder.
    pub flightrec_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 4,
            queue_depth: 4,
            admission_timeout: Duration::from_secs(5),
            io_deadline: Duration::from_secs(60),
            session_deadline: Duration::from_secs(600),
            idle_timeout: Duration::from_secs(60),
            reap_interval: Duration::from_millis(25),
            drain_timeout: Duration::from_secs(10),
            session: SessionConfig::default(),
            dealer: None,
            slo_ms: None,
            flightrec_dir: None,
            flightrec_capacity: 256,
        }
    }
}

/// Observability sinks for the server (disabled by default, like every
/// other layer).
#[derive(Clone, Default)]
pub struct ServerObs {
    /// Span/progress sink shared by all sessions.
    pub tracer: Tracer,
    /// Metric registry: `server.*` counters plus per-stream `session.<id>.*`.
    pub metrics: MetricsRegistry,
}

/// Point-in-time server accounting, readable without a metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Sessions admitted (assigned a stream ID).
    pub admitted: u64,
    /// Connections answered with a `Shed` frame (admission bound/drain).
    pub shed: u64,
    /// Sessions torn down by the reaper or drain force-close.
    pub reaped: u64,
    /// Sessions dropped for malformed admission or request traffic.
    pub rejected: u64,
    /// Sessions that failed mid-protocol from a client-side fault.
    pub faulted: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions currently in flight.
    pub active: u64,
}

/// What [`InferenceServer::drain`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Every in-flight session finished within the budget.
    pub clean: bool,
    /// Sessions force-closed after the budget expired.
    pub forced: u64,
    /// Wall-clock the drain took, in milliseconds.
    pub drain_ms: u64,
}

struct Counters {
    admitted: Counter,
    shed: Counter,
    reaped: Counter,
    rejected: Counter,
    faulted: Counter,
    completed: Counter,
}

pub(crate) struct SessionSlot {
    pub(crate) stream: u64,
    pub(crate) link: Arc<ActivityTransport>,
    pub(crate) admitted_at: Instant,
    /// The session's flight recorder (disabled unless
    /// `cfg.flightrec_dir` is set). Shared with the session worker.
    pub(crate) recorder: FlightRecorder,
    /// The reliability session, published once the worker builds it so
    /// the admin `/sessions` view can read live telemetry. Written and
    /// read only under the `server.sessions` guard.
    pub(crate) session: Option<Arc<Session>>,
}

struct SessionWorker {
    done: Arc<AtomicBool>,
    /// Held to keep the session thread alive; dropping joins it.
    _worker: Worker,
}

/// Which lifecycle phase a session failure happened in — the teardown
/// path uses it to bill the right counter.
enum Phase {
    Admission,
    Serve,
}

pub(crate) struct Inner {
    pub(crate) cfg: ServerConfig,
    registry: ModelRegistry,
    templates: TemplateCache,
    hub: DealerHub,
    pub(crate) tracer: Tracer,
    pub(crate) metrics: MetricsRegistry,
    c: Counters,
    /// SLO latency accounting (admission / online / e2e histograms).
    pub(crate) slo: SloTracker,
    /// Fixed bucket template for `server.queue_wait_ms`.
    queue_wait_buckets: Histogram,
    /// Lock class `server.sessions` (leaf).
    pub(crate) sessions: Mutex<Vec<SessionSlot>>,
    /// Lock class `server.workers` (leaf).
    workers: Mutex<Vec<SessionWorker>>,
    /// Free 2PC serve slots (`max_sessions` at rest); bare atomic, no lock.
    run_slots: AtomicUsize,
    next_stream: AtomicU64,
    pub(crate) in_flight: AtomicU64,
    pub(crate) draining: AtomicBool,
    pub(crate) stopping: AtomicBool,
}

impl Inner {
    pub(crate) fn set_active_gauge(&self) {
        #[allow(clippy::cast_precision_loss)] // session counts are tiny
        let active = self.in_flight.load(Ordering::SeqCst) as f64;
        self.metrics.gauge_set("server.sessions_active", active);
        // Schema v4 alias with the conventional name; same reading.
        self.metrics.gauge_set("server.inflight", active);
    }

    /// Admission capacity: in-flight sessions beyond this are shed.
    pub(crate) fn capacity(&self) -> u64 {
        (self.cfg.max_sessions + self.cfg.queue_depth) as u64
    }

    /// A fresh flight recorder for one session (disabled unless dumps
    /// are configured, so un-opted servers pay one branch per record).
    fn new_recorder(&self) -> FlightRecorder {
        if self.cfg.flightrec_dir.is_some() {
            FlightRecorder::new(self.cfg.flightrec_capacity)
        } else {
            FlightRecorder::disabled()
        }
    }
}

/// A running multi-tenant two-party inference service.
///
/// Start with [`InferenceServer::start`], stop with
/// [`InferenceServer::drain`]; dropping without draining force-closes
/// everything (crash-style shutdown, still leak-free).
pub struct InferenceServer {
    inner: Arc<Inner>,
    accept: Option<Worker>,
    reaper: Option<Worker>,
    admin: Option<Worker>,
    stopped: bool,
}

impl InferenceServer {
    /// Boots the accept loop and reaper over `acceptor`.
    #[must_use]
    pub fn start(
        acceptor: Box<dyn Acceptor>,
        cfg: ServerConfig,
        registry: ModelRegistry,
        obs: ServerObs,
    ) -> InferenceServer {
        let c = Counters {
            admitted: obs.metrics.counter("server.sessions_admitted"),
            shed: obs.metrics.counter("server.sessions_shed"),
            reaped: obs.metrics.counter("server.sessions_reaped"),
            rejected: obs.metrics.counter("server.sessions_rejected"),
            faulted: obs.metrics.counter("server.sessions_faulted"),
            completed: obs.metrics.counter("server.sessions_completed"),
        };
        #[allow(clippy::cast_precision_loss)] // millisecond budgets are small
        let slo = SloTracker::new(&obs.metrics, cfg.slo_ms.map(|ms| ms as f64));
        let inner = Arc::new(Inner {
            run_slots: AtomicUsize::new(cfg.max_sessions),
            cfg,
            registry,
            templates: TemplateCache::new(),
            hub: DealerHub::new(),
            tracer: obs.tracer,
            metrics: obs.metrics,
            c,
            slo,
            queue_wait_buckets: Histogram::new(&SLO_BUCKET_BOUNDS_MS),
            sessions: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            next_stream: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
        });
        inner.set_active_gauge();
        inner.tracer.info(format!("server: accepting on {}", acceptor.descriptor()));

        let accept = Worker::spawn("aq2pnn-accept");
        {
            let inner = Arc::clone(&inner);
            let mut acceptor = acceptor;
            accept.submit(move || accept_loop(&inner, acceptor.as_mut()));
        }
        let reaper = Worker::spawn("aq2pnn-reap");
        {
            let inner = Arc::clone(&inner);
            reaper.submit(move || reap_loop(&inner));
        }
        InferenceServer {
            inner,
            accept: Some(accept),
            reaper: Some(reaper),
            admin: None,
            stopped: false,
        }
    }

    /// Boots the loopback-only admin listener on `addr` (e.g.
    /// `127.0.0.1:0`) serving `GET /metrics`, `/sessions` and `/healthz`
    /// (see DESIGN.md §14). Returns the resolved address.
    ///
    /// # Errors
    ///
    /// Fails when `addr` does not bind or is not a loopback address —
    /// the admin surface must never be reachable off-host.
    pub fn start_admin(&mut self, addr: &str) -> Result<std::net::SocketAddr, TransportError> {
        let (resolved, worker) = crate::admin::spawn_admin(&self.inner, addr)?;
        self.admin = Some(worker);
        Ok(resolved)
    }

    /// Current accounting snapshot.
    #[must_use]
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            admitted: self.inner.c.admitted.get(),
            shed: self.inner.c.shed.get(),
            reaped: self.inner.c.reaped.get(),
            rejected: self.inner.c.rejected.get(),
            faulted: self.inner.c.faulted.get(),
            completed: self.inner.c.completed.get(),
            active: self.inner.in_flight.load(Ordering::SeqCst),
        }
    }

    /// Sessions currently in flight.
    #[must_use]
    pub fn active_sessions(&self) -> u64 {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Dealer pools currently registered on the shared hub (one per
    /// dealer-enabled session; the chaos soak asserts this returns to 0).
    #[must_use]
    pub fn dealer_pools(&self) -> usize {
        self.inner.hub.member_pools()
    }

    /// Graceful shutdown: shed new admissions, wait up to
    /// `cfg.drain_timeout` for in-flight sessions, force-close stragglers,
    /// then stop the accept loop and reaper and join every worker.
    ///
    /// Records `server.drain_ms` and returns what happened; idempotent
    /// (a second call reports an immediate clean drain).
    pub fn drain(&mut self) -> DrainReport {
        let started = Instant::now();
        self.inner.draining.store(true, Ordering::SeqCst);
        let deadline = started + self.inner.cfg.drain_timeout;
        while self.inner.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut forced = 0u64;
        let clean = self.inner.in_flight.load(Ordering::SeqCst) == 0;
        if !clean {
            let links: Vec<Arc<ActivityTransport>> = {
                let sessions = self.inner.sessions.lock();
                sessions.iter().map(|s| Arc::clone(&s.link)).collect()
            };
            for link in links {
                if !link.was_closed() {
                    link.close();
                    forced += 1;
                }
            }
            // Bounded grace for the unwinding workers; they now only see
            // Disconnected, so this converges quickly.
            let grace = Instant::now() + Duration::from_secs(5);
            while self.inner.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.join_loops();
        let drain_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        #[allow(clippy::cast_precision_loss)] // millisecond counts are small
        self.inner.metrics.gauge_set("server.drain_ms", drain_ms as f64);
        self.inner.tracer.info(format!(
            "server: drained in {drain_ms} ms ({})",
            if clean { "clean".to_owned() } else { format!("forced {forced} session(s)") }
        ));
        self.stopped = true;
        DrainReport { clean, forced, drain_ms }
    }

    /// Stops the accept loop and reaper and joins every session worker.
    fn join_loops(&mut self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        drop(self.accept.take());
        drop(self.reaper.take());
        drop(self.admin.take());
        // `mem::take`, not `Vec::drain`: the concurrency lint resolves
        // callees by name and would conflate it with [`Self::drain`].
        let leftover: Vec<SessionWorker> = std::mem::take(&mut *self.inner.workers.lock());
        drop(leftover); // joins outside the `server.workers` guard
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if self.stopped {
            return;
        }
        // Crash-style shutdown: no grace, but still no leaks — close every
        // link so workers unwind, then join them.
        self.inner.draining.store(true, Ordering::SeqCst);
        let links: Vec<Arc<ActivityTransport>> = {
            let sessions = self.inner.sessions.lock();
            sessions.iter().map(|s| Arc::clone(&s.link)).collect()
        };
        for link in links {
            link.close();
        }
        self.join_loops();
    }
}

fn accept_loop(inner: &Arc<Inner>, acceptor: &mut dyn Acceptor) {
    while !inner.stopping.load(Ordering::SeqCst) {
        match acceptor.accept(Duration::from_millis(50)) {
            Ok(link) => admit(inner, link),
            Err(TransportError::Timeout) => {}
            Err(e) => {
                inner.tracer.info(format!("server: accept loop exiting: {e}"));
                return;
            }
        }
    }
}

/// Admission decision for one fresh connection. Overload and drain are
/// answered *immediately* with a typed `Shed` frame — the client never
/// waits out a timeout to learn it was declined.
fn admit(inner: &Arc<Inner>, link: Arc<dyn Transport>) {
    let over = inner.in_flight.load(Ordering::SeqCst) >= inner.capacity();
    if over || inner.draining.load(Ordering::SeqCst) {
        let _ = link.send(Frame::control(FrameKind::Shed, 0, 0).encode().into());
        link.shutdown();
        inner.c.shed.inc();
        return;
    }
    let stream = inner.next_stream.fetch_add(1, Ordering::SeqCst) + 1;
    let activity = Arc::new(ActivityTransport::new(link));
    let admitted_at = Instant::now();
    let recorder = inner.new_recorder();
    recorder.event("admitted", "lifecycle", &[("stream", ArgValue::U64(stream))]);
    inner.in_flight.fetch_add(1, Ordering::SeqCst);
    inner.set_active_gauge();
    inner.c.admitted.inc();
    {
        let mut sessions = inner.sessions.lock();
        sessions.push(SessionSlot {
            stream,
            link: Arc::clone(&activity),
            admitted_at,
            recorder: recorder.clone(),
            session: None,
        });
    }
    let worker = Worker::spawn("aq2pnn-session");
    let done = Arc::new(AtomicBool::new(false));
    {
        let inner = Arc::clone(inner);
        let done = Arc::clone(&done);
        worker.submit(move || {
            session_job(&inner, stream, &activity, &recorder, admitted_at);
            done.store(true, Ordering::SeqCst);
        });
    }
    let mut workers = inner.workers.lock();
    workers.push(SessionWorker { done, _worker: worker });
}

/// One session end to end, plus its teardown bookkeeping. Runs on the
/// session's dedicated worker; every exit path (success, client fault,
/// reap, drain) lands in the same accounting.
fn session_job(
    inner: &Arc<Inner>,
    stream: u64,
    link: &Arc<ActivityTransport>,
    recorder: &FlightRecorder,
    admitted_at: Instant,
) {
    let outcome = serve_session(inner, stream, link, recorder, admitted_at);
    match outcome {
        Ok(images) => {
            inner.c.completed.inc();
            #[allow(clippy::cast_precision_loss)] // ms counts are small
            inner.slo.observe(SloClass::EndToEnd, admitted_at.elapsed().as_secs_f64() * 1e3);
            inner.tracer.info(format!("server: session {stream} completed ({images} image(s))"));
            // Clean completion: the flight recorder is dropped, not dumped.
        }
        Err((phase, err)) => {
            let outcome = if link.was_closed() {
                // The reaper (or drain) tore this link down; the error the
                // worker observed is just the echo of that teardown.
                inner.c.reaped.inc();
                inner.tracer.info(format!("server: session {stream} reaped: {err}"));
                "reaped"
            } else {
                let name = match phase {
                    Phase::Admission => {
                        inner.c.rejected.inc();
                        "rejected"
                    }
                    Phase::Serve => {
                        inner.c.faulted.inc();
                        "faulted"
                    }
                };
                inner.tracer.info(format!("server: session {stream} failed: {err}"));
                name
            };
            dump_flightrec(inner, stream, recorder, outcome, &err);
        }
    }
    link.shutdown();
    {
        let mut sessions = inner.sessions.lock();
        sessions.retain(|s| s.stream != stream);
    }
    inner.in_flight.fetch_sub(1, Ordering::SeqCst);
    inner.set_active_gauge();
}

/// Writes the session's flight-recorder ring as
/// `<flightrec_dir>/flightrec-<stream>.json` (Chrome trace format). The
/// terminal lifecycle event (`reaped` / `rejected` / `faulted`, with the
/// public error text as its reason) is stamped first, so the dump always
/// covers the session's final moment. Runs guard-free on the session
/// worker; a failed write is logged, never fatal.
fn dump_flightrec(
    inner: &Inner,
    stream: u64,
    recorder: &FlightRecorder,
    outcome: &'static str,
    reason: &str,
) {
    let Some(dir) = &inner.cfg.flightrec_dir else { return };
    if !recorder.is_enabled() {
        return;
    }
    recorder.event(outcome, "lifecycle", &[("reason", ArgValue::Str(reason.to_owned()))]);
    let doc = recorder.to_chrome_json(stream);
    let path = dir.join(format!("flightrec-{stream}.json"));
    let write =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, doc.to_string_pretty()));
    match write {
        Ok(()) => inner
            .tracer
            .info(format!("server: session {stream} flight recorder dumped to {}", path.display())),
        Err(e) => {
            inner.tracer.info(format!("server: session {stream} flight recorder dump failed: {e}"));
        }
    }
}

/// Publishes the session's reliability layer into its slot so the admin
/// `/sessions` view can read live telemetry. Leaf `server.sessions`
/// guard, held only for the scan-and-assign.
fn publish_session(inner: &Inner, stream: u64, session: &Arc<Session>) {
    let mut sessions = inner.sessions.lock();
    if let Some(slot) = sessions.iter_mut().find(|s| s.stream == stream) {
        slot.session = Some(Arc::clone(session));
    }
}

/// RAII serve-slot permit: released on every exit path.
struct RunPermit<'a>(&'a AtomicUsize);

impl Drop for RunPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Waits for a free serve slot by bounded polling (the queue path).
/// Returns `None` once the link was closed (reaper got there first) or
/// `deadline` passed.
fn acquire_slot<'a>(
    slots: &'a AtomicUsize,
    link: &ActivityTransport,
    deadline: Instant,
) -> Option<RunPermit<'a>> {
    loop {
        let free = slots.load(Ordering::SeqCst);
        if free > 0
            && slots.compare_exchange(free, free - 1, Ordering::SeqCst, Ordering::SeqCst).is_ok()
        {
            return Some(RunPermit(slots));
        }
        if link.was_closed() || Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[allow(clippy::too_many_lines)] // one linear lifecycle, clearer unsplit
fn serve_session(
    inner: &Arc<Inner>,
    stream: u64,
    link: &Arc<ActivityTransport>,
    rec: &FlightRecorder,
    admitted_at: Instant,
) -> Result<usize, (Phase, String)> {
    let cfg = &inner.cfg;
    let adm = |e: TransportError| (Phase::Admission, e.to_string());

    // 1. Admission handshake on the raw link: expect the client's Hello,
    //    answer with the assigned stream ID. Garbage here is a typed
    //    rejection, not a crash or a hang.
    let raw = link.recv(Some(cfg.admission_timeout)).map_err(adm)?;
    let hello = Frame::decode(&raw).map_err(adm)?;
    if hello.kind != FrameKind::Hello {
        return Err((Phase::Admission, format!("expected Hello, got {:?}", hello.kind)));
    }
    link.send(Frame::control(FrameKind::Hello, stream, 0).encode().into()).map_err(adm)?;
    rec.event("hello", "lifecycle", &[]);

    // 2. Reliable session (stream-stamped frames) + request header.
    let session =
        Arc::new(Session::with_stream(Arc::clone(link) as Arc<dyn Transport>, cfg.session, stream));
    session.attach_metrics(&inner.metrics);
    publish_session(inner, stream, &session);
    let req_bytes = session.recv(Some(cfg.admission_timeout)).map_err(adm)?;
    let req = InferenceRequest::decode(&req_bytes).map_err(adm)?;
    let verdict = req.validate().and_then(|()| {
        inner
            .registry
            .get(&req.model)
            .map(|_| ())
            .ok_or_else(|| format!("unknown model {:?}", req.model))
    });
    if let Err(reason) = &verdict {
        let _ = session.send(encode_reply(&Err(reason.clone())).into());
        return Err((Phase::Admission, format!("rejected request: {reason}")));
    }
    let model = inner.registry.get(&req.model).expect("validated above");
    rec.event(
        "request",
        "lifecycle",
        &[
            ("model", ArgValue::Str(req.model.clone())),
            ("count", ArgValue::U64(u64::from(req.count))),
            ("batch", ArgValue::U64(u64::from(req.batch))),
            ("q1_bits", ArgValue::U64(u64::from(req.q1_bits))),
        ],
    );

    // 3. Serve slot: parked here while `max_sessions` peers are online
    //    (the admission queue). The reaper still covers us via deadlines.
    let slot_deadline = Instant::now() + cfg.session_deadline;
    let queue_t0 = rec.now_ns();
    let queued_at = Instant::now();
    let Some(_permit) = acquire_slot(&inner.run_slots, link, slot_deadline) else {
        let reason = "queued past deadline".to_owned();
        let _ = session.send(encode_reply(&Err(reason.clone())).into());
        return Err((Phase::Serve, reason));
    };
    let queue_wait_ms = queued_at.elapsed().as_secs_f64() * 1e3;
    inner.metrics.observe_with("server.queue_wait_ms", &inner.queue_wait_buckets, queue_wait_ms);
    // Admission-wait SLO: connection admitted → run slot held.
    inner.slo.observe(SloClass::Admission, admitted_at.elapsed().as_secs_f64() * 1e3);
    rec.span("queue_wait", "slo", queue_t0, &[]);
    session.send(encode_reply(&Ok(())).into()).map_err(|e| (Phase::Serve, e.to_string()))?;

    // 4. The 2PC session proper. The prepared template is shared across
    //    sessions per (model, ℓ-profile); only `bind` talks to this peer.
    let run = |e: aq2pnn::ProtocolError| (Phase::Serve, e.to_string());
    let pcfg = ProtocolConfig::paper(req.q1_bits);
    let template = inner
        .templates
        .get_or_build(&req.model, PartyId::ModelProvider, &pcfg, &model)
        .map_err(run)?;
    let ep =
        Endpoint::over_transport(Arc::clone(&session) as Arc<dyn Transport>, Some(cfg.io_deadline));
    let mut ctx = PartyContext::new(PartyId::ModelProvider, ep, pcfg, None);
    ctx.set_obs(inner.tracer.clone(), inner.metrics.clone());
    let mut prepared = template.bind(&mut ctx).map_err(run)?;
    let _pool = cfg.dealer.as_ref().map(|d| prepared.spawn_dealer_on(&ctx, *d, &inner.hub));

    let total = req.count as usize;
    let batch = req.batch as usize;
    let mut served = 0usize;
    while served < total {
        let b = batch.min(total - served);
        let pass_t0 = rec.now_ns();
        let pass_started = Instant::now();
        prepared.run_batch(&mut ctx, BatchInput::Provider { batch: b }).map_err(run)?;
        inner.slo.observe(SloClass::Online, pass_started.elapsed().as_secs_f64() * 1e3);
        rec.span("online_pass", "slo", pass_t0, &[("batch", ArgValue::U64(b as u64))]);
        served += b;
    }
    Ok(served)
}

/// Reaper: tears down sessions past their deadline or idle bound and
/// sweeps finished session workers. Teardown marks the link closed first
/// so the unwinding worker bills the failure to the reaper, not the
/// client.
fn reap_loop(inner: &Arc<Inner>) {
    while !inner.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(inner.cfg.reap_interval);
        let now = Instant::now();
        let victims: Vec<(u64, Arc<ActivityTransport>, FlightRecorder, &'static str)> = {
            let sessions = inner.sessions.lock();
            sessions
                .iter()
                .filter(|s| {
                    !s.link.was_closed()
                        && (now.duration_since(s.admitted_at) > inner.cfg.session_deadline
                            || s.link.idle_for() > inner.cfg.idle_timeout)
                })
                .map(|s| {
                    let why = if now.duration_since(s.admitted_at) > inner.cfg.session_deadline {
                        "session_deadline"
                    } else {
                        "idle_timeout"
                    };
                    (s.stream, Arc::clone(&s.link), s.recorder.clone(), why)
                })
                .collect()
        };
        for (stream, link, recorder, why) in victims {
            inner.tracer.info(format!("server: reaping session {stream}"));
            recorder.event("reaping", "lifecycle", &[("why", ArgValue::Str(why.to_owned()))]);
            link.close();
        }
        let finished: Vec<SessionWorker> = {
            let mut ws = inner.workers.lock();
            // `mem::take` + partition, not `Vec::drain`: the concurrency
            // lint resolves callees by name and would conflate the latter
            // with [`InferenceServer::drain`].
            let all = std::mem::take(&mut *ws);
            let (fin, keep): (Vec<_>, Vec<_>) =
                all.into_iter().partition(|w| w.done.load(Ordering::SeqCst));
            *ws = keep;
            fin
        };
        drop(finished); // joins outside the `server.workers` guard
    }
}
