//! The user-side client library: admission, session, request, inference.

use crate::proto::{decode_reply, InferenceRequest};
use aq2pnn::engine::BatchInput;
use aq2pnn::prepared::PreparedModel;
use aq2pnn::{PartyContext, ProtocolConfig, ProtocolError};
use aq2pnn_nn::quant::QuantModel;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::{
    Endpoint, Frame, FrameKind, Session, SessionConfig, SessionTelemetry, Transport, TransportError,
};
use std::sync::Arc;
use std::time::Duration;

/// Client-side knobs for one service session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Registry name of the model to request.
    pub model: String,
    /// Activation ring width ℓ1 to request (the ℓ-profile).
    pub q1_bits: u32,
    /// Images per batched online pass.
    pub batch: usize,
    /// Reliability-layer configuration.
    pub session: SessionConfig,
    /// How long to wait for the admission verdict. A shedding or dead
    /// server is a typed error within this bound — never a hang.
    pub admission_timeout: Duration,
    /// Per-receive deadline during the protocol (also covers time queued
    /// behind other sessions on a busy server).
    pub io_deadline: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            model: "lenet5".into(),
            q1_bits: 16,
            batch: 1,
            session: SessionConfig::default(),
            admission_timeout: Duration::from_secs(5),
            io_deadline: Duration::from_secs(60),
        }
    }
}

/// Typed failure modes of a client session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server declined admission (overload or draining).
    Shed,
    /// The server speaks a different frame version.
    VersionMismatch {
        /// Our frame version.
        ours: u8,
        /// The server's frame version.
        theirs: u8,
    },
    /// The server rejected the request header (unknown model, bad
    /// geometry, queue overflow) with this reason.
    Rejected(String),
    /// The link failed (disconnect, timeout, corruption beyond repair).
    Transport(TransportError),
    /// The 2PC protocol failed after establishment.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Shed => write!(f, "server shed the session (overload or drain)"),
            ClientError::VersionMismatch { ours, theirs } => {
                write!(f, "server frame version mismatch: we speak v{ours}, peer v{theirs}")
            }
            ClientError::Rejected(reason) => write!(f, "server rejected the request: {reason}"),
            ClientError::Transport(e) => write!(f, "transport failure: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Shed => ClientError::Shed,
            TransportError::VersionMismatch { ours, theirs } => {
                ClientError::VersionMismatch { ours, theirs }
            }
            other => ClientError::Transport(other),
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        use aq2pnn::substrate::ot::OtError;
        match e {
            // Unwrap transport-rooted failures wherever they surfaced —
            // a cable pull mid-OT is still a transport error to callers.
            ProtocolError::Transport(t) | ProtocolError::Ot(OtError::Transport(t)) => {
                ClientError::from(t)
            }
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// Result of a completed client session.
#[derive(Debug, Clone)]
pub struct ClientRun {
    /// Integer logits, one vector per image, in input order.
    pub logits: Vec<Vec<i64>>,
    /// The stream ID the server assigned this session.
    pub stream: u64,
    /// Reliability-layer repair counters for this session's link.
    pub telemetry: SessionTelemetry,
    /// Application payload bytes this side sent + received.
    pub payload_bytes: u64,
    /// Wall-clock nanoseconds spent in the secure online passes (the
    /// lockstep `run_batch` loop), excluding admission, session setup and
    /// preparation — the interval the server-side observability gate
    /// measures.
    pub online_ns: u64,
}

/// Runs one full service session as the *user*: admission handshake,
/// request header, then `⌈images/batch⌉` secure online passes.
///
/// `model` is the public architecture + deterministic share setup both
/// parties derive from the fixed seeds (the example's stand-in for a real
/// deployment's offline phase); the images are this party's secret.
///
/// # Errors
///
/// Every failure is typed ([`ClientError`]) and bounded in time by
/// `cfg.admission_timeout` / `cfg.io_deadline` — a shedding, draining,
/// stalled or version-skewed server never hangs the caller.
pub fn run_client(
    link: Arc<dyn Transport>,
    cfg: &ClientConfig,
    model: &QuantModel,
    images: &[&[f32]],
) -> Result<ClientRun, ClientError> {
    if images.is_empty() {
        return Err(ClientError::Rejected("no images".into()));
    }
    let batch = cfg.batch.max(1);

    // 1. Admission on the raw link: Hello out, verdict in. A Shed frame
    //    or a version mismatch surfaces here as its typed error.
    link.send(Frame::control(FrameKind::Hello, 0, 0).encode().into())?;
    let verdict = link.recv(Some(cfg.admission_timeout))?;
    let frame = Frame::decode(&verdict)?;
    let stream = match frame.kind {
        FrameKind::Shed => return Err(ClientError::Shed),
        FrameKind::Hello if frame.seq > 0 => frame.seq,
        other => {
            return Err(ClientError::Transport(TransportError::Corrupt(format!(
                "admission reply was {other:?}"
            ))))
        }
    };

    // 2. Reliable session on the assigned stream + request header.
    let session = Arc::new(Session::with_stream(Arc::clone(&link), cfg.session, stream));
    let req = InferenceRequest {
        model: cfg.model.clone(),
        q1_bits: cfg.q1_bits,
        batch: u32::try_from(batch).unwrap_or(u32::MAX),
        count: u32::try_from(images.len()).unwrap_or(u32::MAX),
    };
    session.send(req.encode().into())?;
    let reply = session.recv(Some(cfg.io_deadline))?;
    if let Err(reason) = decode_reply(&reply)? {
        return Err(ClientError::Rejected(reason));
    }

    // 3. The 2PC session proper, mirroring the server's lockstep.
    let ep =
        Endpoint::over_transport(Arc::clone(&session) as Arc<dyn Transport>, Some(cfg.io_deadline));
    let pcfg = ProtocolConfig::paper(cfg.q1_bits);
    let mut ctx = PartyContext::new(PartyId::User, ep, pcfg, None);
    let mut prepared = PreparedModel::prepare(&mut ctx, model)?;
    let mut logits = Vec::with_capacity(images.len());
    let online_started = std::time::Instant::now();
    for chunk in images.chunks(batch) {
        let out = prepared.run_batch(&mut ctx, BatchInput::User(chunk))?;
        logits.extend(out.logits);
    }
    #[allow(clippy::cast_possible_truncation)] // u64 ns ≈ 584 years
    let online_ns = online_started.elapsed().as_nanos() as u64;
    // Graceful goodbye: we have our logits, but over a lossy link the
    // server may still be waiting on a dropped tail frame only we can
    // retransmit. Flush until the server acked everything (or its side of
    // the link is gone — best-effort, the answer is already in hand).
    let _ = session.flush(cfg.io_deadline.min(Duration::from_secs(5)));
    Ok(ClientRun {
        logits,
        stream,
        telemetry: session.telemetry(),
        payload_bytes: ctx.ep.stats().total_bytes(),
        online_ns,
    })
}
