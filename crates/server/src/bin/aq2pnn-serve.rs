//! The deployable multi-tenant provider process.
//!
//! Serves the deterministic demo models over TCP to any number of
//! concurrent `run_client` users, with bounded admission, deadlines and
//! graceful signal-driven drain:
//!
//! ```sh
//! aq2pnn-serve --listen 127.0.0.1:0 --model tiny --max-sessions 8
//! # SIGINT/SIGTERM → drain (shed new clients, finish in-flight ones)
//! # exit 0: drained clean   exit 3: drain budget expired, force-closed
//! ```
//!
//! The first stdout line is `listening on <addr>` (with the resolved
//! ephemeral port), which the spawned-process shutdown test keys on.

use aq2pnn::dealer::{DealerConfig, ExhaustionPolicy};
use aq2pnn_server::{
    demo_model, signal, InferenceServer, ModelRegistry, ServerConfig, ServerObs, TcpAcceptor,
};
use aq2pnn_transport::TcpConfig;
use std::io::Write;
use std::time::Duration;

struct Args {
    listen: String,
    model: String,
    max_sessions: usize,
    queue_depth: usize,
    background_dealer: bool,
    admission_ms: u64,
    io_ms: u64,
    idle_ms: u64,
    deadline_ms: u64,
    drain_ms: u64,
    admin: Option<String>,
    slo_ms: Option<u64>,
    flightrec_dir: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: aq2pnn-serve [--listen ADDR] [--model tiny|lenet5]\n\
         \x20                  [--max-sessions N] [--queue-depth N] [--dealer inline|background]\n\
         \x20                  [--admission-timeout-ms N] [--io-timeout-ms N]\n\
         \x20                  [--idle-timeout-ms N] [--session-deadline-ms N]\n\
         \x20                  [--drain-timeout-ms N]\n\
         \x20                  [--admin ADDR] [--slo-ms N] [--flightrec DIR]\n\
         \n\
         --admin ADDR    loopback-only live telemetry endpoint\n\
         \x20               (GET /metrics, /sessions, /healthz)\n\
         --slo-ms N      end-to-end latency budget (server.slo_violations)\n\
         --flightrec DIR per-session flight recorder; faulted/reaped\n\
         \x20               sessions dump flightrec-<stream>.json here\n\
         \n\
         exit codes: 0 drained clean, 2 usage, 3 drain budget expired"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:0".into(),
        model: "tiny".into(),
        max_sessions: 4,
        queue_depth: 4,
        background_dealer: false,
        admission_ms: 5_000,
        io_ms: 60_000,
        idle_ms: 60_000,
        deadline_ms: 600_000,
        drain_ms: 10_000,
        admin: None,
        slo_ms: None,
        flightrec_dir: None,
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => args.listen = it.next().unwrap_or_else(|| usage()),
            "--model" => args.model = it.next().unwrap_or_else(|| usage()),
            "--max-sessions" => {
                args.max_sessions = usize::try_from(num(&mut it)).unwrap_or_else(|_| usage());
            }
            "--queue-depth" => {
                args.queue_depth = usize::try_from(num(&mut it)).unwrap_or_else(|_| usage());
            }
            "--dealer" => match it.next().as_deref() {
                Some("inline") => args.background_dealer = false,
                Some("background") => args.background_dealer = true,
                _ => usage(),
            },
            "--admission-timeout-ms" => args.admission_ms = num(&mut it),
            "--io-timeout-ms" => args.io_ms = num(&mut it),
            "--idle-timeout-ms" => args.idle_ms = num(&mut it),
            "--session-deadline-ms" => args.deadline_ms = num(&mut it),
            "--drain-timeout-ms" => args.drain_ms = num(&mut it),
            "--admin" => args.admin = Some(it.next().unwrap_or_else(|| usage())),
            "--slo-ms" => args.slo_ms = Some(num(&mut it)),
            "--flightrec" => args.flightrec_dir = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if args.max_sessions == 0 {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    signal::install_handlers();

    eprintln!("training demo model {:?} (deterministic seeds)…", args.model);
    let (_data, model) = match demo_model(&args.model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("aq2pnn-serve: {e}");
            std::process::exit(2);
        }
    };
    let mut registry = ModelRegistry::new();
    registry.insert(args.model.clone(), model);

    let acceptor = match TcpAcceptor::bind(&args.listen, TcpConfig::default()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("aq2pnn-serve: {e}");
            std::process::exit(2);
        }
    };
    let addr = acceptor.local_addr().map_or_else(|_| args.listen.clone(), |a| a.to_string());

    let cfg = ServerConfig {
        max_sessions: args.max_sessions,
        queue_depth: args.queue_depth,
        admission_timeout: Duration::from_millis(args.admission_ms),
        io_deadline: Duration::from_millis(args.io_ms),
        session_deadline: Duration::from_millis(args.deadline_ms),
        idle_timeout: Duration::from_millis(args.idle_ms),
        drain_timeout: Duration::from_millis(args.drain_ms),
        dealer: args
            .background_dealer
            .then_some(DealerConfig { depth: 16, policy: ExhaustionPolicy::GenerateInline }),
        slo_ms: args.slo_ms,
        flightrec_dir: args.flightrec_dir.as_ref().map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    // Live telemetry needs a recording registry; without it the admin
    // endpoint (and SLO tracking) would scrape an empty store.
    let obs = if args.admin.is_some() || args.slo_ms.is_some() {
        ServerObs { metrics: aq2pnn_obs::MetricsRegistry::new(), ..ServerObs::default() }
    } else {
        ServerObs::default()
    };
    let mut server = InferenceServer::start(Box::new(acceptor), cfg, registry, obs);
    let admin_addr = args.admin.as_ref().map(|a| match server.start_admin(a) {
        Ok(resolved) => resolved,
        Err(e) => {
            eprintln!("aq2pnn-serve: {e}");
            std::process::exit(2);
        }
    });

    // The ready line the process tests key on; flush so a piped reader
    // sees it immediately.
    println!("listening on {addr}");
    if let Some(admin) = admin_addr {
        println!("admin on {admin}");
    }
    let _ = std::io::stdout().flush();

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(20));
    }
    eprintln!("aq2pnn-serve: signal received, draining…");
    let report = server.drain();
    let c = server.counters();
    println!(
        "drain clean={} forced={} ms={} admitted={} completed={} shed={} reaped={}",
        report.clean, report.forced, report.drain_ms, c.admitted, c.completed, c.shed, c.reaped
    );
    std::process::exit(if report.clean { 0 } else { 3 });
}
