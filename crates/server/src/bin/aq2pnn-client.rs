//! A command-line user for `aq2pnn-serve`: dials the provider over TCP
//! and runs real two-party inference sessions against it.
//!
//! ```sh
//! aq2pnn-client --connect 127.0.0.1:9000 --model tiny --count 2 --sessions 3
//! ```
//!
//! `--sessions N` runs N concurrent sessions (one thread each, fresh TCP
//! link per session) — a reproducible client burst for load-testing a
//! live server while its admin endpoint is scraped.
//!
//! `--park-ms N` is the operational fault probe: connect, complete
//! admission by saying nothing (admission happens on accept), then hold
//! the link silent for N ms. Parked longer than the server's
//! `--idle-timeout-ms`, the session is reaped and — with `--flightrec`
//! on — dumps a flight recorder, which is exactly how CI exercises the
//! incident path against the deployed binary.
//!
//! The model weights are derived from the same deterministic demo recipe
//! the server uses ([`demo_model`]), so both parties hold matching
//! shares without any offline exchange.

use aq2pnn_server::{demo_model, run_client, ClientConfig};
use aq2pnn_transport::{TcpConfig, TcpTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    connect: String,
    model: String,
    count: usize,
    batch: usize,
    sessions: usize,
    q1_bits: u32,
    park_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: aq2pnn-client --connect ADDR [--model tiny|lenet5] [--count N]\n\
         \x20                  [--batch N] [--sessions N] [--q1-bits N] [--park-ms N]\n\
         \n\
         --sessions N  concurrent sessions, one fresh TCP link each (default 1)\n\
         --count N     images per session (default 2)\n\
         --park-ms N   instead of inferring: connect, stay silent for N ms,\n\
         \x20             then hang up — parked past the server's idle timeout\n\
         \x20             this forces a reap (and a flight-recorder dump)\n\
         \n\
         exit codes: 0 all sessions completed, 1 any session failed, 2 usage"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: String::new(),
        model: "tiny".into(),
        count: 2,
        batch: 1,
        sessions: 1,
        q1_bits: 16,
        park_ms: None,
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => args.connect = it.next().unwrap_or_else(|| usage()),
            "--model" => args.model = it.next().unwrap_or_else(|| usage()),
            "--count" => args.count = usize::try_from(num(&mut it)).unwrap_or_else(|_| usage()),
            "--batch" => args.batch = usize::try_from(num(&mut it)).unwrap_or_else(|_| usage()),
            "--sessions" => {
                args.sessions = usize::try_from(num(&mut it)).unwrap_or_else(|_| usage());
            }
            "--q1-bits" => args.q1_bits = u32::try_from(num(&mut it)).unwrap_or_else(|_| usage()),
            "--park-ms" => args.park_ms = Some(num(&mut it)),
            _ => usage(),
        }
    }
    if args.connect.is_empty() || args.count == 0 || args.sessions == 0 {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();

    // The fault probe needs no model: admission happens on accept, so a
    // silent socket held open is a fully admitted, fully idle session.
    if let Some(ms) = args.park_ms {
        let parked = match std::net::TcpStream::connect(&args.connect) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("aq2pnn-client: connect {}: {e}", args.connect);
                std::process::exit(1);
            }
        };
        println!("parked on {} for {ms} ms", args.connect);
        std::thread::sleep(Duration::from_millis(ms));
        drop(parked);
        return;
    }

    eprintln!("training demo model {:?} (deterministic seeds)…", args.model);
    let (data, model) = match demo_model(&args.model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("aq2pnn-client: {e}");
            std::process::exit(2);
        }
    };
    let owned = data.test_images();
    if owned.len() < args.count {
        eprintln!("aq2pnn-client: model {:?} has only {} test images", args.model, owned.len());
        std::process::exit(2);
    }
    let images: Vec<&[f32]> = owned.iter().take(args.count).map(Vec::as_slice).collect();
    let cfg = ClientConfig {
        model: args.model.clone(),
        q1_bits: args.q1_bits,
        batch: args.batch,
        ..ClientConfig::default()
    };

    let mut failed = false;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|i| {
                let (connect, cfg, model, images) = (&args.connect, &cfg, &model, &images);
                scope.spawn(move || {
                    let link = TcpTransport::connect(connect, TcpConfig::default())
                        .map_err(|e| format!("connect: {e}"))?;
                    let run = run_client(Arc::new(link) as Arc<dyn Transport>, cfg, model, images)
                        .map_err(|e| e.to_string())?;
                    #[allow(clippy::cast_precision_loss)] // display only
                    let online_ms = run.online_ns as f64 / 1_000_000.0;
                    println!(
                        "session {i}: stream {}, {} image(s), online {online_ms:.2} ms",
                        run.stream,
                        run.logits.len()
                    );
                    Ok::<_, String>(())
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            if let Err(e) = h.join().expect("session thread panicked") {
                eprintln!("session {i}: FAILED: {e}");
                failed = true;
            }
        }
    });
    if failed {
        std::process::exit(1);
    }
}
