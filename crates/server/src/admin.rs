//! The loopback-only admin endpoint (DESIGN.md §14).
//!
//! A second listener, wholly separate from the inference port, serving
//! plaintext operational snapshots to `curl`, a shell `/dev/tcp`
//! redirect, or `cargo xtask watch`:
//!
//! * `GET /metrics`  — Prometheus-style text exposition of the whole
//!   [`aq2pnn_obs::MetricsRegistry`] (schema v4), with the
//!   `server.slo.*.p{50,90,99}` gauges recomputed on each scrape.
//! * `GET /sessions` — one row per live session: stream ID, age, idle
//!   time, link state and the reliability-layer
//!   [`aq2pnn_transport::SessionTelemetry`] counters.
//! * `GET /healthz`  — `ok`, `overloaded` (admission bound reached) or
//!   `draining`, always with status 200 (the body is the verdict).
//!
//! Requests are one line (`GET <path>`, trailing HTTP version ignored);
//! responses are minimal HTTP/1.0 with `Content-Length`, then close.
//! The listener refuses to bind non-loopback addresses: the admin
//! surface reports timings, shapes and counts only (never share
//! values — see the leakage harness), but it still has no business
//! being reachable off-host.
//!
//! Concurrency: the whole endpoint runs on one dedicated worker. Scrape
//! bodies are rendered from snapshots (`MetricsRegistry::snapshot`, a
//! clone of the `server.sessions` table) so no socket I/O ever happens
//! under a lock, and no lock is ever held across another lock — the
//! admin thread adds zero edges to the server's lock-class graph.

use crate::server::Inner;
use aq2pnn_obs::render_text;
use aq2pnn_parallel::sync::Ordering;
use aq2pnn_parallel::Worker;
use aq2pnn_transport::{LineReader, TransportError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-connection request deadline: admin clients are local and send
/// one short line, so anything slower is a wedged peer.
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);

/// Binds `addr` and spawns the admin worker. Fails unless the resolved
/// address is loopback.
pub(crate) fn spawn_admin(
    inner: &Arc<Inner>,
    addr: &str,
) -> Result<(SocketAddr, Worker), TransportError> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| TransportError::Corrupt(format!("admin bind {addr}: {e}")))?;
    let resolved = listener
        .local_addr()
        .map_err(|e| TransportError::Corrupt(format!("admin local_addr: {e}")))?;
    if !resolved.ip().is_loopback() {
        return Err(TransportError::Corrupt(format!(
            "admin endpoint must bind a loopback address, got {resolved}"
        )));
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Corrupt(format!("admin nonblocking: {e}")))?;
    inner.tracer.info(format!("server: admin endpoint on {resolved}"));
    let worker = Worker::spawn("aq2pnn-admin");
    {
        let inner = Arc::clone(inner);
        worker.submit(move || admin_loop(&inner, &listener));
    }
    Ok((resolved, worker))
}

/// Nonblocking accept + bounded poll, like the inference acceptor: the
/// admin loop stays responsive to shutdown without a waker fd.
fn admin_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => serve_connection(inner, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                inner.tracer.info(format!("server: admin loop exiting: {e}"));
                return;
            }
        }
    }
}

/// One admin request end to end. Any parse or I/O failure just drops the
/// connection — the admin surface never takes the server down.
fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut reader = LineReader::new(stream);
    let Ok(line) = reader.read_line(REQUEST_DEADLINE) else { return };
    let path = line
        .strip_prefix("GET ")
        .map(|rest| rest.split_whitespace().next().unwrap_or(""))
        .unwrap_or("");
    let (status, body) = match path {
        "/metrics" => (200, metrics_body(inner)),
        "/sessions" => (200, sessions_body(inner)),
        "/healthz" => (200, health_body(inner)),
        _ => (404, format!("unknown admin path {path:?}\n")),
    };
    let reason = if status == 200 { "OK" } else { "Not Found" };
    let response = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = reader.write_all(response.as_bytes());
    let _ = reader.stream().shutdown(std::net::Shutdown::Both);
}

/// The `/metrics` body: recompute scrape-time gauges, then render the
/// full registry as text exposition.
fn metrics_body(inner: &Arc<Inner>) -> String {
    inner.set_active_gauge();
    inner.slo.recompute_gauges();
    render_text(&inner.metrics.snapshot())
}

/// The `/healthz` verdict.
fn health_body(inner: &Arc<Inner>) -> String {
    let verdict = if inner.draining.load(Ordering::SeqCst) {
        "draining"
    } else if inner.in_flight.load(Ordering::SeqCst) >= inner.capacity() {
        "overloaded"
    } else {
        "ok"
    };
    format!("{verdict}\n")
}

/// The `/sessions` table. Slot data is cloned under the (leaf)
/// `server.sessions` guard; telemetry reads happen after it drops.
fn sessions_body(inner: &Arc<Inner>) -> String {
    type Row = (u64, u64, u64, bool, Option<Arc<aq2pnn_transport::Session>>);
    let now = Instant::now();
    let rows: Vec<Row> = {
        let sessions = inner.sessions.lock();
        sessions
            .iter()
            .map(|s| {
                (
                    s.stream,
                    u64::try_from(now.duration_since(s.admitted_at).as_millis())
                        .unwrap_or(u64::MAX),
                    u64::try_from(s.link.idle_for().as_millis()).unwrap_or(u64::MAX),
                    s.link.was_closed(),
                    s.session.clone(),
                )
            })
            .collect()
    };
    let mut out = String::from(
        "stream age_ms idle_ms state retransmits reconnects naks corrupt duplicates gaps misrouted\n",
    );
    for (stream, age_ms, idle_ms, closed, session) in rows {
        let state = if closed { "closing" } else { "open" };
        let t = session.map(|s| s.telemetry()).unwrap_or_default();
        out.push_str(&format!(
            "{stream} {age_ms} {idle_ms} {state} {} {} {} {} {} {} {}\n",
            t.retransmits,
            t.reconnects,
            t.naks_sent,
            t.corrupt_frames,
            t.duplicates,
            t.gaps,
            t.misrouted
        ));
    }
    out
}
