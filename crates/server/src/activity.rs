//! Last-activity tracking around a raw transport, feeding the reaper.

use aq2pnn_transport::{Bytes, Transport, TransportError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wraps a transport and stamps a monotonic last-activity clock on every
/// **successful receive** — evidence the peer is alive. Sends are
/// deliberately not stamped: the session layer probes a silent peer with
/// `Nak`s, and counting our own probes as activity would keep a
/// black-holed client alive forever. The server's reaper reads the clock
/// to find idle (slow-loris) sessions; [`Self::close`] marks a
/// reaper-initiated teardown so the session worker can attribute the
/// resulting `Disconnected` to the deadline rather than to the client.
pub struct ActivityTransport {
    inner: Arc<dyn Transport>,
    /// Milliseconds since `epoch` of the most recent activity.
    last_ms: AtomicU64,
    /// Set once the server side tore the link down (reaper or drain).
    closed: AtomicBool,
    epoch: Instant,
}

impl ActivityTransport {
    /// Wraps `inner`; the activity clock starts "just now".
    #[must_use]
    pub fn new(inner: Arc<dyn Transport>) -> ActivityTransport {
        ActivityTransport {
            inner,
            last_ms: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            epoch: Instant::now(),
        }
    }

    fn stamp(&self) {
        let ms = u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.last_ms.store(ms, Ordering::Relaxed);
    }

    /// Time since the last successful receive (peer-observed liveness).
    #[must_use]
    pub fn idle_for(&self) -> Duration {
        let now = u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Relaxed)))
    }

    /// Server-initiated teardown (reaper deadline, drain force-close).
    /// Distinguishable from a client fault via [`Self::was_closed`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.inner.shutdown();
    }

    /// Whether [`Self::close`] ran.
    #[must_use]
    pub fn was_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

impl Transport for ActivityTransport {
    fn send(&self, bytes: Bytes) -> Result<(), TransportError> {
        self.inner.send(bytes)
    }

    fn recv(&self, deadline: Option<Duration>) -> Result<Bytes, TransportError> {
        let got = self.inner.recv(deadline)?;
        self.stamp();
        Ok(got)
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn reconnect(&self) -> Result<(), TransportError> {
        self.inner.reconnect()
    }

    fn supports_reconnect(&self) -> bool {
        self.inner.supports_reconnect()
    }

    fn descriptor(&self) -> String {
        format!("activity({})", self.inner.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_transport::mem_pair;

    #[test]
    fn traffic_resets_the_idle_clock_and_close_is_attributed() {
        let (a, b) = mem_pair();
        let a = ActivityTransport::new(Arc::new(a));
        std::thread::sleep(Duration::from_millis(20));
        assert!(a.idle_for() >= Duration::from_millis(10));
        // Our own sends are NOT activity (they may be probes to a dead
        // peer); only receiving from the peer resets the clock.
        a.send(Bytes::from_static(b"x")).unwrap();
        assert!(a.idle_for() >= Duration::from_millis(10));
        assert_eq!(&b.recv(Some(Duration::from_millis(50))).unwrap()[..], b"x");
        b.send(Bytes::from_static(b"y")).unwrap();
        assert_eq!(&a.recv(Some(Duration::from_millis(50))).unwrap()[..], b"y");
        assert!(a.idle_for() < Duration::from_millis(10));
        assert!(!a.was_closed());
        a.close();
        assert!(a.was_closed());
        assert_eq!(b.recv(Some(Duration::from_millis(50))), Err(TransportError::Disconnected));
    }
}
