//! Pluggable connection sources for the server's accept loop.
//!
//! The accept loop owns its [`Acceptor`] exclusively (`&mut self`), so
//! implementations need no internal locking. [`TcpAcceptor`] serves real
//! deployments; [`MemAcceptor`]/[`MemConnector`] give tests and benches an
//! in-process many-client harness over [`aq2pnn_transport::MemTransport`].

use aq2pnn_transport::{mem_pair, TcpConfig, TcpTransport, Transport, TransportError};
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of freshly connected client transports.
pub trait Acceptor: Send {
    /// Waits up to `deadline` for the next client connection.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when no client arrived in time (the
    /// accept loop treats this as "poll again"), or
    /// [`TransportError::Disconnected`] when the underlying listener is
    /// gone (the accept loop exits).
    fn accept(&mut self, deadline: Duration) -> Result<Arc<dyn Transport>, TransportError>;

    /// Human-readable description for diagnostics.
    fn descriptor(&self) -> String;
}

/// Accepts clients on a TCP listening socket.
pub struct TcpAcceptor {
    listener: TcpListener,
    cfg: TcpConfig,
}

impl TcpAcceptor {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`]-mapped bind failures.
    pub fn bind(addr: &str, cfg: TcpConfig) -> Result<TcpAcceptor, TransportError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| TransportError::Corrupt(format!("bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TransportError::Corrupt(format!("nonblocking: {e}")))?;
        Ok(TcpAcceptor { listener, cfg })
    }

    /// The bound local address (the ephemeral port after `bind(":0")`).
    ///
    /// # Errors
    ///
    /// Mapped OS failures querying the socket name.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.listener.local_addr().map_err(|e| TransportError::Corrupt(format!("local_addr: {e}")))
    }
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self, deadline: Duration) -> Result<Arc<dyn Transport>, TransportError> {
        // Nonblocking accept + bounded poll: the accept loop stays
        // responsive to shutdown without dedicating a waker fd.
        let until = Instant::now() + deadline;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let t = TcpTransport::from_accepted(stream, self.cfg)?;
                    return Ok(Arc::new(t));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= until {
                        return Err(TransportError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(TransportError::Corrupt(format!("accept: {e}")));
                }
            }
        }
    }

    fn descriptor(&self) -> String {
        match self.listener.local_addr() {
            Ok(a) => format!("tcp-listener:{a}"),
            Err(_) => "tcp-listener".into(),
        }
    }
}

/// In-process acceptor end: the server side of [`mem_acceptor`].
pub struct MemAcceptor {
    rx: mpsc::Receiver<Arc<dyn Transport>>,
}

/// In-process dialer end: clones are handed to client threads.
#[derive(Clone)]
pub struct MemConnector {
    tx: mpsc::Sender<Arc<dyn Transport>>,
}

/// Builds a connected in-process acceptor/connector pair.
#[must_use]
pub fn mem_acceptor() -> (MemAcceptor, MemConnector) {
    let (tx, rx) = mpsc::channel();
    (MemAcceptor { rx }, MemConnector { tx })
}

impl MemConnector {
    /// Dials the server: returns the client half of a fresh in-memory
    /// link whose server half is queued for the accept loop.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the server side is gone.
    pub fn connect(&self) -> Result<Arc<dyn Transport>, TransportError> {
        let (client, server) = mem_pair();
        self.tx
            .send(Arc::new(server) as Arc<dyn Transport>)
            .map_err(|_| TransportError::Disconnected)?;
        Ok(Arc::new(client))
    }
}

impl Acceptor for MemAcceptor {
    fn accept(&mut self, deadline: Duration) -> Result<Arc<dyn Transport>, TransportError> {
        match self.rx.recv_timeout(deadline) {
            Ok(t) => Ok(t),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn descriptor(&self) -> String {
        "mem-acceptor".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_transport::Bytes;

    #[test]
    fn mem_acceptor_hands_out_connected_pairs() {
        let (mut acc, dial) = mem_acceptor();
        assert!(matches!(acc.accept(Duration::from_millis(5)), Err(TransportError::Timeout)));
        let client = dial.connect().unwrap();
        let server = acc.accept(Duration::from_millis(100)).unwrap();
        client.send(Bytes::from_static(b"hi")).unwrap();
        assert_eq!(&server.recv(Some(Duration::from_millis(100))).unwrap()[..], b"hi");
        drop(dial);
        assert!(matches!(acc.accept(Duration::from_millis(5)), Err(TransportError::Disconnected)));
    }

    #[test]
    fn tcp_acceptor_accepts_a_dialer() {
        let mut acc = TcpAcceptor::bind("127.0.0.1:0", TcpConfig::default()).unwrap();
        let addr = acc.local_addr().unwrap();
        assert!(matches!(acc.accept(Duration::from_millis(5)), Err(TransportError::Timeout)));
        let client = TcpTransport::connect(addr, TcpConfig::default()).unwrap();
        let server = acc.accept(Duration::from_secs(2)).unwrap();
        client.send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&server.recv(Some(Duration::from_secs(2))).unwrap()[..], b"ping");
        assert!(!server.supports_reconnect());
    }
}
