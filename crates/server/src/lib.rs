//! Multi-tenant two-party inference service (DESIGN.md §13).
//!
//! The MLaaS deployment shape of the paper's introduction: one *model
//! provider* process serves many concurrent *users*, each user a full
//! two-party secure-inference session. This crate supplies both halves:
//!
//! * [`InferenceServer`] — accepts connections from an [`Acceptor`],
//!   multiplexes each admitted client onto its own session stream (frame
//!   header v2 carries the stream ID), runs the 2PC protocol for every
//!   session on a dedicated [`aq2pnn_parallel::Worker`], and shares one
//!   background [`aq2pnn::dealer::DealerHub`] and one
//!   [`aq2pnn::prepared::PreparedTemplate`] cache across all of them.
//! * [`run_client`] — the thin user-side library: admission handshake,
//!   session establishment, request header, then secure inference over a
//!   [`aq2pnn::prepared::PreparedModel`].
//!
//! # Robustness model
//!
//! The server never trusts a client to behave:
//!
//! * **Bounded admission** — at most `max_sessions + queue_depth` clients
//!   are in flight; everyone else receives a typed `Shed` frame within the
//!   admission deadline and a clean close, never a hang
//!   ([`ClientError::Shed`] on the user side).
//! * **Deadlines** — a per-session wall-clock deadline and an idle timeout
//!   are enforced by a reaper thread that tears down the transport of any
//!   stalled session (slow-loris, black-holed peer, wedged client).
//! * **Fault isolation** — a client that disconnects mid-inference, sends
//!   garbage, or stalls is torn down and its dealer lanes reclaimed while
//!   every other session completes bit-identically; per-stream session
//!   metrics (`session.<id>.*`) keep the blast radius observable.
//! * **Graceful drain** — shutdown sheds new admissions, waits for
//!   in-flight sessions up to a drain budget, then force-closes stragglers
//!   and reports which of the two happened ([`DrainReport`]).
//! * **Live telemetry** — an optional loopback-only admin endpoint
//!   ([`InferenceServer::start_admin`]) serves `/metrics` (schema-v4 text
//!   exposition with SLO quantile gauges), `/sessions` and `/healthz`
//!   while the server runs; every session carries a bounded
//!   [`aq2pnn_obs::FlightRecorder`] that is dumped as
//!   `flightrec-<stream>.json` when the session faults or is reaped.
//!
//! All telemetry carries **public structure only** (stream IDs, counts,
//! shapes, timings) — see DESIGN.md §10.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod acceptor;
mod activity;
mod admin;
mod client;
mod proto;
mod registry;
mod server;
pub mod signal;

pub use acceptor::{mem_acceptor, Acceptor, MemAcceptor, MemConnector, TcpAcceptor};
pub use activity::ActivityTransport;
pub use client::{run_client, ClientConfig, ClientError, ClientRun};
pub use proto::{InferenceRequest, MAX_BATCH, MAX_IMAGES};
pub use registry::{demo_model, ModelRegistry, TemplateCache};
pub use server::{DrainReport, InferenceServer, ServerConfig, ServerCounters, ServerObs};
