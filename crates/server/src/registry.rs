//! The server's model registry and the shared prepared-template cache.

use aq2pnn::prepared::PreparedTemplate;
use aq2pnn::{ProtocolConfig, ProtocolError};
use aq2pnn_nn::quant::QuantModel;
use aq2pnn_parallel::sync::Mutex;
use aq2pnn_sharing::PartyId;
use std::collections::HashMap;
use std::sync::Arc;

/// Models the provider is willing to serve, by public name.
#[derive(Default)]
pub struct ModelRegistry {
    models: HashMap<String, Arc<QuantModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers `model` under `name`, replacing any previous entry.
    pub fn insert(&mut self, name: impl Into<String>, model: QuantModel) {
        self.models.insert(name.into(), Arc::new(model));
    }

    /// Looks a model up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<QuantModel>> {
        self.models.get(name).cloned()
    }

    /// Registered model names, sorted (diagnostics).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.models.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Cache of channel-free [`PreparedTemplate`]s keyed by
/// `(model name, ℓ-profile)`. The expensive offline derivation (weight
/// shares, GEMM layouts, pool geometry) is paid once per key and shared
/// across every concurrent session; each session then runs only the cheap
/// interactive `bind` step.
///
/// Lock class `server.templates` (leaf): held only around the `HashMap`
/// probe/insert — never across the template build itself, so two sessions
/// may race to build the same key and the loser's work is discarded
/// (benign, bounded by the number of distinct keys).
pub struct TemplateCache {
    entries: Mutex<HashMap<(String, u32), Arc<PreparedTemplate>>>,
}

impl Default for TemplateCache {
    fn default() -> Self {
        TemplateCache::new()
    }
}

impl TemplateCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> TemplateCache {
        TemplateCache { entries: Mutex::new(HashMap::new()) }
    }

    /// Number of cached templates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the template for `(name, cfg.q1_bits)`, building it from
    /// `model` on first use.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] from the template build (unsupported op, shape
    /// mismatch).
    pub fn get_or_build(
        &self,
        name: &str,
        id: PartyId,
        cfg: &ProtocolConfig,
        model: &QuantModel,
    ) -> Result<Arc<PreparedTemplate>, ProtocolError> {
        let key = (name.to_owned(), cfg.q1_bits);
        if let Some(hit) = self.entries.lock().get(&key).cloned() {
            return Ok(hit);
        }
        // Built outside the lock: the build walks every layer and must not
        // serialize unrelated sessions (nor trip blocking-while-locked).
        let built = Arc::new(PreparedTemplate::build(id, cfg, model)?);
        let mut entries = self.entries.lock();
        Ok(entries.entry(key).or_insert_with(|| built).clone())
    }
}

/// Builds the deterministic demo dataset + trained/quantized model every
/// process derives identically from fixed seeds (`tiny` or `lenet5`) —
/// the reproduction's stand-in for a provider shipping its public
/// architecture plus the offline share setup. Server binary, example,
/// tests and benches all share this one recipe so client and provider
/// weights always match across process boundaries.
///
/// # Errors
///
/// An unknown name, or a training/quantization failure, as a message.
pub fn demo_model(name: &str) -> Result<(aq2pnn_nn::data::SyntheticVision, QuantModel), String> {
    use aq2pnn_nn::data::SyntheticVision;
    use aq2pnn_nn::float::FloatNet;
    use aq2pnn_nn::quant::QuantConfig;
    use aq2pnn_nn::zoo;
    let (spec, data) = match name {
        "tiny" => (zoo::tiny_cnn(4), SyntheticVision::tiny(4, 2024)),
        "lenet5" => (zoo::lenet5(), SyntheticVision::mnist_like(2024)),
        other => return Err(format!("unknown model {other} (tiny|lenet5)")),
    };
    let mut net = FloatNet::init(&spec, 9).map_err(|e| e.to_string())?;
    net.train_epochs(&data, 3, 16, 0.05);
    let model = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())
        .map_err(|e| e.to_string())?;
    Ok((data, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_nn::data::SyntheticVision;
    use aq2pnn_nn::float::FloatNet;
    use aq2pnn_nn::quant::QuantConfig;
    use aq2pnn_nn::zoo;

    fn tiny_model() -> QuantModel {
        let spec = zoo::tiny_cnn(4);
        let data = SyntheticVision::tiny(4, 2024);
        let mut net = FloatNet::init(&spec, 9).unwrap();
        net.train_epochs(&data, 1, 8, 0.05);
        QuantModel::quantize(&net, &data.calibration(8), &QuantConfig::int8()).unwrap()
    }

    #[test]
    fn cache_hits_share_one_template_per_profile() {
        let model = tiny_model();
        let cache = TemplateCache::new();
        let c16 = ProtocolConfig::paper(16);
        let c14 = ProtocolConfig::paper(14);
        let a = cache.get_or_build("tiny", PartyId::ModelProvider, &c16, &model).unwrap();
        let b = cache.get_or_build("tiny", PartyId::ModelProvider, &c16, &model).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same (model, profile) must share a template");
        let c = cache.get_or_build("tiny", PartyId::ModelProvider, &c14, &model).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "distinct profiles are distinct templates");
        assert_eq!(cache.len(), 2);
    }
}
