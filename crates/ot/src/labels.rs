//! The `e2l(·)` label list.
//!
//! During initialization the two parties "share the modulus (Q), group
//! number (g), and a non-repeating randomly generated element *label* list
//! of length L, on which the inquiry is an injective non-surjective
//! function `e2l(·): x ↦ label(x)`" (paper Sec. 4.3.1). Labels are distinct
//! random exponents; message/choice indices are mapped through the table
//! before being used in the Diffie–Hellman masking, so indices never appear
//! directly in exponents.

use crate::OtGroup;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A shared, per-session injective map from slot indices to random group
/// exponents.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelTable {
    labels: Vec<u64>,
}

/// `Debug` redacts the exponent list. The table is shared setup between
/// the two parties, but it must stay unknown to *third* parties (a
/// transcript observer who learns `e2l` can test candidate choices), so it
/// is treated like every other secret-carrying type: length only.
impl fmt::Debug for LabelTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabelTable")
            .field("len", &self.labels.len())
            .field("labels", &"<redacted>")
            .finish()
    }
}

impl LabelTable {
    /// Formats the table *including its exponents* — test-only opt-in
    /// counterpart of the redacted `Debug` impl.
    #[must_use]
    pub fn fmt_revealed(&self) -> String {
        // secrecy: allow(secret-sink, "explicit opt-in reveal for tests; the redacted Debug impl is the default")
        format!("LabelTable({:?})", self.labels)
    }
    /// Generates `len` distinct random exponents valid for `group`.
    ///
    /// Both parties must call this with identically-seeded RNGs (the table
    /// is public shared setup).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds the group order (distinctness
    /// would be impossible).
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(len: usize, group: &OtGroup, rng: &mut R) -> Self {
        assert!(len > 0, "label table must be non-empty");
        assert!(
            (len as u64) <= group.order(),
            "cannot pick {len} distinct labels from a group of order {}",
            group.order()
        );
        let mut labels = Vec::with_capacity(len);
        let mut seen = std::collections::HashSet::with_capacity(len);
        while labels.len() < len {
            let l = group.sample_exponent(rng);
            if seen.insert(l) {
                labels.push(l);
            }
        }
        LabelTable { labels }
    }

    /// The inquiry `e2l(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the table.
    #[must_use]
    pub fn e2l(&self, x: usize) -> u64 {
        self.labels[x]
    }

    /// Number of labels `L`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the table is empty (never true for a generated table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_distinct_and_in_range() {
        let g = OtGroup::power_of_two(8);
        let t = LabelTable::generate(16, &g, &mut StdRng::seed_from_u64(1));
        let mut seen = std::collections::HashSet::new();
        for i in 0..t.len() {
            let l = t.e2l(i);
            assert!(l < g.order());
            assert!(seen.insert(l), "duplicate label");
        }
    }

    #[test]
    fn same_seed_same_table() {
        let g = OtGroup::power_of_two(12);
        let a = LabelTable::generate(4, &g, &mut StdRng::seed_from_u64(9));
        let b = LabelTable::generate(4, &g, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "distinct labels")]
    fn too_many_labels_panics() {
        let g = OtGroup::power_of_two(3); // order 2
        let _ = LabelTable::generate(3, &g, &mut StdRng::seed_from_u64(1));
    }
}
