//! The four-step OT-flow of paper Fig. 4 / Eqs. 2–5.
//!
//! ## Batched hot path
//!
//! The per-slot sender masks `r̂_i^{e2l(t)}` depend only on the slot index
//! `t`, never on the batch item — they are computed **once per batch** into
//! a key cache instead of once per item. The remaining per-item work (the
//! `(R_k ⊕ r̂_i^{e2l(t)})^{r_i}` encryption powers on the sender, the mask
//! rows and `r̂_i^{r_j}` decryption keys on the receiver) is pure and
//! independent across items, so it fans out across threads via
//! `aq2pnn-parallel` in contiguous chunks. All randomness is drawn
//! *serially before* the fan-out and every output slot is written by
//! exactly one thread, so results are bit-identical at any thread count and
//! the wire traffic (bytes, messages, rounds) never changes.
//!
//! [`send_batch_flat`] is the allocation-lean entry point: callers hand one
//! flat slot buffer plus per-item arities instead of a `Vec` per item.

use crate::{LabelTable, OtGroup};
use aq2pnn_parallel::par_fill_indexed;
use aq2pnn_transport::{Endpoint, TransportError};
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Minimum encrypted slots each worker thread must have to justify a spawn
/// (one slot = one group exponentiation + XOR).
const PAR_MIN_SLOTS: usize = 512;
/// Minimum batch items per worker for the per-item mask/key passes.
const PAR_MIN_ITEMS: usize = 256;

/// Errors surfaced by the OT-flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OtError {
    /// The underlying channel failed.
    Transport(TransportError),
    /// A batch item requested more slots than the label table provides.
    SlotCountExceedsLabels {
        /// Requested slot count `N`.
        n: usize,
        /// Available labels `L`.
        labels: usize,
    },
    /// A receiver choice was outside its slot count.
    ChoiceOutOfRange {
        /// The invalid choice.
        choice: usize,
        /// The slot count of that item.
        n: usize,
    },
}

impl fmt::Display for OtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OtError::Transport(e) => write!(f, "ot transport failure: {e}"),
            OtError::SlotCountExceedsLabels { n, labels } => {
                write!(f, "ot item has {n} slots but the label table only has {labels}")
            }
            OtError::ChoiceOutOfRange { choice, n } => {
                write!(f, "ot choice {choice} out of range for {n} slots")
            }
        }
    }
}

impl Error for OtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OtError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for OtError {
    fn from(e: TransportError) -> Self {
        OtError::Transport(e)
    }
}

/// One receiver-side batch item: pick message `choice` out of `n` offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtChoice {
    /// Index of the message to learn.
    pub choice: usize,
    /// Number of messages the sender offers for this item (`(1, n)`-OT).
    pub n: usize,
}

/// The per-batch key cache: `r̂^{e2l(t)}` for every slot index `t` that
/// appears in the batch. Eliminates the per-item recomputation of the
/// label powers — they depend only on `t`.
fn label_powers(group: &OtGroup, labels: &LabelTable, r_hat: u64, slots: usize) -> Vec<u64> {
    (0..slots).map(|t| group.pow(r_hat, labels.e2l(t))).collect()
}

/// Sender side of a batched `(1, N)`-OT (party *i* of paper Sec. 4.3.1).
///
/// `batch[k]` is the message list of item `k`; messages are `msg_bits`-bit
/// values (the comparison codes of Eq. 6 use 2 bits). The call blocks until
/// the peer runs [`recv_batch`] with matching batch geometry.
///
/// Convenience wrapper over [`send_batch_flat`] for callers holding nested
/// message lists.
///
/// # Errors
///
/// Returns [`OtError`] on channel failure or if any item offers more slots
/// than the label table covers.
pub fn send_batch<R: Rng + ?Sized>(
    ep: &Endpoint,
    group: &OtGroup,
    labels: &LabelTable,
    batch: &[Vec<u64>],
    msg_bits: u32,
    rng: &mut R,
) -> Result<(), OtError> {
    let arity: Vec<usize> = batch.iter().map(Vec::len).collect();
    let msgs: Vec<u64> = batch.iter().flatten().copied().collect();
    send_batch_flat(ep, group, labels, &msgs, &arity, msg_bits, rng)
}

/// Sender side of a batched `(1, N)`-OT over one flat slot buffer: item `k`
/// owns the `arity[k]` consecutive slots of `msgs` after its predecessors —
/// the allocation-lean layout the nonlinear engine builds directly.
///
/// Following paper Eqs. 2–4 the sender
/// ① publishes `r̂_i = g^{r_i}`, ③ receives the receiver's mask matrix `R`
/// and encrypts slot `t` of item `k` under
/// `K_t = (R_k ⊕ r̂_i^{e2l(t)})^{r_i}` — the parenthesisation that makes
/// Eq. 4 unmask correctly (`R_k ⊕ r̂_i^{e2l(choice)} = g^{r_j}` when
/// `t = choice`, hence `K_choice = g^{r_i·r_j} = KEY_j` of Eq. 5).
///
/// The label powers `r̂_i^{e2l(t)}` are cached once per batch and the
/// per-slot encryption fans out across threads; outputs and wire traffic
/// are identical at every thread count.
///
/// # Errors
///
/// Returns [`OtError`] on channel failure or if any item offers more slots
/// than the label table covers.
///
/// # Panics
///
/// Panics if `arity` does not sum to `msgs.len()`.
pub fn send_batch_flat<R: Rng + ?Sized>(
    ep: &Endpoint,
    group: &OtGroup,
    labels: &LabelTable,
    msgs: &[u64],
    arity: &[usize],
    msg_bits: u32,
    rng: &mut R,
) -> Result<(), OtError> {
    let mut max_slots = 0usize;
    let mut total = 0usize;
    for &n in arity {
        if n > labels.len() {
            return Err(OtError::SlotCountExceedsLabels { n, labels: labels.len() });
        }
        max_slots = max_slots.max(n);
        total += n;
    }
    assert_eq!(total, msgs.len(), "arity must sum to the flat slot count");
    let fallback_before = crate::lut_fallback_hits();
    let ebits = group.element_bits();
    // Step ①: r̂_i = g^{r_i}.
    let r_i = group.sample_exponent(rng);
    let r_hat = group.pow_g(r_i);
    ep.send_bits(&[r_hat], ebits)?;

    // Step ③: receive R, encrypt every slot of every item. The slot mask
    // powers are per-batch (key cache); the per-slot `(·)^{r_i}` encryption
    // keys are item-independent work fanned out across threads over the
    // flat output buffer.
    let r_matrix = ep.recv_bits(ebits, arity.len())?;
    let slot_pows = label_powers(group, labels, r_hat, max_slots);
    let offsets = item_offsets(arity);
    let msg_mask = if msg_bits == 64 { u64::MAX } else { (1u64 << msg_bits) - 1 };
    let mut enc = vec![0u64; msgs.len()];
    aq2pnn_parallel::par_chunks_mut(&mut enc, PAR_MIN_SLOTS, |start, chunk| {
        // First item whose slot range covers `start`, then a cursor walk.
        let mut k = offsets.partition_point(|&o| o <= start) - 1;
        for (j, slot) in chunk.iter_mut().enumerate() {
            let idx = start + j;
            while idx >= offsets[k + 1] {
                k += 1;
            }
            let t = idx - offsets[k];
            let key = group.pow(r_matrix[k] ^ slot_pows[t], r_i);
            *slot = (msgs[idx] ^ key) & msg_mask;
        }
    });
    ep.send_bits(&enc, msg_bits)?;
    group.note_batch(
        arity.len(),
        total,
        crate::lut_fallback_hits().saturating_sub(fallback_before),
    );
    Ok(())
}

/// Exclusive prefix sums of `arity` (with a trailing total), mapping item
/// `k` to its slot range `offsets[k]..offsets[k+1]` in the flat buffer.
fn item_offsets(arity: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(arity.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &n in arity {
        acc += n;
        offsets.push(acc);
    }
    offsets
}

/// Receiver side of a batched `(1, N)`-OT (party *j*).
///
/// Learns exactly `batch[k].choice` for each item and nothing else; the
/// sender learns nothing about the choices. Blocks until the peer runs
/// [`send_batch`] / [`send_batch_flat`] with matching geometry.
///
/// The choice-label powers `r̂_i^{e2l(c)}` are cached once per batch; mask
/// construction (Eq. 2) and slot decryption (Eq. 5) fan out across threads
/// after all `r_j` randomness is drawn serially, keeping outputs and wire
/// traffic thread-count-independent.
///
/// # Errors
///
/// Returns [`OtError`] on channel failure or invalid choices.
pub fn recv_batch<R: Rng + ?Sized>(
    ep: &Endpoint,
    group: &OtGroup,
    labels: &LabelTable,
    batch: &[OtChoice],
    msg_bits: u32,
    rng: &mut R,
) -> Result<Vec<u64>, OtError> {
    let mut max_slots = 0usize;
    for c in batch {
        if c.n > labels.len() {
            return Err(OtError::SlotCountExceedsLabels { n: c.n, labels: labels.len() });
        }
        // secrecy: allow(secret-branch, "validates the receiver's own choice against the public slot count; the secret never leaves this party and an abort only reflects the caller's malformed input")
        if c.choice >= c.n {
            return Err(OtError::ChoiceOutOfRange { choice: c.choice, n: c.n });
        }
        max_slots = max_slots.max(c.n);
    }
    let fallback_before = crate::lut_fallback_hits();
    let ebits = group.element_bits();
    // Step ①: receive r̂_i.
    let r_hat = ep.recv_bits(ebits, 1)?[0];

    // Step ②: R_k = r̂_i^{e2l(choice_k)} ⊕ g^{r_j(k)}  (Eq. 2). Randomness
    // first (serial, deterministic draw order), then the pure mask math in
    // parallel.
    let r_j: Vec<u64> = batch.iter().map(|_| group.sample_exponent(rng)).collect();
    let choice_pows = label_powers(group, labels, r_hat, max_slots);
    let mut r_matrix = vec![0u64; batch.len()];
    par_fill_indexed(&mut r_matrix, PAR_MIN_ITEMS, |k| {
        // secrecy: allow(secret-index, "the choice indexes a table local to the receiver, who owns the secret; the wire value R_k is masked by a fresh uniform g^{r_j}")
        choice_pows[batch[k].choice] ^ group.pow_g(r_j[k])
    });
    ep.send_bits(&r_matrix, ebits)?;

    // Step ④: decrypt the chosen slot with KEY_j = r̂_i^{r_j}  (Eq. 5).
    // Only one slot per item is ever used, so the chosen slots are pulled
    // straight out of the packed wire bytes instead of unpacking the
    // sender's entire code matrix.
    let arity: Vec<usize> = batch.iter().map(|c| c.n).collect();
    let offsets = item_offsets(&arity);
    let total = offsets[offsets.len() - 1];
    let enc_bytes = ep.recv()?;
    assert!(
        enc_bytes.len() >= aq2pnn_transport::packed_len(msg_bits, total),
        "short OT ciphertext message: {} bytes for {total} x {msg_bits}-bit slots",
        enc_bytes.len()
    );
    let msg_mask = if msg_bits == 64 { u64::MAX } else { (1u64 << msg_bits) - 1 };
    let mut out = vec![0u64; batch.len()];
    par_fill_indexed(&mut out, PAR_MIN_ITEMS, |k| {
        let key = group.pow(r_hat, r_j[k]);
        let slot =
            aq2pnn_transport::unpack_bits_at(&enc_bytes, msg_bits, offsets[k] + batch[k].choice);
        (slot ^ key) & msg_mask
    });
    group.note_batch(
        batch.len(),
        total,
        crate::lut_fallback_hits().saturating_sub(fallback_before),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_transport::duplex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(bits: u32, nlabels: usize) -> (OtGroup, LabelTable) {
        let g = OtGroup::power_of_two(bits);
        let t = LabelTable::generate(nlabels, &g, &mut StdRng::seed_from_u64(77));
        (g, t)
    }

    fn run_ot(
        group: &OtGroup,
        labels: &LabelTable,
        batch: Vec<Vec<u64>>,
        choices: Vec<OtChoice>,
        msg_bits: u32,
    ) -> Vec<u64> {
        let (a, b) = duplex();
        let (g2, l2) = (group.clone(), labels.clone());
        let h = std::thread::spawn(move || {
            send_batch(&a, &g2, &l2, &batch, msg_bits, &mut StdRng::seed_from_u64(1)).unwrap();
        });
        let out = recv_batch(&b, group, labels, &choices, msg_bits, &mut StdRng::seed_from_u64(2))
            .unwrap();
        h.join().unwrap();
        out
    }

    #[test]
    fn batch_metrics_recorded_per_batch() {
        let (mut g, t) = setup(16, 4);
        let reg = aq2pnn_obs::MetricsRegistry::new();
        g.attach_metrics(&reg);
        // Receiver side uses the attached group; 3 items × 2 slots each.
        let batch = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let choices = (0..3).map(|_| OtChoice { choice: 1, n: 2 }).collect();
        let out = run_ot(&g, &t, batch, choices, 8);
        assert_eq!(out, vec![2, 4, 6]);
        let snap = reg.snapshot();
        // run_ot clones the group for the sender thread, so both sides
        // share the handles: one send batch + one recv batch.
        assert_eq!(snap.counters["ot.batches"], 2);
        assert_eq!(snap.counters["ot.batches_lut"], 2, "ℓ=16 group is LUT-backed");
        assert_eq!(snap.counters["ot.lut_fallback_pows"], 0, "hot path must stay on the LUT");
        let items = &snap.histograms["ot.batch_items"];
        assert_eq!(items.count, 2);
        assert!((items.sum - 6.0).abs() < 1e-9, "3 items per side");
        let slots = &snap.histograms["ot.batch_slots"];
        assert!((slots.sum - 12.0).abs() < 1e-9, "6 slots per side");
    }

    #[test]
    fn one_of_two() {
        let (g, t) = setup(16, 4);
        for choice in 0..2 {
            let out = run_ot(&g, &t, vec![vec![5, 9]], vec![OtChoice { choice, n: 2 }], 8);
            assert_eq!(out, vec![[5u64, 9][choice]]);
        }
    }

    #[test]
    fn one_of_four_all_choices() {
        let (g, t) = setup(16, 4);
        let msgs = vec![1u64, 2, 3, 0];
        for choice in 0..4 {
            let out = run_ot(&g, &t, vec![msgs.clone()], vec![OtChoice { choice, n: 4 }], 2);
            assert_eq!(out, vec![msgs[choice]]);
        }
    }

    #[test]
    fn batched_mixed_arity() {
        let (g, t) = setup(12, 4);
        let batch = vec![vec![10, 20], vec![1, 2, 3, 0], vec![7, 8]];
        let choices = vec![
            OtChoice { choice: 1, n: 2 },
            OtChoice { choice: 2, n: 4 },
            OtChoice { choice: 0, n: 2 },
        ];
        assert_eq!(run_ot(&g, &t, batch, choices, 8), vec![20, 3, 7]);
    }

    /// The nested and flat sender entry points produce byte-identical wire
    /// transcripts given the same randomness.
    #[test]
    fn flat_and_nested_senders_agree() {
        let (g, t) = setup(12, 4);
        let batch = vec![vec![10u64, 20], vec![1, 2, 3, 0], vec![7, 8]];
        let choices = vec![
            OtChoice { choice: 1, n: 2 },
            OtChoice { choice: 2, n: 4 },
            OtChoice { choice: 0, n: 2 },
        ];
        let flat: Vec<u64> = batch.iter().flatten().copied().collect();
        let arity: Vec<usize> = batch.iter().map(Vec::len).collect();
        let (a, b) = duplex();
        let (g2, t2) = (g.clone(), t.clone());
        let h = std::thread::spawn(move || {
            send_batch_flat(&a, &g2, &t2, &flat, &arity, 8, &mut StdRng::seed_from_u64(1)).unwrap();
        });
        let out = recv_batch(&b, &g, &t, &choices, 8, &mut StdRng::seed_from_u64(2)).unwrap();
        h.join().unwrap();
        assert_eq!(out, run_ot(&g, &t, batch, choices, 8));
    }

    #[test]
    fn wide_messages() {
        let (g, t) = setup(16, 2);
        let out = run_ot(
            &g,
            &t,
            vec![vec![0xdead_beef, 0xcafe_f00d]],
            vec![OtChoice { choice: 1, n: 2 }],
            32,
        );
        assert_eq!(out, vec![0xcafe_f00d]);
    }

    #[test]
    fn prime_group_flow() {
        let g = OtGroup::prime((1 << 31) - 1, 7); // Mersenne prime 2^31-1
        let t = LabelTable::generate(4, &g, &mut StdRng::seed_from_u64(5));
        let out = run_ot(&g, &t, vec![vec![11, 22, 33, 44]], vec![OtChoice { choice: 3, n: 4 }], 8);
        assert_eq!(out, vec![44]);
    }

    #[test]
    fn choice_out_of_range_rejected() {
        let (g, t) = setup(8, 4);
        let (_a, b) = duplex();
        let err = recv_batch(
            &b,
            &g,
            &t,
            &[OtChoice { choice: 4, n: 4 }],
            8,
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap_err();
        assert_eq!(err, OtError::ChoiceOutOfRange { choice: 4, n: 4 });
    }

    #[test]
    fn slots_beyond_labels_rejected() {
        let (g, t) = setup(8, 2);
        let (a, _b) = duplex();
        let err = send_batch(&g_send(&a), &g, &t, &[vec![0; 3]], 8, &mut StdRng::seed_from_u64(1))
            .unwrap_err();
        assert_eq!(err, OtError::SlotCountExceedsLabels { n: 3, labels: 2 });
    }

    fn g_send(ep: &Endpoint) -> Endpoint {
        ep.clone()
    }

    /// Non-transferability spot-check: a receiver that tries to decrypt a
    /// slot it did not choose (using its one key) gets garbage, not the
    /// message. (A functional check, not a security proof.)
    #[test]
    fn unchosen_slots_do_not_decrypt() {
        let (g, t) = setup(16, 4);
        let msgs = vec![0x11u64, 0x22, 0x33, 0x44];
        let (a, b) = duplex();
        let (g2, l2, m2) = (g.clone(), t.clone(), msgs.clone());
        let h = std::thread::spawn(move || {
            send_batch(&a, &g2, &l2, &[m2], 8, &mut StdRng::seed_from_u64(1)).unwrap();
        });
        // Reimplement the receiver to capture all ciphertext slots.
        let ebits = g.element_bits();
        let r_hat = b.recv_bits(ebits, 1).unwrap()[0];
        let choice = 1usize;
        let rj = g.sample_exponent(&mut StdRng::seed_from_u64(2));
        let r_val = g.pow(r_hat, t.e2l(choice)) ^ g.pow_g(rj);
        b.send_bits(&[r_val], ebits).unwrap();
        let enc = b.recv_bits(8, 4).unwrap();
        h.join().unwrap();
        let key = g.pow(r_hat, rj);
        // Chosen slot decrypts.
        assert_eq!((enc[choice] ^ key) & 0xff, msgs[choice]);
        // Others do not (with this key).
        let mut wrong = 0;
        for (i, &ct) in enc.iter().enumerate() {
            if i != choice && (ct ^ key) & 0xff != msgs[i] {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 3, "unchosen slots must not decrypt under the receiver key");
    }

    #[test]
    fn communication_scales_with_group_bits() {
        // The ABReLU cost driver: OT traffic is proportional to element bits.
        for &(bits, expected_r_hat_bytes) in &[(16u32, 2u64), (32, 4)] {
            let (g, t) = setup(bits, 4);
            let (a, b) = duplex();
            let (g2, t2) = (g.clone(), t.clone());
            let h = std::thread::spawn(move || {
                send_batch(&a, &g2, &t2, &[vec![1, 2]], 2, &mut StdRng::seed_from_u64(1)).unwrap();
                a.stats()
            });
            recv_batch(
                &b,
                &g,
                &t,
                &[OtChoice { choice: 0, n: 2 }],
                2,
                &mut StdRng::seed_from_u64(2),
            )
            .unwrap();
            let stats = h.join().unwrap();
            // sender sends r_hat (1 elem) + 2 encrypted 2-bit slots (1 byte).
            assert_eq!(stats.bytes_sent, expected_r_hat_bytes + 1, "bits={bits}");
        }
    }
}
