//! The AQ2PNN **OT-flow**: hardware-friendly 1-out-of-N oblivious transfer.
//!
//! Paper Sec. 4.3.1 builds secure two-party comparison on a
//! Diffie–Hellman-style OT (after Chou–Orlandi) over "the multiplicative
//! group of integers modulo Q", with XOR masking and — because the ring is
//! small — exponentiation by look-up table on the FPGA. This crate
//! implements that flow:
//!
//! * [`OtGroup`] — the exponentiation group: either the odd residues mod
//!   `2^ℓ` (the paper's choice; `⟨5⟩` is cyclic of order `2^{ℓ-2}`, and the
//!   power table *is* the hardware LUT) or a prime field for a larger
//!   security margin.
//! * [`LabelTable`] — the "non-repeating randomly generated element label
//!   list" defining the injective, non-surjective `e2l(·)` inquiry.
//! * [`send_batch`] / [`recv_batch`] — the four-step flow of paper Fig. 4 /
//!   Eqs. 2–5: ① sender masks `r̂_i = g^{r_i}`; ② receiver returns
//!   `R = r̂_i^{e2l(choice)} ⊕ g^{r_j}`; ③ sender encrypts every slot `t`
//!   under `K_t = (R ⊕ r̂_i^{e2l(t)})^{r_i}`; ④ receiver decrypts its slot
//!   with `KEY_j = r̂_i^{r_j}`. (Eq. 4 is implemented with the
//!   algebraically-consistent parenthesisation; see [`send_batch`].)
//!
//! **Security scope.** The group is deliberately tiny — it is what the
//! hardware evaluates through a LUT. This is a faithful systems
//! reproduction of the paper's accelerator, not audited cryptography;
//! [`OtGroup::prime`] exists to show the protocol is parametric in the
//! group.
//!
//! # Example
//!
//! ```
//! use aq2pnn_ot::{LabelTable, OtGroup, send_batch, recv_batch, OtChoice};
//! use aq2pnn_transport::duplex;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let group = OtGroup::power_of_two(16);
//! let labels = LabelTable::generate(4, &group, &mut StdRng::seed_from_u64(1));
//! let (a, b) = duplex();
//! let (g2, l2) = (group.clone(), labels.clone());
//!
//! // Sender offers 4 messages; receiver picks index 2 and learns only it.
//! let handle = std::thread::spawn(move || {
//!     let mut rng = StdRng::seed_from_u64(2);
//!     send_batch(&a, &g2, &l2, &[vec![10, 20, 30, 40]], 8, &mut rng)
//! });
//! let mut rng = StdRng::seed_from_u64(3);
//! let got = recv_batch(&b, &group, &labels, &[OtChoice { choice: 2, n: 4 }], 8, &mut rng)?;
//! handle.join().unwrap()?;
//! assert_eq!(got, vec![30]);
//! # Ok::<(), aq2pnn_ot::OtError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod group;
mod labels;

pub use flow::{recv_batch, send_batch, send_batch_flat, OtChoice, OtError};
pub use group::{lut_fallback_hits, OtGroup};
pub use labels::LabelTable;
