//! Property test: the OT-flow's thread fan-out is unobservable.
//!
//! For random batch geometries (mixed arities, message widths, group
//! sizes), running the identical sender/receiver pair at different
//! `AQ2PNN_THREADS` settings must yield bit-identical receiver outputs and
//! byte-identical channel statistics — the parallel engine may never
//! change a single wire byte or result bit.

use aq2pnn_ot::{recv_batch, send_batch_flat, LabelTable, OtChoice, OtGroup};
use aq2pnn_transport::{duplex, ChannelStats};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One full batched OT at a fixed thread count; returns the receiver's
/// messages plus both endpoints' transcripts.
fn run_at(
    threads: &str,
    bits: u32,
    arity: &[usize],
    msgs: &[u64],
    choices: &[OtChoice],
    msg_bits: u32,
    seed: u64,
) -> (Vec<u64>, ChannelStats, ChannelStats) {
    std::env::set_var("AQ2PNN_THREADS", threads);
    let group = OtGroup::power_of_two(bits);
    let labels = LabelTable::generate(4, &group, &mut StdRng::seed_from_u64(77));
    let (a, b) = duplex();
    let (g2, l2) = (group.clone(), labels.clone());
    let (m2, ar2) = (msgs.to_vec(), arity.to_vec());
    let h = std::thread::spawn(move || {
        send_batch_flat(&a, &g2, &l2, &m2, &ar2, msg_bits, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        a.stats()
    });
    let out = recv_batch(&b, &group, &labels, choices, msg_bits, &mut StdRng::seed_from_u64(!seed))
        .unwrap();
    let sender_stats = h.join().unwrap();
    std::env::remove_var("AQ2PNN_THREADS");
    (out, sender_stats, b.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn thread_count_never_changes_outputs_or_traffic(
        (bits, msg_bits, seed, items) in (
            8u32..=16,
            2u32..=16,
            any::<u64>(),
            vec((1usize..=4, any::<u64>(), any::<u64>()), 1..300),
        )
    ) {
        // Build a mixed-arity batch from the drawn geometry.
        let mut arity = Vec::new();
        let mut msgs = Vec::new();
        let mut choices = Vec::new();
        for &(n, fill, pick) in &items {
            arity.push(n);
            for t in 0..n as u64 {
                msgs.push(fill.wrapping_mul(t + 1));
            }
            choices.push(OtChoice { choice: (pick % n as u64) as usize, n });
        }
        let runs: Vec<_> = ["1", "3", "8"]
            .iter()
            .map(|t| run_at(t, bits, &arity, &msgs, &choices, msg_bits, seed))
            .collect();
        // Correctness at every thread count: the receiver learns exactly
        // its chosen slot of every item.
        let mask = if msg_bits == 64 { u64::MAX } else { (1u64 << msg_bits) - 1 };
        let mut offset = 0usize;
        for (k, c) in choices.iter().enumerate() {
            let expect = msgs[offset + c.choice] & mask;
            for (out, _, _) in &runs {
                prop_assert_eq!(out[k], expect, "item {} choice {}", k, c.choice);
            }
            offset += c.n;
        }
        // Invariance: outputs and full transcripts identical across runs.
        let (out0, send0, recv0) = &runs[0];
        for (out, send, recv) in &runs[1..] {
            prop_assert_eq!(out, out0);
            prop_assert_eq!(send, send0);
            prop_assert_eq!(recv, recv0);
        }
    }
}
