//! 2PC linear operators: Conv2D/Linear lowering onto AS-GEMM, the BNReQ
//! requantization, and the AS-ALU pooling sums.
//!
//! Everything here follows the paper's operator decomposition (Sec. 5.1):
//! `2PC-Conv2D` is im2col + [`crate::gemm::secure_matmul`]; `2PC-BNReQ` is
//! one P-C multiplication by `I_m` plus a share truncation by `I_e`
//! (AS-ALU only — **no communication**, which is why the paper's Table 5
//! shows BNReQ barely improving with bit-width); average pooling is an
//! AS-ALU sum plus a dyadic requant.

use crate::gemm::{secure_matmul_expanded, secure_matmul_prepared, secure_matmul_prepared_batch};
use crate::{PartyContext, ProtocolError};
use aq2pnn_nn::quant::Requant;
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::beaver::TripleShare;
use aq2pnn_sharing::AShare;

/// Geometry of a convolution, shared by lowering and cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub pad: usize,
    /// Input spatial dims.
    pub in_hw: (usize, usize),
    /// Output spatial dims.
    pub out_hw: (usize, usize),
}

/// im2col on a share tensor: lowers a CHW feature-map share into the
/// `[out_pixels, in_c·k·k]` patch matrix AS-GEMM consumes. Zero padding is
/// exact on shares (zero is a valid share of zero for both parties).
///
/// # Panics
///
/// Panics if the share length does not match the geometry.
#[must_use]
pub fn im2col(x: &AShare, g: &ConvGeometry) -> AShare {
    AShare::from_tensor(im2col_tensor(x.as_tensor(), g))
}

/// Tensor-level im2col — the public linear `expand` map handed to
/// [`crate::gemm::secure_matmul_expanded`].
///
/// # Panics
///
/// Panics if the tensor length does not match the geometry.
#[must_use]
pub fn im2col_tensor(x: &RingTensor, g: &ConvGeometry) -> RingTensor {
    let (ih, iw) = g.in_hw;
    let (oh, ow) = g.out_hw;
    assert_eq!(x.len(), g.in_c * ih * iw, "im2col input length mismatch");
    let ring = x.ring();
    let cols = g.in_c * g.k * g.k;
    let mut out = vec![0u64; oh * ow * cols];
    let xs = x.as_slice();
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * cols;
            let mut c = 0usize;
            for ic in 0..g.in_c {
                for ky in 0..g.k {
                    let iy = (oy * g.stride + ky) as i64 - g.pad as i64;
                    for kx in 0..g.k {
                        let ix = (ox * g.stride + kx) as i64 - g.pad as i64;
                        out[row + c] = if iy >= 0 && iy < ih as i64 && ix >= 0 && ix < iw as i64 {
                            xs[(ic * ih + iy as usize) * iw + ix as usize]
                        } else {
                            0
                        };
                        c += 1;
                    }
                }
            }
        }
    }
    RingTensor::from_raw(ring, vec![oh * ow, cols], out).expect("consistent geometry")
}

/// 2PC-Conv2D: im2col, AS-GEMM against the `[in_c·k·k, out_c]` weight
/// share, bias add. Returns the flat CHW output share (accumulator scale,
/// on the input's ring).
///
/// # Errors
///
/// Propagates GEMM/transport failures.
pub fn secure_conv2d(
    ctx: &mut PartyContext,
    x: &AShare,
    g: &ConvGeometry,
    w_mat: &AShare,
    bias: &AShare,
) -> Result<AShare, ProtocolError> {
    let geom = *g;
    let out_mat = secure_matmul_expanded(ctx, x, w_mat, move |t| im2col_tensor(t, &geom))?; // [oh*ow, out_c]
    conv_finish(g, &out_mat, bias)
}

/// 2PC-Conv2D online pass for prepared models: like [`secure_conv2d`], but
/// the weight mask is already opened and the triple comes from a resident
/// lane, so only the per-inference `E` exchange touches the wire.
///
/// # Errors
///
/// Propagates GEMM/transport failures.
pub fn secure_conv2d_prepared(
    ctx: &mut PartyContext,
    x: &AShare,
    g: &ConvGeometry,
    w_mat: &AShare,
    bias: &AShare,
    f_open: &RingTensor,
    triple: &TripleShare,
) -> Result<AShare, ProtocolError> {
    let geom = *g;
    let out_mat =
        secure_matmul_prepared(ctx, x, w_mat, f_open, triple, move |t| im2col_tensor(t, &geom))?;
    conv_finish(g, &out_mat, bias)
}

/// Batched 2PC-Conv2D online pass: `b` images' shares concatenated along
/// the leading axis (`[b·in_c, ih, iw]` flat), one triple per image, one
/// `E` round-trip for the whole batch. Output is `[b·out_c, oh, ow]` —
/// at `b = 1` this is exactly [`secure_conv2d_prepared`].
///
/// # Errors
///
/// Propagates GEMM/transport failures.
#[allow(clippy::too_many_arguments)]
pub fn secure_conv2d_prepared_batch(
    ctx: &mut PartyContext,
    x: &AShare,
    b: usize,
    g: &ConvGeometry,
    w_mat: &AShare,
    bias: &AShare,
    f_open: &RingTensor,
    triples: &[TripleShare],
) -> Result<AShare, ProtocolError> {
    let geom = *g;
    let (ih, iw) = g.in_hw;
    let item_shape = [g.in_c, ih, iw];
    let out_mat =
        secure_matmul_prepared_batch(ctx, x, b, &item_shape, w_mat, f_open, triples, move |t| {
            im2col_tensor(t, &geom)
        })?;
    conv_finish_batch(g, b, &out_mat, bias)
}

/// Transposes the `[oh·ow, out_c]` GEMM output to CHW and adds the
/// per-channel bias share.
fn conv_finish(g: &ConvGeometry, out_mat: &AShare, bias: &AShare) -> Result<AShare, ProtocolError> {
    conv_finish_batch(g, 1, out_mat, bias)
}

/// Batched [`conv_finish`]: the GEMM output rows are the `b` images'
/// `[oh·ow, out_c]` blocks stacked; each block is transposed to CHW
/// independently, yielding `[b·out_c, oh, ow]`.
fn conv_finish_batch(
    g: &ConvGeometry,
    b: usize,
    out_mat: &AShare,
    bias: &AShare,
) -> Result<AShare, ProtocolError> {
    let ring = out_mat.ring();
    let (oh, ow) = g.out_hw;
    let m = out_mat.as_tensor().as_slice();
    let bv = bias.as_tensor().as_slice();
    let pixels = oh * ow;
    let per = g.out_c * pixels;
    let mut out = vec![0u64; b * per];
    for i in 0..b {
        let src = i * per;
        let dst = i * per;
        for p in 0..pixels {
            for oc in 0..g.out_c {
                out[dst + oc * pixels + p] = ring.add(m[src + p * g.out_c + oc], bv[oc]);
            }
        }
    }
    Ok(AShare::from_tensor(RingTensor::from_raw(ring, vec![b * g.out_c, oh, ow], out)?))
}

/// 2PC-Linear: a 1×`in_f` AS-GEMM against `[in_f, out_f]` plus bias.
///
/// # Errors
///
/// Propagates GEMM/transport failures.
pub fn secure_linear(
    ctx: &mut PartyContext,
    x: &AShare,
    w_mat: &AShare,
    bias: &AShare,
) -> Result<AShare, ProtocolError> {
    let in_f = x.len();
    let out = secure_matmul_expanded(ctx, x, w_mat, move |t| {
        let mut m = t.clone();
        m.reshape(vec![1, in_f]).expect("row vector");
        m
    })?;
    linear_finish(&out, bias)
}

/// 2PC-Linear online pass for prepared models (see
/// [`secure_conv2d_prepared`]).
///
/// # Errors
///
/// Propagates GEMM/transport failures.
pub fn secure_linear_prepared(
    ctx: &mut PartyContext,
    x: &AShare,
    w_mat: &AShare,
    bias: &AShare,
    f_open: &RingTensor,
    triple: &TripleShare,
) -> Result<AShare, ProtocolError> {
    let in_f = x.len();
    let out = secure_matmul_prepared(ctx, x, w_mat, f_open, triple, move |t| {
        let mut m = t.clone();
        m.reshape(vec![1, in_f]).expect("row vector");
        m
    })?;
    linear_finish(&out, bias)
}

/// Batched 2PC-Linear online pass: `b` input rows concatenated flat
/// (`b · in_f` elements), one triple per row, one `E` round-trip. Output
/// is the flat `[b·out_f]` share — at `b = 1` this is exactly
/// [`secure_linear_prepared`].
///
/// # Errors
///
/// Propagates GEMM/transport failures.
pub fn secure_linear_prepared_batch(
    ctx: &mut PartyContext,
    x: &AShare,
    b: usize,
    w_mat: &AShare,
    bias: &AShare,
    f_open: &RingTensor,
    triples: &[TripleShare],
) -> Result<AShare, ProtocolError> {
    let in_f = x.len() / b;
    let item_shape = [in_f];
    let out =
        secure_matmul_prepared_batch(ctx, x, b, &item_shape, w_mat, f_open, triples, move |t| {
            let mut m = t.clone();
            m.reshape(vec![1, in_f]).expect("row vector");
            m
        })?;
    linear_finish_batch(b, &out, bias)
}

/// Adds the bias share to the flat GEMM output row.
fn linear_finish(out: &AShare, bias: &AShare) -> Result<AShare, ProtocolError> {
    linear_finish_batch(1, out, bias)
}

/// Batched [`linear_finish`]: the bias share is added to each image's
/// output row; the result stays flat (`[b·out_f]`).
fn linear_finish_batch(b: usize, out: &AShare, bias: &AShare) -> Result<AShare, ProtocolError> {
    let ring = out.ring();
    let o = out.as_tensor().as_slice();
    let bv = bias.as_tensor().as_slice();
    let per = o.len() / b;
    // secrecy: allow(secret-index, "`j % per` is the public position within an output row; lengths and batch size are architecture metadata")
    let data: Vec<u64> = o.iter().enumerate().map(|(j, &v)| ring.add(v, bv[j % per])).collect();
    Ok(AShare::from_tensor(RingTensor::from_raw(ring, vec![data.len()], data)?))
}

/// 2PC-BNReQ: requantizes an accumulator-scale share down to the
/// activation carrier `out_ring`, computing `(x · I_m) >> I_e` on shares.
///
/// The P-C multiplication needs `I_m`'s extra magnitude, so the share is
/// first (locally or exactly, per config) widened to a ring that holds the
/// product; when even 63 bits cannot (very wide configs), the input is
/// pre-truncated by the few missing bits, mirroring the DSP48 width limit.
///
/// # Errors
///
/// Propagates share-conversion failures.
pub fn requant_share(
    ctx: &mut PartyContext,
    x: &AShare,
    rq: Requant,
    out_ring: Ring,
) -> Result<AShare, ProtocolError> {
    let in_bits = x.ring().bits();
    let mult_bits = 64 - (rq.mult as u64).leading_zeros();
    let need = in_bits + mult_bits + 1;
    let pre = need.saturating_sub(63).min(rq.shift);
    let x = ctx.truncate_share(x, pre)?;
    let wide = Ring::new(need.min(63).max(in_bits));
    let x = ctx.extend_share(&x, wide)?;
    let prod = x.mul_plain(rq.mult as u64);
    let trunc = ctx.truncate_share(&prod, rq.shift - pre)?;
    Ok(trunc.narrow(out_ring))
}

/// Windowed pooling sum on shares (AS-ALU only): for each output, the sum
/// of its window elements. Used by 2PC-AvgPool (followed by a dyadic
/// requant).
///
/// # Panics
///
/// Panics if the share length does not match the geometry.
#[must_use]
pub fn pool_sum(
    x: &AShare,
    c: usize,
    in_hw: (usize, usize),
    k: usize,
    stride: usize,
    pad: usize,
    out_hw: (usize, usize),
) -> AShare {
    let (ih, iw) = in_hw;
    let (oh, ow) = out_hw;
    assert_eq!(x.len(), c * ih * iw, "pool input length mismatch");
    let ring = x.ring();
    let xs = x.as_tensor().as_slice();
    let mut out = vec![0u64; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0u64;
                for ky in 0..k {
                    let iy = (oy * stride + ky) as i64 - pad as i64;
                    if iy < 0 || iy >= ih as i64 {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as i64 - pad as i64;
                        if ix < 0 || ix >= iw as i64 {
                            continue;
                        }
                        acc = ring.add(acc, xs[(ch * ih + iy as usize) * iw + ix as usize]);
                    }
                }
                out[(ch * oh + oy) * ow + ox] = acc;
            }
        }
    }
    AShare::from_tensor(RingTensor::from_raw(ring, vec![c, oh, ow], out).expect("geometry"))
}

/// Per-channel global sum (for 2PC-GlobalAvgPool).
#[must_use]
pub fn channel_sum(x: &AShare, c: usize, spatial: usize) -> AShare {
    assert_eq!(x.len(), c * spatial, "channel_sum length mismatch");
    let ring = x.ring();
    let xs = x.as_tensor().as_slice();
    let data: Vec<u64> = (0..c)
        .map(|ch| {
            xs[ch * spatial..(ch + 1) * spatial].iter().fold(0u64, |acc, &v| ring.add(acc, v))
        })
        .collect();
    AShare::from_tensor(RingTensor::from_raw(ring, vec![c], data).expect("geometry"))
}

/// Gathers the window member indices of each pooled output — the
/// tournament seeds for 2PC-MaxPool.
#[must_use]
pub fn pool_windows(
    c: usize,
    in_hw: (usize, usize),
    k: usize,
    stride: usize,
    pad: usize,
    out_hw: (usize, usize),
) -> Vec<Vec<usize>> {
    let (ih, iw) = in_hw;
    let (oh, ow) = out_hw;
    let mut windows = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut win = Vec::with_capacity(k * k);
                for ky in 0..k {
                    let iy = (oy * stride + ky) as i64 - pad as i64;
                    if iy < 0 || iy >= ih as i64 {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as i64 - pad as i64;
                        if ix < 0 || ix >= iw as i64 {
                            continue;
                        }
                        win.push((ch * ih + iy as usize) * iw + ix as usize);
                    }
                }
                windows.push(win);
            }
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn im2col_matches_reference() {
        let ring = Ring::new(16);
        let g = ConvGeometry {
            in_c: 2,
            out_c: 1,
            k: 2,
            stride: 1,
            pad: 0,
            in_hw: (3, 3),
            out_hw: (2, 2),
        };
        let vals: Vec<i64> = (0..18).collect();
        let t = RingTensor::from_signed(ring, vec![2, 3, 3], &vals).unwrap();
        let x = AShare::from_tensor(t);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[4, 8]);
        // First output pixel gathers (0,1,3,4) of channel 0 and (9,10,12,13) of channel 1.
        let row0: Vec<i64> =
            cols.as_tensor().as_slice()[..8].iter().map(|&v| ring.decode_signed(v)).collect();
        assert_eq!(row0, vec![0, 1, 3, 4, 9, 10, 12, 13]);
    }

    #[test]
    fn im2col_pads_with_zero() {
        let ring = Ring::new(16);
        let g = ConvGeometry {
            in_c: 1,
            out_c: 1,
            k: 3,
            stride: 1,
            pad: 1,
            in_hw: (2, 2),
            out_hw: (2, 2),
        };
        let t = RingTensor::from_signed(ring, vec![1, 2, 2], &[1, 2, 3, 4]).unwrap();
        let cols = im2col(&AShare::from_tensor(t), &g);
        // Output (0,0) window covers top-left corner: 5 zeros.
        let row0: Vec<i64> =
            cols.as_tensor().as_slice()[..9].iter().map(|&v| ring.decode_signed(v)).collect();
        assert_eq!(row0, vec![0, 0, 0, 0, 1, 2, 0, 3, 4]);
    }

    #[test]
    fn pool_sum_matches_reference() {
        let ring = Ring::new(16);
        let t = RingTensor::from_signed(ring, vec![1, 2, 2], &[1, 2, 3, 4]).unwrap();
        let s = pool_sum(&AShare::from_tensor(t), 1, (2, 2), 2, 2, 0, (1, 1));
        assert_eq!(s.as_tensor().to_signed(), vec![10]);
    }

    #[test]
    fn channel_sum_matches_reference() {
        let ring = Ring::new(16);
        let t = RingTensor::from_signed(ring, vec![2, 2], &[1, 2, 10, 20]).unwrap();
        let s = channel_sum(&AShare::from_tensor(t), 2, 2);
        assert_eq!(s.as_tensor().to_signed(), vec![3, 30]);
    }

    #[test]
    fn pool_windows_counts() {
        let w = pool_windows(1, (4, 4), 2, 2, 0, (2, 2));
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|win| win.len() == 4));
        // ResNet stem style: padded 3x3/s2 windows truncate at the border.
        let w = pool_windows(1, (4, 4), 3, 2, 1, (2, 2));
        assert_eq!(w[0].len(), 4); // corner window loses the padded row/col
    }

    #[test]
    fn requant_share_matches_plaintext_dyadic() {
        use crate::sim::run_pair;
        use crate::ProtocolConfig;
        use aq2pnn_sharing::PartyId;
        let cfg = ProtocolConfig::exact(16);
        let q2 = cfg.q2();
        let rq = Requant { mult: 19661, shift: 18 }; // ≈ 0.075
        let vals = vec![40000i64, -40000, 1234, -1, 0];
        let mut rng = StdRng::seed_from_u64(5);
        let t = RingTensor::from_signed(q2, vec![vals.len()], &vals).unwrap();
        let (s0, s1) = AShare::share(&t, &mut rng);
        let q1 = cfg.q1();
        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let mine = match ctx.id {
                PartyId::User => s0.clone(),
                PartyId::ModelProvider => s1.clone(),
            };
            requant_share(ctx, &mine, rq, q1).unwrap()
        });
        let rec = AShare::recover(&o0, &o1).unwrap();
        let expect: Vec<i64> = vals.iter().map(|&v| rq.apply(v)).collect();
        assert_eq!(rec.to_signed(), expect);
    }
}
