//! AS-GEMM: arithmetic-share general matrix multiplication (paper
//! Sec. 4.1.2, Figs. 2–3).
//!
//! Ciphertext×ciphertext multiplication opens the Beaver masks
//! `E = IN − A`, `F = W − B` and evaluates paper Eq. 1 locally:
//!
//! ```text
//! OUT_i = −i·E⊗F + IN_i⊗F + E⊗W_i + Z_i      (i ∈ {0, 1})
//! ```
//!
//! The hardware realizes this with a `BLOCK_IN × BLOCK_OUT` array of C-C
//! multiplication units at initiation interval 1; functionally the array
//! computes exactly [`secure_matmul`], and [`cc_mul_unit`] is the scalar
//! Fig. 2(b) unit used by the worked example of Fig. 3.

use crate::{PartyContext, ProtocolError};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::beaver::{ring_matmul, TripleShare};
use aq2pnn_sharing::{AShare, PartyId};

/// The scalar C-C multiplication unit of paper Fig. 2(b):
/// `−i·e·f + in_i·f + e·w_i + z_i` on the ring.
#[must_use]
pub fn cc_mul_unit(
    ring: Ring,
    party: PartyId,
    in_i: u64,
    w_i: u64,
    e: u64,
    f: u64,
    z_i: u64,
) -> u64 {
    let ef = ring.mul(e, f);
    let neg_ief = if party.index() == 1 { ring.neg(ef) } else { 0 };
    let mut acc = neg_ief;
    acc = ring.add(acc, ring.mul(in_i, f));
    acc = ring.add(acc, ring.mul(e, w_i));
    ring.add(acc, z_i)
}

/// Secure matrix multiplication `⟦OUT⟧ ← ⟦IN⟧ ⊗ ⟦W⟧` over additive shares.
///
/// Consumes one matrix Beaver triple from the party's dealer stream and
/// one round of simultaneous exchange (the masked `E` and `F` matrices,
/// sent together, bit-packed at the ring width — the conv-layer "Data
/// Exchange" of paper Sec. 5.1).
///
/// Both parties must call this in lockstep with share tensors of matching
/// shapes: `in_share [m,k]`, `w_share [k,n]`.
///
/// # Errors
///
/// Returns [`ProtocolError::Shape`] on malformed operands,
/// [`ProtocolError::Transport`] if the peer disconnects, or
/// [`ProtocolError::Desync`] if the peer's message has the wrong size.
pub fn secure_matmul(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    let (ishape, wshape) = (in_share.shape(), w_share.shape());
    if ishape.len() != 2 || wshape.len() != 2 || ishape[1] != wshape[0] || ring != w_share.ring() {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: ishape.to_vec(),
            rhs: wshape.to_vec(),
        }));
    }
    let (m, k, n) = (ishape[0], ishape[1], wshape[1]);

    // Offline material.
    let triple = ctx.next_matmul_triple(ring, m, k, n);

    // ⟦E⟧ = ⟦IN⟧ − ⟦A⟧, ⟦F⟧ = ⟦W⟧ − ⟦B⟧; open both in one exchange.
    let e_share = in_share.as_tensor().sub(&triple.a)?;
    let f_share = w_share.as_tensor().sub(&triple.b)?;
    let mut payload = Vec::with_capacity(m * k + k * n);
    payload.extend_from_slice(e_share.as_slice());
    payload.extend_from_slice(f_share.as_slice());
    let peer = ctx.ep.exchange_bits(&payload, ring.bits(), payload.len())?;
    if peer.len() != payload.len() {
        return Err(ProtocolError::Desync(format!(
            "gemm mask exchange: expected {} elements, got {}",
            payload.len(),
            peer.len()
        )));
    }
    let e = RingTensor::from_raw(
        ring,
        vec![m, k],
        e_share.as_slice().iter().zip(&peer[..m * k]).map(|(&a, &b)| ring.add(a, b)).collect(),
    )?;
    let f = RingTensor::from_raw(
        ring,
        vec![k, n],
        f_share.as_slice().iter().zip(&peer[m * k..]).map(|(&a, &b)| ring.add(a, b)).collect(),
    )?;

    // Eq. 1, evaluated matrix-wise.
    let in_f = ring_matmul(in_share.as_tensor(), &f)?;
    let e_w = ring_matmul(&e, w_share.as_tensor())?;
    let mut out = in_f.add(&e_w)?.add(&triple.z)?;
    if ctx.id.index() == 1 {
        let ef = ring_matmul(&e, &f)?;
        out = out.sub(&ef)?;
    }
    Ok(AShare::from_tensor(out))
}

/// Structured AS-GEMM with an offline weight mask:
/// `⟦OUT⟧ = expand(⟦IN⟧) ⊗ ⟦W⟧` where `expand` is a public linear map
/// (im2col for convolutions, identity for fully-connected layers).
///
/// Two communication refinements over [`secure_matmul`], both from the
/// paper (Sec. 4.1.2):
///
/// * the input mask `E = IN − A` is exchanged at **feature-map size** and
///   expanded locally — im2col's `k²` duplication never hits the wire;
/// * the weight mask `F = W − B` is static per model, so its one-time
///   opening is tagged with the `offline-f` phase (the pre-deployed
///   AS-WGT-MSK buffer) and excluded from online communication counts.
///
/// # Errors
///
/// Propagates transport failures; returns [`ProtocolError::Desync`] on
/// mismatched message sizes.
pub fn secure_matmul_expanded(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
    expand: impl Fn(&RingTensor) -> RingTensor,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    let wshape = w_share.shape().to_vec();
    if wshape.len() != 2 || ring != w_share.ring() {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: in_share.shape().to_vec(),
            rhs: wshape,
        }));
    }

    // Offline material: compact triple with Z = expand(A) ⊗ B.
    let triple = ctx.next_expanded_triple(ring, in_share.shape(), &[wshape[0], wshape[1]], &expand);

    // One-time opening of F = W − B (offline phase, pre-deployed mask).
    let f = open_weight_mask(ctx, w_share, &triple.b)?;

    expanded_online(ctx, in_share, w_share, &f, &triple, expand)
}

/// Opens the weight mask `F = W − B` under the `offline-f` phase — the
/// pre-deployed AS-WGT-MSK buffer. Done once per layer: inline by
/// [`secure_matmul_expanded`], or hoisted to preparation time by
/// [`crate::prepared::PreparedModel`], after which repeated inferences
/// carry zero `offline-f` traffic.
///
/// The caller's current phase is restored before returning.
///
/// # Errors
///
/// Propagates transport failures; returns [`ProtocolError::Desync`] on
/// mismatched message sizes.
pub fn open_weight_mask(
    ctx: &mut PartyContext,
    w_share: &AShare,
    b_share: &RingTensor,
) -> Result<RingTensor, ProtocolError> {
    let ring = w_share.ring();
    // Scope guard (not a manual save/restore pair): the online label comes
    // back even on the error paths below, and nested scopes stay correct.
    let _offline = ctx.ep.phase_scope("offline-f");
    let f_share = w_share.as_tensor().sub(b_share)?;
    let f_peer = ctx.ep.exchange_bits(f_share.as_slice(), ring.bits(), f_share.len())?;
    if f_peer.len() != f_share.len() {
        return Err(ProtocolError::Desync("offline F exchange size mismatch".into()));
    }
    let f = RingTensor::from_raw(
        ring,
        w_share.shape().to_vec(),
        f_share.as_slice().iter().zip(&f_peer).map(|(&a, &b)| ring.add(a, b)).collect(),
    )?;
    Ok(f)
}

/// Online-only structured AS-GEMM for prepared models: the weight mask `F`
/// was opened once at preparation time ([`open_weight_mask`]) and the
/// triple comes from a resident
/// [`aq2pnn_sharing::dealer::TripleLane`], so each call performs only the
/// per-inference `E = IN − A` exchange and the local Eq. 1 evaluation.
///
/// # Errors
///
/// Propagates transport failures; returns [`ProtocolError::Desync`] on
/// mismatched message sizes and [`ProtocolError::Shape`] on malformed
/// operands.
pub fn secure_matmul_prepared(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
    f_open: &RingTensor,
    triple: &TripleShare,
    expand: impl Fn(&RingTensor) -> RingTensor,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    if w_share.shape().len() != 2 || ring != w_share.ring() {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: in_share.shape().to_vec(),
            rhs: w_share.shape().to_vec(),
        }));
    }
    expanded_online(ctx, in_share, w_share, f_open, triple, expand)
}

/// The per-inference core shared by [`secure_matmul_expanded`] and
/// [`secure_matmul_prepared`]: open `E` at feature-map size, expand
/// locally, evaluate Eq. 1.
fn expanded_online(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
    f: &RingTensor,
    triple: &TripleShare,
    expand: impl Fn(&RingTensor) -> RingTensor,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    // Online: open E = IN − A at feature-map size.
    let e_share = in_share.as_tensor().sub(&triple.a)?;
    let e_peer = ctx.ep.exchange_bits(e_share.as_slice(), ring.bits(), e_share.len())?;
    if e_peer.len() != e_share.len() {
        return Err(ProtocolError::Desync("online E exchange size mismatch".into()));
    }
    let e_img = RingTensor::from_raw(
        ring,
        in_share.shape().to_vec(),
        e_share.as_slice().iter().zip(&e_peer).map(|(&a, &b)| ring.add(a, b)).collect(),
    )?;

    // Local expansion and Eq. 1.
    let e = expand(&e_img);
    let in_cols = expand(in_share.as_tensor());
    let in_f = ring_matmul(&in_cols, f)?;
    let e_w = ring_matmul(&e, w_share.as_tensor())?;
    let mut out = in_f.add(&e_w)?.add(&triple.z)?;
    if ctx.id.index() == 1 {
        out = out.sub(&ring_matmul(&e, f)?)?;
    }
    Ok(AShare::from_tensor(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_pair;
    use crate::ProtocolConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn share_pair(ring: Ring, shape: Vec<usize>, vals: &[i64], seed: u64) -> (AShare, AShare) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = RingTensor::from_signed(ring, shape, vals).unwrap();
        AShare::share(&t, &mut rng)
    }

    #[test]
    fn cc_mul_unit_matches_fig3_structure() {
        // rec(out) must equal rec(in)·rec(w) for any sharing and triple.
        let ring = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let (x, w) = (ring.sample(&mut rng), ring.sample(&mut rng));
            let (a, b) = (ring.sample(&mut rng), ring.sample(&mut rng));
            let z = ring.mul(a, b);
            // Shares.
            let (xi, ai, wi, zi) = (
                ring.sample(&mut rng),
                ring.sample(&mut rng),
                ring.sample(&mut rng),
                ring.sample(&mut rng),
            );
            let (xj, aj, wj, zj) =
                (ring.sub(x, xi), ring.sub(a, ai), ring.sub(w, wi), ring.sub(z, zi));
            let e = ring.sub(x, a);
            let f = ring.sub(w, b);
            let oi = cc_mul_unit(ring, PartyId::User, xi, wi, e, f, zi);
            let oj = cc_mul_unit(ring, PartyId::ModelProvider, xj, wj, e, f, zj);
            assert_eq!(ring.add(oi, oj), ring.mul(x, w));
            let _ = (ai, aj); // masks only enter through e
        }
    }

    #[test]
    fn secure_matmul_matches_plaintext() {
        let cfg = ProtocolConfig::paper(16);
        let ring = cfg.q1();
        let a_vals: Vec<i64> = (0..6).map(|i| i * 3 - 7).collect(); // 2x3
        let b_vals: Vec<i64> = (0..12).map(|i| 5 - i).collect(); // 3x4
        let (a0, a1) = share_pair(ring, vec![2, 3], &a_vals, 11);
        let (b0, b1) = share_pair(ring, vec![3, 4], &b_vals, 12);

        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let (ins, ws) = match ctx.id {
                PartyId::User => (a0.clone(), b0.clone()),
                PartyId::ModelProvider => (a1.clone(), b1.clone()),
            };
            secure_matmul(ctx, &ins, &ws).unwrap()
        });

        let rec = AShare::recover(&o0, &o1).unwrap();
        let pa = RingTensor::from_signed(ring, vec![2, 3], &a_vals).unwrap();
        let pb = RingTensor::from_signed(ring, vec![3, 4], &b_vals).unwrap();
        assert_eq!(rec, ring_matmul(&pa, &pb).unwrap());
    }

    #[test]
    fn secure_matmul_counts_mask_exchange_bytes() {
        let cfg = ProtocolConfig::paper(16);
        let ring = cfg.q1();
        let (a0, a1) = share_pair(ring, vec![4, 4], &[1; 16], 3);
        let (b0, b1) = share_pair(ring, vec![4, 4], &[2; 16], 4);
        let (o0, _o1) = run_pair(&cfg, move |ctx| {
            let (ins, ws) = match ctx.id {
                PartyId::User => (a0.clone(), b0.clone()),
                PartyId::ModelProvider => (a1.clone(), b1.clone()),
            };
            let out = secure_matmul(ctx, &ins, &ws).unwrap();
            (out, ctx.ep.stats())
        });
        let (_, stats) = o0;
        // 32 elements (E 16 + F 16) at 16 bits = 64 bytes each way.
        assert_eq!(stats.bytes_sent, 64);
        assert_eq!(stats.bytes_received, 64);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let cfg = ProtocolConfig::paper(16);
        let ring = cfg.q1();
        let (a0, a1) = share_pair(ring, vec![2, 3], &[0; 6], 5);
        let (b0, b1) = share_pair(ring, vec![2, 3], &[0; 6], 6);
        let (r0, _r1) = run_pair(&cfg, move |ctx| {
            let (ins, ws) = match ctx.id {
                PartyId::User => (a0.clone(), b0.clone()),
                PartyId::ModelProvider => (a1.clone(), b1.clone()),
            };
            secure_matmul(ctx, &ins, &ws).is_err()
        });
        assert!(r0);
    }
}
