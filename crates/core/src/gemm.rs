//! AS-GEMM: arithmetic-share general matrix multiplication (paper
//! Sec. 4.1.2, Figs. 2–3).
//!
//! Ciphertext×ciphertext multiplication opens the Beaver masks
//! `E = IN − A`, `F = W − B` and evaluates paper Eq. 1 locally:
//!
//! ```text
//! OUT_i = −i·E⊗F + IN_i⊗F + E⊗W_i + Z_i      (i ∈ {0, 1})
//! ```
//!
//! The hardware realizes this with a `BLOCK_IN × BLOCK_OUT` array of C-C
//! multiplication units at initiation interval 1; functionally the array
//! computes exactly [`secure_matmul`], and [`cc_mul_unit`] is the scalar
//! Fig. 2(b) unit used by the worked example of Fig. 3.

use crate::{PartyContext, ProtocolError};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::beaver::{ring_matmul, TripleShare};
use aq2pnn_sharing::{AShare, PartyId};

/// The scalar C-C multiplication unit of paper Fig. 2(b):
/// `−i·e·f + in_i·f + e·w_i + z_i` on the ring.
#[must_use]
pub fn cc_mul_unit(
    ring: Ring,
    party: PartyId,
    in_i: u64,
    w_i: u64,
    e: u64,
    f: u64,
    z_i: u64,
) -> u64 {
    let ef = ring.mul(e, f);
    let neg_ief = if party.index() == 1 { ring.neg(ef) } else { 0 };
    let mut acc = neg_ief;
    acc = ring.add(acc, ring.mul(in_i, f));
    acc = ring.add(acc, ring.mul(e, w_i));
    ring.add(acc, z_i)
}

/// Secure matrix multiplication `⟦OUT⟧ ← ⟦IN⟧ ⊗ ⟦W⟧` over additive shares.
///
/// Consumes one matrix Beaver triple from the party's dealer stream and
/// one round of simultaneous exchange (the masked `E` and `F` matrices,
/// sent together, bit-packed at the ring width — the conv-layer "Data
/// Exchange" of paper Sec. 5.1).
///
/// Both parties must call this in lockstep with share tensors of matching
/// shapes: `in_share [m,k]`, `w_share [k,n]`.
///
/// # Errors
///
/// Returns [`ProtocolError::Shape`] on malformed operands,
/// [`ProtocolError::Transport`] if the peer disconnects, or
/// [`ProtocolError::Desync`] if the peer's message has the wrong size.
pub fn secure_matmul(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    let (ishape, wshape) = (in_share.shape(), w_share.shape());
    if ishape.len() != 2 || wshape.len() != 2 || ishape[1] != wshape[0] || ring != w_share.ring() {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: ishape.to_vec(),
            rhs: wshape.to_vec(),
        }));
    }
    let (m, k, n) = (ishape[0], ishape[1], wshape[1]);

    // Offline material.
    let triple = ctx.next_matmul_triple(ring, m, k, n);

    // ⟦E⟧ = ⟦IN⟧ − ⟦A⟧, ⟦F⟧ = ⟦W⟧ − ⟦B⟧; open both in one exchange.
    let e_share = in_share.as_tensor().sub(&triple.a)?;
    let f_share = w_share.as_tensor().sub(&triple.b)?;
    let mut payload = Vec::with_capacity(m * k + k * n);
    payload.extend_from_slice(e_share.as_slice());
    payload.extend_from_slice(f_share.as_slice());
    let peer = ctx.ep.exchange_bits(&payload, ring.bits(), payload.len())?;
    if peer.len() != payload.len() {
        return Err(ProtocolError::Desync(format!(
            "gemm mask exchange: expected {} elements, got {}",
            payload.len(),
            peer.len()
        )));
    }
    let e = RingTensor::from_raw(
        ring,
        vec![m, k],
        e_share.as_slice().iter().zip(&peer[..m * k]).map(|(&a, &b)| ring.add(a, b)).collect(),
    )?;
    let f = RingTensor::from_raw(
        ring,
        vec![k, n],
        f_share.as_slice().iter().zip(&peer[m * k..]).map(|(&a, &b)| ring.add(a, b)).collect(),
    )?;

    // Eq. 1, evaluated matrix-wise.
    let in_f = ring_matmul(in_share.as_tensor(), &f)?;
    let e_w = ring_matmul(&e, w_share.as_tensor())?;
    let mut out = in_f.add(&e_w)?.add(&triple.z)?;
    if ctx.id.index() == 1 {
        let ef = ring_matmul(&e, &f)?;
        out = out.sub(&ef)?;
    }
    Ok(AShare::from_tensor(out))
}

/// Structured AS-GEMM with an offline weight mask:
/// `⟦OUT⟧ = expand(⟦IN⟧) ⊗ ⟦W⟧` where `expand` is a public linear map
/// (im2col for convolutions, identity for fully-connected layers).
///
/// Two communication refinements over [`secure_matmul`], both from the
/// paper (Sec. 4.1.2):
///
/// * the input mask `E = IN − A` is exchanged at **feature-map size** and
///   expanded locally — im2col's `k²` duplication never hits the wire;
/// * the weight mask `F = W − B` is static per model, so its one-time
///   opening is tagged with the `offline-f` phase (the pre-deployed
///   AS-WGT-MSK buffer) and excluded from online communication counts.
///
/// # Errors
///
/// Propagates transport failures; returns [`ProtocolError::Desync`] on
/// mismatched message sizes.
pub fn secure_matmul_expanded(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
    expand: impl Fn(&RingTensor) -> RingTensor,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    let wshape = w_share.shape().to_vec();
    if wshape.len() != 2 || ring != w_share.ring() {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: in_share.shape().to_vec(),
            rhs: wshape,
        }));
    }

    // Offline material: compact triple with Z = expand(A) ⊗ B.
    let triple = ctx.next_expanded_triple(ring, in_share.shape(), &[wshape[0], wshape[1]], &expand);

    // One-time opening of F = W − B (offline phase, pre-deployed mask).
    let f = open_weight_mask(ctx, w_share, &triple.b)?;

    expanded_online(ctx, in_share, w_share, &f, &triple, expand)
}

/// Opens the weight mask `F = W − B` under the `offline-f` phase — the
/// pre-deployed AS-WGT-MSK buffer. Done once per layer: inline by
/// [`secure_matmul_expanded`], or hoisted to preparation time by
/// [`crate::prepared::PreparedModel`], after which repeated inferences
/// carry zero `offline-f` traffic.
///
/// The caller's current phase is restored before returning.
///
/// # Errors
///
/// Propagates transport failures; returns [`ProtocolError::Desync`] on
/// mismatched message sizes.
pub fn open_weight_mask(
    ctx: &mut PartyContext,
    w_share: &AShare,
    b_share: &RingTensor,
) -> Result<RingTensor, ProtocolError> {
    let ring = w_share.ring();
    // Scope guard (not a manual save/restore pair): the online label comes
    // back even on the error paths below, and nested scopes stay correct.
    let _offline = ctx.ep.phase_scope("offline-f");
    let f_share = w_share.as_tensor().sub(b_share)?;
    let f_peer = ctx.ep.exchange_bits(f_share.as_slice(), ring.bits(), f_share.len())?;
    if f_peer.len() != f_share.len() {
        return Err(ProtocolError::Desync("offline F exchange size mismatch".into()));
    }
    let f = RingTensor::from_raw(
        ring,
        w_share.shape().to_vec(),
        f_share.as_slice().iter().zip(&f_peer).map(|(&a, &b)| ring.add(a, b)).collect(),
    )?;
    Ok(f)
}

/// Online-only structured AS-GEMM for prepared models: the weight mask `F`
/// was opened once at preparation time ([`open_weight_mask`]) and the
/// triple comes from a resident
/// [`aq2pnn_sharing::dealer::TripleLane`], so each call performs only the
/// per-inference `E = IN − A` exchange and the local Eq. 1 evaluation.
///
/// # Errors
///
/// Propagates transport failures; returns [`ProtocolError::Desync`] on
/// mismatched message sizes and [`ProtocolError::Shape`] on malformed
/// operands.
pub fn secure_matmul_prepared(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
    f_open: &RingTensor,
    triple: &TripleShare,
    expand: impl Fn(&RingTensor) -> RingTensor,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    if w_share.shape().len() != 2 || ring != w_share.ring() {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: in_share.shape().to_vec(),
            rhs: w_share.shape().to_vec(),
        }));
    }
    expanded_online(ctx, in_share, w_share, f_open, triple, expand)
}

/// Batched online AS-GEMM for prepared models: `b` images share **one**
/// `E` exchange (all masks concatenated, one round-trip) and Eq. 1 is then
/// evaluated as a single stacked GEMM whose row axis grows `b×` — the ring
/// kernels see `[b·m, k] ⊗ [k, n]`, so per-call overheads (thread fan-out,
/// round latency) amortize across the batch.
///
/// `in_share` holds the `b` images' shares concatenated (flat,
/// `b · ∏item_shape` elements); `item_shape` is the per-image feature-map
/// shape the triples were drawn at, and `triples` holds one fresh triple
/// per image (stream order = image order — the batched pass consumes the
/// lane exactly as `b` sequential runs would, which is what makes batched
/// logits bit-identical to sequential ones).
///
/// # Errors
///
/// Propagates transport failures; returns [`ProtocolError::Desync`] on
/// mismatched message sizes and [`ProtocolError::Shape`] on malformed
/// operands.
#[allow(clippy::too_many_arguments)]
pub fn secure_matmul_prepared_batch(
    ctx: &mut PartyContext,
    in_share: &AShare,
    b: usize,
    item_shape: &[usize],
    w_share: &AShare,
    f: &RingTensor,
    triples: &[TripleShare],
    expand: impl Fn(&RingTensor) -> RingTensor,
) -> Result<AShare, ProtocolError> {
    let ring = in_share.ring();
    let item: usize = item_shape.iter().product();
    if w_share.shape().len() != 2 || ring != w_share.ring() {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: in_share.shape().to_vec(),
            rhs: w_share.shape().to_vec(),
        }));
    }
    if in_share.len() != b * item || triples.len() != b {
        return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
            lhs: in_share.shape().to_vec(),
            rhs: vec![b, item],
        }));
    }
    let xv = in_share.as_tensor().as_slice();

    // Online: open E = IN − A at feature-map size, all images in one
    // round-trip.
    let mut e_share = vec![0u64; b * item];
    for (i, triple) in triples.iter().enumerate() {
        if triple.a.len() != item {
            return Err(ProtocolError::Shape(aq2pnn_ring::ShapeError::ShapeMismatch {
                lhs: triple.a.shape().to_vec(),
                rhs: item_shape.to_vec(),
            }));
        }
        let a = triple.a.as_slice();
        // secrecy: allow(secret-index, "`i` counts triples — the public batch size — and `item` is the public per-image shape product; only share *values* are secret")
        for j in 0..item {
            e_share[i * item + j] = ring.sub(xv[i * item + j], a[j]);
        }
    }
    let e_peer = ctx.ep.exchange_bits(&e_share, ring.bits(), e_share.len())?;
    if e_peer.len() != e_share.len() {
        return Err(ProtocolError::Desync("online E exchange size mismatch".into()));
    }
    let e_open: Vec<u64> = e_share.iter().zip(&e_peer).map(|(&a, &p)| ring.add(a, p)).collect();

    // Per-image local expansion, stacked along the GEMM row axis, plus the
    // per-image Z shares stacked the same way.
    let mut e_stack: Vec<u64> = Vec::new();
    let mut in_stack: Vec<u64> = Vec::new();
    let mut z_stack: Vec<u64> = Vec::new();
    let mut rows_per_image = 0usize;
    let mut cols = 0usize;
    let n_out = w_share.shape()[1];
    for (i, triple) in triples.iter().enumerate() {
        // secrecy: allow(secret-index, "slice bounds are image offsets from the public batch position `i` and public shape product `item`")
        let e_img = RingTensor::from_raw(
            ring,
            item_shape.to_vec(),
            e_open[i * item..(i + 1) * item].to_vec(),
        )?;
        // secrecy: allow(secret-index, "same public image offsets as the E slice above")
        let x_img =
            RingTensor::from_raw(ring, item_shape.to_vec(), xv[i * item..(i + 1) * item].to_vec())?;
        let e_ex = expand(&e_img);
        let x_ex = expand(&x_img);
        // secrecy: allow(secret-branch, "first-iteration geometry capture; `i` is the public batch position, identical on both parties")
        if i == 0 {
            rows_per_image = e_ex.shape()[0];
            cols = e_ex.shape()[1];
            let total = b * rows_per_image;
            e_stack.reserve_exact(total * cols);
            in_stack.reserve_exact(total * cols);
            z_stack.reserve_exact(total * n_out);
        }
        e_stack.extend_from_slice(e_ex.as_slice());
        in_stack.extend_from_slice(x_ex.as_slice());
        z_stack.extend_from_slice(triple.z.as_slice());
    }
    let e = RingTensor::from_raw(ring, vec![b * rows_per_image, cols], e_stack)?;
    let in_cols = RingTensor::from_raw(ring, vec![b * rows_per_image, cols], in_stack)?;
    let z = RingTensor::from_raw(ring, vec![b * rows_per_image, n_out], z_stack)?;

    // Eq. 1 on the stacked operands. Rows are independent in a GEMM, so
    // the stacked product equals the concatenation of the per-image
    // products bit-for-bit.
    let in_f = ring_matmul(&in_cols, f)?;
    let e_w = ring_matmul(&e, w_share.as_tensor())?;
    let mut out = in_f.add(&e_w)?.add(&z)?;
    if ctx.id.index() == 1 {
        out = out.sub(&ring_matmul(&e, f)?)?;
    }
    Ok(AShare::from_tensor(out))
}

/// The per-inference core shared by [`secure_matmul_expanded`] and
/// [`secure_matmul_prepared`]: the `b = 1` case of
/// [`secure_matmul_prepared_batch`].
fn expanded_online(
    ctx: &mut PartyContext,
    in_share: &AShare,
    w_share: &AShare,
    f: &RingTensor,
    triple: &TripleShare,
    expand: impl Fn(&RingTensor) -> RingTensor,
) -> Result<AShare, ProtocolError> {
    let item_shape = in_share.shape().to_vec();
    secure_matmul_prepared_batch(
        ctx,
        in_share,
        1,
        &item_shape,
        w_share,
        f,
        std::slice::from_ref(triple),
        expand,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_pair;
    use crate::ProtocolConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn share_pair(ring: Ring, shape: Vec<usize>, vals: &[i64], seed: u64) -> (AShare, AShare) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = RingTensor::from_signed(ring, shape, vals).unwrap();
        AShare::share(&t, &mut rng)
    }

    #[test]
    fn cc_mul_unit_matches_fig3_structure() {
        // rec(out) must equal rec(in)·rec(w) for any sharing and triple.
        let ring = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let (x, w) = (ring.sample(&mut rng), ring.sample(&mut rng));
            let (a, b) = (ring.sample(&mut rng), ring.sample(&mut rng));
            let z = ring.mul(a, b);
            // Shares.
            let (xi, ai, wi, zi) = (
                ring.sample(&mut rng),
                ring.sample(&mut rng),
                ring.sample(&mut rng),
                ring.sample(&mut rng),
            );
            let (xj, aj, wj, zj) =
                (ring.sub(x, xi), ring.sub(a, ai), ring.sub(w, wi), ring.sub(z, zi));
            let e = ring.sub(x, a);
            let f = ring.sub(w, b);
            let oi = cc_mul_unit(ring, PartyId::User, xi, wi, e, f, zi);
            let oj = cc_mul_unit(ring, PartyId::ModelProvider, xj, wj, e, f, zj);
            assert_eq!(ring.add(oi, oj), ring.mul(x, w));
            let _ = (ai, aj); // masks only enter through e
        }
    }

    #[test]
    fn secure_matmul_matches_plaintext() {
        let cfg = ProtocolConfig::paper(16);
        let ring = cfg.q1();
        let a_vals: Vec<i64> = (0..6).map(|i| i * 3 - 7).collect(); // 2x3
        let b_vals: Vec<i64> = (0..12).map(|i| 5 - i).collect(); // 3x4
        let (a0, a1) = share_pair(ring, vec![2, 3], &a_vals, 11);
        let (b0, b1) = share_pair(ring, vec![3, 4], &b_vals, 12);

        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let (ins, ws) = match ctx.id {
                PartyId::User => (a0.clone(), b0.clone()),
                PartyId::ModelProvider => (a1.clone(), b1.clone()),
            };
            secure_matmul(ctx, &ins, &ws).unwrap()
        });

        let rec = AShare::recover(&o0, &o1).unwrap();
        let pa = RingTensor::from_signed(ring, vec![2, 3], &a_vals).unwrap();
        let pb = RingTensor::from_signed(ring, vec![3, 4], &b_vals).unwrap();
        assert_eq!(rec, ring_matmul(&pa, &pb).unwrap());
    }

    #[test]
    fn secure_matmul_counts_mask_exchange_bytes() {
        let cfg = ProtocolConfig::paper(16);
        let ring = cfg.q1();
        let (a0, a1) = share_pair(ring, vec![4, 4], &[1; 16], 3);
        let (b0, b1) = share_pair(ring, vec![4, 4], &[2; 16], 4);
        let (o0, _o1) = run_pair(&cfg, move |ctx| {
            let (ins, ws) = match ctx.id {
                PartyId::User => (a0.clone(), b0.clone()),
                PartyId::ModelProvider => (a1.clone(), b1.clone()),
            };
            let out = secure_matmul(ctx, &ins, &ws).unwrap();
            (out, ctx.ep.stats())
        });
        let (_, stats) = o0;
        // 32 elements (E 16 + F 16) at 16 bits = 64 bytes each way.
        assert_eq!(stats.bytes_sent, 64);
        assert_eq!(stats.bytes_received, 64);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let cfg = ProtocolConfig::paper(16);
        let ring = cfg.q1();
        let (a0, a1) = share_pair(ring, vec![2, 3], &[0; 6], 5);
        let (b0, b1) = share_pair(ring, vec![2, 3], &[0; 6], 6);
        let (r0, _r1) = run_pair(&cfg, move |ctx| {
            let (ins, ws) = match ctx.id {
                PartyId::User => (a0.clone(), b0.clone()),
                PartyId::ModelProvider => (a1.clone(), b1.clone()),
            };
            secure_matmul(ctx, &ins, &ws).is_err()
        });
        assert!(r0);
    }
}
