//! # AQ2PNN — two-party privacy-preserving DNN inference with adaptive quantization
//!
//! A from-scratch Rust reproduction of *AQ2PNN: Enabling Two-party
//! Privacy-Preserving Deep Neural Network Inference with Adaptive
//! Quantization* (Luo et al., [MICRO '23]). Two parties — a **user**
//! holding a private input image and a **model provider** holding private
//! weights — jointly run quantized DNN inference so that neither learns the
//! other's secret, with every activation carried on an adaptively-sized
//! ring `Z_{2^ℓ}` to cut communication.
//!
//! This crate is the protocol layer; the substrates live in sibling crates
//! and are re-exported under [`substrate`]:
//!
//! | piece | where |
//! |---|---|
//! | ring arithmetic, share extension analysis | `aq2pnn-ring` |
//! | channels + exact byte accounting | `aq2pnn-transport` |
//! | additive/binary shares, Beaver triples, A2B bit grouping | `aq2pnn-sharing` |
//! | the DH OT-flow (paper Eqs. 2–5) | `aq2pnn-ot` |
//! | quantized models (HAWQ-v3-style BNReQ) | `aq2pnn-nn` |
//!
//! What this crate adds — the paper's contribution:
//!
//! * [`gemm`] — **AS-GEMM** (paper Eq. 1 / Fig. 2): Beaver-triple
//!   ciphertext×ciphertext matrix multiplication.
//! * [`ops`] — 2PC-Conv2D (im2col + AS-GEMM), 2PC-Linear, **2PC-BNReQ**
//!   (P-C multiply + share truncation), pooling and residual adds.
//! * [`abrelu`] — **ABReLU** (paper Sec. 4.4): ReLU without garbled
//!   circuits, via quadrant detection on the top two bits and the
//!   OT-flow group-comparison (SCM, paper Eq. 6 / Figs. 5–7).
//! * [`engine`] — the end-to-end secure inference engine executing an
//!   `aq2pnn_nn::quant::QuantModel` between two parties, with per-operator
//!   communication phases.
//! * [`prepared`] — the offline/online split for repeated inference: a
//!   [`prepared::PreparedModel`] holds weight shares, opened weight masks
//!   and resident triple lanes, so repeated runs pay only the per-input
//!   online cost.
//! * [`planner`] — the adaptive quantization plan: per-layer ring sizes
//!   `Q1` (activation carrier / ABReLU wire width) and `Q2` (MAC ring).
//! * [`instq`] — the INST Q compiler (paper Sec. 4.1.1): lowers a model to
//!   the accelerator instruction stream consumed by the FPGA simulator.
//! * [`sim`] — two-thread harness running both parties over an in-process
//!   duplex link, used by tests, examples and benches. The `_over`
//!   variants ([`sim::run_two_party_over`], [`sim::run_pair_over`]) accept
//!   caller-supplied endpoints, so the same protocol code runs unchanged
//!   over a TCP loopback session or a fault-injected link (see
//!   `aq2pnn_transport`'s session stack and `tests/transport_faults.rs`).
//!
//! # Quickstart
//!
//! ```
//! use aq2pnn::{sim, ProtocolConfig};
//! use aq2pnn_nn::{data::SyntheticVision, float::FloatNet, quant::{QuantConfig, QuantModel}, zoo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Provider side: train + quantize a model (plaintext domain).
//! let data = SyntheticVision::tiny(4, 42);
//! let mut net = FloatNet::init(&zoo::tiny_cnn(4), 7)?;
//! net.train_epochs(&data, 1, 8, 0.05);
//! let model = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())?;
//!
//! // Run one private inference between two in-process parties.
//! let cfg = ProtocolConfig::exact(16);
//! let out = sim::run_two_party(&model, &cfg, &data.test()[0].image, 1)?;
//! assert_eq!(out.logits.len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! [MICRO '23]: https://doi.org/10.1145/3613424.3614297

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abrelu;
mod config;
pub mod dealer;
pub mod engine;
mod error;
pub mod gemm;
pub mod instq;
pub mod ops;
mod oracle;
mod party;
pub mod planner;
pub mod prepared;
pub mod sim;

pub use config::{
    ExtensionMode, PipelineMode, ProtocolConfig, ReluMode, ReluRounds, TruncationMode,
};
pub use error::ProtocolError;
pub use oracle::{IdealOp, IdealOracle};
pub use party::{IoSpan, PartyContext};

/// Re-exports of the substrate crates, so downstream users need only one
/// dependency.
pub mod substrate {
    pub use aq2pnn_nn as nn;
    pub use aq2pnn_obs as obs;
    pub use aq2pnn_ot as ot;
    pub use aq2pnn_ring as ring;
    pub use aq2pnn_sharing as sharing;
    pub use aq2pnn_transport as transport;
}
