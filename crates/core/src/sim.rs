//! Two-thread simulation harness: runs both parties of a protocol over an
//! in-process duplex link. Used by unit tests, integration tests, examples
//! and the benchmark harnesses.

use crate::engine::{run_party, InferenceOutput, PartyInput};
use crate::oracle::IdealOracle;
use crate::{PartyContext, ProtocolConfig, ProtocolError};
use aq2pnn_nn::quant::QuantModel;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::{duplex, ChannelStats};
use std::sync::Arc;

/// Runs `f` as both parties on two threads and returns
/// `(party 0 result, party 1 result)`.
///
/// An [`IdealOracle`] is always provisioned so `Exact` share-conversion
/// configs work transparently.
///
/// # Panics
///
/// Panics if either party's closure panics.
pub fn run_pair<T, F>(cfg: &ProtocolConfig, f: F) -> (T, T)
where
    T: Send + 'static,
    F: Fn(&mut PartyContext) -> T + Send + Sync + 'static,
{
    let (e0, e1) = duplex();
    let oracle = Arc::new(IdealOracle::new(cfg.setup_seed ^ 0x0eac1e));
    let f = Arc::new(f);
    let (cfg1, f1, o1) = (cfg.clone(), Arc::clone(&f), Arc::clone(&oracle));
    let handle = std::thread::spawn(move || {
        let mut ctx = PartyContext::new(PartyId::ModelProvider, e1, cfg1, Some(o1));
        f1(&mut ctx)
    });
    let mut ctx = PartyContext::new(PartyId::User, e0, cfg.clone(), Some(oracle));
    let r0 = f(&mut ctx);
    let r1 = handle.join().expect("party 1 panicked");
    (r0, r1)
}

/// Result of a simulated two-party inference.
#[derive(Debug, Clone)]
pub struct TwoPartyRun {
    /// The recovered integer logits (revealed to both parties at the end).
    pub logits: Vec<i64>,
    /// Communication statistics of party 0 (the user).
    pub user_stats: ChannelStats,
    /// Communication statistics of party 1 (the model provider).
    pub provider_stats: ChannelStats,
}

/// Runs one full secure inference of `model` on `image` between two
/// in-process parties and returns the logits plus per-party traffic.
///
/// `_seed` reserved for future input-sharing randomization (the sharing
/// masks currently derive from `cfg.setup_seed`).
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from either party (party 1's error is
/// surfaced as a panic message if party 0 succeeded).
///
/// # Panics
///
/// Panics if the party threads panic or if the two parties recover
/// different logits (a protocol bug).
pub fn run_two_party(
    model: &QuantModel,
    cfg: &ProtocolConfig,
    image: &[f32],
    _seed: u64,
) -> Result<TwoPartyRun, ProtocolError> {
    let (e0, e1) = duplex();
    let oracle = Arc::new(IdealOracle::new(cfg.setup_seed ^ 0x0eac1e));
    let (cfg1, o1, m1) = (cfg.clone(), Arc::clone(&oracle), model.clone());
    let handle = std::thread::spawn(move || -> Result<InferenceOutput, ProtocolError> {
        let mut ctx = PartyContext::new(PartyId::ModelProvider, e1, cfg1, Some(o1));
        run_party(&mut ctx, &m1, PartyInput::Provider)
    });
    let mut ctx = PartyContext::new(PartyId::User, e0, cfg.clone(), Some(oracle));
    let user = run_party(&mut ctx, model, PartyInput::User(image))?;
    let provider = handle.join().expect("party 1 panicked")?;
    assert_eq!(user.logits, provider.logits, "parties recovered different logits");
    Ok(TwoPartyRun { logits: user.logits, user_stats: user.stats, provider_stats: provider.stats })
}
