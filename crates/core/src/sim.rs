//! Two-thread simulation harness: runs both parties of a protocol over an
//! in-process duplex link — or over any caller-supplied endpoint pair, e.g.
//! a TCP loopback session or a fault-injected link.

use crate::dealer::DealerConfig;
use crate::engine::{run_party, BatchInput, InferenceOutput, PartyInput};
use crate::oracle::IdealOracle;
use crate::prepared::PreparedModel;
use crate::{PartyContext, ProtocolConfig, ProtocolError};
use aq2pnn_nn::quant::QuantModel;
use aq2pnn_obs::{MetricsRegistry, Tracer};
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::{duplex, ChannelStats, Endpoint};
use std::sync::Arc;

/// Observability handles for one party of a traced run. `Tracer` and
/// `MetricsRegistry` are cheap shared handles: clone them into the run and
/// keep the originals to snapshot spans/metrics afterwards.
#[derive(Clone, Default)]
pub struct PartyObs {
    /// Span recorder (disabled by default).
    pub tracer: Tracer,
    /// Metric store (disabled by default).
    pub metrics: MetricsRegistry,
}

impl PartyObs {
    /// Enabled tracer + metrics pair.
    #[must_use]
    pub fn enabled() -> Self {
        PartyObs { tracer: Tracer::new(), metrics: MetricsRegistry::new() }
    }
}

/// Runs `f` as both parties on two threads and returns
/// `(party 0 result, party 1 result)`.
///
/// An [`IdealOracle`] is always provisioned so `Exact` share-conversion
/// configs work transparently.
///
/// # Panics
///
/// Panics if either party's closure panics.
pub fn run_pair<T, F>(cfg: &ProtocolConfig, f: F) -> (T, T)
where
    T: Send + 'static,
    F: Fn(&mut PartyContext) -> T + Send + Sync + 'static,
{
    let (e0, e1) = duplex();
    run_pair_over(e0, e1, cfg, f)
}

/// Like [`run_pair`], but over caller-supplied endpoints — the same
/// protocol code runs unchanged over an in-process link, a TCP loopback
/// session, or a [`aq2pnn_transport::FaultyTransport`] proxy.
///
/// # Panics
///
/// Panics if either party's closure panics.
pub fn run_pair_over<T, F>(e0: Endpoint, e1: Endpoint, cfg: &ProtocolConfig, f: F) -> (T, T)
where
    T: Send + 'static,
    F: Fn(&mut PartyContext) -> T + Send + Sync + 'static,
{
    let oracle = Arc::new(IdealOracle::new(cfg.setup_seed ^ 0x0eac1e));
    let f = Arc::new(f);
    let (cfg1, f1, o1) = (cfg.clone(), Arc::clone(&f), Arc::clone(&oracle));
    let handle = std::thread::spawn(move || {
        let mut ctx = PartyContext::new(PartyId::ModelProvider, e1, cfg1, Some(o1));
        f1(&mut ctx)
    });
    let mut ctx = PartyContext::new(PartyId::User, e0, cfg.clone(), Some(oracle));
    let r0 = f(&mut ctx);
    let r1 = handle.join().expect("party 1 panicked");
    (r0, r1)
}

/// Result of a simulated two-party inference.
#[derive(Debug, Clone)]
pub struct TwoPartyRun {
    /// The recovered integer logits (revealed to both parties at the end).
    pub logits: Vec<i64>,
    /// Communication statistics of party 0 (the user).
    pub user_stats: ChannelStats,
    /// Communication statistics of party 1 (the model provider).
    pub provider_stats: ChannelStats,
}

/// Runs one full secure inference of `model` on `image` between two
/// in-process parties and returns the logits plus per-party traffic.
///
/// `_seed` reserved for future input-sharing randomization (the sharing
/// masks currently derive from `cfg.setup_seed`).
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from either party;
/// [`ProtocolError::Desync`] if the parties recover different logits or a
/// party thread dies.
pub fn run_two_party(
    model: &QuantModel,
    cfg: &ProtocolConfig,
    image: &[f32],
    _seed: u64,
) -> Result<TwoPartyRun, ProtocolError> {
    let (e0, e1) = duplex();
    run_two_party_over(e0, e1, model, cfg, image)
}

/// Like [`run_two_party`], but over caller-supplied endpoints.
///
/// This is the entry point of the fault-tolerance soak tests: hand it
/// endpoints over a [`aq2pnn_transport::Session`] wrapping a
/// [`aq2pnn_transport::FaultyTransport`] and the inference must still
/// complete with logits bit-identical to the in-process run.
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from either party;
/// [`ProtocolError::Desync`] if the parties recover different logits or a
/// party thread dies.
pub fn run_two_party_over(
    e0: Endpoint,
    e1: Endpoint,
    model: &QuantModel,
    cfg: &ProtocolConfig,
    image: &[f32],
) -> Result<TwoPartyRun, ProtocolError> {
    run_two_party_traced(e0, e1, model, cfg, image, PartyObs::default(), PartyObs::default())
}

/// Like [`run_two_party_over`], with per-party observability attached: the
/// protocol opens a span per layer and per stage into each party's tracer
/// and records session/OT metrics into its registry. Pass
/// [`PartyObs::enabled`] handles and snapshot them after the run
/// (`obs.tracer.snapshot()`, `obs.metrics.snapshot()`); disabled handles
/// make this identical to the untraced runner.
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from either party;
/// [`ProtocolError::Desync`] if the parties recover different logits or a
/// party thread dies.
pub fn run_two_party_traced(
    e0: Endpoint,
    e1: Endpoint,
    model: &QuantModel,
    cfg: &ProtocolConfig,
    image: &[f32],
    user_obs: PartyObs,
    provider_obs: PartyObs,
) -> Result<TwoPartyRun, ProtocolError> {
    let oracle = Arc::new(IdealOracle::new(cfg.setup_seed ^ 0x0eac1e));
    let (cfg1, o1, m1) = (cfg.clone(), Arc::clone(&oracle), model.clone());
    let handle = std::thread::spawn(move || -> Result<InferenceOutput, ProtocolError> {
        let mut ctx = PartyContext::new(PartyId::ModelProvider, e1, cfg1, Some(o1));
        ctx.set_obs(provider_obs.tracer, provider_obs.metrics);
        run_party(&mut ctx, &m1, PartyInput::Provider)
    });
    let mut ctx = PartyContext::new(PartyId::User, e0, cfg.clone(), Some(oracle));
    ctx.set_obs(user_obs.tracer, user_obs.metrics);
    // On a party-0 error, return immediately: dropping `ctx` tears the link
    // down, so a provider thread blocked in `recv` wakes with `Disconnected`
    // instead of deadlocking a join here.
    let user = run_party(&mut ctx, model, PartyInput::User(image))?;
    let provider =
        handle.join().map_err(|_| ProtocolError::Desync("party 1 thread panicked".into()))??;
    if user.logits != provider.logits {
        return Err(ProtocolError::Desync(format!(
            "parties recovered different logits ({} vs {} entries{})",
            user.logits.len(),
            provider.logits.len(),
            if user.logits.len() == provider.logits.len() { ", values differ" } else { "" }
        )));
    }
    Ok(TwoPartyRun { logits: user.logits, user_stats: user.stats, provider_stats: provider.stats })
}

/// Result of a simulated batched service run.
#[derive(Debug, Clone)]
pub struct ServiceRun {
    /// Recovered logits, one vector per image, in input order.
    pub logits: Vec<Vec<i64>>,
    /// Communication statistics of party 0 (the user).
    pub user_stats: ChannelStats,
    /// Communication statistics of party 1 (the model provider).
    pub provider_stats: ChannelStats,
}

/// Runs a batched two-party inference service over one in-process session:
/// both parties prepare `model` **once**, optionally spawn a background
/// [`crate::dealer::DealerPool`] (warmed before the first batch when
/// `dealer` is set), and classify `images` in `batch`-sized chunks via
/// [`PreparedModel::run_batch`].
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from either party;
/// [`ProtocolError::Desync`] if the parties recover different logits or a
/// party thread dies.
#[allow(clippy::too_many_arguments)]
pub fn run_two_party_service(
    e0: Endpoint,
    e1: Endpoint,
    model: &QuantModel,
    cfg: &ProtocolConfig,
    images: &[&[f32]],
    batch: usize,
    dealer: Option<DealerConfig>,
    user_obs: PartyObs,
    provider_obs: PartyObs,
) -> Result<ServiceRun, ProtocolError> {
    type PartyResult = Result<(Vec<Vec<i64>>, ChannelStats), ProtocolError>;
    let batch = batch.max(1);
    let count = images.len();
    let oracle = Arc::new(IdealOracle::new(cfg.setup_seed ^ 0x0eac1e));
    let (cfg1, o1, m1) = (cfg.clone(), Arc::clone(&oracle), model.clone());
    let handle = std::thread::spawn(move || -> PartyResult {
        let mut ctx = PartyContext::new(PartyId::ModelProvider, e1, cfg1, Some(o1));
        ctx.set_obs(provider_obs.tracer, provider_obs.metrics);
        let mut prepared = PreparedModel::prepare(&mut ctx, &m1)?;
        let _pool = dealer.map(|d| {
            let pool = prepared.spawn_dealer(&ctx, d);
            let _ = pool.wait_warm(std::time::Duration::from_secs(10));
            pool
        });
        let mut logits = Vec::with_capacity(count);
        let mut done = 0usize;
        while done < count {
            let b = batch.min(count - done);
            let out = prepared.run_batch(&mut ctx, BatchInput::Provider { batch: b })?;
            logits.extend(out.logits);
            done += b;
        }
        Ok((logits, ctx.ep.stats()))
    });
    let mut ctx = PartyContext::new(PartyId::User, e0, cfg.clone(), Some(oracle));
    ctx.set_obs(user_obs.tracer, user_obs.metrics);
    let user: PartyResult = (|| {
        let mut prepared = PreparedModel::prepare(&mut ctx, model)?;
        let _pool = dealer.map(|d| {
            let pool = prepared.spawn_dealer(&ctx, d);
            let _ = pool.wait_warm(std::time::Duration::from_secs(10));
            pool
        });
        let mut logits = Vec::with_capacity(count);
        let mut done = 0usize;
        while done < count {
            let chunk = &images[done..(done + batch).min(count)];
            let out = prepared.run_batch(&mut ctx, BatchInput::User(chunk))?;
            logits.extend(out.logits);
            done += chunk.len();
        }
        Ok((logits, ctx.ep.stats()))
    })();
    // On a party-0 error, drop ctx to tear the link down before joining
    // (same rationale as run_two_party_traced).
    let (user_logits, user_stats) = match user {
        Ok(ok) => ok,
        Err(e) => {
            drop(ctx);
            let _ = handle.join();
            return Err(e);
        }
    };
    let (provider_logits, provider_stats) =
        handle.join().map_err(|_| ProtocolError::Desync("party 1 thread panicked".into()))??;
    if user_logits != provider_logits {
        return Err(ProtocolError::Desync("parties recovered different logits".into()));
    }
    Ok(ServiceRun { logits: user_logits, user_stats, provider_stats })
}
