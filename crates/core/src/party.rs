//! Per-party protocol context.

use crate::oracle::{IdealOp, IdealOracle};
use crate::{ExtensionMode, ProtocolConfig, ProtocolError, TruncationMode};
use aq2pnn_obs::report::{ARG_BYTES_RECV, ARG_BYTES_SENT, ARG_ROUNDS};
use aq2pnn_obs::tracer::SpanId;
use aq2pnn_obs::{ArgValue, MetricsRegistry, Tracer};
use aq2pnn_ot::{LabelTable, OtGroup};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::beaver::TripleShare;
use aq2pnn_sharing::dealer::{TripleDealer, TripleLane};
use aq2pnn_sharing::{trunc, AShare, PartyId};
use aq2pnn_transport::ChannelTotals;
use aq2pnn_transport::Endpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Everything one party needs to run protocol operations: its identity,
/// the channel to the peer, the shared setup (OT group + labels, triple
/// dealer) and its private randomness.
///
/// Both parties must construct their contexts from the *same*
/// [`ProtocolConfig`]; the dealer and label table are derived
/// deterministically from `setup_seed` so the offline material matches.
pub struct PartyContext {
    /// This party's identity.
    pub id: PartyId,
    /// Channel to the peer. Any [`Endpoint`] works: an in-process duplex
    /// half, or `Endpoint::over_transport` atop a reliability session on a
    /// real TCP link — the protocol code is transport-agnostic.
    pub ep: Endpoint,
    /// Session configuration.
    pub cfg: ProtocolConfig,
    /// The OT-flow group (over `Q1`).
    pub group: OtGroup,
    /// The shared `e2l` label table (4 labels — enough for `(1,4)`-OT).
    pub labels: LabelTable,
    /// Party-private randomness.
    pub rng: StdRng,
    /// Span recorder for per-layer / per-stage timelines. Disabled by
    /// default (one branch per call); enable with [`PartyContext::set_obs`].
    pub tracer: Tracer,
    /// Metric store for counters/gauges/histograms. Disabled by default;
    /// enable with [`PartyContext::set_obs`].
    pub metrics: MetricsRegistry,
    dealer: TripleDealer,
    oracle: Option<Arc<IdealOracle>>,
}

/// An open span plus the channel totals at its start; produced by
/// [`PartyContext::span_begin`], consumed by [`PartyContext::span_end`].
#[derive(Debug, Clone, Copy)]
pub struct IoSpan {
    id: Option<SpanId>,
    before: ChannelTotals,
}

impl std::fmt::Debug for PartyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartyContext")
            .field("id", &self.id)
            .field("q1_bits", &self.cfg.q1_bits)
            .field("q2_bits", &self.cfg.q2_bits)
            .finish_non_exhaustive()
    }
}

impl PartyContext {
    /// Builds a context. Pass an [`IdealOracle`] (shared with the peer's
    /// context) when the config uses any `Exact` mode.
    #[must_use]
    pub fn new(
        id: PartyId,
        ep: Endpoint,
        cfg: ProtocolConfig,
        oracle: Option<Arc<IdealOracle>>,
    ) -> Self {
        let group = OtGroup::power_of_two(cfg.q1_bits);
        let mut label_rng = StdRng::seed_from_u64(cfg.setup_seed ^ 0x1abe1);
        let labels = LabelTable::generate(4, &group, &mut label_rng);
        let dealer = TripleDealer::from_seed(cfg.setup_seed ^ 0xdea1e4);
        // Party-private randomness: different per party. (Deterministic in
        // the simulator for reproducibility.)
        let rng = StdRng::seed_from_u64(cfg.setup_seed ^ 0x9a57 ^ id.index());
        PartyContext {
            id,
            ep,
            cfg,
            group,
            labels,
            rng,
            tracer: Tracer::disabled(),
            metrics: MetricsRegistry::disabled(),
            dealer,
            oracle,
        }
    }

    /// Attaches a tracer and metrics registry to this party: protocol code
    /// opens a span per layer and per stage, and the OT group records its
    /// batch metrics. Telemetry carries **public structure only** (shapes,
    /// ring widths, byte/round counts, timings) — see DESIGN.md §10.
    pub fn set_obs(&mut self, tracer: Tracer, metrics: MetricsRegistry) {
        if metrics.is_enabled() {
            self.group.attach_metrics(&metrics);
        }
        self.tracer = tracer;
        self.metrics = metrics;
    }

    /// The activation-carrier ring `Q1`.
    #[must_use]
    pub fn q1(&self) -> Ring {
        self.cfg.q1()
    }

    /// The MAC ring `Q2`.
    #[must_use]
    pub fn q2(&self) -> Ring {
        self.cfg.q2()
    }

    /// Draws this party's half of the next matrix Beaver triple. Both
    /// parties must call in the same order with the same arguments (the
    /// offline AS-CST stream).
    pub fn next_matmul_triple(&mut self, ring: Ring, m: usize, k: usize, n: usize) -> TripleShare {
        let (t0, t1) = self.dealer.matmul_triple(ring, m, k, n);
        match self.id {
            PartyId::User => t0,
            PartyId::ModelProvider => t1,
        }
    }

    /// Draws this party's half of the next structured triple
    /// (`Z = expand(A) ⊗ B`, see
    /// [`TripleDealer::expanded_matmul_triple`]).
    pub fn next_expanded_triple(
        &mut self,
        ring: Ring,
        a_shape: &[usize],
        b_shape: &[usize],
        expand: impl Fn(&RingTensor) -> RingTensor,
    ) -> TripleShare {
        let (t0, t1) = self.dealer.expanded_matmul_triple(ring, a_shape, b_shape, expand);
        match self.id {
            PartyId::User => t0,
            PartyId::ModelProvider => t1,
        }
    }

    /// Creates this party's half of a reusable expanded-triple lane for a
    /// static-shape layer (see [`TripleLane`]) — the offline material a
    /// prepared model keeps resident between inferences. Both parties must
    /// call in the same order with the same arguments.
    pub fn expanded_lane(
        &mut self,
        ring: Ring,
        a_shape: &[usize],
        b_shape: &[usize],
    ) -> TripleLane {
        let (l0, l1) = self.dealer.expanded_lane(ring, a_shape, b_shape);
        match self.id {
            PartyId::User => l0,
            PartyId::ModelProvider => l1,
        }
    }

    /// Draws this party's half of the next elementwise Beaver triple.
    pub fn next_elementwise_triple(&mut self, ring: Ring, shape: &[usize]) -> TripleShare {
        let (t0, t1) = self.dealer.elementwise_triple(ring, shape);
        match self.id {
            PartyId::User => t0,
            PartyId::ModelProvider => t1,
        }
    }

    /// Ring-size extension of a share tensor to `to`, honoring the
    /// configured [`ExtensionMode`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Model`] if `Exact` mode is configured but
    /// no oracle was provided.
    pub fn extend_share(&mut self, share: &AShare, to: Ring) -> Result<AShare, ProtocolError> {
        match self.cfg.extension {
            ExtensionMode::Local => Ok(share.extend_local(to)),
            ExtensionMode::Exact => {
                let t = self.oracle_call(
                    share.as_tensor().clone(),
                    IdealOp::Recast { to_bits: to.bits() },
                )?;
                Ok(AShare::from_tensor(t))
            }
        }
    }

    /// Share truncation by `shift` bits (the ReQ step), honoring the
    /// configured [`TruncationMode`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Model`] if `Exact` mode is configured but
    /// no oracle was provided.
    pub fn truncate_share(&mut self, share: &AShare, shift: u32) -> Result<AShare, ProtocolError> {
        if shift == 0 {
            return Ok(share.clone());
        }
        match self.cfg.truncation {
            TruncationMode::Local => Ok(trunc::truncate_share_local(self.id, share, shift)),
            TruncationMode::Exact => {
                let t = self.oracle_call(share.as_tensor().clone(), IdealOp::Truncate { shift })?;
                Ok(AShare::from_tensor(t))
            }
        }
    }

    /// Opens a span and snapshots the channel totals so [`Self::span_end`]
    /// can attribute the byte/round deltas to it. One branch when tracing
    /// is disabled.
    #[must_use]
    pub fn span_begin(
        &self,
        name: impl Into<String>,
        cat: &str,
        args: &[(&str, ArgValue)],
    ) -> IoSpan {
        if !self.tracer.is_enabled() {
            return IoSpan { id: None, before: ChannelTotals::default() };
        }
        IoSpan { id: Some(self.tracer.begin_with(name, cat, args)), before: self.ep.totals() }
    }

    /// Closes a span opened by [`Self::span_begin`], appending the channel
    /// byte/round deltas measured across it.
    pub fn span_end(&self, span: IoSpan) {
        self.span_end_with(span, &[]);
    }

    /// Like [`Self::span_end`], with extra closing arguments (e.g. the
    /// output shape, known only once the layer has run).
    pub fn span_end_with(&self, span: IoSpan, extra: &[(&str, ArgValue)]) {
        let Some(id) = span.id else { return };
        let d = self.ep.totals().since(&span.before);
        let mut args: Vec<(&str, ArgValue)> = Vec::with_capacity(extra.len() + 3);
        args.extend_from_slice(extra);
        args.push((ARG_BYTES_SENT, d.bytes_sent.into()));
        args.push((ARG_BYTES_RECV, d.bytes_received.into()));
        args.push((ARG_ROUNDS, d.rounds.into()));
        self.tracer.end_with(id, &args);
    }

    fn oracle_call(&self, share: RingTensor, op: IdealOp) -> Result<RingTensor, ProtocolError> {
        let oracle = self.oracle.as_ref().ok_or_else(|| {
            ProtocolError::Model(
                "Exact share-conversion mode requires an IdealOracle (see ProtocolConfig)".into(),
            )
        })?;
        Ok(oracle.call(self.id, share, op))
    }
}
