//! The end-to-end secure inference engine.
//!
//! Executes an [`aq2pnn_nn::quant::QuantModel`] between the two parties,
//! following the paper's per-block workflow (Fig. 8): shares live on the
//! activation carrier `Q1` between operators; each linear operator widens
//! them to the MAC ring `Q2` (ring-size extension, step ④), runs
//! 2PC-Conv2D / 2PC-Linear over AS-GEMM (steps ⑤–⑥), requantizes through
//! 2PC-BNReQ (step ⑦) back to `Q1`, and non-linearities run through
//! ABReLU / the SCM (step ⑨).
//!
//! ## Offline share distribution
//!
//! Weight and input shares are derived from a PRG stream seeded by the
//! session's `setup_seed`: party 0's weight share is pure PRG output (so
//! it never needs — and never sees — the plaintext weights), and party 1
//! holds `w − PRG(seed)`. The input is shared symmetrically in the other
//! direction. This models the paper's pre-deployed AS-WGT / AS-INP
//! buffers; in the simulator both parties receive the same `QuantModel`
//! struct, but the engine reads plaintext weights only on the
//! model-provider side and the plaintext image only on the user side.
//!
//! Communication is tagged per operator (`conv3`, `abrelu7`, …) so the
//! Table 5 operator profile can be read directly off the channel stats.

use crate::abrelu::{abrelu, mux_by_receiver, secure_sign};
use crate::ops::{
    channel_sum, pool_sum, pool_windows, requant_share, secure_linear, ConvGeometry,
};
use crate::{PartyContext, PipelineMode, ProtocolError, ReluMode};
use aq2pnn_nn::quant::{QuantModel, QuantOp};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::{AShare, PartyId};
use aq2pnn_transport::ChannelStats;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

/// What a party brings to the inference.
#[derive(Debug, Clone, Copy)]
pub enum PartyInput<'a> {
    /// Party 0: the private image (float CHW; quantized with the model's
    /// public input scale).
    User(&'a [f32]),
    /// Party 1: contributes the model weights, no runtime input.
    Provider,
}

/// Result of one party's inference run.
#[derive(Debug, Clone)]
pub struct InferenceOutput {
    /// Recovered integer logits (the function output, revealed to both).
    pub logits: Vec<i64>,
    /// This party's channel statistics for the run.
    pub stats: ChannelStats,
}

/// Runs one secure inference as `ctx.id`. Must be called concurrently by
/// both parties over a connected channel pair, with identical `model` and
/// configuration.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on channel failure, desync, or a model the
/// engine cannot lower.
pub fn run_party(
    ctx: &mut PartyContext,
    model: &QuantModel,
    input: PartyInput<'_>,
) -> Result<InferenceOutput, ProtocolError> {
    ctx.ep.reset_stats();
    // Activation carrier: the wide MAC ring in the (default) stay-wide
    // structure, the narrow carrier in the literal Fig. 8 ablation.
    let act_ring = match ctx.cfg.pipeline {
        PipelineMode::StayWide => ctx.q2(),
        PipelineMode::NarrowActivations => ctx.q1(),
    };

    // --- Input sharing (offline-style PRG masks). ---
    ctx.ep.set_phase("input");
    let n_in = model.input_shape.elements();
    let mut in_stream = ChaCha20Rng::seed_from_u64(ctx.cfg.setup_seed ^ 0x1fa7_0001);
    let mask = RingTensor::random(act_ring, vec![n_in], &mut in_stream);
    let x = match (ctx.id, input) {
        (PartyId::User, PartyInput::User(image)) => {
            let qx = model.quantize_input(image);
            let enc = RingTensor::from_signed(act_ring, vec![n_in], &qx)?;
            AShare::from_tensor(enc.sub(&mask)?)
        }
        (PartyId::ModelProvider, PartyInput::Provider) => AShare::from_tensor(mask),
        _ => {
            return Err(ProtocolError::Model(
                "party/input mismatch: user must pass User(image), provider Provider".into(),
            ))
        }
    };

    // --- Walk the model. ---
    let mut wstream = ChaCha20Rng::seed_from_u64(ctx.cfg.setup_seed ^ 0x7e19_0002);
    let mut layer_idx = 0usize;
    let out = exec_ops(ctx, &model.ops, x, &mut wstream, &mut layer_idx)?;

    // --- Reveal the logits. ---
    ctx.ep.set_phase("output");
    let mine = out.as_tensor().as_slice().to_vec();
    let out_ring = out.ring();
    let theirs = ctx.ep.exchange_bits(&mine, out_ring.bits(), mine.len())?;
    if theirs.len() != mine.len() {
        return Err(ProtocolError::Desync("output share length mismatch".into()));
    }
    let logits: Vec<i64> = mine
        .iter()
        .zip(&theirs)
        .map(|(&a, &b)| out_ring.decode_signed(out_ring.add(a, b)))
        .collect();
    Ok(InferenceOutput { logits, stats: ctx.ep.stats() })
}

/// Derives this party's share of a plaintext tensor held by the model
/// provider, consuming the shared PRG stream (both parties must call in
/// lockstep).
fn provider_share(
    ctx: &PartyContext,
    plain: impl Fn() -> RingTensor,
    ring: Ring,
    shape: &[usize],
    stream: &mut ChaCha20Rng,
) -> AShare {
    let mask = RingTensor::random(ring, shape.to_vec(), stream);
    match ctx.id {
        PartyId::User => AShare::from_tensor(mask),
        PartyId::ModelProvider => {
            let p = plain();
            AShare::from_tensor(p.sub(&mask).expect("share shapes agree"))
        }
    }
}

#[allow(clippy::too_many_lines)]
fn exec_ops(
    ctx: &mut PartyContext,
    ops: &[QuantOp],
    mut x: AShare,
    wstream: &mut ChaCha20Rng,
    layer_idx: &mut usize,
) -> Result<AShare, ProtocolError> {
    let q2 = ctx.q2();
    let act_ring = match ctx.cfg.pipeline {
        PipelineMode::StayWide => q2,
        PipelineMode::NarrowActivations => ctx.q1(),
    };
    for op in ops {
        let idx = *layer_idx;
        *layer_idx += 1;
        x = match op {
            QuantOp::Conv2d { in_c, out_c, k, stride, pad, in_hw, out_hw, w, bias, requant } => {
                ctx.ep.set_phase(format!("conv{idx}"));
                let g = ConvGeometry {
                    in_c: *in_c,
                    out_c: *out_c,
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    in_hw: *in_hw,
                    out_hw: *out_hw,
                };
                let kdim = in_c * k * k;
                // Weight matrix [in_c·k·k, out_c] on Q2, transposed from
                // the model's [out_c, in_c·k·k] layout.
                let w_mat = provider_share(
                    ctx,
                    || {
                        let mut data = vec![0u64; kdim * out_c];
                        for oc in 0..*out_c {
                            for kk in 0..kdim {
                                data[kk * out_c + oc] =
                                    q2.encode_signed_wrapping(w[oc * kdim + kk]);
                            }
                        }
                        RingTensor::from_raw(q2, vec![kdim, *out_c], data).expect("geometry")
                    },
                    q2,
                    &[kdim, *out_c],
                    wstream,
                );
                let b_share = provider_share(
                    ctx,
                    || {
                        RingTensor::from_signed(q2, vec![*out_c], bias)
                            .expect("bias length matches")
                    },
                    q2,
                    &[*out_c],
                    wstream,
                );
                let x2 = if x.ring() == q2 { x.clone() } else { ctx.extend_share(&x, q2)? };
                let acc = crate::ops::secure_conv2d(ctx, &x2, &g, &w_mat, &b_share)?;
                ctx.ep.set_phase(format!("bnreq{idx}"));
                requant_share(ctx, &acc, *requant, act_ring)?
            }
            QuantOp::Linear { in_f, out_f, w, bias, requant } => {
                ctx.ep.set_phase(format!("fc{idx}"));
                let w_mat = provider_share(
                    ctx,
                    || {
                        let mut data = vec![0u64; in_f * out_f];
                        for of in 0..*out_f {
                            for i in 0..*in_f {
                                data[i * out_f + of] =
                                    q2.encode_signed_wrapping(w[of * in_f + i]);
                            }
                        }
                        RingTensor::from_raw(q2, vec![*in_f, *out_f], data).expect("geometry")
                    },
                    q2,
                    &[*in_f, *out_f],
                    wstream,
                );
                let b_share = provider_share(
                    ctx,
                    || RingTensor::from_signed(q2, vec![*out_f], bias).expect("bias length"),
                    q2,
                    &[*out_f],
                    wstream,
                );
                let x2 = if x.ring() == q2 { x.clone() } else { ctx.extend_share(&x, q2)? };
                let acc = secure_linear(ctx, &x2, &w_mat, &b_share)?;
                ctx.ep.set_phase(format!("bnreq{idx}"));
                requant_share(ctx, &acc, *requant, act_ring)?
            }
            QuantOp::Relu => {
                ctx.ep.set_phase(format!("abrelu{idx}"));
                abrelu(ctx, &x)?
            }
            QuantOp::MaxPool { k, stride, pad, c, in_hw, out_hw } => {
                ctx.ep.set_phase(format!("maxpool{idx}"));
                let windows = pool_windows(*c, *in_hw, *k, *stride, *pad, *out_hw);
                let out = secure_max_windows(ctx, &x, &windows)?;
                let mut t = out.into_tensor();
                t.reshape(vec![*c, out_hw.0, out_hw.1])?;
                AShare::from_tensor(t)
            }
            QuantOp::AvgPool { k, stride, pad, c, in_hw, out_hw, requant } => {
                ctx.ep.set_phase(format!("avgpool{idx}"));
                let x2 = if x.ring() == q2 { x.clone() } else { ctx.extend_share(&x, q2)? };
                let sums = pool_sum(&x2, *c, *in_hw, *k, *stride, *pad, *out_hw);
                requant_share(ctx, &sums, *requant, act_ring)?
            }
            QuantOp::GlobalAvgPool { c, in_hw, requant } => {
                ctx.ep.set_phase(format!("gap{idx}"));
                let x2 = if x.ring() == q2 { x.clone() } else { ctx.extend_share(&x, q2)? };
                let sums = channel_sum(&x2, *c, in_hw.0 * in_hw.1);
                requant_share(ctx, &sums, *requant, act_ring)?
            }
            QuantOp::Flatten => {
                let mut t = x.into_tensor();
                let n = t.len();
                t.reshape(vec![n])?;
                AShare::from_tensor(t)
            }
            QuantOp::Rescale { requant } => {
                ctx.ep.set_phase(format!("rescale{idx}"));
                let x2 = if x.ring() == q2 { x.clone() } else { ctx.extend_share(&x, q2)? };
                requant_share(ctx, &x2, *requant, act_ring)?
            }
            QuantOp::Residual { main, shortcut } => {
                let m = exec_ops(ctx, main, x.clone(), wstream, layer_idx)?;
                let s = exec_ops(ctx, shortcut, x, wstream, layer_idx)?;
                ctx.ep.set_phase(format!("resadd{idx}"));
                let mut mt = m.into_tensor();
                let st = s.into_tensor();
                if mt.len() != st.len() {
                    return Err(ProtocolError::Model(
                        "residual branches produced different sizes".into(),
                    ));
                }
                let n = mt.len();
                mt.reshape(vec![n])?;
                let mut st2 = st;
                st2.reshape(vec![n])?;
                AShare::from_tensor(mt.add(&st2)?)
            }
        };
    }
    Ok(x)
}

/// Tournament 2PC-MaxPool over precomputed windows: `⌈log₂(k²)⌉` batched
/// comparison rounds, `k²−1` comparisons per output in total.
fn secure_max_windows(
    ctx: &mut PartyContext,
    x: &AShare,
    windows: &[Vec<usize>],
) -> Result<AShare, ProtocolError> {
    let ring = x.ring();
    let xs = x.as_tensor().as_slice();
    // Candidate lists (this party's share values).
    let mut lists: Vec<Vec<u64>> =
        windows.iter().map(|w| w.iter().map(|&i| xs[i]).collect()).collect();
    while lists.iter().any(|l| l.len() > 1) {
        // Pair up within each list.
        let mut a_vals = Vec::new();
        let mut b_vals = Vec::new();
        for l in &lists {
            let pairs = l.len() / 2;
            for p in 0..pairs {
                a_vals.push(l[2 * p]);
                b_vals.push(l[2 * p + 1]);
            }
        }
        let a = AShare::from_tensor(RingTensor::from_raw(ring, vec![a_vals.len()], a_vals)?);
        let b = AShare::from_tensor(RingTensor::from_raw(ring, vec![b_vals.len()], b_vals)?);
        let maxes = secure_max_pairs(ctx, &a, &b)?;
        // Rebuild lists with winners + carried odd elements.
        let mv = maxes.as_tensor().as_slice();
        let mut cursor = 0usize;
        for l in &mut lists {
            let pairs = l.len() / 2;
            let carry = if l.len() % 2 == 1 { Some(l[l.len() - 1]) } else { None };
            let mut next: Vec<u64> = mv[cursor..cursor + pairs].to_vec();
            cursor += pairs;
            if let Some(c) = carry {
                next.push(c);
            }
            *l = next;
        }
    }
    let data: Vec<u64> = lists.iter().map(|l| l[0]).collect();
    Ok(AShare::from_tensor(RingTensor::from_raw(ring, vec![data.len()], data)?))
}

/// Elementwise secure max of two share vectors:
/// `max(a,b) = b + [a−b > 0]·(a−b)`.
fn secure_max_pairs(
    ctx: &mut PartyContext,
    a: &AShare,
    b: &AShare,
) -> Result<AShare, ProtocolError> {
    let d = a.sub(b)?;
    let q1 = ctx.q1();
    let d_cmp = if d.ring() == q1 { d.clone() } else { d.narrow(q1) };
    let mode = ctx.cfg.relu_mode;
    let signs = secure_sign(ctx, &d_cmp, mode)?;
    match mode {
        ReluMode::RevealedSign => {
            let flags = signs.flags.expect("revealed mode yields flags on both sides");
            let ring = a.ring();
            let data: Vec<u64> = a
                .as_tensor()
                .iter()
                .zip(b.as_tensor().iter())
                .zip(&flags)
                .map(|((&av, &bv), &s)| if s == 1 { av } else { bv })
                .collect();
            Ok(AShare::from_tensor(RingTensor::from_raw(ring, vec![data.len()], data)?))
        }
        ReluMode::MaskedMux => {
            let sd = mux_by_receiver(ctx, signs.flags.as_deref(), &d)?;
            b.add(&sd).map_err(ProtocolError::from)
        }
    }
}

/// Convenience: the number of logits the engine will reveal for a model.
#[must_use]
pub fn output_len(model: &QuantModel) -> usize {
    // The last shape-bearing op determines it; fall back to walking ops.
    fn walk(ops: &[QuantOp], mut cur: usize) -> usize {
        for op in ops {
            cur = match op {
                QuantOp::Conv2d { out_c, out_hw, .. } => out_c * out_hw.0 * out_hw.1,
                QuantOp::Linear { out_f, .. } => *out_f,
                QuantOp::MaxPool { c, out_hw, .. } | QuantOp::AvgPool { c, out_hw, .. } => {
                    c * out_hw.0 * out_hw.1
                }
                QuantOp::GlobalAvgPool { c, .. } => *c,
                QuantOp::Residual { main, .. } => walk(main, cur),
                _ => cur,
            };
        }
        cur
    }
    walk(&model.ops, model.input_shape.elements())
}

/// An upper bound on the accumulator magnitude of the widest layer —
/// used by the planner to validate `Q2`.
#[must_use]
pub fn max_fan_in(model: &QuantModel) -> u64 {
    fn walk(ops: &[QuantOp]) -> u64 {
        let mut m = 1u64;
        for op in ops {
            m = m.max(match op {
                QuantOp::Conv2d { in_c, k, .. } => (in_c * k * k) as u64,
                QuantOp::Linear { in_f, .. } => *in_f as u64,
                QuantOp::Residual { main, shortcut } => walk(main).max(walk(shortcut)),
                _ => 1,
            });
        }
        m
    }
    walk(&model.ops)
}
