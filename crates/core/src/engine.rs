//! The end-to-end secure inference engine.
//!
//! Executes an [`aq2pnn_nn::quant::QuantModel`] between the two parties,
//! following the paper's per-block workflow (Fig. 8): shares live on the
//! activation carrier `Q1` between operators; each linear operator widens
//! them to the MAC ring `Q2` (ring-size extension, step ④), runs
//! 2PC-Conv2D / 2PC-Linear over AS-GEMM (steps ⑤–⑥), requantizes through
//! 2PC-BNReQ (step ⑦) back to `Q1`, and non-linearities run through
//! ABReLU / the SCM (step ⑨).
//!
//! ## Offline share distribution
//!
//! Weight and input shares are derived from a PRG stream seeded by the
//! session's `setup_seed`: party 0's weight share is pure PRG output (so
//! it never needs — and never sees — the plaintext weights), and party 1
//! holds `w − PRG(seed)`. The input is shared symmetrically in the other
//! direction. This models the paper's pre-deployed AS-WGT / AS-INP
//! buffers; in the simulator both parties receive the same `QuantModel`
//! struct, but the engine reads plaintext weights only on the
//! model-provider side and the plaintext image only on the user side.
//!
//! The input-independent part of that work — weight share derivation, GEMM
//! layout transposition, triple-lane creation, the one-time `offline-f`
//! weight-mask openings — lives in [`crate::prepared`]; [`run_party`] is a
//! thin [`PreparedModel::prepare`]-then-[`PreparedModel::run`] wrapper, and
//! services running many inferences over one session should prepare once
//! and call [`PreparedModel::run`] per input.
//!
//! Communication is tagged per operator (`conv3`, `abrelu7`, …) so the
//! Table 5 operator profile can be read directly off the channel stats.

use crate::abrelu::{mux_by_receiver, secure_sign};
use crate::prepared::PreparedModel;
use crate::{PartyContext, ProtocolError, ReluMode};
use aq2pnn_nn::quant::{QuantModel, QuantOp};
use aq2pnn_ring::{ct, RingTensor};
use aq2pnn_sharing::AShare;
use aq2pnn_transport::ChannelStats;

/// What a party brings to the inference.
#[derive(Debug, Clone, Copy)]
pub enum PartyInput<'a> {
    /// Party 0: the private image (float CHW; quantized with the model's
    /// public input scale).
    User(&'a [f32]),
    /// Party 1: contributes the model weights, no runtime input.
    Provider,
}

/// Result of one party's inference run.
#[derive(Debug, Clone)]
pub struct InferenceOutput {
    /// Recovered integer logits (the function output, revealed to both).
    pub logits: Vec<i64>,
    /// This party's channel statistics for the run.
    pub stats: ChannelStats,
}

/// What a party brings to a **batched** online pass
/// ([`PreparedModel::run_batch`]): the user its `B` private images, the
/// provider the (public) batch size so both sides walk the same widened
/// shapes.
#[derive(Debug, Clone, Copy)]
pub enum BatchInput<'a> {
    /// Party 0: the private images (float CHW, one slice per image).
    User(&'a [&'a [f32]]),
    /// Party 1: contributes the weights; `batch` must equal the user's
    /// image count (it is public protocol structure, like the model).
    Provider {
        /// Number of images in the batch.
        batch: usize,
    },
}

impl BatchInput<'_> {
    /// The batch size both parties agreed on.
    #[must_use]
    pub fn batch(&self) -> usize {
        match self {
            BatchInput::User(images) => images.len(),
            BatchInput::Provider { batch } => *batch,
        }
    }
}

/// Result of one party's batched inference pass.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Recovered integer logits, one vector per image, in input order.
    pub logits: Vec<Vec<i64>>,
    /// This party's channel statistics (the endpoint's running total, as
    /// with [`InferenceOutput::stats`]).
    pub stats: ChannelStats,
}

/// Runs one secure inference as `ctx.id`. Must be called concurrently by
/// both parties over a connected channel pair, with identical `model` and
/// configuration.
///
/// This is the single-shot convenience path: it prepares the model
/// ([`PreparedModel::prepare`]) and runs one inference
/// ([`PreparedModel::run`]). Callers issuing many inferences over one
/// session should prepare once themselves and reuse the
/// [`PreparedModel`] — repeated runs then skip all weight-share PRG
/// derivation and `offline-f` traffic.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on channel failure, desync, or a model the
/// engine cannot lower.
pub fn run_party(
    ctx: &mut PartyContext,
    model: &QuantModel,
    input: PartyInput<'_>,
) -> Result<InferenceOutput, ProtocolError> {
    ctx.ep.reset_stats();
    // Validate the pairing before preparation opens the channel, so misuse
    // errors out instead of desyncing mid-handshake.
    match (ctx.id, &input) {
        (aq2pnn_sharing::PartyId::User, PartyInput::User(_))
        | (aq2pnn_sharing::PartyId::ModelProvider, PartyInput::Provider) => {}
        _ => {
            return Err(ProtocolError::Model(
                "party/input mismatch: user must pass User(image), provider Provider".into(),
            ))
        }
    }
    let mut prepared = PreparedModel::prepare(ctx, model)?;
    prepared.run(ctx, input)
}

/// Tournament 2PC-MaxPool over precomputed windows: `⌈log₂(k²)⌉` batched
/// comparison rounds, `k²−1` comparisons per output in total.
pub(crate) fn secure_max_windows(
    ctx: &mut PartyContext,
    x: &AShare,
    windows: &[Vec<usize>],
) -> Result<AShare, ProtocolError> {
    let ring = x.ring();
    let xs = x.as_tensor().as_slice();
    // Candidate lists (this party's share values).
    let mut lists: Vec<Vec<u64>> =
        windows.iter().map(|w| w.iter().map(|&i| xs[i]).collect()).collect();
    while lists.iter().any(|l| l.len() > 1) {
        // Pair up within each list.
        let mut a_vals = Vec::new();
        let mut b_vals = Vec::new();
        for l in &lists {
            let pairs = l.len() / 2;
            for p in 0..pairs {
                a_vals.push(l[2 * p]);
                b_vals.push(l[2 * p + 1]);
            }
        }
        let a = AShare::from_tensor(RingTensor::from_raw(ring, vec![a_vals.len()], a_vals)?);
        let b = AShare::from_tensor(RingTensor::from_raw(ring, vec![b_vals.len()], b_vals)?);
        let maxes = secure_max_pairs(ctx, &a, &b)?;
        // Rebuild lists with winners + carried odd elements.
        let mv = maxes.as_tensor().as_slice();
        let mut cursor = 0usize;
        for l in &mut lists {
            let pairs = l.len() / 2;
            let mut next: Vec<u64> = mv[cursor..cursor + pairs].to_vec();
            cursor += pairs;
            if l.len() % 2 == 1 {
                next.push(l[l.len() - 1]);
            }
            *l = next;
        }
    }
    let data: Vec<u64> = lists.iter().map(|l| l[0]).collect();
    Ok(AShare::from_tensor(RingTensor::from_raw(ring, vec![data.len()], data)?))
}

/// Elementwise secure max of two share vectors:
/// `max(a,b) = b + [a−b > 0]·(a−b)`.
fn secure_max_pairs(
    ctx: &mut PartyContext,
    a: &AShare,
    b: &AShare,
) -> Result<AShare, ProtocolError> {
    let d = a.sub(b)?;
    let q1 = ctx.q1();
    let d_cmp = if d.ring() == q1 { d.clone() } else { d.narrow(q1) };
    let mode = ctx.cfg.relu_mode;
    let signs = secure_sign(ctx, &d_cmp, mode)?;
    match mode {
        ReluMode::RevealedSign => {
            let flags = signs.flags.ok_or_else(|| {
                ProtocolError::Desync("revealed mode yielded no sign flags in secure max".into())
            })?;
            let ring = a.ring();
            let data: Vec<u64> = a
                .as_tensor()
                .iter()
                .zip(b.as_tensor().iter())
                .zip(&flags)
                .map(|((&av, &bv), &s)| ct::select(u64::from(s), av, bv))
                .collect();
            Ok(AShare::from_tensor(RingTensor::from_raw(ring, vec![data.len()], data)?))
        }
        ReluMode::MaskedMux => {
            let sd = mux_by_receiver(ctx, signs.flags.as_deref(), &d)?;
            b.add(&sd).map_err(ProtocolError::from)
        }
    }
}

/// Convenience: the number of logits the engine will reveal for a model.
#[must_use]
pub fn output_len(model: &QuantModel) -> usize {
    // The last shape-bearing op determines it; fall back to walking ops.
    fn walk(ops: &[QuantOp], mut cur: usize) -> usize {
        for op in ops {
            cur = match op {
                QuantOp::Conv2d { out_c, out_hw, .. } => out_c * out_hw.0 * out_hw.1,
                QuantOp::Linear { out_f, .. } => *out_f,
                QuantOp::MaxPool { c, out_hw, .. } | QuantOp::AvgPool { c, out_hw, .. } => {
                    c * out_hw.0 * out_hw.1
                }
                QuantOp::GlobalAvgPool { c, .. } => *c,
                QuantOp::Residual { main, .. } => walk(main, cur),
                _ => cur,
            };
        }
        cur
    }
    walk(&model.ops, model.input_shape.elements())
}

/// An upper bound on the accumulator magnitude of the widest layer —
/// used by the planner to validate `Q2`.
#[must_use]
pub fn max_fan_in(model: &QuantModel) -> u64 {
    fn walk(ops: &[QuantOp]) -> u64 {
        let mut m = 1u64;
        for op in ops {
            m = m.max(match op {
                QuantOp::Conv2d { in_c, k, .. } => (in_c * k * k) as u64,
                QuantOp::Linear { in_f, .. } => *in_f as u64,
                QuantOp::Residual { main, shortcut } => walk(main).max(walk(shortcut)),
                _ => 1,
            });
        }
        m
    }
    walk(&model.ops)
}
