//! ABReLU: arithmetic-to-binary-sharing ReLU (paper Sec. 4.4) and the
//! secure comparison machine (SCM, Sec. 4.3.3) it is built on.
//!
//! The problem: for `⟦x⟧ = (x_i, x_j)` the parties must learn
//! `sign((x_i + x_j) mod Q)` — the naive comparison `−x_i` vs `x_j` is
//! wrong whenever the share sum wraps (paper's `(−100, 5)` example). The
//! paper's solution compares `u = −x_i` against `v = x_j` *group-wise*
//! (A2BM bit groups driven through the OT-flow, Eq. 6 comparison codes)
//! and resolves the wrap with quadrant detection on the top two bits
//! (Fig. 7).
//!
//! The decision rule implemented here (derived in `sign_from_codes`, and
//! verified exhaustively in the tests against `(x_i + x_j) mod Q`):
//! with `su`/`sv` the sign bits of `u`/`v` and `rest` the unsigned
//! comparison of their remaining `ℓ−1` bits,
//!
//! * `su == sv` → `x > 0  ⟺  v_rest > u_rest` (1st/3rd quadrants:
//!   no wrap, direct comparison),
//! * `su != sv` → `x > 0  ⟺  v_rest < u_rest` (2nd/4th quadrants:
//!   the wrap inverts the comparison — the paper's sub-quadrant rules),
//! * ties → `x ∈ {0, −2^{ℓ-1}}` → not positive.
//!
//! Party *i* (the **sender**) builds the possible-value comparison matrix
//! `M_i` (Fig. 5) — one `(1, 2^w)`-OT slot per possible receiver group
//! value, holding the Eq. 6 comparison code. Party *j* (the **receiver**)
//! obtains exactly the codes for its own group values and combines them.

use crate::{PartyContext, ProtocolError, ReluMode, ReluRounds};
use aq2pnn_obs::report::CAT_STAGE;
use aq2pnn_ot::{recv_batch, send_batch_flat, OtChoice};
use aq2pnn_parallel::{par_chunks_mut, par_fill_indexed};
use aq2pnn_ring::{ct, simd, IsaLevel, RingTensor};
use aq2pnn_sharing::a2b::{group_widths, split_groups_into};
use aq2pnn_sharing::{AShare, PartyId};

/// Eq. 6 comparison codes.
const LT: u64 = 1;
const EQ: u64 = 2;
const GT: u64 = 3;
/// Bits per transmitted comparison code.
const CODE_BITS: u32 = 2;
/// Minimum per-thread work items for the batched fan-outs: comparison-code
/// slots on the sender, per-value sign reductions on the receiver.
const PAR_MIN_SLOTS: usize = 2048;
const PAR_MIN_VALUES: usize = 1024;

/// Eq. 6 comparison code for one group, branch-free: the sender's group
/// value is a function of its secret share, so the code table build must
/// not branch on it.
fn code(u_group: u8, slot: u8) -> u64 {
    ct::cmp_code(u64::from(u_group), u64::from(slot))
}

/// Combines per-group comparison codes (`cmp(u_g, v_g)`, MSB-first) into
/// the positivity of `x = (x_i + x_j) mod Q` where `u = −x_i`, `v = x_j`.
///
/// `codes[0]` compares the sign bits; `codes[1..]` compare the remaining
/// groups lexicographically.
#[must_use]
pub fn sign_from_codes(codes: &[u64]) -> bool {
    // secrecy: allow(secret-compare, "`== 1` on a {0,1} word lowers to a flag set, not a branch; the bool is the protocol output handed to the caller")
    sign_flag(codes[0], codes.get(1).copied().unwrap_or(EQ), codes.get(2..).unwrap_or(&[])) == 1
}

/// [`sign_from_codes`] over the split storage of the lazy two-round
/// schedule: the two quadrant codes live in the head buffer, the remaining
/// groups (if fetched) in the tail buffer — combined without concatenating.
///
/// Branch-free: the codes are derived from both parties' secret shares, so
/// the combination runs the same instruction trace for every input and
/// returns the positivity as a `{0, 1}` word. The scan visits *every* tail
/// group rather than stopping at the first non-`EQ` code — a
/// first-difference early exit would make the latency a function of the
/// compared values (the classic `memcmp` timing leak).
fn sign_flag(sign_cmp: u64, code1: u64, tail: &[u64]) -> u64 {
    // First non-EQ code of code1 ‖ tail: once `rest` leaves EQ it sticks.
    let mut rest = code1;
    for &c in tail {
        rest = ct::select(ct::eq(rest, EQ), c, rest);
    }
    // Same quadrant: x > 0 ⟺ v > u ⟺ rest == LT; mixed quadrants: the
    // mod-Q wrap inverts the comparison (rest == GT). When every group ties
    // (rest == EQ), x ∈ {0, −2^{ℓ-1}} — never strictly positive — and both
    // selectors below are already 0.
    ct::select(ct::eq(sign_cmp, EQ), ct::eq(rest, LT), ct::eq(rest, GT))
}

/// How many groups must be fetched before `sign_from_codes` is decided,
/// given the first two codes — the quadrant shortcut of paper Fig. 7.
/// Returns `true` if groups 0..=1 suffice.
#[must_use]
pub fn quadrant_decides(code0: u64, code1: u64) -> bool {
    // The rest-comparison is decided at group 1 unless that group ties.
    // (code0 always resolves su vs sv on its own since both are 1 bit.)
    let _ = code0;
    code1 != EQ
}

/// Result of a batched secure comparison.
#[derive(Clone)]
pub struct SignFlags {
    /// `1` where the compared value is strictly positive. Present on the
    /// receiver always; on the sender only in [`ReluMode::RevealedSign`]
    /// (after the `T_m` exchange).
    pub flags: Option<Vec<u8>>,
}

/// `Debug` redacts the flag vector — the flags are the *plaintext signs*
/// of the compared values, the very data the protocol computes under
/// sharing. Only the count is printed; tests use
/// [`SignFlags::fmt_revealed`].
impl std::fmt::Debug for SignFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignFlags")
            .field("len", &self.flags.as_ref().map(Vec::len))
            .field("flags", &"<redacted>")
            .finish()
    }
}

impl SignFlags {
    /// Formats the sign flags *including their values* — test-only opt-in
    /// counterpart of the redacted `Debug` impl.
    #[must_use]
    pub fn fmt_revealed(&self) -> String {
        // secrecy: allow(secret-sink, "explicit opt-in reveal for tests; the redacted Debug impl is the default")
        format!("SignFlags({:?})", self.flags)
    }
}

/// Batched secure sign computation of shared values on the `Q1` carrier.
///
/// Party 0 acts as the OT sender with `u = −x_0`; party 1 as the receiver
/// with `v = x_1`. In [`ReluMode::RevealedSign`] the receiver transmits the
/// `T_m` mask back so both parties hold the flags (paper Fig. 4 step ④ /
/// OUT-MSK buffer); in [`ReluMode::MaskedMux`] only the receiver learns
/// them.
///
/// # Errors
///
/// Returns [`ProtocolError::RingMismatch`] if the shares are not on the
/// `Q1` carrier (the comparison decomposition is only correct there), and
/// propagates transport/OT failures and desynchronized batch geometry.
pub fn secure_sign(
    ctx: &mut PartyContext,
    x_q1: &AShare,
    mode: ReluMode,
) -> Result<SignFlags, ProtocolError> {
    let ring = ctx.q1();
    if x_q1.ring() != ring {
        return Err(ProtocolError::RingMismatch { expected: ring.bits(), got: x_q1.ring().bits() });
    }
    let n = x_q1.len();
    let widths = group_widths(ring.bits());
    let u_cnt = widths.len();

    match ctx.id {
        PartyId::User => {
            // Sender: u = −x_0, decomposed into one flat n × U group buffer.
            let a2bm = ctx.span_begin("a2bm", CAT_STAGE, &[]);
            let mut neg = vec![0u64; n];
            let x0 = x_q1.as_tensor().as_slice();
            par_fill_indexed(&mut neg, PAR_MIN_VALUES, |v| ring.neg(x0[v]));
            let mut u_flat = Vec::new();
            split_groups_into(ring, &neg, &widths, &mut u_flat);
            ctx.span_end(a2bm);
            let ot_flow = ctx.span_begin("ot-flow", CAT_STAGE, &[]);
            // Flat OT message buffer + arities, reused across rounds.
            let (mut msgs, mut arity) = (Vec::new(), Vec::new());
            match ctx.cfg.relu_rounds {
                ReluRounds::Single => {
                    fill_sender_codes(
                        &u_flat,
                        u_cnt,
                        &widths,
                        0,
                        u_cnt,
                        None,
                        IsaLevel::active(),
                        &mut msgs,
                        &mut arity,
                    );
                    send_batch_flat(
                        &ctx.ep,
                        &ctx.group,
                        &ctx.labels,
                        &msgs,
                        &arity,
                        CODE_BITS,
                        &mut ctx.rng,
                    )?;
                }
                ReluRounds::Lazy => {
                    // Round 1: quadrant groups.
                    fill_sender_codes(
                        &u_flat,
                        u_cnt,
                        &widths,
                        0,
                        2,
                        None,
                        IsaLevel::active(),
                        &mut msgs,
                        &mut arity,
                    );
                    send_batch_flat(
                        &ctx.ep,
                        &ctx.group,
                        &ctx.labels,
                        &msgs,
                        &arity,
                        CODE_BITS,
                        &mut ctx.rng,
                    )?;
                    // Receive the undecided bitmap, serve round 2. One O(n)
                    // walk over the bitmap yields the item subset directly.
                    let bitmap = ctx.ep.recv_bits(1, n)?;
                    let undecided: Vec<usize> = bitmap
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b == 1)
                        .map(|(i, _)| i)
                        .collect();
                    if !undecided.is_empty() {
                        fill_sender_codes(
                            &u_flat,
                            u_cnt,
                            &widths,
                            2,
                            u_cnt,
                            Some(&undecided),
                            IsaLevel::active(),
                            &mut msgs,
                            &mut arity,
                        );
                        send_batch_flat(
                            &ctx.ep,
                            &ctx.group,
                            &ctx.labels,
                            &msgs,
                            &arity,
                            CODE_BITS,
                            &mut ctx.rng,
                        )?;
                    }
                }
            }
            ctx.span_end(ot_flow);
            match mode {
                ReluMode::RevealedSign => {
                    let reveal = ctx.span_begin("reveal", CAT_STAGE, &[]);
                    let t_m = ctx.ep.recv_bits(1, n)?;
                    ctx.span_end(reveal);
                    Ok(SignFlags { flags: Some(t_m.iter().map(|&b| b as u8).collect()) })
                }
                ReluMode::MaskedMux => Ok(SignFlags { flags: None }),
            }
        }
        PartyId::ModelProvider => {
            // Receiver: v = x_1, decomposed into one flat n × U group buffer.
            let a2bm = ctx.span_begin("a2bm", CAT_STAGE, &[]);
            let mut v_flat = Vec::new();
            split_groups_into(ring, x_q1.as_tensor().as_slice(), &widths, &mut v_flat);
            ctx.span_end(a2bm);
            let ot_flow = ctx.span_begin("ot-flow", CAT_STAGE, &[]);
            let mut choices = Vec::new();
            let flags = match ctx.cfg.relu_rounds {
                ReluRounds::Single => {
                    fill_receiver_choices(&v_flat, u_cnt, &widths, 0, u_cnt, None, &mut choices);
                    let codes = recv_batch(
                        &ctx.ep,
                        &ctx.group,
                        &ctx.labels,
                        &choices,
                        CODE_BITS,
                        &mut ctx.rng,
                    )?;
                    let mut flags = vec![0u8; n];
                    #[allow(clippy::cast_possible_truncation)] // sign_flag is in {0, 1}
                    par_fill_indexed(&mut flags, PAR_MIN_VALUES, |v| {
                        let c = &codes[v * u_cnt..(v + 1) * u_cnt];
                        sign_flag(c[0], c[1], &c[2..]) as u8
                    });
                    flags
                }
                ReluRounds::Lazy => {
                    fill_receiver_choices(&v_flat, u_cnt, &widths, 0, 2, None, &mut choices);
                    let head = recv_batch(
                        &ctx.ep,
                        &ctx.group,
                        &ctx.labels,
                        &choices,
                        CODE_BITS,
                        &mut ctx.rng,
                    )?;
                    // Undecided bitmap (1 = needs round 2) in one parallel
                    // pass; the subset list and each undecided item's tail
                    // position follow from one O(n) prefix walk. The bitmap
                    // is secret-derived, but the lazy schedule *sends it to
                    // the peer* two lines down — that disclosure is the
                    // protocol's deliberate traffic/leak trade (DESIGN.md
                    // §"Secrecy discipline"), so local branches on it reveal
                    // nothing beyond what the wire already carries.
                    let mut bitmap = vec![0u64; n];
                    par_fill_indexed(&mut bitmap, PAR_MIN_VALUES, |v| ct::eq(head[2 * v + 1], EQ));
                    let mut undecided = Vec::new();
                    let mut tail_pos = vec![0usize; n];
                    for v in 0..n {
                        tail_pos[v] = undecided.len();
                        if bitmap[v] == 1 {
                            undecided.push(v);
                        }
                    }
                    ctx.ep.send_bits(&bitmap, 1)?;
                    let tail = if undecided.is_empty() {
                        Vec::new()
                    } else {
                        fill_receiver_choices(
                            &v_flat,
                            u_cnt,
                            &widths,
                            2,
                            u_cnt,
                            Some(&undecided),
                            &mut choices,
                        );
                        recv_batch(
                            &ctx.ep,
                            &ctx.group,
                            &ctx.labels,
                            &choices,
                            CODE_BITS,
                            &mut ctx.rng,
                        )?
                    };
                    let rest_groups = u_cnt - 2;
                    let mut flags = vec![0u8; n];
                    #[allow(clippy::cast_possible_truncation)] // sign_flag is in {0, 1}
                    par_fill_indexed(&mut flags, PAR_MIN_VALUES, |v| {
                        let tail_codes = if bitmap[v] == 1 {
                            let at = tail_pos[v] * rest_groups;
                            &tail[at..at + rest_groups]
                        } else {
                            &[][..]
                        };
                        sign_flag(head[2 * v], head[2 * v + 1], tail_codes) as u8
                    });
                    flags
                }
            };
            ctx.span_end(ot_flow);
            if mode == ReluMode::RevealedSign {
                let reveal = ctx.span_begin("reveal", CAT_STAGE, &[]);
                let t_m: Vec<u64> = flags.iter().map(|&b| u64::from(b)).collect();
                ctx.ep.send_bits(&t_m, 1)?;
                ctx.span_end(reveal);
            }
            Ok(SignFlags { flags: Some(flags) })
        }
    }
}

/// Builds the sender's comparison-code matrix `M_i` (Fig. 5) for groups
/// `from..to` of the items in `subset` (all items when `None`) directly
/// into the reused flat `msgs`/`arity` buffers, laid out item-major →
/// group-major → slot as [`send_batch_flat`] expects. The per-slot code
/// evaluation fans out across threads; the full-item standard pattern
/// (`from..to` covering every A2BM group, 4×4 code table) additionally
/// routes each item's fill through the width-specialized per-ISA kernel
/// from [`aq2pnn_ring::simd`] (DESIGN.md §7.4).
///
/// Public (with an explicit `isa`) so benches and identity tests can drive
/// the kernel per ISA level; the protocol calls it with
/// [`IsaLevel::active`]. The produced codes are ISA-independent.
///
/// # Panics
///
/// Panics if `from..to` is not a valid group range for `widths` or the
/// flat buffer geometry is inconsistent with `u_cnt`.
#[allow(clippy::too_many_arguments)]
pub fn fill_sender_codes(
    u_flat: &[u8],
    u_cnt: usize,
    widths: &[u32],
    from: usize,
    to: usize,
    subset: Option<&[usize]>,
    isa: IsaLevel,
    msgs: &mut Vec<u64>,
    arity: &mut Vec<usize>,
) {
    fill_codes_impl(u_flat, u_cnt, widths, from, to, subset, Some(isa), msgs, arity);
}

/// [`fill_sender_codes`] with the per-ISA item kernel disabled: the
/// pre-dispatch generic loop (precomputed code rows + per-group memcpy),
/// kept as the speedup denominator for the kernel benches and as a second
/// ground truth for identity tests.
///
/// # Panics
///
/// Same geometry panics as [`fill_sender_codes`].
#[allow(clippy::too_many_arguments)]
pub fn fill_sender_codes_reference(
    u_flat: &[u8],
    u_cnt: usize,
    widths: &[u32],
    from: usize,
    to: usize,
    subset: Option<&[usize]>,
    msgs: &mut Vec<u64>,
    arity: &mut Vec<usize>,
) {
    fill_codes_impl(u_flat, u_cnt, widths, from, to, subset, None, msgs, arity);
}

#[allow(clippy::too_many_arguments)]
fn fill_codes_impl(
    u_flat: &[u8],
    u_cnt: usize,
    widths: &[u32],
    from: usize,
    to: usize,
    subset: Option<&[usize]>,
    isa: Option<IsaLevel>,
    msgs: &mut Vec<u64>,
    arity: &mut Vec<usize>,
) {
    let items = subset.map_or(u_flat.len() / u_cnt, <[usize]>::len);
    // Slot offset of each group within one item's stride.
    let mut offs = Vec::with_capacity(to - from + 1);
    let mut stride = 0usize;
    offs.push(0);
    for &w in &widths[from..to] {
        stride += 1usize << w;
        offs.push(stride);
    }
    arity.clear();
    for _ in 0..items {
        for &w in &widths[from..to] {
            arity.push(1usize << w);
        }
    }
    msgs.clear();
    msgs.resize(items * stride, 0);
    // The code row for a group is a fixed function of (width, u value):
    // `u` times GT, one EQ, then LT to the end of the row. Precomputing the
    // rows turns the per-slot comparison into a per-group memcpy.
    let max_w = widths[from..to].iter().max().copied().unwrap_or(0);
    let row_len = 1usize << max_w;
    let mut rows = vec![LT; row_len * row_len];
    for u in 0..row_len {
        for (l, slot) in rows[u * row_len..(u + 1) * row_len].iter_mut().enumerate() {
            *slot = code(u as u8, l as u8);
        }
    }
    // Full-item standard pattern: two 1-bit quadrant groups then *only*
    // 2-bit groups — a 4×4 code table and stride 4·(U−1). This is the
    // single-round schedule's shape on even ℓ, so it gets the per-ISA item
    // kernel; partial ranges (the lazy schedule's rounds) and odd-ℓ rings
    // (whose last group is 1-bit) keep the generic loop below.
    let standard = from == 0
        && to == u_cnt
        && u_cnt >= 3
        && widths[0] == 1
        && widths[1] == 1
        && widths[2..u_cnt].iter().all(|&w| w == 2);
    let item_kernel = if standard {
        isa.and_then(|isa| simd::fill_codes_item_fn(isa, u_cnt)).map(|f| {
            let rows16: &[u64; 16] = rows.as_slice().try_into().expect("4x4 code table");
            (f, rows16)
        })
    } else {
        None
    };
    let mut item_rows: Vec<&mut [u64]> = msgs.chunks_mut(stride).collect();
    par_chunks_mut(&mut item_rows, PAR_MIN_SLOTS / stride.max(1), |start, chunk| {
        for (j, slots) in chunk.iter_mut().enumerate() {
            let v = subset.map_or(start + j, |s| s[start + j]);
            if let Some((f, rows16)) = item_kernel {
                f(&u_flat[v * u_cnt..(v + 1) * u_cnt], rows16, slots);
                continue;
            }
            for g in from..to {
                let u = u_flat[v * u_cnt + g] as usize;
                let n = 1usize << widths[g];
                slots[offs[g - from]..offs[g - from] + n]
                    .copy_from_slice(&rows[u * row_len..u * row_len + n]);
            }
        }
    });
}

/// Builds the receiver's OT choice list for groups `from..to` of the items
/// in `subset` (all items when `None`) from the flat group buffer, reusing
/// `choices`' allocation.
fn fill_receiver_choices(
    v_flat: &[u8],
    u_cnt: usize,
    widths: &[u32],
    from: usize,
    to: usize,
    subset: Option<&[usize]>,
    choices: &mut Vec<OtChoice>,
) {
    let items = subset.map_or(v_flat.len() / u_cnt, <[usize]>::len);
    choices.clear();
    choices.reserve(items * (to - from));
    for item in 0..items {
        let v = subset.map_or(item, |s| s[item]);
        for g in from..to {
            choices
                .push(OtChoice { choice: v_flat[v * u_cnt + g] as usize, n: 1usize << widths[g] });
        }
    }
}

/// OT-based multiplexer: computes fresh shares of `s·x` where the receiver
/// (party 1) holds the plaintext selection bits `s` and `x` is additively
/// shared. One `(1,2)`-OT with ring-width messages per element.
///
/// Pass `flags: Some(...)` on party 1, `None` on party 0.
///
/// # Errors
///
/// Propagates transport/OT failures; [`ProtocolError::Desync`] if party 1
/// calls without flags or party 0 with them (protocol misuse).
pub fn mux_by_receiver(
    ctx: &mut PartyContext,
    flags: Option<&[u8]>,
    x: &AShare,
) -> Result<AShare, ProtocolError> {
    let ring = x.ring();
    let n = x.len();
    match ctx.id {
        PartyId::User => {
            if flags.is_some() {
                return Err(ProtocolError::Desync(
                    "party 0 must not hold the selection bits".into(),
                ));
            }
            // Messages per element: m_b = b·x0 − r, built as one flat
            // two-slot-per-item buffer.
            let r = RingTensor::random(ring, vec![n], &mut ctx.rng);
            let (x0, rs) = (x.as_tensor().as_slice(), r.as_slice());
            let mut msgs = vec![0u64; 2 * n];
            par_fill_indexed(&mut msgs, PAR_MIN_SLOTS, |idx| {
                let (k, b) = (idx / 2, idx % 2);
                if b == 0 {
                    ring.neg(rs[k])
                } else {
                    ring.sub(x0[k], rs[k])
                }
            });
            let arity = vec![2usize; n];
            send_batch_flat(
                &ctx.ep,
                &ctx.group,
                &ctx.labels,
                &msgs,
                &arity,
                ring.bits(),
                &mut ctx.rng,
            )?;
            Ok(AShare::from_tensor(r))
        }
        PartyId::ModelProvider => {
            let flags = flags.ok_or_else(|| {
                ProtocolError::Desync("party 1 must hold the selection bits".into())
            })?;
            let choices: Vec<OtChoice> =
                flags.iter().map(|&s| OtChoice { choice: s as usize, n: 2 }).collect();
            let got =
                recv_batch(&ctx.ep, &ctx.group, &ctx.labels, &choices, ring.bits(), &mut ctx.rng)?;
            // y1 = s·x1 + (s·x0 − r). The selection is branch-free: the
            // flags are the receiver's secret sign bits.
            let x1s = x.as_tensor().as_slice();
            let mut data = vec![0u64; n];
            par_fill_indexed(&mut data, PAR_MIN_VALUES, |k| {
                let sx1 = ct::select(u64::from(flags[k]), x1s[k], 0);
                ring.add(sx1, got[k])
            });
            Ok(AShare::from_tensor(RingTensor::from_raw(ring, vec![n], data)?))
        }
    }
}

/// ABReLU: secure ReLU over shares on any ring.
///
/// The comparison runs on the value's low `Q1` bits — "the output sent to
/// ABReLU". Narrowing shares to `Q1` is an exact local operation (pure
/// masking), so the only failure mode is **deterministic**: when
/// `|x| ≥ 2^{ℓ1 − 1}` the narrowed value wraps and the detected sign
/// flips — the mechanism behind the paper's low-bit accuracy cliff
/// (Tables 7–8). The selection (zeroing or MUX) is applied to the
/// original-ring share, so the result stays on `x`'s ring.
///
/// # Errors
///
/// Propagates transport/OT failures.
pub fn abrelu(ctx: &mut PartyContext, x: &AShare) -> Result<AShare, ProtocolError> {
    let mode = ctx.cfg.relu_mode;
    let q1 = ctx.q1();
    let cmp_view = if x.ring() == q1 { x.clone() } else { x.narrow(q1) };
    let signs = secure_sign(ctx, &cmp_view, mode)?;
    match mode {
        ReluMode::RevealedSign => {
            let flags = signs.flags.ok_or_else(|| {
                ProtocolError::Desync("revealed mode yielded no sign flags in abrelu".into())
            })?;
            let ring = x.ring();
            // Branch-free zeroing: on the receiver the flags are locally
            // computed secrets (revealed only through the T_m exchange).
            let data: Vec<u64> = x
                .as_tensor()
                .iter()
                .zip(&flags)
                .map(|(&xs, &s)| ct::select(u64::from(s), xs, 0))
                .collect();
            Ok(AShare::from_tensor(RingTensor::from_raw(ring, x.shape().to_vec(), data)?))
        }
        ReluMode::MaskedMux => {
            let mux = ctx.span_begin("mux", CAT_STAGE, &[]);
            let out = mux_by_receiver(ctx, signs.flags.as_deref(), x)?;
            ctx.span_end(mux);
            // Preserve the original shape.
            let mut t = out.into_tensor();
            t.reshape(x.shape().to_vec())?;
            Ok(AShare::from_tensor(t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_pair;
    use crate::ProtocolConfig;
    use aq2pnn_ring::Ring;
    use aq2pnn_sharing::a2b::split_groups;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Plaintext reference for the code-combination rule, exhaustive on an
    /// 8-bit ring: for every (x_i, x_j), codes computed locally must yield
    /// sign((x_i+x_j) mod Q).
    #[test]
    fn sign_rule_exhaustive_8bit() {
        let ring = Ring::new(8);
        for xi in (0..256u64).step_by(3) {
            for xj in (0..256u64).step_by(5) {
                let u = ring.neg(xi);
                let v = xj;
                let gu = split_groups(ring, u);
                let gv = split_groups(ring, v);
                let codes: Vec<u64> =
                    gu.iter().zip(&gv).map(|(a, b)| code(a.value, b.value)).collect();
                let x = ring.decode_signed(ring.add(xi, xj));
                assert_eq!(sign_from_codes(&codes), x > 0, "xi={xi} xj={xj} x={x} codes={codes:?}");
            }
        }
    }

    /// The paper's two worked examples (Sec. 4.4).
    #[test]
    fn paper_examples() {
        let ring = Ring::new(8);
        // (x_i, x_j) = (125, 7): x = −124 < 0.
        let codes = |xi: i64, xj: i64| -> Vec<u64> {
            let u = ring.neg(ring.encode_signed(xi));
            let v = ring.encode_signed(xj);
            split_groups(ring, u)
                .iter()
                .zip(&split_groups(ring, v))
                .map(|(a, b)| code(a.value, b.value))
                .collect()
        };
        assert!(!sign_from_codes(&codes(125, 7)));
        // (x_i, x_j) = (−2, −2): x = −4 < 0.
        assert!(!sign_from_codes(&codes(-2, -2)));
        // (x_i, x_j) = (100, −95): x = 5 > 0.
        assert!(sign_from_codes(&codes(100, -95)));
    }

    /// The per-ISA item kernel must reproduce the generic slot loop
    /// exactly: for every available ISA, ring width (monomorphized group
    /// counts 7/9/11/17 and dyn-fallback counts), schedule range, and
    /// subset shape, the flat OT message/arity buffers are identical.
    #[test]
    fn sender_codes_isa_independent() {
        let mut rng = StdRng::seed_from_u64(99);
        for bits in [4u32, 8, 12, 16, 20, 24, 32] {
            let ring = Ring::new(bits);
            let widths = group_widths(bits);
            let u_cnt = widths.len();
            let n = 33;
            let vals = RingTensor::random(ring, vec![n], &mut rng);
            let mut u_flat = Vec::new();
            split_groups_into(ring, vals.as_slice(), &widths, &mut u_flat);
            let subset: Vec<usize> = (0..n).step_by(3).collect();
            let ranges: [(usize, usize, Option<&[usize]>); 3] =
                [(0, u_cnt, None), (0, 2, None), (2, u_cnt, Some(&subset))];
            for (from, to, sub) in ranges {
                let (mut want_msgs, mut want_arity) = (Vec::new(), Vec::new());
                fill_sender_codes(
                    &u_flat,
                    u_cnt,
                    &widths,
                    from,
                    to,
                    sub,
                    IsaLevel::Scalar,
                    &mut want_msgs,
                    &mut want_arity,
                );
                // Cross-check the scalar kernel against a direct per-slot
                // evaluation of the Eq. 6 code.
                let items = sub.map_or(n, <[usize]>::len);
                let stride: usize = widths[from..to].iter().map(|&w| 1usize << w).sum();
                assert_eq!(want_msgs.len(), items * stride);
                for item in 0..items {
                    let v = sub.map_or(item, |s| s[item]);
                    let mut slot = item * stride;
                    for g in from..to {
                        let u = u_flat[v * u_cnt + g];
                        for l in 0..(1u8 << widths[g]) {
                            assert_eq!(want_msgs[slot], code(u, l), "bits={bits} g={g} l={l}");
                            slot += 1;
                        }
                    }
                }
                let (mut msgs, mut arity) = (Vec::new(), Vec::new());
                fill_sender_codes_reference(
                    &u_flat, u_cnt, &widths, from, to, sub, &mut msgs, &mut arity,
                );
                assert_eq!(msgs, want_msgs, "reference bits={bits} from={from} to={to}");
                assert_eq!(arity, want_arity, "reference bits={bits}");
                for isa in IsaLevel::available() {
                    let (mut msgs, mut arity) = (Vec::new(), Vec::new());
                    fill_sender_codes(
                        &u_flat, u_cnt, &widths, from, to, sub, isa, &mut msgs, &mut arity,
                    );
                    assert_eq!(msgs, want_msgs, "isa={isa} bits={bits} from={from} to={to}");
                    assert_eq!(arity, want_arity, "isa={isa} bits={bits}");
                }
            }
        }
    }

    fn share_vals(ring: Ring, vals: &[i64], seed: u64) -> (AShare, AShare) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = RingTensor::from_signed(ring, vec![vals.len()], vals).unwrap();
        AShare::share(&t, &mut rng)
    }

    fn relu_case(cfg: ProtocolConfig, vals: Vec<i64>) {
        let ring = cfg.q1();
        let (s0, s1) = share_vals(ring, &vals, 77);
        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let mine = match ctx.id {
                PartyId::User => s0.clone(),
                PartyId::ModelProvider => s1.clone(),
            };
            abrelu(ctx, &mine).unwrap()
        });
        let rec = AShare::recover(&o0, &o1).unwrap();
        let expect: Vec<i64> = vals.iter().map(|&v| v.max(0)).collect();
        assert_eq!(rec.to_signed(), expect, "cfg={cfg:?}");
    }

    #[test]
    fn abrelu_revealed_single_round() {
        relu_case(ProtocolConfig::paper(12), vec![5, -5, 0, 100, -100, 2047, -2048, 1, -1]);
    }

    #[test]
    fn abrelu_masked_mux() {
        let mut cfg = ProtocolConfig::paper(12);
        cfg.relu_mode = ReluMode::MaskedMux;
        relu_case(cfg, vec![5, -5, 0, 100, -100, 1, -1, 33]);
    }

    #[test]
    fn abrelu_lazy_rounds() {
        let mut cfg = ProtocolConfig::paper(12);
        cfg.relu_rounds = ReluRounds::Lazy;
        relu_case(cfg, vec![7, -7, 0, 512, -512, 1023, -1024, 3]);
    }

    #[test]
    fn abrelu_randomized_many_widths() {
        use rand::Rng;
        for bits in [8u32, 10, 13, 16] {
            let cfg = ProtocolConfig::paper(bits.max(6));
            let ring = cfg.q1();
            let mut rng = StdRng::seed_from_u64(u64::from(bits));
            let vals: Vec<i64> =
                (0..50).map(|_| rng.gen_range(ring.min_signed()..=ring.max_signed())).collect();
            relu_case(cfg, vals);
        }
    }

    #[test]
    fn lazy_mode_reduces_ot_traffic_for_decided_values() {
        // Values whose quadrant decides early should cost less in lazy mode.
        let mk = |rounds: ReluRounds| {
            let mut cfg = ProtocolConfig::paper(16);
            cfg.relu_rounds = rounds;
            // Values with large magnitude: second bit differs frequently.
            let vals: Vec<i64> = (0..64).map(|i| if i % 2 == 0 { 20000 } else { -20000 }).collect();
            let ring = cfg.q1();
            let (s0, s1) = share_vals(ring, &vals, 9);
            let (o0, _) = run_pair(&cfg, move |ctx| {
                let mine = match ctx.id {
                    PartyId::User => s0.clone(),
                    PartyId::ModelProvider => s1.clone(),
                };
                let _ = abrelu(ctx, &mine).unwrap();
                ctx.ep.stats().total_bytes()
            });
            o0
        };
        let single = mk(ReluRounds::Single);
        let lazy = mk(ReluRounds::Lazy);
        // Not guaranteed for every value mix, but for this one lazy must
        // not be wildly worse; record the relationship.
        assert!(lazy < single * 2, "lazy={lazy} single={single}");
    }

    #[test]
    fn secure_sign_rejects_non_q1_shares() {
        // Release builds used to skip this precondition entirely (it was a
        // debug_assert); it is now a hard protocol error on both parties.
        let cfg = ProtocolConfig::paper(12);
        let wrong = cfg.q2(); // shares on the MAC ring, not the Q1 carrier
        let (s0, s1) = share_vals(wrong, &[1, -2, 3], 5);
        let (r0, r1) = run_pair(&cfg, move |ctx| {
            let mine = match ctx.id {
                PartyId::User => s0.clone(),
                PartyId::ModelProvider => s1.clone(),
            };
            secure_sign(ctx, &mine, ReluMode::RevealedSign).err()
        });
        for err in [r0, r1] {
            match err {
                Some(ProtocolError::RingMismatch { expected, got }) => {
                    assert_eq!(expected, cfg.q1().bits());
                    assert_eq!(got, wrong.bits());
                }
                other => panic!("expected RingMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn mux_computes_selected_product() {
        let cfg = ProtocolConfig::paper(16);
        let ring = cfg.q1();
        let vals = vec![100i64, -200, 300, -400];
        let flags = vec![1u8, 0, 0, 1];
        let (s0, s1) = share_vals(ring, &vals, 13);
        let fl = flags.clone();
        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let mine = match ctx.id {
                PartyId::User => s0.clone(),
                PartyId::ModelProvider => s1.clone(),
            };
            let f = if ctx.id == PartyId::ModelProvider { Some(&fl[..]) } else { None };
            mux_by_receiver(ctx, f, &mine).unwrap()
        });
        let rec = AShare::recover(&o0, &o1).unwrap();
        assert_eq!(rec.to_signed(), vec![100, 0, 0, -400]);
    }
}
