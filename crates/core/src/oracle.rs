//! Idealized two-party functionalities for correctness baselines.
//!
//! The `Exact` truncation/extension modes of [`crate::ProtocolConfig`]
//! model a *correct* (but more expensive) share-conversion protocol as an
//! ideal functionality: both parties hand their shares to a trusted oracle
//! that reconstructs, applies the exact operation, and deals fresh shares
//! back. This is the standard simulation device for isolating the error
//! introduced by the paper's local (probabilistic) share operations — the
//! ablation benches compare `Local` vs `Exact` end to end.
//!
//! The oracle only exists in the in-process simulator; the paper-faithful
//! configuration ([`crate::ProtocolConfig::paper`]) never touches it.

use aq2pnn_ring::{extend, Ring, RingTensor};
use aq2pnn_sharing::{AShare, PartyId};
use parking_lot::{Condvar, Mutex};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

/// The exact share operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdealOp {
    /// Arithmetic right shift by `shift` bits (flooring), staying on the
    /// same ring.
    Truncate {
        /// Shift amount.
        shift: u32,
    },
    /// Exact move to another ring (sign-preserving).
    Recast {
        /// Target ring width.
        to_bits: u32,
    },
}

#[derive(Default)]
struct State {
    /// Share deposited by the first arriving party (identity, share, op,
    /// pair generation).
    pending: Option<(PartyId, RingTensor, IdealOp, u64)>,
    /// Fresh shares for (party 0, party 1) once computed, tagged with the
    /// pair generation they answer.
    results: Option<(u64, RingTensor, RingTensor)>,
    /// How many parties have picked up the current result.
    picked: u8,
    /// Next pair generation.
    generation: u64,
}

/// Rendezvous-based trusted oracle shared by the two party threads.
#[derive(Debug)]
pub struct IdealOracle {
    state: Mutex<StateWrap>,
    cv: Condvar,
}

struct StateWrap {
    s: State,
    rng: ChaCha20Rng,
}

impl std::fmt::Debug for StateWrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateWrap").finish_non_exhaustive()
    }
}

impl IdealOracle {
    /// Creates an oracle with deterministic resharing randomness.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        IdealOracle {
            state: Mutex::new(StateWrap {
                s: State::default(),
                rng: ChaCha20Rng::seed_from_u64(seed),
            }),
            cv: Condvar::new(),
        }
    }

    /// Performs `op` on the jointly-held secret: blocks until both parties
    /// have called with their shares, then returns each party's fresh share
    /// of the exact result.
    ///
    /// Both parties must call in the same protocol order with the same
    /// `op`.
    ///
    /// # Panics
    ///
    /// Panics if the two parties call with mismatched operations or shapes
    /// (a protocol desync).
    #[must_use]
    // secrecy: declassify — the ideal oracle IS the trusted third party: it
    // reconstructs the plaintext by definition and re-shares the result.
    pub fn call(&self, party: PartyId, share: RingTensor, op: IdealOp) -> RingTensor {
        let mut guard = self.state.lock();
        let my_gen;
        if let Some((other, other_share, other_op, gen)) = guard.s.pending.take() {
            assert_ne!(other, party, "same party called the oracle twice");
            assert_eq!(other_op, op, "parties disagree on the ideal operation");
            my_gen = gen;
            let (s0, s1) =
                if party == PartyId::User { (share, other_share) } else { (other_share, share) };
            let plain = AShare::recover(&AShare::from_tensor(s0), &AShare::from_tensor(s1))
                .expect("oracle shares must agree in shape");
            let ring = plain.ring();
            let exact = match op {
                IdealOp::Truncate { shift } => plain.map(|v| ring.shr_arithmetic(v, shift)),
                IdealOp::Recast { to_bits } => {
                    let to = Ring::new(to_bits);
                    let data = plain.iter().map(|&v| extend::sign_extend(ring, to, v)).collect();
                    RingTensor::from_raw(to, plain.shape().to_vec(), data).expect("shape unchanged")
                }
            };
            let (f0, f1) = AShare::share(&exact, &mut guard.rng);
            guard.s.results = Some((my_gen, f0.into_tensor(), f1.into_tensor()));
            guard.s.picked = 0;
            self.cv.notify_all();
        } else {
            my_gen = guard.s.generation;
            guard.s.generation += 1;
            guard.s.pending = Some((party, share, op, my_gen));
        }
        // Wait for this pair's result and take this party's half.
        loop {
            if let Some((gen, r0, r1)) = guard.s.results.clone() {
                if gen == my_gen {
                    let mine = if party == PartyId::User { r0 } else { r1 };
                    guard.s.picked += 1;
                    if guard.s.picked == 2 {
                        guard.s.results = None;
                    }
                    self.cv.notify_all();
                    return mine;
                }
            }
            self.cv.wait(&mut guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use std::sync::Arc;

    #[test]
    fn exact_truncation_via_oracle() {
        let oracle = Arc::new(IdealOracle::new(5));
        let q = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(2);
        let x = RingTensor::from_signed(q, vec![3], &[100, -101, 7]).unwrap();
        let (a, b) = AShare::share(&x, &mut rng);
        let o2 = Arc::clone(&oracle);
        let bt = b.into_tensor();
        let h = std::thread::spawn(move || {
            o2.call(PartyId::ModelProvider, bt, IdealOp::Truncate { shift: 2 })
        });
        let ra = oracle.call(PartyId::User, a.into_tensor(), IdealOp::Truncate { shift: 2 });
        let rb = h.join().unwrap();
        let rec = AShare::recover(&AShare::from_tensor(ra), &AShare::from_tensor(rb)).unwrap();
        assert_eq!(rec.to_signed(), vec![25, -26, 1]);
    }

    #[test]
    fn exact_recast_via_oracle() {
        let oracle = Arc::new(IdealOracle::new(6));
        let q = Ring::new(12);
        let mut rng = StdRng::seed_from_u64(3);
        let x = RingTensor::from_signed(q, vec![2], &[-2000, 1999]).unwrap();
        let (a, b) = AShare::share(&x, &mut rng);
        let o2 = Arc::clone(&oracle);
        let bt = b.into_tensor();
        let h = std::thread::spawn(move || {
            o2.call(PartyId::ModelProvider, bt, IdealOp::Recast { to_bits: 24 })
        });
        let ra = oracle.call(PartyId::User, a.into_tensor(), IdealOp::Recast { to_bits: 24 });
        let rb = h.join().unwrap();
        let rec = AShare::recover(&AShare::from_tensor(ra), &AShare::from_tensor(rb)).unwrap();
        assert_eq!(rec.ring(), Ring::new(24));
        assert_eq!(rec.to_signed(), vec![-2000, 1999]);
    }

    #[test]
    fn sequential_calls_reuse_oracle() {
        let oracle = Arc::new(IdealOracle::new(7));
        let q = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(4);
        for round in 0..3i64 {
            let x = RingTensor::from_signed(q, vec![1], &[round * 64]).unwrap();
            let (a, b) = AShare::share(&x, &mut rng);
            let o2 = Arc::clone(&oracle);
            let bt = b.into_tensor();
            let h = std::thread::spawn(move || {
                o2.call(PartyId::ModelProvider, bt, IdealOp::Truncate { shift: 3 })
            });
            let ra = oracle.call(PartyId::User, a.into_tensor(), IdealOp::Truncate { shift: 3 });
            let rb = h.join().unwrap();
            let rec = AShare::recover(&AShare::from_tensor(ra), &AShare::from_tensor(rb)).unwrap();
            assert_eq!(rec.to_signed(), vec![round * 8]);
        }
    }
}
