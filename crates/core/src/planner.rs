//! The adaptive quantization planner (paper Sec. 5).
//!
//! Given a quantized model and a target ABReLU bit-width, the planner
//! chooses the ring pair `(Q1, Q2)`, validates the headroom rule of thumb
//! (`ring = value bits + 4`, Sec. 5.1), and reports per-layer accumulator
//! requirements — the information that lets the FPGA reconfigure its
//! datapaths per layer instead of paying a fixed 32/64-bit ISA width.

use crate::engine::max_fan_in;
use crate::ProtocolConfig;
use aq2pnn_nn::quant::{QuantModel, QuantOp};
use aq2pnn_ring::HEADROOM_BITS;
use serde::{Deserialize, Serialize};

/// Per-GEMM-layer accumulator analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Engine layer index (matches the engine's phase labels).
    pub layer: usize,
    /// `"conv"` or `"fc"`.
    pub kind: String,
    /// Fan-in (`in_c·k·k` or `in_f`).
    pub fan_in: u64,
    /// Worst-case accumulator bits:
    /// `act + weight + ⌈log₂ fan⌉ + 1`.
    pub accum_bits: u32,
    /// The minimal per-layer `Q2` that is overflow-safe in the worst case.
    pub min_q2_bits: u32,
}

/// The session plan derived from a model and an ABReLU width target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePlan {
    /// Target ABReLU (activation carrier) width — the paper's swept knob.
    pub q1_bits: u32,
    /// Uniform MAC ring width (paper: `Q1 + 16`).
    pub q2_bits: u32,
    /// The model's activation value width.
    pub act_bits: u32,
    /// Whether `q1` leaves the recommended `+4` headroom above the value
    /// width (paper Sec. 5.1). Plans without it still run — accuracy
    /// degrades exactly as in Tables 7–8.
    pub headroom_ok: bool,
    /// Whether `q2` covers the worst-case accumulator of every layer.
    /// When false, correctness relies on statistical cancellation of
    /// signed products (the paper's "statistical analysis on the
    /// bit-width").
    pub worst_case_safe: bool,
    /// Per-layer accumulator analysis.
    pub layers: Vec<LayerPlan>,
}

impl AdaptivePlan {
    /// Builds the plan for `model` at a target ABReLU width.
    ///
    /// # Panics
    ///
    /// Panics if `q1_bits` is not in `6..=48`.
    #[must_use]
    pub fn new(model: &QuantModel, q1_bits: u32) -> Self {
        let q2_bits = (q1_bits + 16).min(48);
        let mut layers = Vec::new();
        collect_layers(&model.ops, model.act_bits, model.weight_bits, &mut 0, &mut layers);
        let worst = layers.iter().map(|l| l.accum_bits).max().unwrap_or(0);
        AdaptivePlan {
            q1_bits,
            q2_bits,
            act_bits: model.act_bits,
            headroom_ok: q1_bits >= model.act_bits + HEADROOM_BITS,
            worst_case_safe: q2_bits >= worst,
            layers,
        }
    }

    /// The protocol configuration realizing this plan (paper-faithful
    /// share-op modes).
    #[must_use]
    pub fn config(&self) -> ProtocolConfig {
        let mut cfg = ProtocolConfig::paper(self.q1_bits);
        cfg.q2_bits = self.q2_bits;
        cfg
    }

    /// The widest accumulator requirement across layers.
    #[must_use]
    pub fn worst_accum_bits(&self) -> u32 {
        self.layers.iter().map(|l| l.accum_bits).max().unwrap_or(0)
    }
}

fn collect_layers(
    ops: &[QuantOp],
    act_bits: u32,
    weight_bits: u32,
    idx: &mut usize,
    out: &mut Vec<LayerPlan>,
) {
    for op in ops {
        let layer = *idx;
        *idx += 1;
        match op {
            QuantOp::Conv2d { in_c, k, .. } => {
                let fan = (in_c * k * k) as u64;
                out.push(mk_plan(layer, "conv", fan, act_bits, weight_bits));
            }
            QuantOp::Linear { in_f, .. } => {
                out.push(mk_plan(layer, "fc", *in_f as u64, act_bits, weight_bits));
            }
            QuantOp::Residual { main, shortcut } => {
                collect_layers(main, act_bits, weight_bits, idx, out);
                collect_layers(shortcut, act_bits, weight_bits, idx, out);
            }
            _ => {}
        }
    }
}

fn mk_plan(layer: usize, kind: &str, fan: u64, act: u32, weight: u32) -> LayerPlan {
    let accum = act + weight + (64 - fan.leading_zeros()) + 1;
    LayerPlan { layer, kind: kind.to_owned(), fan_in: fan, accum_bits: accum, min_q2_bits: accum }
}

/// Quick helper: the paper's recommended plan for a model (value width +
/// 4 bits of headroom).
#[must_use]
pub fn recommended_plan(model: &QuantModel) -> AdaptivePlan {
    AdaptivePlan::new(model, model.act_bits + HEADROOM_BITS)
}

/// Sanity-check utility mirroring [`max_fan_in`] for tests.
#[must_use]
pub fn model_max_fan(model: &QuantModel) -> u64 {
    max_fan_in(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_nn::data::SyntheticVision;
    use aq2pnn_nn::float::FloatNet;
    use aq2pnn_nn::quant::{QuantConfig, QuantModel};
    use aq2pnn_nn::zoo;

    fn model() -> QuantModel {
        let data = SyntheticVision::tiny(4, 1);
        let net = FloatNet::init(&zoo::tiny_cnn(4), 2).unwrap();
        QuantModel::quantize(&net, &data.calibration(4), &QuantConfig::int8()).unwrap()
    }

    #[test]
    fn plan_headroom_rule() {
        let m = model();
        let plan = AdaptivePlan::new(&m, 12);
        assert!(plan.headroom_ok); // 8 + 4 = 12
        let tight = AdaptivePlan::new(&m, 10);
        assert!(!tight.headroom_ok);
    }

    #[test]
    fn plan_layers_cover_gemms() {
        let m = model();
        let plan = AdaptivePlan::new(&m, 16);
        // tiny_cnn: 2 convs + 2 linears.
        assert_eq!(plan.layers.len(), 4);
        assert_eq!(plan.layers[0].kind, "conv");
        // fan of conv1 = 3*3*3 = 27 → accum = 8+8+5+1 = 22.
        assert_eq!(plan.layers[0].fan_in, 27);
        assert_eq!(plan.layers[0].accum_bits, 22);
        assert!(plan.worst_case_safe); // q2 = 32 ≥ worst
    }

    #[test]
    fn recommended_matches_model_bits() {
        let m = model();
        let plan = recommended_plan(&m);
        assert_eq!(plan.q1_bits, 12);
        assert_eq!(plan.config().q1_bits, 12);
        assert_eq!(plan.config().q2_bits, 28);
    }

    #[test]
    fn max_fan_helper() {
        let m = model();
        // Largest fan-in is the first linear: 16*4*4 = 256.
        assert_eq!(model_max_fan(&m), 256);
    }
}
