//! Background offline dealer: precomputed Beaver material off the
//! critical path.
//!
//! A prepared model's per-inference offline cost is the triple draw on
//! each linear layer's [`TripleLane`]: sampling a fresh compact `A`,
//! computing `Z = expand(A) ⊗ B` (a full GEMM at layer shape) and
//! splitting both into shares. Inline, that work sits on the online
//! critical path even though it depends on nothing the client sends.
//!
//! [`DealerPool`] moves it onto a dedicated [`aq2pnn_parallel::Worker`]:
//! each lane becomes a [`LaneSlot`] — the lane itself plus a bounded FIFO
//! of pre-generated [`TripleShare`]s keyed by the lane's `(a_shape, ℓ)` —
//! and a single background refill loop keeps every queue at its
//! configured depth (backpressure: the producer sleeps while all queues
//! are full and wakes on consumption). A warm online pass then *pops*
//! instead of *generating*.
//!
//! ## Determinism
//!
//! Correctness requires both parties to consume triple `#k` of a lane for
//! inference `#k` — the lane's RNG stream defines the material. Two
//! invariants keep that true with a concurrent producer:
//!
//! * generation is serialized by the lane mutex and the producer pushes
//!   into the queue **before** releasing it, so queue order == RNG order;
//! * a consumer that misses the queue acquires the lane mutex (waiting
//!   out any in-flight background generation), re-checks the queue, and
//!   only then generates inline — the next element of the stream.
//!
//! Production *timing* therefore never affects protocol transcripts: the
//! pool is a pure latency optimization, local to each party, with no
//! cross-party coordination.
//!
//! ## Exhaustion
//!
//! [`ExhaustionPolicy::GenerateInline`] (the default) degrades to the
//! inline path on a miss — a cold pool is merely slow, never wrong.
//! [`ExhaustionPolicy::Fail`] instead surfaces the typed
//! [`ProtocolError::DealerExhausted`], for deployments that would rather
//! shed load than let online latency absorb offline work.
//!
//! OT label powers (the other offline-ish material) are *not* pooled
//! here: they are cached per batch inside `aq2pnn_ot::flow` and their
//! cost is already amortized across the batch dimension.

use crate::{PartyContext, ProtocolError};
use aq2pnn_obs::{MetricsRegistry, Tracer};
use aq2pnn_parallel::sync::{AtomicBool, Condvar, Mutex, Ordering};
use aq2pnn_parallel::Worker;
use aq2pnn_ring::RingTensor;
use aq2pnn_sharing::beaver::TripleShare;
use aq2pnn_sharing::dealer::TripleLane;
use std::collections::VecDeque;
use std::sync::Arc;

/// The public linear expansion a lane's `Z` is computed under (im2col for
/// conv layers, row-vector reshape for linear layers).
pub type ExpandFn = Box<dyn Fn(&RingTensor) -> RingTensor + Send + Sync>;

/// What [`LaneSlot::take`] does when the precomputed queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionPolicy {
    /// Generate the next triple inline on the caller's thread (correct,
    /// merely slower — the cold-start and overload fallback).
    GenerateInline,
    /// Return [`ProtocolError::DealerExhausted`] so the caller can shed
    /// the request instead of absorbing offline latency online.
    Fail,
}

/// Configuration for [`DealerPool`].
#[derive(Debug, Clone, Copy)]
pub struct DealerConfig {
    /// Precomputed triples kept per lane (the backpressure bound).
    pub depth: usize,
    /// Behavior when a take misses the queue.
    pub policy: ExhaustionPolicy,
}

impl Default for DealerConfig {
    fn default() -> Self {
        // Two full batches of headroom at the service's default batch
        // size; small enough that a LeNet5-sized model pools a few MiB.
        DealerConfig { depth: 16, policy: ExhaustionPolicy::GenerateInline }
    }
}

/// Pool-wide state shared between the handle, the slots and the refill
/// loop. Deliberately free of references back to the slots so there is no
/// `Arc` cycle.
struct PoolSignal {
    state: Mutex<PoolState>,
    /// Wakes the refill loop (consumption made space / pause toggled /
    /// shutdown).
    wake: Condvar,
}

struct PoolState {
    paused: bool,
    closed: bool,
    /// Set by consumers after a pop; cleared by the producer before each
    /// scan so wakeups are never lost.
    dirty: bool,
}

/// One lane's pooled offline material: the generator (lane + expansion)
/// and the bounded queue of ready triples.
pub struct LaneSlot {
    label: String,
    /// Generation order == consumption order == the lane's RNG stream.
    /// Lock order is always `lane` then `queue`; the take fast path locks
    /// `queue` alone.
    lane: Mutex<TripleLane>,
    expand: ExpandFn,
    queue: Mutex<VecDeque<TripleShare>>,
    depth: usize,
    policy: ExhaustionPolicy,
    signal: Arc<PoolSignal>,
    metrics: MetricsRegistry,
    /// Set when a background generation step panicked mid-draw. A panic
    /// inside `lane.next` may have half-advanced the lane's RNG stream,
    /// so *any* further draw from this lane — background or inline —
    /// risks a silent cross-party desync. A wedged slot therefore fails
    /// every take with [`ProtocolError::DealerExhausted`], regardless of
    /// policy, and the refill loop stops touching it.
    wedged: AtomicBool,
}

impl std::fmt::Debug for LaneSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneSlot")
            .field("label", &self.label)
            .field("depth", &self.depth)
            .field("queued", &self.queue.lock().len())
            .finish_non_exhaustive()
    }
}

impl LaneSlot {
    /// The layer label this slot serves (`conv0`, `fc4`, …).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Triples currently ready in the queue.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.lock().len()
    }

    /// True once a background generation step panicked on this lane (see
    /// the `wedged` field docs); the slot refuses all further takes.
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::SeqCst)
    }

    /// Pops the next precomputed triple, falling back per the configured
    /// [`ExhaustionPolicy`] when the queue is empty.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::DealerExhausted`] on an empty queue under
    /// [`ExhaustionPolicy::Fail`].
    pub fn take(&self) -> Result<TripleShare, ProtocolError> {
        if self.is_wedged() {
            // Not policy-dependent: after a mid-draw panic the stream
            // position is unknown, so inline fallback could desync the
            // parties. Shedding with a typed error is the only safe
            // degradation.
            return Err(ProtocolError::DealerExhausted { layer: self.label.clone() });
        }
        if let Some(t) = self.pop() {
            self.metrics.add("dealer.hits", 1);
            return Ok(t);
        }
        self.metrics.add("dealer.misses", 1);
        match self.policy {
            ExhaustionPolicy::Fail => {
                Err(ProtocolError::DealerExhausted { layer: self.label.clone() })
            }
            ExhaustionPolicy::GenerateInline => {
                // Wait out any in-flight background generation (it pushes
                // before releasing the lane lock), then re-check: a triple
                // that landed meanwhile is *earlier* in the stream than
                // anything we could generate now.
                let started = std::time::Instant::now();
                let t = {
                    let mut lane = self.lane.lock();
                    match self.pop() {
                        Some(t) => t,
                        None => lane.next(|t| (self.expand)(t)),
                    }
                };
                // Bill the whole detour (lane-lock wait + inline
                // generation) as starvation: wall-clock the online path
                // lost to offline work. Recorded outside the lane guard;
                // sub-millisecond stalls round down to 0.
                let ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                self.metrics.add("dealer.starved_ms", ms);
                Ok(t)
            }
        }
    }

    /// Queue pop + bookkeeping shared by the hit path and the post-lock
    /// re-check.
    fn pop(&self) -> Option<TripleShare> {
        let mut queue = self.queue.lock();
        let t = queue.pop_front();
        let len = queue.len();
        drop(queue);
        if t.is_some() {
            self.record_depth(len);
            // Space opened up: wake the refill loop.
            self.signal.state.lock().dirty = true;
            self.signal.wake.notify_all();
        }
        t
    }

    /// One background generation step: produce the lane's next triple and
    /// queue it. Returns `false` when the queue is already at depth.
    fn refill_one(&self) -> bool {
        let lane = &mut *self.lane.lock();
        if self.queue.lock().len() >= self.depth {
            return false;
        }
        let t = lane.next(|t| (self.expand)(t));
        // Push while still holding the lane lock: queue order == stream
        // order even against the inline-fallback path.
        let mut queue = self.queue.lock();
        queue.push_back(t);
        let len = queue.len();
        drop(queue);
        self.metrics.add("dealer.generated", 1);
        self.record_depth(len);
        true
    }

    #[allow(clippy::cast_precision_loss)]
    fn record_depth(&self, len: usize) {
        if self.metrics.is_enabled() {
            self.metrics.gauge_set(&format!("dealer.queue_depth.{}", self.label), len as f64);
        }
    }
}

/// One hub member: a live pool's slots, keyed so the pool's drop can
/// deregister exactly itself.
struct HubMember {
    id: u64,
    slots: Vec<Arc<LaneSlot>>,
}

/// A refill worker **shared across sessions**: one thread, one condvar,
/// many [`DealerPool`]s. The multi-tenant server keeps a single hub and
/// registers each session's prepared-model lanes with it
/// ([`crate::prepared::PreparedModel::spawn_dealer_on`]); a session's
/// teardown drops its pool, which deregisters its lanes — the reclaim the
/// chaos soak asserts on — without disturbing any other session's queues.
///
/// Dropping the hub itself stops refilling for everyone; surviving pools
/// degrade to their exhaustion policy on the still-valid slots.
pub struct DealerHub {
    signal: Arc<PoolSignal>,
    members: Arc<Mutex<Vec<HubMember>>>,
    next_id: Mutex<u64>,
    /// Keeps the shared refill thread alive; dropped (and joined) last.
    _worker: Worker,
}

impl std::fmt::Debug for DealerHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DealerHub").field("pools", &self.members.lock().len()).finish()
    }
}

impl DealerHub {
    /// Starts the shared refill worker (named `aq2pnn-dealer`, same as a
    /// dedicated pool's) with no members yet.
    #[must_use]
    pub fn new() -> DealerHub {
        let signal = Arc::new(PoolSignal {
            state: Mutex::new(PoolState { paused: false, closed: false, dirty: true }),
            wake: Condvar::new(),
        });
        let members: Arc<Mutex<Vec<HubMember>>> = Arc::new(Mutex::new(Vec::new()));
        let worker = Worker::spawn("aq2pnn-dealer");
        let loop_members = Arc::clone(&members);
        let loop_signal = Arc::clone(&signal);
        worker.submit(move || hub_refill_loop(&loop_members, &loop_signal));
        DealerHub { signal, members, next_id: Mutex::new(0), _worker: worker }
    }

    /// Live registered pools (sessions currently drawing from the hub).
    #[must_use]
    pub fn member_pools(&self) -> usize {
        self.members.lock().len()
    }

    /// Registers `lanes` as a new pool fed by this hub's worker. The
    /// returned pool behaves like [`DealerPool::new`]'s except that
    /// dropping it only deregisters these lanes — the shared worker keeps
    /// serving every other member.
    #[must_use]
    pub fn register(
        &self,
        tracer: &Tracer,
        metrics: &MetricsRegistry,
        lanes: Vec<(String, TripleLane, ExpandFn)>,
        cfg: DealerConfig,
    ) -> DealerPool {
        let slots = make_slots(&self.signal, metrics, lanes, cfg);
        tracer.info(format!(
            "dealer: hub pool over {} lanes, depth {}, policy {:?}",
            slots.len(),
            cfg.depth.max(1),
            cfg.policy
        ));
        let id = {
            let mut next = self.next_id.lock();
            *next += 1;
            *next
        };
        self.members.lock().push(HubMember { id, slots: slots.clone() });
        // New empty queues exist: wake the shared loop to warm them.
        self.signal.state.lock().dirty = true;
        self.signal.wake.notify_all();
        DealerPool {
            slots,
            signal: Arc::clone(&self.signal),
            attachment: Attachment::Hub { members: Arc::clone(&self.members), id },
        }
    }
}

impl Default for DealerHub {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for DealerHub {
    fn drop(&mut self) {
        self.signal.state.lock().closed = true;
        self.signal.wake.notify_all();
        // `_worker` drops after this, joining the shared refill thread.
    }
}

/// How a [`DealerPool`]'s slots are kept warm, which also fixes what its
/// drop must tear down.
enum Attachment {
    /// Dedicated worker: drop closes the pool signal and joins the thread.
    Owned(#[allow(dead_code)] Worker),
    /// Member of a shared [`DealerHub`]: drop deregisters this pool's
    /// slots; the hub's worker and the other members are untouched.
    Hub { members: Arc<Mutex<Vec<HubMember>>>, id: u64 },
}

/// Handle to a running background dealer. Owns (or holds membership in)
/// the refill worker; on drop the refill stops for this pool's lanes and
/// any model still pointing at the slots falls back to inline generation
/// (the slots stay valid via `Arc`).
pub struct DealerPool {
    slots: Vec<Arc<LaneSlot>>,
    signal: Arc<PoolSignal>,
    attachment: Attachment,
}

impl std::fmt::Debug for DealerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DealerPool").field("lanes", &self.slots.len()).finish_non_exhaustive()
    }
}

impl DealerPool {
    /// Builds a pool over `lanes` (one `(label, lane, expand)` per linear
    /// layer, in layer order) and starts the background refill loop.
    ///
    /// Used through [`crate::prepared::PreparedModel::spawn_dealer`],
    /// which moves a prepared model's resident lanes in here; constructing
    /// directly is useful for tests and benches.
    #[must_use]
    pub fn new(
        ctx: &PartyContext,
        lanes: Vec<(String, TripleLane, ExpandFn)>,
        cfg: DealerConfig,
    ) -> DealerPool {
        Self::new_inner(&ctx.tracer, &ctx.metrics, lanes, cfg)
    }

    /// Context-free constructor backing [`DealerPool::new`]; the loom
    /// models build pools through this without standing up a transport.
    pub(crate) fn new_inner(
        tracer: &Tracer,
        metrics: &MetricsRegistry,
        lanes: Vec<(String, TripleLane, ExpandFn)>,
        cfg: DealerConfig,
    ) -> DealerPool {
        let signal = Arc::new(PoolSignal {
            state: Mutex::new(PoolState { paused: false, closed: false, dirty: true }),
            wake: Condvar::new(),
        });
        let slots = make_slots(&signal, metrics, lanes, cfg);
        tracer.info(format!(
            "dealer: background pool over {} lanes, depth {}, policy {:?}",
            slots.len(),
            cfg.depth.max(1),
            cfg.policy
        ));
        let worker = Worker::spawn("aq2pnn-dealer");
        let loop_slots = slots.clone();
        let loop_signal = Arc::clone(&signal);
        worker.submit(move || refill_loop(&loop_slots, &loop_signal));
        DealerPool { slots, signal, attachment: Attachment::Owned(worker) }
    }

    /// The pooled lane slots, in layer order.
    #[must_use]
    pub fn slots(&self) -> &[Arc<LaneSlot>] {
        &self.slots
    }

    /// Stops background refilling (queues drain but are not replenished).
    /// Deterministic-exhaustion knob for tests and cold-start benches.
    /// On a hub-registered pool this pauses the *shared* refill loop —
    /// every member — since the signal is hub-wide.
    pub fn pause(&self) {
        self.signal.state.lock().paused = true;
        self.signal.wake.notify_all();
    }

    /// Resumes background refilling after [`DealerPool::pause`].
    pub fn resume(&self) {
        let mut st = self.signal.state.lock();
        st.paused = false;
        st.dirty = true;
        drop(st);
        self.signal.wake.notify_all();
    }

    /// True once every lane queue is at its configured depth.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.slots.iter().all(|s| s.queued() >= s.depth)
    }

    /// Blocks until the pool is warm or `timeout` elapses; returns whether
    /// it warmed in time.
    #[must_use]
    pub fn wait_warm(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while !self.is_warm() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        true
    }
}

impl Drop for DealerPool {
    fn drop(&mut self) {
        match &self.attachment {
            Attachment::Owned(_) => {
                self.signal.state.lock().closed = true;
                self.signal.wake.notify_all();
                // The owned worker drops after this, joining the thread.
            }
            Attachment::Hub { members, id } => {
                // Deregister only this pool's lanes; the shared worker and
                // every other member keep running.
                members.lock().retain(|m| m.id != *id);
                self.signal.state.lock().dirty = true;
                self.signal.wake.notify_all();
            }
        }
    }
}

/// Builds the slot set for one pool over `signal`, shared by the dedicated
/// and hub constructors.
fn make_slots(
    signal: &Arc<PoolSignal>,
    metrics: &MetricsRegistry,
    lanes: Vec<(String, TripleLane, ExpandFn)>,
    cfg: DealerConfig,
) -> Vec<Arc<LaneSlot>> {
    let depth = cfg.depth.max(1);
    lanes
        .into_iter()
        .map(|(label, lane, expand)| {
            Arc::new(LaneSlot {
                label,
                lane: Mutex::new(lane),
                expand,
                queue: Mutex::new(VecDeque::with_capacity(depth)),
                depth,
                policy: cfg.policy,
                signal: Arc::clone(signal),
                metrics: metrics.clone(),
                wedged: AtomicBool::new(false),
            })
        })
        .collect()
}

/// The shared-hub refill loop: like [`refill_loop`] but re-snapshots the
/// member list each sweep, so pools can register and deregister while the
/// worker runs. Lock order: pool-signal state and the member list are
/// never held together.
fn hub_refill_loop(members: &Arc<Mutex<Vec<HubMember>>>, signal: &Arc<PoolSignal>) {
    loop {
        {
            let mut st = signal.state.lock();
            if st.closed {
                return;
            }
            if st.paused {
                let _st = signal.wake.wait(st);
                continue;
            }
            st.dirty = false;
        }
        let snapshot: Vec<Arc<LaneSlot>> =
            members.lock().iter().flat_map(|m| m.slots.iter().cloned()).collect();
        let mut progressed = false;
        for slot in &snapshot {
            if signal.state.lock().closed {
                return;
            }
            if slot.is_wedged() {
                continue;
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slot.refill_one())) {
                Ok(p) => progressed |= p,
                Err(_) => slot.wedged.store(true, Ordering::SeqCst),
            }
        }
        if !progressed {
            let st = signal.state.lock();
            if !st.dirty && !st.closed {
                let _st = signal.wake.wait(st);
            }
        }
    }
}

/// The background refill loop: round-robin over the slots, topping each
/// queue up to depth; park on the pool condvar when no queue has space.
fn refill_loop(slots: &[Arc<LaneSlot>], signal: &Arc<PoolSignal>) {
    loop {
        {
            let mut st = signal.state.lock();
            if st.closed {
                return;
            }
            if st.paused {
                let _st = signal.wake.wait(st);
                continue;
            }
            // Consume the pending wakeup; a pop arriving after this point
            // re-sets it and the post-scan wait returns immediately.
            st.dirty = false;
        }
        let mut progressed = false;
        for slot in slots {
            // One triple per slot per sweep keeps refill breadth-first
            // across layers, so a whole inference's worth of material
            // becomes available as early as possible.
            if signal.state.lock().closed {
                return;
            }
            if slot.is_wedged() {
                continue;
            }
            // A panicking expansion must not take down the refill thread
            // (the other slots can still serve) — but it wedges its slot:
            // the lane's stream position is now unknowable.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slot.refill_one())) {
                Ok(p) => progressed |= p,
                Err(_) => slot.wedged.store(true, Ordering::SeqCst),
            }
        }
        if !progressed {
            let st = signal.state.lock();
            if !st.dirty && !st.closed {
                let _st = signal.wake.wait(st);
            }
        }
    }
}

/// Where a prepared linear layer draws its per-inference triples from:
/// its own resident lane (inline generation on the online path) or a
/// pooled slot fed by the background dealer.
pub(crate) enum TripleSource {
    Inline(Box<TripleLane>),
    Pooled(Arc<LaneSlot>),
}

impl TripleSource {
    /// Draws the next `b` triples in stream order (one per batched image).
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError::DealerExhausted`] from a strict pooled
    /// slot.
    #[allow(clippy::cast_precision_loss)]
    pub(crate) fn take_n(
        &mut self,
        b: usize,
        expand: impl Fn(&RingTensor) -> RingTensor,
    ) -> Result<Vec<TripleShare>, ProtocolError> {
        match self {
            TripleSource::Inline(lane) => Ok((0..b).map(|_| lane.next(&expand)).collect()),
            TripleSource::Pooled(slot) => {
                slot.metrics.observe_with(
                    "dealer.take_batch",
                    &aq2pnn_obs::Histogram::exponential(1.0, 2.0, 6),
                    b as f64,
                );
                (0..b).map(|_| slot.take()).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_ring::Ring;
    use aq2pnn_sharing::dealer::TripleDealer;
    use std::time::{Duration, Instant};

    fn tiny_lane(seed: u64) -> TripleLane {
        let mut dealer = TripleDealer::from_seed(seed);
        let (lane, _peer) = dealer.expanded_lane(Ring::new(8), &[1, 2], &[2, 1]);
        lane
    }

    /// A panic inside a background generation step must wedge only that
    /// slot — every take on it fails typed (inline fallback would risk a
    /// cross-party desync from a half-advanced RNG stream) — while the
    /// refill thread survives to keep serving the healthy lanes.
    #[test]
    fn panicked_refill_wedges_slot_but_pool_survives() {
        let bomb: ExpandFn = Box::new(|t: &RingTensor| {
            if std::thread::current().name() == Some("aq2pnn-dealer") {
                panic!("seeded refill bomb");
            }
            t.clone()
        });
        let pool = DealerPool::new_inner(
            &Tracer::disabled(),
            &MetricsRegistry::disabled(),
            vec![
                ("bad".to_string(), tiny_lane(1), bomb),
                ("good".to_string(), tiny_lane(2), Box::new(RingTensor::clone)),
            ],
            DealerConfig { depth: 2, policy: ExhaustionPolicy::GenerateInline },
        );
        let bad = Arc::clone(&pool.slots()[0]);
        let good = Arc::clone(&pool.slots()[1]);

        let deadline = Instant::now() + Duration::from_secs(10);
        while !(bad.is_wedged() && good.queued() >= 2) {
            assert!(Instant::now() < deadline, "pool never wedged bad / warmed good");
            std::thread::sleep(Duration::from_millis(1));
        }

        // Wedged slot: typed failure despite the GenerateInline policy.
        match bad.take() {
            Err(ProtocolError::DealerExhausted { ref layer }) => assert_eq!(layer, "bad"),
            Ok(_) => panic!("wedged slot must not serve"),
            Err(other) => panic!("expected DealerExhausted, got {other}"),
        }

        // Healthy slot still drains and refills: the worker outlived the
        // panic.
        for _ in 0..4 {
            good.take().expect("healthy lane keeps serving");
        }
        drop(pool); // join must not hang on the survived worker
    }

    /// Two pools share one hub worker; dropping one deregisters only its
    /// lanes (the reclaim path the server relies on), while the other
    /// keeps refilling. Dropping the hub stops refills but leaves the
    /// surviving pool's slots valid for inline fallback.
    #[test]
    fn hub_shares_worker_and_reclaims_dropped_pools() {
        let hub = DealerHub::new();
        let tracer = Tracer::disabled();
        let metrics = MetricsRegistry::disabled();
        let cfg = DealerConfig { depth: 2, policy: ExhaustionPolicy::GenerateInline };
        let p1 = hub.register(
            &tracer,
            &metrics,
            vec![("a".into(), tiny_lane(1), Box::new(RingTensor::clone) as ExpandFn)],
            cfg,
        );
        let p2 = hub.register(
            &tracer,
            &metrics,
            vec![("b".into(), tiny_lane(2), Box::new(RingTensor::clone) as ExpandFn)],
            cfg,
        );
        assert_eq!(hub.member_pools(), 2);
        assert!(p1.wait_warm(Duration::from_secs(10)), "hub never warmed pool 1");
        assert!(p2.wait_warm(Duration::from_secs(10)), "hub never warmed pool 2");

        // Session teardown: pool 1's lanes deregister, pool 2 survives.
        drop(p1);
        assert_eq!(hub.member_pools(), 1);
        let s2 = Arc::clone(&p2.slots()[0]);
        for _ in 0..4 {
            s2.take().expect("surviving pool keeps serving");
        }
        assert!(p2.wait_warm(Duration::from_secs(10)), "hub stopped refilling survivor");

        // Hub teardown: no more refills, but takes still succeed inline.
        drop(hub);
        for _ in 0..3 {
            s2.take().expect("inline fallback after hub drop");
        }
        drop(p2);
    }
}

/// Exhaustive schedule exploration of the dealer's push-before-unlock
/// queue and backpressure parking, on the production code (the `sync`
/// facade swaps in the loom backend). Run via
/// `RUSTFLAGS="--cfg loom" cargo test -p aq2pnn --lib loom_`.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use aq2pnn_ring::Ring;
    use aq2pnn_sharing::dealer::TripleDealer;

    /// A consumer draining a depth-1 pool races the background refill
    /// loop. Under every interleaving: takes must yield the lane's RNG
    /// stream in order (push-before-unlock invariant), no schedule may
    /// deadlock (lost-wakeup freedom for the dirty/wake handshake, both
    /// directions), and drop must shut the refill loop down cleanly.
    #[test]
    fn loom_dealer_stream_order_and_shutdown() {
        loom::model(|| {
            let mut dealer = TripleDealer::from_seed(7);
            // 1×1 shapes keep the GEMM inline (no scoped-thread fan-out
            // inside the model) and the state space small.
            let (lane, _peer) = dealer.expanded_lane(Ring::new(8), &[1, 1], &[1, 1]);
            let mut reference = lane.clone();
            let expected: Vec<TripleShare> =
                (0..3).map(|_| reference.next(RingTensor::clone)).collect();

            let pool = DealerPool::new_inner(
                &Tracer::disabled(),
                &MetricsRegistry::disabled(),
                vec![("l0".to_string(), lane, Box::new(RingTensor::clone) as ExpandFn)],
                DealerConfig { depth: 1, policy: ExhaustionPolicy::GenerateInline },
            );
            let slot = Arc::clone(&pool.slots()[0]);
            for (k, want) in expected.iter().enumerate() {
                let got = slot.take().expect("take under GenerateInline");
                assert!(got == *want, "take {k} out of stream order");
            }
            drop(pool);
        });
        assert!(loom::explored() > 1, "model must explore real interleavings");
    }
}
