//! Protocol-level error type.

use aq2pnn_ot::OtError;
use aq2pnn_ring::ShapeError;
use aq2pnn_transport::TransportError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the 2PC protocol layer.
#[derive(Debug)]
pub enum ProtocolError {
    /// The party-to-party channel failed.
    Transport(TransportError),
    /// An oblivious-transfer sub-protocol failed.
    Ot(OtError),
    /// Tensor shapes disagreed inside a protocol operation.
    Shape(ShapeError),
    /// The model/spec cannot be executed by the engine.
    Model(String),
    /// The two parties diverged (desynchronized protocol state).
    Desync(String),
    /// A protocol operation received shares on the wrong ring (e.g.
    /// [`crate::abrelu::secure_sign`] expects `Q1` shares).
    RingMismatch {
        /// The ring width the operation requires.
        expected: u32,
        /// The ring width of the shares it was given.
        got: u32,
    },
    /// The background offline dealer had no precomputed material for a
    /// layer and its pool is configured to fail rather than generate
    /// inline ([`crate::dealer::ExhaustionPolicy::Fail`]). Shed the
    /// request or retry once the pool has refilled.
    DealerExhausted {
        /// The layer label whose lane ran dry (`conv0`, `fc4`, …).
        layer: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Transport(e) => write!(f, "transport failure: {e}"),
            ProtocolError::Ot(e) => write!(f, "oblivious transfer failure: {e}"),
            ProtocolError::Shape(e) => write!(f, "shape error in protocol op: {e}"),
            ProtocolError::Model(msg) => write!(f, "model not executable: {msg}"),
            ProtocolError::Desync(msg) => write!(f, "parties desynchronized: {msg}"),
            ProtocolError::RingMismatch { expected, got } => {
                write!(f, "shares on ring 2^{got} where the operation requires 2^{expected}")
            }
            ProtocolError::DealerExhausted { layer } => {
                write!(f, "offline dealer pool exhausted at layer {layer} (strict policy)")
            }
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Transport(e) => Some(e),
            ProtocolError::Ot(e) => Some(e),
            ProtocolError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        ProtocolError::Transport(e)
    }
}

impl From<OtError> for ProtocolError {
    fn from(e: OtError) -> Self {
        ProtocolError::Ot(e)
    }
}

impl From<ShapeError> for ProtocolError {
    fn from(e: ShapeError) -> Self {
        ProtocolError::Shape(e)
    }
}
