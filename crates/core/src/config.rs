//! Protocol configuration.

use serde::{Deserialize, Serialize};

/// How 2PC-BNReQ truncates shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TruncationMode {
    /// SecureML-style local truncation — what the hardware does. Off by
    /// ±1 LSB, with a rare (`≈|x|/2^ℓ`) catastrophic wrap.
    Local,
    /// Idealized exact truncation via dealer resharing — correctness
    /// baseline and ablation reference.
    Exact,
}

/// How shares are widened from the activation carrier `Q1` to the MAC ring
/// `Q2` (paper Fig. 8 step ④).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtensionMode {
    /// Local sign extension of each share — the paper's method; fails per
    /// element with probability `≈|x|/2^{Q1}`.
    Local,
    /// Idealized exact extension via dealer resharing.
    Exact,
}

/// How activations are carried between operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Activation shares stay on the wide MAC ring `Q2` end to end;
    /// ABReLU *narrows* them to `Q1` for the comparison (narrowing shares
    /// is always exact) and the `Q1` width only determines the comparison
    /// wire format. No per-activation share extension ever happens, so
    /// accuracy degrades **deterministically** — exactly when a value
    /// overflows `±2^{Q1−1}` — matching the paper's reported
    /// flat-then-cliff behaviour (Tables 7–8). Default.
    StayWide,
    /// The literal Fig. 8 reading: activations are truncated onto the
    /// `Q1` carrier after BNReQ and *sign-extended* back to `Q2` before
    /// each convolution. Every extension fails per element with
    /// probability `≈|x|/2^{Q1}`; at realistic activation counts this
    /// compounds into a large accuracy loss even at the recommended
    /// headroom — the ablation quantifying why the stay-wide structure is
    /// the consistent interpretation.
    NarrowActivations,
}

/// What happens to the comparison outcome at the end of ABReLU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReluMode {
    /// Paper-faithful: the receiver derives the sign bits and sends the
    /// `T_m` mask to the sender (paper Fig. 4 / OUT-MSK buffer); both
    /// parties then zero the non-positive share elements locally. Cheapest;
    /// reveals the activation sign pattern to both parties.
    RevealedSign,
    /// Hardened extension: only the comparison receiver learns the signs;
    /// the ReLU output is re-shared through an OT-based multiplexer so the
    /// sender learns nothing. Costs one extra `(1,2)`-OT with `Q2`-bit
    /// messages per activation.
    MaskedMux,
}

/// Whether ABReLU fetches all bit-group comparisons at once or lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReluRounds {
    /// One OT round covering every group — latency-optimal.
    Single,
    /// Two rounds: the quadrant groups (top 2 bits) first, then the
    /// remaining groups only for values the quadrant did not decide
    /// (paper Sec. 4.4 red ①/②) — communication-optimal.
    Lazy,
}

/// Full configuration of a secure-inference session.
///
/// `q1_bits` is the activation carrier — "the number of output bits sent to
/// ABReLU", the knob swept in paper Tables 7–8. `q2_bits` is the MAC ring
/// the convolutions accumulate on (paper: `Q2 = Q1 + 16`, the Fig. 9
/// plaintext accumulator expansion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Activation-carrier ring width `ℓ1` (`Q1 = 2^{ℓ1}`).
    pub q1_bits: u32,
    /// MAC ring width `ℓ2` (`Q2 = 2^{ℓ2}`).
    pub q2_bits: u32,
    /// Share truncation strategy for BNReQ.
    pub truncation: TruncationMode,
    /// Share extension strategy for ring-size extension.
    pub extension: ExtensionMode,
    /// ABReLU output handling.
    pub relu_mode: ReluMode,
    /// ABReLU OT scheduling.
    pub relu_rounds: ReluRounds,
    /// Activation carrying structure.
    pub pipeline: PipelineMode,
    /// Seed for the shared protocol setup (labels, dealer, masks). Both
    /// parties must agree on it.
    pub setup_seed: u64,
}

impl ProtocolConfig {
    /// Paper-faithful configuration at a given ABReLU bit-width:
    /// `Q2 = Q1 + 16`, local truncation/extension, revealed sign mask,
    /// single-round OT.
    ///
    /// # Panics
    ///
    /// Panics if `q1_bits` is not in `6..=48`.
    #[must_use]
    pub fn paper(q1_bits: u32) -> Self {
        assert!((6..=48).contains(&q1_bits), "q1 must be in 6..=48 bits");
        ProtocolConfig {
            q1_bits,
            q2_bits: q1_bits + 16,
            truncation: TruncationMode::Local,
            extension: ExtensionMode::Local,
            relu_mode: ReluMode::RevealedSign,
            relu_rounds: ReluRounds::Single,
            pipeline: PipelineMode::StayWide,
            setup_seed: 0xa92b_1ba5_eed5,
        }
    }

    /// Exact configuration: idealized truncation/extension so the 2PC
    /// output is bit-identical to the plaintext quantized model (used by
    /// correctness tests).
    ///
    /// # Panics
    ///
    /// Panics if `q1_bits` is not in `6..=48`.
    #[must_use]
    pub fn exact(q1_bits: u32) -> Self {
        ProtocolConfig {
            truncation: TruncationMode::Exact,
            extension: ExtensionMode::Exact,
            ..Self::paper(q1_bits)
        }
    }

    /// The activation-carrier ring.
    #[must_use]
    pub fn q1(&self) -> aq2pnn_ring::Ring {
        aq2pnn_ring::Ring::new(self.q1_bits)
    }

    /// The MAC ring.
    #[must_use]
    pub fn q2(&self) -> aq2pnn_ring::Ring {
        aq2pnn_ring::Ring::new(self.q2_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ProtocolConfig::paper(16);
        assert_eq!(c.q2_bits, 32);
        assert_eq!(c.truncation, TruncationMode::Local);
        assert_eq!(c.relu_mode, ReluMode::RevealedSign);
    }

    #[test]
    fn exact_overrides_share_ops() {
        let c = ProtocolConfig::exact(16);
        assert_eq!(c.truncation, TruncationMode::Exact);
        assert_eq!(c.extension, ExtensionMode::Exact);
        assert_eq!(c.q2_bits, 32);
    }

    #[test]
    #[should_panic(expected = "q1 must be")]
    fn rejects_tiny_rings() {
        let _ = ProtocolConfig::paper(4);
    }
}
