//! INST Q — the instruction-queue compiler (paper Sec. 4.1.1).
//!
//! Lowers a [`QuantModel`] + [`ProtocolConfig`] into the accelerator
//! instruction stream: AS-GEMM invocations, AS-ALU operations, A2BM/SCM
//! comparison work and party-to-party exchanges. The byte counts use the
//! same bit-packed wire format as the live engine, so
//! [`Program::user_bytes_sent`] must equal the engine's measured channel
//! statistics — a consistency the integration tests assert. The FPGA
//! simulator (`aq2pnn-accel`) consumes the program for cycle-accurate-ish
//! timing.

use crate::{PipelineMode, ProtocolConfig, ReluMode};
use aq2pnn_nn::quant::{QuantModel, QuantOp};
use aq2pnn_sharing::a2b::group_widths;
use aq2pnn_transport::packed_len;
use serde::{Deserialize, Serialize};

/// AS-ALU operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluKind {
    /// C-C addition (bias, residual adds, pooling sums).
    Add,
    /// P-C multiply + truncation (BNReQ / rescale).
    MulShift,
    /// Share zeroing / selection.
    Select,
}

/// One compiled instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Stream weights into the AS-WGT buffer.
    LoadWeights {
        /// Elements loaded.
        elems: u64,
        /// Bits per element.
        bits: u32,
    },
    /// An AS-GEMM array invocation.
    Gemm {
        /// Output rows (pixels).
        m: u64,
        /// Reduction dimension.
        k: u64,
        /// Output columns (channels).
        n: u64,
    },
    /// An AS-ALU pass.
    Alu {
        /// Operation class.
        kind: AluKind,
        /// Elements processed.
        elems: u64,
    },
    /// A2BM + SCM comparison work (per OT-flow batch).
    Compare {
        /// Values compared.
        values: u64,
        /// Bit groups per value (`U`).
        groups: u32,
        /// Total OT slots encrypted per value (Σ 2^w).
        slots: u64,
    },
    /// A network exchange; byte counts are exact wire bytes.
    Exchange {
        /// Phase label (matches the engine's channel phases).
        label: String,
        /// Bytes party 0 sends.
        user_bytes: u64,
        /// Messages party 0 sends.
        user_msgs: u64,
        /// Bytes party 1 sends.
        provider_bytes: u64,
        /// Messages party 1 sends.
        provider_msgs: u64,
    },
}

/// A compiled instruction stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Model name.
    pub name: String,
    /// The instructions in execution order.
    pub instrs: Vec<Instr>,
    /// The configuration the program was compiled for.
    pub cfg: ProtocolConfig,
}

impl Program {
    /// Total bytes party 0 sends on the wire.
    #[must_use]
    pub fn user_bytes_sent(&self) -> u64 {
        self.exchanges().map(|e| e.0).sum()
    }

    /// Total bytes party 1 sends on the wire.
    #[must_use]
    pub fn provider_bytes_sent(&self) -> u64 {
        self.exchanges().map(|e| e.2).sum()
    }

    /// Total traffic (both directions).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.user_bytes_sent() + self.provider_bytes_sent()
    }

    /// Total messages (both directions).
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.exchanges().map(|e| e.1 + e.3).sum()
    }

    /// Total traffic in MiB — including the one-time offline mask opening.
    #[must_use]
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// *Online* traffic in bytes — excluding `offline-*` phases (the
    /// pre-deployed weight-mask opening). This is what the paper's tables
    /// report.
    #[must_use]
    pub fn online_total_bytes(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Exchange { label, user_bytes, provider_bytes, .. }
                    if !label.starts_with("offline") =>
                {
                    user_bytes + provider_bytes
                }
                _ => 0,
            })
            .sum()
    }

    /// Online traffic in MiB.
    #[must_use]
    pub fn online_total_mib(&self) -> f64 {
        self.online_total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Online messages (both directions), the round-latency driver.
    #[must_use]
    pub fn online_messages(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Exchange { label, user_msgs, provider_msgs, .. }
                    if !label.starts_with("offline") =>
                {
                    user_msgs + provider_msgs
                }
                _ => 0,
            })
            .sum()
    }

    /// Total AS-GEMM multiply-accumulates.
    #[must_use]
    pub fn gemm_macs(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Gemm { m, k, n } => m * k * n,
                _ => 0,
            })
            .sum()
    }

    /// Total secure comparisons (values through the SCM).
    #[must_use]
    pub fn comparisons(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Compare { values, .. } => *values,
                _ => 0,
            })
            .sum()
    }

    /// Total AS-ALU element operations.
    #[must_use]
    pub fn alu_elems(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Alu { elems, .. } => *elems,
                _ => 0,
            })
            .sum()
    }

    /// Traffic attributed to phases whose label starts with `prefix`
    /// (e.g. `"abrelu"`), both directions.
    #[must_use]
    pub fn bytes_for_phase_prefix(&self, prefix: &str) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Exchange { label, user_bytes, provider_bytes, .. }
                    if label.starts_with(prefix) =>
                {
                    user_bytes + provider_bytes
                }
                _ => 0,
            })
            .sum()
    }

    fn exchanges(&self) -> impl Iterator<Item = (u64, u64, u64, u64)> + '_ {
        self.instrs.iter().filter_map(|i| match i {
            Instr::Exchange { user_bytes, user_msgs, provider_bytes, provider_msgs, .. } => {
                Some((*user_bytes, *user_msgs, *provider_bytes, *provider_msgs))
            }
            _ => None,
        })
    }
}

/// Compiles a model to its instruction stream under `cfg`.
///
/// Models the engine's single-OT-round schedule ([`crate::ReluRounds::Single`]);
/// lazy scheduling is data-dependent and is measured live instead.
#[must_use]
pub fn compile(model: &QuantModel, cfg: &ProtocolConfig) -> Program {
    let mut instrs = Vec::new();
    let mut idx = 0usize;
    compile_ops(&model.ops, cfg, &mut idx, &mut instrs);
    // Final logit reveal.
    let out = crate::engine::output_len(model);
    let bytes = packed_len(act_bits(cfg), out) as u64;
    instrs.push(Instr::Exchange {
        label: "output".into(),
        user_bytes: bytes,
        user_msgs: 1,
        provider_bytes: bytes,
        provider_msgs: 1,
    });
    Program { name: model.name.clone(), instrs, cfg: cfg.clone() }
}

/// The activation-carrier width instructions are exchanged at.
fn act_bits(cfg: &ProtocolConfig) -> u32 {
    match cfg.pipeline {
        PipelineMode::StayWide => cfg.q2_bits,
        PipelineMode::NarrowActivations => cfg.q1_bits,
    }
}

/// The comparison-exchange cost of one batched `secure_sign` of `n`
/// values, plus the mode-dependent epilogue. Returns the instructions.
fn sign_instrs(label: &str, n: u64, cfg: &ProtocolConfig, select_elems: u64) -> Vec<Instr> {
    let widths = group_widths(cfg.q1_bits);
    let u = widths.len() as u64;
    let slots: u64 = widths.iter().map(|&w| 1u64 << w).sum();
    let mut v = vec![
        Instr::Compare { values: n, groups: u as u32, slots },
        // Sender (party 0): r̂ + encrypted codes. Receiver (party 1): R.
        Instr::Exchange {
            label: label.to_owned(),
            user_bytes: (packed_len(cfg.q1_bits, 1) + packed_len(2, (n * slots) as usize)) as u64,
            user_msgs: 2,
            provider_bytes: packed_len(cfg.q1_bits, (n * u) as usize) as u64,
            provider_msgs: 1,
        },
    ];
    match cfg.relu_mode {
        ReluMode::RevealedSign => {
            // T_m mask back to party 0, then local selection.
            v.push(Instr::Exchange {
                label: format!("{label}.tm"),
                user_bytes: 0,
                user_msgs: 0,
                provider_bytes: packed_len(1, n as usize) as u64,
                provider_msgs: 1,
            });
            v.push(Instr::Alu { kind: AluKind::Select, elems: select_elems });
        }
        ReluMode::MaskedMux => {
            // MUX OT: sender r̂ (group element, Q1) + 2n messages at the
            // activation-carrier width; receiver R (n Q1 elements).
            v.push(Instr::Exchange {
                label: format!("{label}.mux"),
                user_bytes: (packed_len(cfg.q1_bits, 1) + packed_len(act_bits(cfg), 2 * n as usize))
                    as u64,
                user_msgs: 2,
                provider_bytes: packed_len(cfg.q1_bits, n as usize) as u64,
                provider_msgs: 1,
            });
            v.push(Instr::Alu { kind: AluKind::Add, elems: select_elems });
        }
    }
    v
}

#[allow(clippy::too_many_lines)]
fn compile_ops(ops: &[QuantOp], cfg: &ProtocolConfig, idx: &mut usize, out: &mut Vec<Instr>) {
    for op in ops {
        let i = *idx;
        *idx += 1;
        match op {
            QuantOp::Conv2d { in_c, out_c, k, in_hw, out_hw, w, bias, requant: _, .. } => {
                let m = (out_hw.0 * out_hw.1) as u64;
                let kk = (in_c * k * k) as u64;
                let n = *out_c as u64;
                let n_in = (in_c * in_hw.0 * in_hw.1) as u64;
                out.push(Instr::LoadWeights {
                    elems: (w.len() + bias.len()) as u64,
                    bits: cfg.q2_bits,
                });
                // One-time opening of the weight mask F (pre-deployed).
                let f_ex = packed_len(cfg.q2_bits, (kk * n) as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("offline-f.conv{i}"),
                    user_bytes: f_ex,
                    user_msgs: 1,
                    provider_bytes: f_ex,
                    provider_msgs: 1,
                });
                // Online: the feature-map-sized E mask.
                let ex = packed_len(cfg.q2_bits, n_in as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("conv{i}"),
                    user_bytes: ex,
                    user_msgs: 1,
                    provider_bytes: ex,
                    provider_msgs: 1,
                });
                out.push(Instr::Gemm { m, k: kk, n });
                out.push(Instr::Alu { kind: AluKind::Add, elems: m * n });
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: m * n });
            }
            QuantOp::Linear { in_f, out_f, w, bias, .. } => {
                let kk = *in_f as u64;
                let n = *out_f as u64;
                out.push(Instr::LoadWeights {
                    elems: (w.len() + bias.len()) as u64,
                    bits: cfg.q2_bits,
                });
                let f_ex = packed_len(cfg.q2_bits, (kk * n) as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("offline-f.fc{i}"),
                    user_bytes: f_ex,
                    user_msgs: 1,
                    provider_bytes: f_ex,
                    provider_msgs: 1,
                });
                let ex = packed_len(cfg.q2_bits, kk as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("fc{i}"),
                    user_bytes: ex,
                    user_msgs: 1,
                    provider_bytes: ex,
                    provider_msgs: 1,
                });
                out.push(Instr::Gemm { m: 1, k: kk, n });
                out.push(Instr::Alu { kind: AluKind::Add, elems: n });
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: n });
            }
            QuantOp::Relu => {
                // Infer the element count from the previous GEMM/pool; the
                // compiler tracks it via the caller — here we reconstruct
                // from the last sized instruction.
                let n = last_output_elems(out);
                out.extend(sign_instrs(&format!("abrelu{i}"), n, cfg, n));
            }
            QuantOp::MaxPool { k, stride, pad, c, in_hw, out_hw } => {
                // Tournament rounds with exact list-size bookkeeping.
                let windows = crate::ops::pool_windows(*c, *in_hw, *k, *stride, *pad, *out_hw);
                let mut lens: Vec<usize> = windows.iter().map(Vec::len).collect();
                let mut round = 0usize;
                while lens.iter().any(|&l| l > 1) {
                    let pairs: u64 = lens.iter().map(|&l| (l / 2) as u64).sum();
                    out.extend(sign_instrs(&format!("maxpool{i}.r{round}"), pairs, cfg, pairs));
                    for l in &mut lens {
                        *l = *l / 2 + *l % 2;
                    }
                    round += 1;
                }
                // Tag the pool's output size for downstream `Relu` sizing.
                out.push(Instr::Alu {
                    kind: AluKind::Select,
                    elems: (c * out_hw.0 * out_hw.1) as u64,
                });
            }
            QuantOp::AvgPool { k, c, out_hw, .. } => {
                let elems = (c * out_hw.0 * out_hw.1) as u64;
                out.push(Instr::Alu { kind: AluKind::Add, elems: elems * (*k * *k) as u64 });
                out.push(Instr::Alu { kind: AluKind::MulShift, elems });
            }
            QuantOp::GlobalAvgPool { c, in_hw, .. } => {
                out.push(Instr::Alu { kind: AluKind::Add, elems: (c * in_hw.0 * in_hw.1) as u64 });
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: *c as u64 });
            }
            QuantOp::Flatten => {}
            QuantOp::Rescale { .. } => {
                let n = last_output_elems(out);
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: n });
            }
            QuantOp::Residual { main, shortcut } => {
                compile_ops(main, cfg, idx, out);
                let m_elems = last_output_elems(out);
                compile_ops(shortcut, cfg, idx, out);
                out.push(Instr::Alu { kind: AluKind::Add, elems: m_elems });
            }
        }
    }
}

/// Compiles a *spec* (no weights materialized) to its instruction stream —
/// the path used for ImageNet-scale cost modeling, where instantiating the
/// weight tensors would be pointless. Produces the same program a
/// quantized instance of the spec would (Conv+BatchNorm folds into one
/// BNReQ; residual branches gain their rescale ALU passes).
///
/// # Errors
///
/// Returns an error string if the spec fails shape inference.
pub fn compile_spec(
    spec: &aq2pnn_nn::spec::ModelSpec,
    cfg: &ProtocolConfig,
) -> Result<Program, String> {
    compile_spec_inner(spec, cfg, None)
}

/// Compiles a spec with **per-layer MAC rings** — the full expression of
/// the paper's adaptivity claim ("adapt the data bit-width of different
/// DNN layers in the ciphertext domain"): instead of one uniform
/// `Q2 = Q1 + 16`, every GEMM layer exchanges its masks on the smallest
/// ring that provably holds its worst-case accumulator
/// (`value + weight + ⌈log₂ fan⌉ + 1` bits, the
/// [`crate::planner::AdaptivePlan`] analysis), clamped to
/// `[Q1 + 4, 48]`.
///
/// Small-fan layers get narrower exchanges (communication ↓); layers
/// whose worst case exceeds the uniform ring are widened (the uniform
/// setting relies on statistical cancellation there — this variant is
/// worst-case safe). The `adaptive_per_layer` harness quantifies both.
///
/// # Errors
///
/// Returns an error string if the spec fails shape inference.
pub fn compile_spec_per_layer(
    spec: &aq2pnn_nn::spec::ModelSpec,
    cfg: &ProtocolConfig,
    weight_bits: u32,
) -> Result<Program, String> {
    let value_bits = cfg.q1_bits.saturating_sub(aq2pnn_ring::HEADROOM_BITS);
    let mut p = compile_spec_inner(spec, cfg, Some((value_bits, weight_bits)))?;
    p.name = format!("{}-per-layer", p.name);
    Ok(p)
}

fn compile_spec_inner(
    spec: &aq2pnn_nn::spec::ModelSpec,
    cfg: &ProtocolConfig,
    per_layer: Option<(u32, u32)>,
) -> Result<Program, String> {
    spec.infer_shapes().map_err(|e| e.to_string())?;
    let mut instrs = Vec::new();
    let mut idx = 0usize;
    let out_shape = compile_spec_ops(&spec.ops, spec.input, cfg, per_layer, &mut idx, &mut instrs)?;
    let out = out_shape.elements();
    let bytes = packed_len(act_bits(cfg), out) as u64;
    instrs.push(Instr::Exchange {
        label: "output".into(),
        user_bytes: bytes,
        user_msgs: 1,
        provider_bytes: bytes,
        provider_msgs: 1,
    });
    Ok(Program { name: spec.name.clone(), instrs, cfg: cfg.clone() })
}

/// The MAC ring a GEMM layer uses: uniform `cfg.q2_bits`, or the layer's
/// worst-case-safe minimum when per-layer adaptivity is on.
fn layer_q2(cfg: &ProtocolConfig, per_layer: Option<(u32, u32)>, fan: u64) -> u32 {
    match per_layer {
        None => cfg.q2_bits,
        Some((value_bits, weight_bits)) => {
            let fan_bits = 64 - fan.max(1).leading_zeros();
            (value_bits + weight_bits + fan_bits + 1).clamp(cfg.q1_bits + 4, 48)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn compile_spec_ops(
    ops: &[aq2pnn_nn::spec::OpSpec],
    input: aq2pnn_nn::spec::TensorShape,
    cfg: &ProtocolConfig,
    per_layer: Option<(u32, u32)>,
    idx: &mut usize,
    out: &mut Vec<Instr>,
) -> Result<aq2pnn_nn::spec::TensorShape, String> {
    use aq2pnn_nn::spec::{ModelSpec, OpSpec, TensorShape};
    let shape_after = |op: &OpSpec, cur: TensorShape| -> Result<TensorShape, String> {
        let tmp = ModelSpec { name: String::new(), input: cur, ops: vec![op.clone()] };
        tmp.output_shape().map_err(|e| e.to_string())
    };
    let mut cur = input;
    let mut skip_bn = false;
    for (pos, op) in ops.iter().enumerate() {
        let i = *idx;
        *idx += 1;
        let next_shape = shape_after(op, cur)?;
        match op {
            OpSpec::Conv2d { out_c, k, .. } => {
                let (in_c, _, _) = match cur {
                    TensorShape::Chw(c, h, w) => (c, h, w),
                    TensorShape::Flat(_) => return Err("conv on flat input".into()),
                };
                let (oh, ow) = match next_shape {
                    TensorShape::Chw(_, h, w) => (h, w),
                    TensorShape::Flat(_) => unreachable!("conv output is CHW"),
                };
                let m = (oh * ow) as u64;
                let kk = (in_c * k * k) as u64;
                let n = *out_c as u64;
                let n_in = cur.elements() as u64;
                let q2l = layer_q2(cfg, per_layer, kk);
                out.push(Instr::LoadWeights { elems: kk * n + n, bits: q2l });
                let f_ex = packed_len(q2l, (kk * n) as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("offline-f.conv{i}"),
                    user_bytes: f_ex,
                    user_msgs: 1,
                    provider_bytes: f_ex,
                    provider_msgs: 1,
                });
                let ex = packed_len(q2l, n_in as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("conv{i}"),
                    user_bytes: ex,
                    user_msgs: 1,
                    provider_bytes: ex,
                    provider_msgs: 1,
                });
                out.push(Instr::Gemm { m, k: kk, n });
                out.push(Instr::Alu { kind: AluKind::Add, elems: m * n });
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: m * n });
                // A following BatchNorm folds into this BNReQ.
                skip_bn = matches!(ops.get(pos + 1), Some(OpSpec::BatchNorm));
            }
            OpSpec::Linear { out: of } => {
                let kk = cur.elements() as u64;
                let n = *of as u64;
                let q2l = layer_q2(cfg, per_layer, kk);
                out.push(Instr::LoadWeights { elems: kk * n + n, bits: q2l });
                let f_ex = packed_len(q2l, (kk * n) as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("offline-f.fc{i}"),
                    user_bytes: f_ex,
                    user_msgs: 1,
                    provider_bytes: f_ex,
                    provider_msgs: 1,
                });
                let ex = packed_len(q2l, kk as usize) as u64;
                out.push(Instr::Exchange {
                    label: format!("fc{i}"),
                    user_bytes: ex,
                    user_msgs: 1,
                    provider_bytes: ex,
                    provider_msgs: 1,
                });
                out.push(Instr::Gemm { m: 1, k: kk, n });
                out.push(Instr::Alu { kind: AluKind::Add, elems: n });
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: n });
            }
            OpSpec::BatchNorm => {
                if skip_bn {
                    skip_bn = false;
                } else {
                    out.push(Instr::Alu { kind: AluKind::MulShift, elems: cur.elements() as u64 });
                }
            }
            OpSpec::ReLU => {
                let n = cur.elements() as u64;
                out.extend(sign_instrs(&format!("abrelu{i}"), n, cfg, n));
            }
            OpSpec::MaxPool { k, stride, pad } => {
                let (c, ih, iw) = match cur {
                    TensorShape::Chw(c, h, w) => (c, h, w),
                    TensorShape::Flat(_) => return Err("pool on flat input".into()),
                };
                let (oh, ow) = match next_shape {
                    TensorShape::Chw(_, h, w) => (h, w),
                    TensorShape::Flat(_) => unreachable!("pool output is CHW"),
                };
                let windows = crate::ops::pool_windows(c, (ih, iw), *k, *stride, *pad, (oh, ow));
                let mut lens: Vec<usize> = windows.iter().map(Vec::len).collect();
                let mut round = 0usize;
                while lens.iter().any(|&l| l > 1) {
                    let pairs: u64 = lens.iter().map(|&l| (l / 2) as u64).sum();
                    out.extend(sign_instrs(&format!("maxpool{i}.r{round}"), pairs, cfg, pairs));
                    for l in &mut lens {
                        *l = *l / 2 + *l % 2;
                    }
                    round += 1;
                }
                out.push(Instr::Alu { kind: AluKind::Select, elems: (c * oh * ow) as u64 });
            }
            OpSpec::AvgPool { k, .. } => {
                let elems = next_shape.elements() as u64;
                out.push(Instr::Alu { kind: AluKind::Add, elems: elems * (*k * *k) as u64 });
                out.push(Instr::Alu { kind: AluKind::MulShift, elems });
            }
            OpSpec::GlobalAvgPool => {
                out.push(Instr::Alu { kind: AluKind::Add, elems: cur.elements() as u64 });
                out.push(Instr::Alu {
                    kind: AluKind::MulShift,
                    elems: next_shape.elements() as u64,
                });
            }
            OpSpec::Flatten => {}
            OpSpec::Residual { main, shortcut } => {
                let m_shape = compile_spec_ops(main, cur, cfg, per_layer, idx, out)?;
                // Main-branch rescale to the common output scale.
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: m_shape.elements() as u64 });
                let s_shape = compile_spec_ops(shortcut, cur, cfg, per_layer, idx, out)?;
                out.push(Instr::Alu { kind: AluKind::MulShift, elems: s_shape.elements() as u64 });
                out.push(Instr::Alu { kind: AluKind::Add, elems: m_shape.elements() as u64 });
            }
        }
        cur = next_shape;
    }
    Ok(cur)
}

/// Best-effort output size of the most recent sized instruction.
fn last_output_elems(instrs: &[Instr]) -> u64 {
    for i in instrs.iter().rev() {
        match i {
            Instr::Gemm { m, n, .. } => return m * n,
            Instr::Alu { elems, .. } => return *elems,
            Instr::Compare { values, .. } => return *values,
            _ => {}
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_nn::data::SyntheticVision;
    use aq2pnn_nn::float::FloatNet;
    use aq2pnn_nn::quant::{QuantConfig, QuantModel};
    use aq2pnn_nn::zoo;

    fn model() -> QuantModel {
        let data = SyntheticVision::tiny(4, 1);
        let net = FloatNet::init(&zoo::tiny_cnn(4), 2).unwrap();
        QuantModel::quantize(&net, &data.calibration(4), &QuantConfig::int8()).unwrap()
    }

    #[test]
    fn program_has_all_operator_classes() {
        let p = compile(&model(), &crate::ProtocolConfig::paper(16));
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Gemm { .. })));
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Compare { .. })));
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::LoadWeights { .. })));
        assert!(p.total_bytes() > 0);
        assert!(p.gemm_macs() > 0);
    }

    #[test]
    fn comparisons_match_spec_counts() {
        let m = model();
        let p = compile(&m, &crate::ProtocolConfig::paper(16));
        // tiny_cnn: ReLUs 2048 + 1024 + 32 = 3104; maxpools 3*(8*8*8) +
        // 3*(16*4*4) = 1536 + 744... computed from the spec instead:
        let spec_cmp = zoo::tiny_cnn(4).total_comparisons().unwrap();
        assert_eq!(p.comparisons(), spec_cmp);
    }

    #[test]
    fn smaller_q1_means_less_traffic() {
        let m = model();
        let big = compile(&m, &crate::ProtocolConfig::paper(24));
        let small = compile(&m, &crate::ProtocolConfig::paper(12));
        assert!(small.total_bytes() < big.total_bytes());
        // ABReLU traffic shrinks superlinearly (R matrix is U×ℓ bits).
        let r_big = big.bytes_for_phase_prefix("abrelu") as f64;
        let r_small = small.bytes_for_phase_prefix("abrelu") as f64;
        assert!(r_big / r_small > 24.0 / 12.0, "{r_big} vs {r_small}");
    }

    #[test]
    fn spec_compile_matches_model_compile() {
        // Compiling the spec directly and compiling the quantized instance
        // must agree on every cost figure (weights never matter).
        let m = model();
        let cfg = crate::ProtocolConfig::paper(16);
        let from_model = compile(&m, &cfg);
        let from_spec = compile_spec(&zoo::tiny_cnn(4), &cfg).unwrap();
        assert_eq!(from_model.total_bytes(), from_spec.total_bytes());
        assert_eq!(from_model.gemm_macs(), from_spec.gemm_macs());
        assert_eq!(from_model.comparisons(), from_spec.comparisons());
        assert_eq!(from_model.total_messages(), from_spec.total_messages());
    }

    #[test]
    fn spec_compile_residual_model() {
        let cfg = crate::ProtocolConfig::paper(16);
        let p = compile_spec(&zoo::tiny_resnet(4), &cfg).unwrap();
        assert_eq!(p.comparisons(), zoo::tiny_resnet(4).total_comparisons().unwrap());
        assert!(p.gemm_macs() > 0);
    }

    #[test]
    fn spec_compile_imagenet_scale() {
        // ResNet50 @224² compiles without materializing weights; traffic
        // lands in the paper's order of magnitude (Table 4 reports
        // 1120 MiB at 16 bits).
        let cfg = crate::ProtocolConfig::paper(16);
        let p = compile_spec(&zoo::resnet50_imagenet(), &cfg).unwrap();
        let mib = p.total_mib();
        assert!((100.0..6000.0).contains(&mib), "ResNet50 total {mib} MiB");
    }

    #[test]
    fn per_layer_compile_preserves_everything_but_gemm_exchanges() {
        let cfg = crate::ProtocolConfig::paper(16);
        let uniform = compile_spec(&zoo::tiny_cnn(4), &cfg).unwrap();
        let adaptive = compile_spec_per_layer(&zoo::tiny_cnn(4), &cfg, 8).unwrap();
        // Same compute, same comparisons; only GEMM exchange bytes change,
        // and never upward for this small-fan model.
        assert_eq!(uniform.gemm_macs(), adaptive.gemm_macs());
        assert_eq!(uniform.comparisons(), adaptive.comparisons());
        assert!(adaptive.online_total_bytes() <= uniform.online_total_bytes());
        assert!(adaptive.name.ends_with("-per-layer"));
    }

    #[test]
    fn per_layer_ring_respects_bounds() {
        let cfg = crate::ProtocolConfig::paper(16);
        // Small fan clamps at q1+4; huge fan clamps at 48.
        let p = compile_spec_per_layer(&zoo::vgg16_imagenet(), &cfg, 8).unwrap();
        assert!(p.online_total_bytes() > 0);
    }

    #[test]
    fn masked_mode_costs_more() {
        let m = model();
        let mut cfg = crate::ProtocolConfig::paper(16);
        let revealed = compile(&m, &cfg);
        cfg.relu_mode = ReluMode::MaskedMux;
        let masked = compile(&m, &cfg);
        assert!(masked.total_bytes() > revealed.total_bytes());
    }
}
