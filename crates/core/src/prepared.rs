//! Prepared-model execution: the offline/online split for repeated
//! inference.
//!
//! [`crate::engine::run_party`] rebuilds every piece of per-model state on
//! each call: it re-derives both parties' weight shares from the setup PRG,
//! re-transposes each weight matrix into GEMM layout, regenerates dealer
//! triples, and re-opens the static weight masks `F = W − B` (the
//! `offline-f` exchanges). All of that depends only on the model — not on
//! the input — and in the paper's deployment model it corresponds to the
//! **pre-deployed** AS-WGT / AS-WGT-MSK buffers that are shipped once.
//!
//! [`PreparedModel`] hoists it out of the hot path:
//!
//! * [`PreparedModel::prepare`] walks the model once, deriving weight and
//!   bias shares from the setup PRG, transposing weights into the
//!   `[in_c·k·k, out_c]` GEMM layout, creating a resident
//!   [`TripleLane`] per linear layer, and opening each layer's weight mask
//!   under the `offline-f` phase.
//! * [`PreparedModel::run`] then executes one inference using only the
//!   per-input work: input sharing, fresh `A`/`Z` triples from the lanes,
//!   the online `E` exchanges, and the non-linear protocols. Repeated runs
//!   perform **zero** weight-share PRG regeneration and **zero**
//!   `offline-f` traffic.
//!
//! `run_party` is now a thin `prepare`-then-`run` wrapper, so single-shot
//! callers see identical behavior (same phases, same byte counts).
//!
//! # Template/bind split
//!
//! [`PreparedModel::prepare`] itself is two halves:
//!
//! * [`PreparedTemplate::build`] — everything **channel-free and
//!   dealer-free**: weight/bias share derivation from the setup PRG,
//!   GEMM-layout transposition, pooling-window precomputation. The result
//!   is `Send + Sync` plain data, so a multi-tenant server builds it once
//!   per (model, ℓ-profile) and shares it across sessions behind an `Arc`.
//! * [`PreparedTemplate::bind`] — the per-session remainder: drawing each
//!   linear layer's [`TripleLane`] from the session dealer (keeping the
//!   dealer stream in lockstep with a peer doing a full `prepare`) and the
//!   one interactive step, the `offline-f` weight-mask openings.
//!
//! `prepare` = `build` + `bind`, with byte-identical wire traffic.

use crate::abrelu::abrelu;
use crate::dealer::{DealerConfig, DealerPool, ExpandFn, LaneSlot, TripleSource};
use crate::engine::{secure_max_windows, BatchInput, BatchOutput, InferenceOutput, PartyInput};
use crate::gemm::open_weight_mask;
use crate::ops::{
    channel_sum, im2col_tensor, pool_sum, pool_windows, requant_share,
    secure_conv2d_prepared_batch, secure_linear_prepared_batch, ConvGeometry,
};
use crate::party::IoSpan;
use crate::{PartyContext, PipelineMode, ProtocolConfig, ProtocolError};
use aq2pnn_nn::quant::{quantize_image, QuantModel, QuantOp, Requant};
use aq2pnn_obs::report::{ARG_RING_BITS, ARG_SHAPE, CAT_LAYER, CAT_OFFLINE, CAT_STAGE};
use aq2pnn_obs::Histogram;
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::{AShare, PartyId};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Arc;

/// A model lowered to its resident per-party inference state: weight and
/// bias shares, opened weight masks, triple lanes, and pooling geometry.
///
/// Build one with [`PreparedModel::prepare`] (both parties in lockstep),
/// then call [`PreparedModel::run`] once per inference. The struct is
/// party-specific — it holds *this* party's shares — and channel-free, so
/// it can outlive many runs over the same [`PartyContext`].
pub struct PreparedModel {
    ops: Vec<PreparedOp>,
    n_in: usize,
    input_scale: f32,
    act_bits: u32,
}

impl std::fmt::Debug for PreparedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedModel")
            .field("ops", &self.ops.len())
            .field("n_in", &self.n_in)
            .finish_non_exhaustive()
    }
}

/// One lowered operator with its engine layer index (which names the
/// communication phases: `conv{idx}`, `abrelu{idx}`, …).
struct PreparedOp {
    idx: usize,
    kind: PreparedKind,
}

enum PreparedKind {
    Conv2d {
        geom: ConvGeometry,
        w_mat: AShare,
        bias: AShare,
        f_open: RingTensor,
        source: TripleSource,
        requant: Requant,
    },
    Linear {
        w_mat: AShare,
        bias: AShare,
        f_open: RingTensor,
        source: TripleSource,
        requant: Requant,
    },
    Relu,
    MaxPool {
        c: usize,
        out_hw: (usize, usize),
        windows: Vec<Vec<usize>>,
    },
    AvgPool {
        k: usize,
        stride: usize,
        pad: usize,
        c: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
        requant: Requant,
    },
    GlobalAvgPool {
        c: usize,
        spatial: usize,
        requant: Requant,
    },
    Flatten,
    Rescale {
        requant: Requant,
    },
    Residual {
        main: Vec<PreparedOp>,
        shortcut: Vec<PreparedOp>,
    },
}

impl PreparedModel {
    /// Performs all input-independent work for `model` as `ctx.id`: weight
    /// share derivation from the setup PRG, GEMM-layout transposition,
    /// triple-lane creation, and the one-time `offline-f` weight-mask
    /// openings. Both parties must call concurrently with the same model
    /// and configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on channel failure, desync, or a model
    /// the engine cannot lower.
    pub fn prepare(
        ctx: &mut PartyContext,
        model: &QuantModel,
    ) -> Result<PreparedModel, ProtocolError> {
        let cfg = ctx.cfg.clone();
        PreparedTemplate::build(ctx.id, &cfg, model)?.bind(ctx)
    }

    /// Runs one secure inference over the prepared state. Must be called
    /// concurrently by both parties, in the same run order.
    ///
    /// Channel statistics are *not* reset here (so preparation traffic and
    /// multiple runs accumulate into one [`aq2pnn_transport::ChannelStats`]
    /// unless the caller resets between runs); the returned
    /// [`InferenceOutput::stats`] is the endpoint's running total.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on channel failure, desync, or a
    /// party/input mismatch.
    pub fn run(
        &mut self,
        ctx: &mut PartyContext,
        input: PartyInput<'_>,
    ) -> Result<InferenceOutput, ProtocolError> {
        let out = match input {
            PartyInput::User(image) => self.run_batch(ctx, BatchInput::User(&[image])),
            PartyInput::Provider => self.run_batch(ctx, BatchInput::Provider { batch: 1 }),
        }?;
        let mut logits = out.logits;
        Ok(InferenceOutput { logits: logits.remove(0), stats: out.stats })
    }

    /// Runs one **batched** online pass: `B` images walk the network
    /// together, so every layer's `E` opening, A2B conversion and OT flow
    /// is one `B×`-sized message instead of `B` round-trips — per-message
    /// latency and per-call setup amortize across the batch. Must be
    /// called concurrently by both parties with the same batch size.
    ///
    /// Logits are bit-identical to `B` sequential [`PreparedModel::run`]
    /// calls (the batched pass consumes each triple lane in the same
    /// stream order), except under the `MaskedMux` + local-truncation
    /// configuration, whose mux masks draw from the session RNG in
    /// call-count-dependent order (the ±1 local-truncation jitter can then
    /// land differently; reconstruction-exact configs are unaffected).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on channel failure, desync, an empty
    /// batch, or a party/input mismatch.
    pub fn run_batch(
        &mut self,
        ctx: &mut PartyContext,
        input: BatchInput<'_>,
    ) -> Result<BatchOutput, ProtocolError> {
        let b = input.batch();
        // secrecy: allow(secret-branch, "`b` is the public batch size both parties agree on — architecture metadata under the §8 threat model, not image data")
        if b == 0 {
            return Err(ProtocolError::Model("empty batch".into()));
        }
        if ctx.metrics.is_enabled() {
            #[allow(clippy::cast_precision_loss)]
            ctx.metrics.observe_with(
                "engine.batch_size",
                &Histogram::exponential(1.0, 2.0, 6),
                b as f64,
            );
        }
        let act_ring = match ctx.cfg.pipeline {
            PipelineMode::StayWide => ctx.q2(),
            PipelineMode::NarrowActivations => ctx.q1(),
        };

        // --- Input sharing (offline-style PRG masks). ---
        ctx.ep.set_phase("input");
        let batch_arg = [("batch", aq2pnn_obs::ArgValue::from(b as u64))];
        // secrecy: allow(secret-branch, "span-arg choice keyed on the public batch size, identical on both parties")
        let in_span = ctx.span_begin("input", CAT_LAYER, if b > 1 { &batch_arg } else { &[] });
        let n_in = self.n_in;
        // Per-image mask from the re-seeded input stream — byte-for-byte
        // what `b` sequential runs would derive.
        let x = match (ctx.id, input) {
            (PartyId::User, BatchInput::User(images)) => {
                // secrecy: allow(secret-alloc, "capacity is the public batch size × public input shape, not an image value")
                let mut data = Vec::with_capacity(b * n_in);
                for image in images {
                    let mut in_stream =
                        ChaCha20Rng::seed_from_u64(ctx.cfg.setup_seed ^ 0x1fa7_0001);
                    let mask = RingTensor::random(act_ring, vec![n_in], &mut in_stream);
                    let qx = quantize_image(image, self.input_scale, self.act_bits);
                    let enc = RingTensor::from_signed(act_ring, vec![n_in], &qx)?;
                    data.extend_from_slice(enc.sub(&mask)?.as_slice());
                }
                AShare::from_tensor(RingTensor::from_raw(act_ring, vec![b * n_in], data)?)
            }
            (PartyId::ModelProvider, BatchInput::Provider { .. }) => {
                // secrecy: allow(secret-alloc, "capacity is the public batch size × public input shape, not an image value")
                let mut data = Vec::with_capacity(b * n_in);
                for _ in 0..b {
                    let mut in_stream =
                        ChaCha20Rng::seed_from_u64(ctx.cfg.setup_seed ^ 0x1fa7_0001);
                    let mask = RingTensor::random(act_ring, vec![n_in], &mut in_stream);
                    data.extend_from_slice(mask.as_slice());
                }
                AShare::from_tensor(RingTensor::from_raw(act_ring, vec![b * n_in], data)?)
            }
            _ => {
                return Err(ProtocolError::Model(
                    "party/input mismatch: user must pass User(image), provider Provider".into(),
                ))
            }
        };

        end_layer_span(ctx, in_span, &x);

        // --- Walk the prepared ops (online work only). ---
        let out = run_ops(ctx, &mut self.ops, x, b)?;

        // --- Reveal the logits. ---
        ctx.ep.set_phase("output");
        let out_span = ctx.span_begin("output", CAT_LAYER, &[]);
        let mine = out.as_tensor().as_slice().to_vec();
        let out_ring = out.ring();
        let theirs = ctx.ep.exchange_bits(&mine, out_ring.bits(), mine.len())?;
        end_layer_span(ctx, out_span, &out);
        if theirs.len() != mine.len() {
            return Err(ProtocolError::Desync("output share length mismatch".into()));
        }
        let flat: Vec<i64> = mine
            .iter()
            .zip(&theirs)
            .map(|(&a, &b)| out_ring.decode_signed(out_ring.add(a, b)))
            .collect();
        let per = flat.len() / b;
        let logits: Vec<Vec<i64>> = flat.chunks(per).map(<[i64]>::to_vec).collect();
        Ok(BatchOutput { logits, stats: ctx.ep.stats() })
    }

    /// Moves this model's resident triple lanes into a background
    /// [`DealerPool`]: a dedicated worker thread keeps a bounded queue of
    /// pre-generated triples per linear layer, so subsequent
    /// [`PreparedModel::run`] / [`PreparedModel::run_batch`] calls *pop*
    /// offline material instead of generating it on the online critical
    /// path.
    ///
    /// Purely party-local (no protocol traffic, no cross-party
    /// coordination) — one party may pool while the other stays inline.
    /// Dropping the returned pool stops refilling; the model then falls
    /// back to the pool's exhaustion behavior on the still-shared slots.
    /// Calling again on an already-pooled model is a no-op returning an
    /// empty pool.
    pub fn spawn_dealer(&mut self, ctx: &PartyContext, cfg: DealerConfig) -> DealerPool {
        let mut lanes: Vec<(String, aq2pnn_sharing::dealer::TripleLane, ExpandFn)> = Vec::new();
        collect_lanes(&self.ops, &mut lanes);
        let pool = DealerPool::new(ctx, lanes, cfg);
        let mut cursor = 0usize;
        assign_slots(&mut self.ops, pool.slots(), &mut cursor);
        pool
    }

    /// Like [`PreparedModel::spawn_dealer`], but registers the lanes with
    /// a shared [`DealerHub`] instead of spawning a dedicated worker — the
    /// multi-tenant server's shape, where one dealer thread serves every
    /// session and a session's teardown (dropping the returned pool)
    /// reclaims exactly its own lanes.
    pub fn spawn_dealer_on(
        &mut self,
        ctx: &PartyContext,
        cfg: DealerConfig,
        hub: &crate::dealer::DealerHub,
    ) -> DealerPool {
        let mut lanes: Vec<(String, aq2pnn_sharing::dealer::TripleLane, ExpandFn)> = Vec::new();
        collect_lanes(&self.ops, &mut lanes);
        let pool = hub.register(&ctx.tracer, &ctx.metrics, lanes, cfg);
        let mut cursor = 0usize;
        assign_slots(&mut self.ops, pool.slots(), &mut cursor);
        pool
    }
}

/// The channel-free, dealer-free half of preparation: weight and bias
/// shares in GEMM layout plus all static geometry, derived purely from
/// `(party, config, model)`. Plain data — `Send + Sync` — so a server
/// builds one per (model, ℓ-profile), wraps it in an `Arc`, and
/// [`PreparedTemplate::bind`]s it once per session.
pub struct PreparedTemplate {
    ops: Vec<TemplateOp>,
    n_in: usize,
    input_scale: f32,
    act_bits: u32,
}

impl std::fmt::Debug for PreparedTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedTemplate")
            .field("ops", &self.ops.len())
            .field("n_in", &self.n_in)
            .finish_non_exhaustive()
    }
}

struct TemplateOp {
    idx: usize,
    kind: TemplateKind,
}

enum TemplateKind {
    Conv2d {
        geom: ConvGeometry,
        w_mat: AShare,
        bias: AShare,
        /// Activation shape *entering* the layer — fixes the compact
        /// triple shape the bound lane must draw.
        a_shape: Vec<usize>,
        out_shape: Vec<usize>,
        requant: Requant,
    },
    Linear {
        w_mat: AShare,
        bias: AShare,
        a_shape: Vec<usize>,
        out_shape: Vec<usize>,
        requant: Requant,
    },
    Relu,
    MaxPool {
        c: usize,
        out_hw: (usize, usize),
        windows: Vec<Vec<usize>>,
    },
    AvgPool {
        k: usize,
        stride: usize,
        pad: usize,
        c: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
        requant: Requant,
    },
    GlobalAvgPool {
        c: usize,
        spatial: usize,
        requant: Requant,
    },
    Flatten,
    Rescale {
        requant: Requant,
    },
    Residual {
        main: Vec<TemplateOp>,
        shortcut: Vec<TemplateOp>,
    },
}

impl PreparedTemplate {
    /// Derives the template for `model` as party `id`: weight/bias share
    /// derivation from the setup PRG, GEMM-layout transposition, pooling
    /// windows. No channel, no dealer — safe to run anywhere, any number
    /// of times, and cacheable across sessions.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for a model the engine cannot lower.
    pub fn build(
        id: PartyId,
        cfg: &ProtocolConfig,
        model: &QuantModel,
    ) -> Result<PreparedTemplate, ProtocolError> {
        let mut wstream = ChaCha20Rng::seed_from_u64(cfg.setup_seed ^ 0x7e19_0002);
        let mut layer_idx = 0usize;
        let mut cur_shape = vec![model.input_shape.elements()];
        let ops =
            build_ops(id, cfg.q2(), &model.ops, &mut cur_shape, &mut wstream, &mut layer_idx)?;
        Ok(PreparedTemplate {
            ops,
            n_in: model.input_shape.elements(),
            input_scale: model.input_scale,
            act_bits: model.act_bits,
        })
    }

    /// Completes preparation for one session: draws each linear layer's
    /// triple lane from `ctx`'s dealer (same order as a full
    /// [`PreparedModel::prepare`], so both parties' dealer streams stay in
    /// lockstep even when only one side uses a cached template) and runs
    /// the `offline-f` weight-mask openings — the only interactive step.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on channel failure or desync.
    pub fn bind(&self, ctx: &mut PartyContext) -> Result<PreparedModel, ProtocolError> {
        let ops = bind_ops(ctx, &self.ops)?;
        Ok(PreparedModel {
            ops,
            n_in: self.n_in,
            input_scale: self.input_scale,
            act_bits: self.act_bits,
        })
    }
}

/// The bind walk: mirrors [`build_ops`] order exactly so dealer
/// consumption matches a monolithic `prepare`.
fn bind_ops(ctx: &mut PartyContext, ops: &[TemplateOp]) -> Result<Vec<PreparedOp>, ProtocolError> {
    let q2 = ctx.q2();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let idx = op.idx;
        let kind = match &op.kind {
            TemplateKind::Conv2d { geom, w_mat, bias, a_shape, out_shape, requant } => {
                let span = ctx.span_begin(format!("conv{idx}"), CAT_OFFLINE, &[]);
                let lane = ctx.expanded_lane(q2, a_shape, w_mat.shape());
                let f_open = open_weight_mask(ctx, w_mat, lane.b_share())?;
                ctx.span_end_with(span, &[(ARG_SHAPE, shape_str(out_shape).into())]);
                PreparedKind::Conv2d {
                    geom: *geom,
                    w_mat: w_mat.clone(),
                    bias: bias.clone(),
                    f_open,
                    source: TripleSource::Inline(Box::new(lane)),
                    requant: *requant,
                }
            }
            TemplateKind::Linear { w_mat, bias, a_shape, out_shape, requant } => {
                let span = ctx.span_begin(format!("fc{idx}"), CAT_OFFLINE, &[]);
                let lane = ctx.expanded_lane(q2, a_shape, w_mat.shape());
                let f_open = open_weight_mask(ctx, w_mat, lane.b_share())?;
                ctx.span_end_with(span, &[(ARG_SHAPE, shape_str(out_shape).into())]);
                PreparedKind::Linear {
                    w_mat: w_mat.clone(),
                    bias: bias.clone(),
                    f_open,
                    source: TripleSource::Inline(Box::new(lane)),
                    requant: *requant,
                }
            }
            TemplateKind::Relu => PreparedKind::Relu,
            TemplateKind::MaxPool { c, out_hw, windows } => {
                PreparedKind::MaxPool { c: *c, out_hw: *out_hw, windows: windows.clone() }
            }
            TemplateKind::AvgPool { k, stride, pad, c, in_hw, out_hw, requant } => {
                PreparedKind::AvgPool {
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    c: *c,
                    in_hw: *in_hw,
                    out_hw: *out_hw,
                    requant: *requant,
                }
            }
            TemplateKind::GlobalAvgPool { c, spatial, requant } => {
                PreparedKind::GlobalAvgPool { c: *c, spatial: *spatial, requant: *requant }
            }
            TemplateKind::Flatten => PreparedKind::Flatten,
            TemplateKind::Rescale { requant } => PreparedKind::Rescale { requant: *requant },
            TemplateKind::Residual { main, shortcut } => PreparedKind::Residual {
                main: bind_ops(ctx, main)?,
                shortcut: bind_ops(ctx, shortcut)?,
            },
        };
        out.push(PreparedOp { idx, kind });
    }
    Ok(out)
}

/// Gathers `(label, lane, expand)` for every inline linear layer, in the
/// online walk order (residual main before shortcut — the same order
/// [`assign_slots`] revisits them in).
fn collect_lanes(
    ops: &[PreparedOp],
    out: &mut Vec<(String, aq2pnn_sharing::dealer::TripleLane, ExpandFn)>,
) {
    for op in ops {
        match &op.kind {
            PreparedKind::Conv2d { geom, source: TripleSource::Inline(lane), .. } => {
                let g = *geom;
                out.push((
                    format!("conv{}", op.idx),
                    lane.as_ref().clone(),
                    Box::new(move |t| im2col_tensor(t, &g)),
                ));
            }
            PreparedKind::Linear { source: TripleSource::Inline(lane), .. } => {
                let in_f: usize = lane.a_shape().iter().product();
                out.push((
                    format!("fc{}", op.idx),
                    lane.as_ref().clone(),
                    Box::new(move |t| {
                        let mut m = t.clone();
                        m.reshape(vec![1, in_f]).expect("row vector");
                        m
                    }),
                ));
            }
            PreparedKind::Residual { main, shortcut } => {
                collect_lanes(main, out);
                collect_lanes(shortcut, out);
            }
            _ => {}
        }
    }
}

/// Second walk of [`PreparedModel::spawn_dealer`]: repoints each inline
/// linear layer at its pooled slot, in the same order [`collect_lanes`]
/// gathered them.
fn assign_slots(ops: &mut [PreparedOp], slots: &[Arc<LaneSlot>], cursor: &mut usize) {
    for op in ops.iter_mut() {
        match &mut op.kind {
            PreparedKind::Conv2d { source, .. } | PreparedKind::Linear { source, .. } => {
                if matches!(source, TripleSource::Inline(_)) {
                    *source = TripleSource::Pooled(Arc::clone(&slots[*cursor]));
                    *cursor += 1;
                }
            }
            PreparedKind::Residual { main, shortcut } => {
                assign_slots(main, slots, cursor);
                assign_slots(shortcut, slots, cursor);
            }
            _ => {}
        }
    }
}

/// `"6x24x24"`-style shape label for span arguments (public structure).
fn shape_str(shape: &[usize]) -> String {
    shape.iter().map(ToString::to_string).collect::<Vec<_>>().join("x")
}

/// Closes a layer span, stamping the layer's *output* ring width and shape
/// alongside the channel deltas. No-op when tracing is disabled.
fn end_layer_span(ctx: &PartyContext, span: IoSpan, out: &AShare) {
    ctx.span_end_with(
        span,
        &[
            (ARG_RING_BITS, u64::from(out.ring().bits()).into()),
            (ARG_SHAPE, shape_str(out.shape()).into()),
        ],
    );
}

/// The span/phase name of a lowered op, `None` for ops that are pure
/// bookkeeping ([`PreparedKind::Flatten`]) or that must not wrap their
/// children in a span ([`PreparedKind::Residual`] — the branch layers stay
/// top-level so the cost report keeps one row per layer; only the final
/// add gets its own `resadd{idx}` span inside the arm).
fn layer_label(idx: usize, kind: &PreparedKind) -> Option<String> {
    match kind {
        PreparedKind::Conv2d { .. } => Some(format!("conv{idx}")),
        PreparedKind::Linear { .. } => Some(format!("fc{idx}")),
        PreparedKind::Relu => Some(format!("abrelu{idx}")),
        PreparedKind::MaxPool { .. } => Some(format!("maxpool{idx}")),
        PreparedKind::AvgPool { .. } => Some(format!("avgpool{idx}")),
        PreparedKind::GlobalAvgPool { .. } => Some(format!("gap{idx}")),
        PreparedKind::Rescale { .. } => Some(format!("rescale{idx}")),
        PreparedKind::Flatten | PreparedKind::Residual { .. } => None,
    }
}

/// Derives this party's share of a plaintext tensor held by the model
/// provider, consuming the shared PRG stream (both parties must call in
/// lockstep).
fn provider_share(
    id: PartyId,
    plain: impl Fn() -> RingTensor,
    ring: Ring,
    shape: &[usize],
    stream: &mut ChaCha20Rng,
) -> AShare {
    let mask = RingTensor::random(ring, shape.to_vec(), stream);
    match id {
        PartyId::User => AShare::from_tensor(mask),
        PartyId::ModelProvider => {
            let p = plain();
            AShare::from_tensor(p.sub(&mask).expect("share shapes agree"))
        }
    }
}

/// The template lowering walk: mirrors the engine's execution order
/// (depth-first, residual main before shortcut) so PRG stream consumption
/// stays in lockstep across parties. `cur_shape` tracks the activation
/// tensor shape, which fixes each layer's compact triple shape (recorded
/// as `a_shape` for [`bind_ops`] to draw the matching lane). Dealer- and
/// channel-free by construction.
#[allow(clippy::too_many_lines)]
fn build_ops(
    id: PartyId,
    q2: Ring,
    ops: &[QuantOp],
    cur_shape: &mut Vec<usize>,
    wstream: &mut ChaCha20Rng,
    layer_idx: &mut usize,
) -> Result<Vec<TemplateOp>, ProtocolError> {
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let idx = *layer_idx;
        *layer_idx += 1;
        let kind = match op {
            QuantOp::Conv2d { in_c, out_c, k, stride, pad, in_hw, out_hw, w, bias, requant } => {
                let geom = ConvGeometry {
                    in_c: *in_c,
                    out_c: *out_c,
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    in_hw: *in_hw,
                    out_hw: *out_hw,
                };
                let kdim = in_c * k * k;
                // Weight matrix [in_c·k·k, out_c] on Q2, transposed once
                // from the model's [out_c, in_c·k·k] layout.
                let w_mat = provider_share(
                    id,
                    || {
                        let mut data = vec![0u64; kdim * out_c];
                        for oc in 0..*out_c {
                            for kk in 0..kdim {
                                data[kk * out_c + oc] =
                                    q2.encode_signed_wrapping(w[oc * kdim + kk]);
                            }
                        }
                        RingTensor::from_raw(q2, vec![kdim, *out_c], data).expect("geometry")
                    },
                    q2,
                    &[kdim, *out_c],
                    wstream,
                );
                let bias = provider_share(
                    id,
                    || {
                        RingTensor::from_signed(q2, vec![*out_c], bias)
                            .expect("bias length matches")
                    },
                    q2,
                    &[*out_c],
                    wstream,
                );
                let a_shape = cur_shape.clone();
                *cur_shape = vec![*out_c, out_hw.0, out_hw.1];
                TemplateKind::Conv2d {
                    geom,
                    w_mat,
                    bias,
                    a_shape,
                    out_shape: cur_shape.clone(),
                    requant: *requant,
                }
            }
            QuantOp::Linear { in_f, out_f, w, bias, requant } => {
                let w_mat = provider_share(
                    id,
                    || {
                        let mut data = vec![0u64; in_f * out_f];
                        for of in 0..*out_f {
                            for i in 0..*in_f {
                                data[i * out_f + of] = q2.encode_signed_wrapping(w[of * in_f + i]);
                            }
                        }
                        RingTensor::from_raw(q2, vec![*in_f, *out_f], data).expect("geometry")
                    },
                    q2,
                    &[*in_f, *out_f],
                    wstream,
                );
                let bias = provider_share(
                    id,
                    || RingTensor::from_signed(q2, vec![*out_f], bias).expect("bias length"),
                    q2,
                    &[*out_f],
                    wstream,
                );
                let a_shape = cur_shape.clone();
                *cur_shape = vec![*out_f];
                TemplateKind::Linear {
                    w_mat,
                    bias,
                    a_shape,
                    out_shape: cur_shape.clone(),
                    requant: *requant,
                }
            }
            QuantOp::Relu => TemplateKind::Relu,
            QuantOp::MaxPool { k, stride, pad, c, in_hw, out_hw } => {
                let windows = pool_windows(*c, *in_hw, *k, *stride, *pad, *out_hw);
                *cur_shape = vec![*c, out_hw.0, out_hw.1];
                TemplateKind::MaxPool { c: *c, out_hw: *out_hw, windows }
            }
            QuantOp::AvgPool { k, stride, pad, c, in_hw, out_hw, requant } => {
                *cur_shape = vec![*c, out_hw.0, out_hw.1];
                TemplateKind::AvgPool {
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    c: *c,
                    in_hw: *in_hw,
                    out_hw: *out_hw,
                    requant: *requant,
                }
            }
            QuantOp::GlobalAvgPool { c, in_hw, requant } => {
                *cur_shape = vec![*c];
                TemplateKind::GlobalAvgPool { c: *c, spatial: in_hw.0 * in_hw.1, requant: *requant }
            }
            QuantOp::Flatten => {
                *cur_shape = vec![cur_shape.iter().product()];
                TemplateKind::Flatten
            }
            QuantOp::Rescale { requant } => TemplateKind::Rescale { requant: *requant },
            QuantOp::Residual { main, shortcut } => {
                let mut main_shape = cur_shape.clone();
                let main_ops = build_ops(id, q2, main, &mut main_shape, wstream, layer_idx)?;
                let mut short_shape = cur_shape.clone();
                let short_ops = build_ops(id, q2, shortcut, &mut short_shape, wstream, layer_idx)?;
                // The residual add flattens both branches to one vector.
                *cur_shape = vec![main_shape.iter().product()];
                TemplateKind::Residual { main: main_ops, shortcut: short_ops }
            }
        };
        out.push(TemplateOp { idx, kind });
    }
    Ok(out)
}

/// The online walk: per-inference protocol work only. Needs `&mut` access
/// for the triple sources, which advance `b` `(A, Z)` pairs per pass.
///
/// Batch layout: activations stay flat with the image index as the
/// slowest-varying axis — conv tensors are `[b·c, h, w]`, vectors
/// `[b·n]` — so at `b = 1` every shape (and thus every span argument)
/// matches the sequential pass exactly, and per-channel ops (pooling,
/// requant, ABReLU) batch transparently by treating the `b·c` channels
/// uniformly.
#[allow(clippy::too_many_lines)]
fn run_ops(
    ctx: &mut PartyContext,
    ops: &mut [PreparedOp],
    mut x: AShare,
    b: usize,
) -> Result<AShare, ProtocolError> {
    let q2 = ctx.q2();
    let act_ring = match ctx.cfg.pipeline {
        PipelineMode::StayWide => q2,
        PipelineMode::NarrowActivations => ctx.q1(),
    };
    for op in ops.iter_mut() {
        let idx = op.idx;
        let span = layer_label(idx, &op.kind).map(|name| ctx.span_begin(name, CAT_LAYER, &[]));
        x = match &mut op.kind {
            PreparedKind::Conv2d { geom, w_mat, bias, f_open, source, requant } => {
                ctx.ep.set_phase(format!("conv{idx}"));
                let gemm = ctx.span_begin("gemm", CAT_STAGE, &[]);
                let x2 = if x.ring() == q2 { x } else { ctx.extend_share(&x, q2)? };
                let g = *geom;
                let triples = source.take_n(b, move |t| im2col_tensor(t, &g))?;
                let acc =
                    secure_conv2d_prepared_batch(ctx, &x2, b, geom, w_mat, bias, f_open, &triples)?;
                ctx.span_end(gemm);
                ctx.ep.set_phase(format!("bnreq{idx}"));
                let bnreq = ctx.span_begin("bnreq", CAT_STAGE, &[]);
                let r = requant_share(ctx, &acc, *requant, act_ring)?;
                ctx.span_end(bnreq);
                r
            }
            PreparedKind::Linear { w_mat, bias, f_open, source, requant } => {
                ctx.ep.set_phase(format!("fc{idx}"));
                let gemm = ctx.span_begin("gemm", CAT_STAGE, &[]);
                let x2 = if x.ring() == q2 { x } else { ctx.extend_share(&x, q2)? };
                let in_f = x2.len() / b;
                let triples = source.take_n(b, move |t| {
                    let mut m = t.clone();
                    m.reshape(vec![1, in_f]).expect("row vector");
                    m
                })?;
                let acc = secure_linear_prepared_batch(ctx, &x2, b, w_mat, bias, f_open, &triples)?;
                ctx.span_end(gemm);
                ctx.ep.set_phase(format!("bnreq{idx}"));
                let bnreq = ctx.span_begin("bnreq", CAT_STAGE, &[]);
                let r = requant_share(ctx, &acc, *requant, act_ring)?;
                ctx.span_end(bnreq);
                r
            }
            PreparedKind::Relu => {
                ctx.ep.set_phase(format!("abrelu{idx}"));
                abrelu(ctx, &x)?
            }
            PreparedKind::MaxPool { c, out_hw, windows } => {
                ctx.ep.set_phase(format!("maxpool{idx}"));
                let out = if b == 1 {
                    secure_max_windows(ctx, &x, windows)?
                } else {
                    // Windows were precomputed for one image; shift the
                    // indices per image so all b·c channels pool in one
                    // tournament.
                    let item = x.len() / b;
                    let shifted: Vec<Vec<usize>> = (0..b)
                        .flat_map(|i| {
                            windows.iter().map(move |w| w.iter().map(|&ix| ix + i * item).collect())
                        })
                        .collect();
                    secure_max_windows(ctx, &x, &shifted)?
                };
                let mut t = out.into_tensor();
                t.reshape(vec![b * *c, out_hw.0, out_hw.1])?;
                AShare::from_tensor(t)
            }
            PreparedKind::AvgPool { k, stride, pad, c, in_hw, out_hw, requant } => {
                ctx.ep.set_phase(format!("avgpool{idx}"));
                let x2 = if x.ring() == q2 { x } else { ctx.extend_share(&x, q2)? };
                let sums = pool_sum(&x2, b * *c, *in_hw, *k, *stride, *pad, *out_hw);
                requant_share(ctx, &sums, *requant, act_ring)?
            }
            PreparedKind::GlobalAvgPool { c, spatial, requant } => {
                ctx.ep.set_phase(format!("gap{idx}"));
                let x2 = if x.ring() == q2 { x } else { ctx.extend_share(&x, q2)? };
                let sums = channel_sum(&x2, b * *c, *spatial);
                requant_share(ctx, &sums, *requant, act_ring)?
            }
            PreparedKind::Flatten => {
                let mut t = x.into_tensor();
                let n = t.len();
                t.reshape(vec![n])?;
                AShare::from_tensor(t)
            }
            PreparedKind::Rescale { requant } => {
                ctx.ep.set_phase(format!("rescale{idx}"));
                let x2 = if x.ring() == q2 { x } else { ctx.extend_share(&x, q2)? };
                requant_share(ctx, &x2, *requant, act_ring)?
            }
            PreparedKind::Residual { main, shortcut } => {
                let m = run_ops(ctx, main, x.clone(), b)?;
                let s = run_ops(ctx, shortcut, x, b)?;
                ctx.ep.set_phase(format!("resadd{idx}"));
                let add_span = ctx.span_begin(format!("resadd{idx}"), CAT_LAYER, &[]);
                let mut mt = m.into_tensor();
                let st = s.into_tensor();
                if mt.len() != st.len() {
                    return Err(ProtocolError::Model(
                        "residual branches produced different sizes".into(),
                    ));
                }
                let n = mt.len();
                mt.reshape(vec![n])?;
                let mut st2 = st;
                st2.reshape(vec![n])?;
                let sum = AShare::from_tensor(mt.add(&st2)?);
                end_layer_span(ctx, add_span, &sum);
                sum
            }
        };
        if let Some(span) = span {
            end_layer_span(ctx, span, &x);
        }
    }
    Ok(x)
}
