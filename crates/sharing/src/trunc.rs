//! Share truncation — the "ReQ" half of 2PC-BNReQ.
//!
//! Re-quantization divides by `2^{I_e}` (the dyadic HAWQ-v3 scale). On
//! shares this is the classical problem solved in SecureML: each party
//! shifts *locally*,
//!
//! * party 0: `z_0 = ⌊x_0 / 2^s⌋`
//! * party 1: `z_1 = −⌊(−x_1) / 2^s⌋  (mod Q)`
//!
//! which reconstructs `⌊x/2^s⌋` up to an off-by-one in the last bit, except
//! with probability `≈ |x| / 2^ℓ` (measured empirically in the tests below;
//! SecureML's bound is `2^{ℓ_x+1-ℓ}` for `|x| < 2^{ℓ_x}`) when a share wrap
//! corrupts the high bits. This is exactly
//! why the paper's adaptive scheme keeps headroom between the value width
//! and the ring width — and why accuracy collapses when the ring is shaved
//! to 12 bits (Tables 7–8).
//!
//! [`truncate_exact`] is the idealized functionality (dealer resharing of
//! the exactly-truncated value) used for correctness baselines and the
//! ablation benches.

use crate::dealer::TripleDealer;
use crate::{AShare, PartyId};
use aq2pnn_ring::RingTensor;

/// Locally truncates one party's share by `s` bits (SecureML-style).
///
/// Both parties must call this with their own [`PartyId`]; the recovered
/// value is `⌊x/2^s⌋ ± 1` except with probability `≈ |x| · 2^{1-ℓ} ·
/// 2^{-s}`-ish (see module docs).
#[must_use]
pub fn truncate_share_local(party: PartyId, share: &AShare, s: u32) -> AShare {
    let ring = share.ring();
    let t = match party {
        PartyId::User => share.as_tensor().map(|v| ring.shr_logical(v, s)),
        PartyId::ModelProvider => {
            share.as_tensor().map(|v| ring.neg(ring.shr_logical(ring.neg(v), s)))
        }
    };
    AShare::from_tensor(t)
}

/// Idealized exact truncation: reconstructs, truncates with flooring
/// arithmetic shift, and reshares through the dealer.
///
/// This models a correct (heavier) truncation protocol as an ideal
/// functionality; use it for correctness baselines and to isolate the cost
/// of the paper's local method in ablations.
///
/// # Panics
///
/// Panics if the two shares disagree in shape.
#[must_use]
pub fn truncate_exact(
    share0: &AShare,
    share1: &AShare,
    s: u32,
    dealer: &mut TripleDealer,
) -> (AShare, AShare) {
    let ring = share0.ring();
    let plain = AShare::recover(share0, share1).expect("share shapes must agree");
    let truncated: RingTensor = plain.map(|v| ring.shr_arithmetic(v, s));
    dealer.reshare(&truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn_ring::{Ring, RingTensor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn local_truncation_within_one_for_small_secrets() {
        let q = Ring::new(32);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let v: i64 = rng.gen_range(-(1 << 20)..(1 << 20));
            let s = rng.gen_range(1..8u32);
            let x = RingTensor::from_signed(q, vec![1], &[v]).unwrap();
            let (a, b) = AShare::share(&x, &mut rng);
            let ta = truncate_share_local(PartyId::User, &a, s);
            let tb = truncate_share_local(PartyId::ModelProvider, &b, s);
            let rec = AShare::recover(&ta, &tb).unwrap().to_signed()[0];
            let expect = v >> s; // flooring shift
            assert!((rec - expect).abs() <= 1, "v={v} s={s}: got {rec}, expected ~{expect}");
        }
    }

    #[test]
    fn local_truncation_failure_rate_bounded() {
        // On a narrow ring with sizable secrets, big errors appear with
        // probability ≈ 2^{ℓ_x+1-ℓ}; census it.
        let q = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(11);
        let mut large_errors = 0u32;
        let trials = 4000;
        for _ in 0..trials {
            let v: i64 = rng.gen_range(-(1 << 10)..(1 << 10));
            let x = RingTensor::from_signed(q, vec![1], &[v]).unwrap();
            let (a, b) = AShare::share(&x, &mut rng);
            let ta = truncate_share_local(PartyId::User, &a, 4);
            let tb = truncate_share_local(PartyId::ModelProvider, &b, 4);
            let rec = AShare::recover(&ta, &tb).unwrap().to_signed()[0];
            if (rec - (v >> 4)).abs() > 1 {
                large_errors += 1;
            }
        }
        // Theory: per-element failure ≈ |x|/2^ℓ; E|x| = 2^9 on a 2^16 ring
        // gives ≈ 0.78% ≈ 31/4000. Allow generous slack.
        assert!(large_errors > 5, "suspiciously few failures: {large_errors}");
        assert!(large_errors < 150, "too many failures: {large_errors}");
    }

    #[test]
    fn exact_truncation_always_correct() {
        let q = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(12);
        let mut dealer = TripleDealer::from_seed(99);
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-(1 << 14)..(1 << 14));
            let s = rng.gen_range(1..8u32);
            let x = RingTensor::from_signed(q, vec![1], &[v]).unwrap();
            let (a, b) = AShare::share(&x, &mut rng);
            let (ta, tb) = truncate_exact(&a, &b, s, &mut dealer);
            let rec = AShare::recover(&ta, &tb).unwrap().to_signed()[0];
            assert_eq!(rec, v >> s, "v={v} s={s}");
        }
    }

    #[test]
    fn zero_shift_is_identity_up_to_resharing() {
        let q = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(13);
        let x = RingTensor::from_signed(q, vec![2], &[123, -456]).unwrap();
        let (a, b) = AShare::share(&x, &mut rng);
        let ta = truncate_share_local(PartyId::User, &a, 0);
        let tb = truncate_share_local(PartyId::ModelProvider, &b, 0);
        assert_eq!(AShare::recover(&ta, &tb).unwrap(), x);
    }
}
