//! Arithmetic share tensors and the local AS-ALU operations.

use crate::PartyId;
use aq2pnn_ring::{Ring, RingTensor, ShapeError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One party's additive secret share of a [`RingTensor`].
///
/// Paper Definition 3: `⟦x⟧ ← (x_i, x_j)` with `x = (x_i + x_j) mod Q`.
/// The newtype prevents accidentally mixing a share with a plaintext tensor
/// of the same shape.
///
/// All methods here are *local* (no communication) — the AS-ALU of paper
/// Sec. 4.1.3. Interactive operations (Beaver multiplication, comparison)
/// live in the protocol crate.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AShare(RingTensor);

/// `Debug` deliberately redacts the share words: a share that reaches a log
/// line, panic message or `{:?}` format is a silent break of the 2PC model
/// (`cargo xtask lint` rule `secret-sink`). Only public metadata — ring and
/// shape — is printed. Tests that need the raw words opt in explicitly via
/// [`AShare::fmt_revealed`].
impl fmt::Debug for AShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AShare")
            .field("ring_bits", &self.0.ring().bits())
            .field("shape", &self.0.shape())
            .field("values", &"<redacted>")
            .finish()
    }
}

impl AShare {
    /// Formats the share *including its secret words* — the explicit
    /// opt-in counterpart of the redacted `Debug` impl, for tests and
    /// offline debugging only. Never call this on the protocol path.
    #[must_use]
    pub fn fmt_revealed(&self) -> String {
        // secrecy: allow(secret-sink, "explicit opt-in reveal for tests; the redacted Debug impl is the default")
        format!("AShare(ring=2^{}, {:?})", self.0.ring().bits(), self.0)
    }
    /// Wraps a tensor that is already a share.
    #[must_use]
    pub fn from_tensor(t: RingTensor) -> Self {
        AShare(t)
    }

    /// Splits a plaintext tensor into two shares: `⟦x⟧ ← (r, x − r)` with
    /// `r` uniform (paper "secret share generation").
    ///
    /// Returns `(share_0, share_1)` for [`PartyId::User`] and
    /// [`PartyId::ModelProvider`] respectively.
    #[must_use]
    pub fn share<R: Rng + ?Sized>(x: &RingTensor, rng: &mut R) -> (AShare, AShare) {
        let ring = x.ring();
        let r = RingTensor::random(ring, x.shape().to_vec(), rng);
        let other = x.sub(&r).expect("identical shapes");
        (AShare(r), AShare(other))
    }

    /// Recovers the plaintext: `rec(⟦x⟧) = (x_i + x_j) mod Q`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ShapeMismatch`] if the shares disagree in shape.
    pub fn recover(a: &AShare, b: &AShare) -> Result<RingTensor, ShapeError> {
        a.0.add(&b.0)
    }

    /// A share of the all-zero tensor (both parties hold zeros).
    #[must_use]
    pub fn zeros(ring: Ring, shape: Vec<usize>) -> Self {
        AShare(RingTensor::zeros(ring, shape))
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.0.ring()
    }

    /// The tensor shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        self.0.shape()
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the share holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Read-only view of the share values.
    #[must_use]
    pub fn as_tensor(&self) -> &RingTensor {
        &self.0
    }

    /// Consumes the wrapper, returning the share values.
    #[must_use]
    pub fn into_tensor(self) -> RingTensor {
        self.0
    }

    /// C-C addition: `⟦x + y⟧ ← (x_i + y_i, x_j + y_j)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &AShare) -> Result<AShare, ShapeError> {
        Ok(AShare(self.0.add(&other.0)?))
    }

    /// C-C subtraction: `⟦x − y⟧`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &AShare) -> Result<AShare, ShapeError> {
        Ok(AShare(self.0.sub(&other.0)?))
    }

    /// Negation: `⟦−x⟧ ← (−x_i, −x_j)`.
    #[must_use]
    pub fn neg(&self) -> AShare {
        let ring = self.ring();
        AShare(self.0.map(|v| ring.neg(v)))
    }

    /// P-C addition of a public constant.
    ///
    /// Only the [`PartyId::User`] (index 0) share absorbs the constant, so
    /// that recovery yields `x + a` exactly once. (The paper's Sec. 4.1.3
    /// writes `(a + x_i, a + x_j)`, which under `rec` would add `2a`; we use
    /// the standard single-party convention.)
    #[must_use]
    pub fn add_plain(&self, party: PartyId, a: u64) -> AShare {
        if party == PartyId::User {
            let ring = self.ring();
            AShare(self.0.map(|v| ring.add(v, a)))
        } else {
            self.clone()
        }
    }

    /// P-C addition of a public tensor (same single-party convention as
    /// [`AShare::add_plain`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
    pub fn add_plain_tensor(&self, party: PartyId, a: &RingTensor) -> Result<AShare, ShapeError> {
        if party == PartyId::User {
            Ok(AShare(self.0.add(a)?))
        } else {
            Ok(self.clone())
        }
    }

    /// P-C multiplication by a public constant: `⟦a·x⟧ ← (a·x_i, a·x_j)`.
    #[must_use]
    pub fn mul_plain(&self, a: u64) -> AShare {
        let ring = self.ring();
        AShare(self.0.map(|v| ring.mul(v, a)))
    }

    /// Left shift (multiplication by `2^s`), an AS-ALU primitive.
    #[must_use]
    pub fn shl(&self, s: u32) -> AShare {
        let ring = self.ring();
        AShare(self.0.map(|v| ring.shl(v, s)))
    }

    /// Local ring-size extension by sign extension of the share — the
    /// paper's "Ring Size Extension" (Fig. 8 step 4).
    ///
    /// Correct with probability `1 − ≈|X|/2^ℓ` per element; see
    /// [`aq2pnn_ring::extend`] for the analysis and the protocol crate for
    /// the exact strategy.
    #[must_use]
    pub fn extend_local(&self, target: Ring) -> AShare {
        AShare(self.0.recast(target))
    }

    /// Local ring narrowing (wrapping) — used when truncating `Q2 → Q1`
    /// after BNReQ.
    #[must_use]
    pub fn narrow(&self, target: Ring) -> AShare {
        self.extend_local(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Ring, RingTensor, AShare, AShare) {
        let q = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(42);
        let x = RingTensor::from_signed(q, vec![4], &[5, -9, 1000, -32768]).unwrap();
        let (a, b) = AShare::share(&x, &mut rng);
        (q, x, a, b)
    }

    #[test]
    fn share_recover_roundtrip() {
        let (_, x, a, b) = setup();
        assert_eq!(AShare::recover(&a, &b).unwrap(), x);
    }

    #[test]
    fn cc_add_matches_plaintext() {
        let q = Ring::new(12);
        let mut rng = StdRng::seed_from_u64(3);
        let x = RingTensor::from_signed(q, vec![3], &[1, -2, 3]).unwrap();
        let y = RingTensor::from_signed(q, vec![3], &[10, 20, -30]).unwrap();
        let (xi, xj) = AShare::share(&x, &mut rng);
        let (yi, yj) = AShare::share(&y, &mut rng);
        let si = xi.add(&yi).unwrap();
        let sj = xj.add(&yj).unwrap();
        assert_eq!(AShare::recover(&si, &sj).unwrap(), x.add(&y).unwrap());
    }

    #[test]
    fn pc_add_single_party() {
        let (q, x, a, b) = setup();
        let a2 = a.add_plain(PartyId::User, 7);
        let b2 = b.add_plain(PartyId::ModelProvider, 7);
        let rec = AShare::recover(&a2, &b2).unwrap();
        let expect = x.map(|v| q.add(v, 7));
        assert_eq!(rec, expect);
    }

    #[test]
    fn pc_mul_both_parties() {
        let (q, x, a, b) = setup();
        let rec = AShare::recover(&a.mul_plain(3), &b.mul_plain(3)).unwrap();
        assert_eq!(rec, x.map(|v| q.mul(v, 3)));
    }

    #[test]
    fn neg_recovers_negation() {
        let (q, x, a, b) = setup();
        let rec = AShare::recover(&a.neg(), &b.neg()).unwrap();
        assert_eq!(rec, x.map(|v| q.neg(v)));
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let (_, _, a, b) = setup();
        assert_eq!(
            AShare::recover(&a.shl(3), &b.shl(3)).unwrap(),
            AShare::recover(&a.mul_plain(8), &b.mul_plain(8)).unwrap()
        );
    }

    #[test]
    fn extend_local_small_secret_exact() {
        // Small secrets extend correctly with overwhelming probability; with
        // a fixed seed this vector is deterministic and exact.
        let q12 = Ring::new(12);
        let q16 = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(9);
        let x = RingTensor::from_signed(q12, vec![3], &[4, -6, 20]).unwrap();
        let (a, b) = AShare::share(&x, &mut rng);
        let (ea, eb) = (a.extend_local(q16), b.extend_local(q16));
        let rec = AShare::recover(&ea, &eb).unwrap();
        assert_eq!(rec.to_signed(), vec![4, -6, 20]);
        assert_eq!(rec.ring(), q16);
    }

    #[test]
    fn share_randomness_differs_across_calls() {
        let q = Ring::new(16);
        let mut rng = StdRng::seed_from_u64(11);
        let x = RingTensor::zeros(q, vec![8]);
        let (a1, _) = AShare::share(&x, &mut rng);
        let (a2, _) = AShare::share(&x, &mut rng);
        assert_ne!(a1, a2);
    }
}
