//! Party identities in the 2PC setup.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the two parties (paper Definition 3: `i, j ∈ {0, 1}`, `i ≠ j`).
///
/// By convention in this reproduction, [`PartyId::User`] (index 0) supplies
/// the input feature map and [`PartyId::ModelProvider`] (index 1) supplies
/// the weights — but every protocol works symmetrically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartyId {
    /// Party 0 — the customer holding the private input.
    User,
    /// Party 1 — the vendor holding the private model.
    ModelProvider,
}

impl PartyId {
    /// Numeric index `i ∈ {0, 1}` used in protocol formulas (e.g. the
    /// `−i·E⊗F` term of paper Eq. 1).
    #[must_use]
    pub fn index(self) -> u64 {
        match self {
            PartyId::User => 0,
            PartyId::ModelProvider => 1,
        }
    }

    /// The opposite party.
    #[must_use]
    pub fn other(self) -> PartyId {
        match self {
            PartyId::User => PartyId::ModelProvider,
            PartyId::ModelProvider => PartyId::User,
        }
    }

    /// Party from a numeric index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[must_use]
    pub fn from_index(index: u64) -> PartyId {
        match index {
            0 => PartyId::User,
            1 => PartyId::ModelProvider,
            _ => panic!("party index must be 0 or 1, got {index}"),
        }
    }

    /// Both parties, in index order.
    #[must_use]
    pub fn both() -> [PartyId; 2] {
        [PartyId::User, PartyId::ModelProvider]
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyId::User => write!(f, "party 0 (user)"),
            PartyId::ModelProvider => write!(f, "party 1 (model provider)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_and_other() {
        assert_eq!(PartyId::User.index(), 0);
        assert_eq!(PartyId::ModelProvider.index(), 1);
        assert_eq!(PartyId::User.other(), PartyId::ModelProvider);
        assert_eq!(PartyId::ModelProvider.other(), PartyId::User);
        for p in PartyId::both() {
            assert_eq!(PartyId::from_index(p.index()), p);
        }
    }

    #[test]
    #[should_panic(expected = "party index")]
    fn bad_index_panics() {
        let _ = PartyId::from_index(2);
    }
}
