//! The runtime kernel dispatch table.
//!
//! A [`KernelDispatch`] is a plain struct of function pointers to the
//! width-specialized primitives in [`aq2pnn_ring::simd`], resolved
//! **once** from the CPU features the process actually has
//! ([`IsaLevel::active`]) instead of whatever `-C target-cpu` the binary
//! was compiled with. The hot paths take the table by reference:
//!
//! * [`crate::beaver::ring_matmul_with`] — the mask-deferred GEMM inner
//!   loops (`axpy` / `axpy2` at u16/u32/u64 accumulator widths),
//! * the wire packers in `aq2pnn-transport` and the A2BM code-table
//!   fill in `aq2pnn` resolve their kernels from the same
//!   [`IsaLevel`] via the `aq2pnn_ring::simd` selectors directly.
//!
//! Dispatch changes *when* answers arrive, never *what* they are: every
//! pointer in the table is property-tested bit-identical to the scalar
//! reference, so protocol transcripts are byte-identical across ISAs.
//!
//! # Accelerator seam
//!
//! The fields are public and the struct is `Copy`: a GPU/FPGA backend
//! registers by building its own table (its pointers may stage work on a
//! device, as long as they keep the bit-identity contract) and handing
//! it to the `*_with` entry points — no trait object, no feature flag,
//! and the CPU paths keep working untouched. See DESIGN.md §7.4.

use aq2pnn_ring::simd::{
    self, Axpy2U16Fn, Axpy2U32Fn, Axpy2U64Fn, AxpyU16Fn, AxpyU32Fn, AxpyU64Fn,
};
use aq2pnn_ring::IsaLevel;
use std::sync::OnceLock;

/// Function-pointer table of the GEMM inner-loop kernels, selected per
/// ISA level (or custom-built by an accelerator backend).
#[derive(Clone, Copy, Debug)]
pub struct KernelDispatch {
    /// Human-readable backend label (`scalar`/`avx2`/`avx512`/`neon`, or
    /// whatever a custom backend chooses) — used by benches and reports.
    pub label: &'static str,
    /// The ISA level the table was built for; custom backends keep the
    /// level their CPU fallbacks assume.
    pub isa: IsaLevel,
    /// `row[j] += v·b[j]` mod `2^16` — GEMM inner loop for ℓ ≤ 16.
    pub axpy_u16: AxpyU16Fn,
    /// 2-step-unrolled u16 inner loop (`row[j] += v0·b0[j] + v1·b1[j]`).
    pub axpy2_u16: Axpy2U16Fn,
    /// `row[j] += v·b[j]` mod `2^32` — GEMM inner loop for 16 < ℓ ≤ 32.
    pub axpy_u32: AxpyU32Fn,
    /// 2-step-unrolled u32 inner loop.
    pub axpy2_u32: Axpy2U32Fn,
    /// `row[j] += v·b[j]` mod `2^64` — GEMM inner loop for ℓ > 32.
    pub axpy_u64: AxpyU64Fn,
    /// 2-step-unrolled u64 inner loop.
    pub axpy2_u64: Axpy2U64Fn,
}

impl KernelDispatch {
    /// Builds the table for one ISA level from the `aq2pnn_ring::simd`
    /// selectors. Safe for any level: unsupported levels degrade to the
    /// scalar reference inside the ring crate's checked wrappers.
    ///
    /// This constructor is where measurements become policy: the AVX-512
    /// u16 entries stay on the scalar kernel because at conv-shaped row
    /// lengths (n = 64, 128-byte L1-resident rows) the 512-bit
    /// `mullo_epi16` loop measures 25–35% *slower* than the
    /// compiler-autovectorized scalar loop (BENCH_kernels.json,
    /// `matmul/l12` / `l16` rows) — the wide stores don't pay below one
    /// cache line per vector. Wider-accumulator entries (u32/u64), where
    /// scalar autovectorization has no cheap lane multiply, use the
    /// hand-written kernels at every level.
    #[must_use]
    pub fn for_isa(isa: IsaLevel) -> Self {
        let u16_isa = if isa == IsaLevel::Avx512 { IsaLevel::Scalar } else { isa };
        KernelDispatch {
            label: isa.name(),
            isa,
            axpy_u16: simd::axpy_u16_for(u16_isa),
            axpy2_u16: simd::axpy2_u16_for(u16_isa),
            axpy_u32: simd::axpy_u32_for(isa),
            axpy2_u32: simd::axpy2_u32_for(isa),
            axpy_u64: simd::axpy_u64_for(isa),
            axpy2_u64: simd::axpy2_u64_for(isa),
        }
    }

    /// The always-available scalar reference table.
    #[must_use]
    pub fn scalar() -> Self {
        KernelDispatch::for_isa(IsaLevel::Scalar)
    }

    /// The process-wide table, resolved once from [`IsaLevel::active`]
    /// (runtime CPU detection, `AQ2PNN_ISA` override respected), then
    /// refined by a one-shot micro-calibration (see `calibrate_u16`
    /// below; `AQ2PNN_NO_CALIBRATE` skips it and keeps the static
    /// policy).
    #[must_use]
    pub fn active() -> &'static KernelDispatch {
        static ACTIVE: OnceLock<KernelDispatch> = OnceLock::new();
        ACTIVE.get_or_init(|| {
            let mut d = KernelDispatch::for_isa(IsaLevel::active());
            calibrate_u16(&mut d);
            d
        })
    }
}

/// Startup micro-calibration of the u16/AVX-512 policy.
///
/// [`KernelDispatch::for_isa`] pins the AVX-512 u16 entries to the scalar
/// kernel because the 512-bit `mullo_epi16` loop *usually* loses at
/// conv-shaped row lengths — but that static call was measured on one
/// microarchitecture, and parts with fast 512-bit stores (or future ones
/// without the downclocking penalty) can invert it. So on AVX-512 hosts
/// the process-wide table re-measures both candidates once at startup
/// (min-of-N timing of the `axpy2_u16` inner loop at n = 64, the
/// L1-resident conv row shape) and keeps whichever wins. Calibration only
/// ever swaps which *bit-identical* kernel runs, so transcripts are
/// unaffected; `AQ2PNN_NO_CALIBRATE=1` skips the measurement and keeps
/// the static policy (deterministic startup for benches that measure the
/// kernels themselves).
fn calibrate_u16(d: &mut KernelDispatch) {
    if d.isa != IsaLevel::Avx512 || std::env::var_os("AQ2PNN_NO_CALIBRATE").is_some() {
        return;
    }
    let scalar2 = simd::axpy2_u16_for(IsaLevel::Scalar);
    let wide2 = simd::axpy2_u16_for(IsaLevel::Avx512);
    let t_scalar = time_axpy2_u16(scalar2);
    let t_wide = time_axpy2_u16(wide2);
    let log = aq2pnn_obs::Tracer::disabled();
    if t_wide < t_scalar {
        d.axpy_u16 = simd::axpy_u16_for(IsaLevel::Avx512);
        d.axpy2_u16 = wide2;
        log.info(format!(
            "kernel calibration: avx512 u16 axpy wins on this host \
             ({t_wide}ns vs {t_scalar}ns scalar at n=64), overriding static policy"
        ));
    } else {
        log.info(format!(
            "kernel calibration: keeping scalar u16 axpy \
             ({t_scalar}ns vs {t_wide}ns avx512 at n=64)"
        ));
    }
}

/// Min-of-N wall-clock of 256 `axpy2_u16` calls on an L1-resident n = 64
/// row — the inner-loop shape of a conv-layer GEMM at ℓ ≤ 16.
#[allow(clippy::cast_possible_truncation)]
fn time_axpy2_u16(f: Axpy2U16Fn) -> u64 {
    const N: usize = 64;
    let b0 = [3u16; N];
    let b1 = [5u16; N];
    let mut row = [0u16; N];
    let mut best = u64::MAX;
    for _ in 0..7 {
        let start = std::time::Instant::now();
        for i in 0..256u16 {
            f(&mut row, i | 1, &b0, 2, &b1);
        }
        best = best.min(start.elapsed().as_nanos() as u64);
        std::hint::black_box(&mut row);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_table_matches_active_isa() {
        let d = KernelDispatch::active();
        assert_eq!(d.isa, IsaLevel::active());
        assert_eq!(d.label, IsaLevel::active().name());
    }

    #[test]
    fn every_available_isa_builds_a_working_table() {
        for isa in IsaLevel::available() {
            let d = KernelDispatch::for_isa(isa);
            let mut row = [1u32, 2, 3];
            (d.axpy_u32)(&mut row, 2, &[10, 20, 30]);
            assert_eq!(row, [21, 42, 63]);
            let mut row64 = [u64::MAX, 0];
            (d.axpy_u64)(&mut row64, 1, &[1, 5]);
            assert_eq!(row64, [0, 5]);
            let mut row16 = [0u16; 2];
            (d.axpy2_u16)(&mut row16, 3, &[1, 2], 5, &[10, 100]);
            assert_eq!(row16, [53, 506]);
        }
    }

    /// The accelerator seam: a custom table with swapped-in pointers is
    /// accepted anywhere a dispatch is.
    #[test]
    fn custom_tables_compose() {
        fn noisy_axpy(row: &mut [u32], v: u32, b: &[u32]) {
            aq2pnn_ring::simd::scalar::axpy_u32(row, v, b);
        }
        let d =
            KernelDispatch { label: "custom", axpy_u32: noisy_axpy, ..KernelDispatch::scalar() };
        let mut row = [0u32; 2];
        (d.axpy_u32)(&mut row, 7, &[1, 2]);
        assert_eq!(row, [7, 14]);
        assert_eq!(d.label, "custom");
    }
}
