//! Beaver multiplication triples — the pre-computed AS-CST buffer contents.
//!
//! Ciphertext-ciphertext multiplication (paper Sec. 4.1.2) consumes a triple
//! `⟦Z⟧ = ⟦A⟧ · ⟦B⟧`: the parties open masked values `E = IN − A` and
//! `F = W − B` and evaluate paper Eq. 1 locally. Triples are classically
//! generated offline with HE or OT; this crate's [`crate::dealer`] plays the
//! trusted-dealer role (explicitly an idealized offline phase — the online
//! protocol is unchanged).

use aq2pnn_ring::{Ring, RingTensor, ShapeError};
use serde::{Deserialize, Serialize};

/// One party's share of a Beaver triple `(⟦A⟧, ⟦B⟧, ⟦Z⟧)` with
/// `Z = A ⊗ B` (matrix product) or `Z = A ⊙ B` (elementwise), depending on
/// which dealer method produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleShare {
    /// Share of the input mask `A` (same shape as the left operand).
    pub a: RingTensor,
    /// Share of the weight mask `B` (same shape as the right operand).
    pub b: RingTensor,
    /// Share of the product `Z` (shape of the output).
    pub z: RingTensor,
}

impl TripleShare {
    /// The ring all three components live in.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.a.ring()
    }
}

/// Plaintext matrix multiplication over a ring: `C[m,n] = A[m,k] ⊗ B[k,n]`.
///
/// Shared by the dealer (to compute `Z`) and by tests that cross-check the
/// 2PC GEMM against its plaintext counterpart (paper Fig. 3).
///
/// # Errors
///
/// Returns [`ShapeError::ShapeMismatch`] if the operands are not rank-2
/// with an agreeing inner dimension, or live on different rings.
pub fn ring_matmul(a: &RingTensor, b: &RingTensor) -> Result<RingTensor, ShapeError> {
    let (ra, rb) = (a.ring(), b.ring());
    if ra != rb || a.shape().len() != 2 || b.shape().len() != 2 || a.shape()[1] != b.shape()[0] {
        return Err(ShapeError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0u64; m * n];
    let (da, db) = (a.as_slice(), b.as_slice());
    for i in 0..m {
        for p in 0..k {
            let av = da[i * k + p];
            if av == 0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] = ra.add(out[i * n + j], ra.mul(av, db[p * n + j]));
            }
        }
    }
    RingTensor::from_raw(ra, vec![m, n], out)
}

/// Plaintext elementwise (Hadamard) product over a ring.
///
/// # Errors
///
/// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
pub fn ring_hadamard(a: &RingTensor, b: &RingTensor) -> Result<RingTensor, ShapeError> {
    let ring = a.ring();
    a.zip_with(b, |x, y| ring.mul(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let q = Ring::new(16);
        let a = RingTensor::from_signed(q, vec![2, 2], &[1, 2, 3, 4]).unwrap();
        let id = RingTensor::from_signed(q, vec![2, 2], &[1, 0, 0, 1]).unwrap();
        assert_eq!(ring_matmul(&a, &id).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let q = Ring::new(16);
        let a = RingTensor::from_signed(q, vec![2, 3], &[1, -2, 3, 0, 5, -1]).unwrap();
        let b = RingTensor::from_signed(q, vec![3, 2], &[2, 1, 0, -1, 4, 4]).unwrap();
        let c = ring_matmul(&a, &b).unwrap();
        assert_eq!(c.to_signed(), vec![14, 15, -4, -9]);
    }

    #[test]
    fn matmul_wraps_on_ring() {
        let q = Ring::new(8);
        let a = RingTensor::from_signed(q, vec![1, 1], &[100]).unwrap();
        let b = RingTensor::from_signed(q, vec![1, 1], &[3]).unwrap();
        // 300 mod 256 = 44
        assert_eq!(ring_matmul(&a, &b).unwrap().to_signed(), vec![44]);
    }

    #[test]
    fn matmul_shape_checks() {
        let q = Ring::new(8);
        let a = RingTensor::zeros(q, vec![2, 3]);
        let b = RingTensor::zeros(q, vec![2, 3]);
        assert!(matches!(ring_matmul(&a, &b), Err(ShapeError::ShapeMismatch { .. })));
    }

    #[test]
    fn hadamard_known() {
        let q = Ring::new(16);
        let a = RingTensor::from_signed(q, vec![3], &[2, -3, 4]).unwrap();
        let b = RingTensor::from_signed(q, vec![3], &[5, 6, -7]).unwrap();
        assert_eq!(ring_hadamard(&a, &b).unwrap().to_signed(), vec![10, -18, -28]);
    }
}
