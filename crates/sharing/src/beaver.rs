//! Beaver multiplication triples — the pre-computed AS-CST buffer contents.
//!
//! Ciphertext-ciphertext multiplication (paper Sec. 4.1.2) consumes a triple
//! `⟦Z⟧ = ⟦A⟧ · ⟦B⟧`: the parties open masked values `E = IN − A` and
//! `F = W − B` and evaluate paper Eq. 1 locally. Triples are classically
//! generated offline with HE or OT; this crate's [`crate::dealer`] plays the
//! trusted-dealer role (explicitly an idealized offline phase — the online
//! protocol is unchanged).

use crate::kernels::KernelDispatch;
use aq2pnn_ring::{Ring, RingTensor, ShapeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One party's share of a Beaver triple `(⟦A⟧, ⟦B⟧, ⟦Z⟧)` with
/// `Z = A ⊗ B` (matrix product) or `Z = A ⊙ B` (elementwise), depending on
/// which dealer method produced it.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleShare {
    /// Share of the input mask `A` (same shape as the left operand).
    pub a: RingTensor,
    /// Share of the weight mask `B` (same shape as the right operand).
    pub b: RingTensor,
    /// Share of the product `Z` (shape of the output).
    pub z: RingTensor,
}

/// `Debug` redacts the triple words: leaking a party's `A`/`B` share lets
/// the peer unmask the opened `E = IN − A` / `F = W − B` values and recover
/// the plaintext operands. Shapes and the ring are public geometry.
impl fmt::Debug for TripleShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TripleShare")
            .field("ring_bits", &self.a.ring().bits())
            .field("a_shape", &self.a.shape())
            .field("b_shape", &self.b.shape())
            .field("z_shape", &self.z.shape())
            .field("values", &"<redacted>")
            .finish()
    }
}

impl TripleShare {
    /// The ring all three components live in.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.a.ring()
    }

    /// Formats the triple *including its secret mask words* — test-only
    /// opt-in counterpart of the redacted `Debug` impl.
    #[must_use]
    pub fn fmt_revealed(&self) -> String {
        // secrecy: allow(secret-sink, "explicit opt-in reveal for tests; the redacted Debug impl is the default")
        format!("TripleShare {{ a: {:?}, b: {:?}, z: {:?} }}", self.a, self.b, self.z)
    }
}

/// Parallel fan-out kicks in once a matmul is at least this many MACs;
/// below it, thread spawn overhead would dominate.
const PAR_MIN_MACS: usize = 1 << 18;

/// Plaintext matrix multiplication over a ring: `C[m,n] = A[m,k] ⊗ B[k,n]`,
/// on the process-wide [`KernelDispatch`] table.
///
/// Shared by the dealer (to compute `Z`) and by the online GEMM evaluating
/// paper Eq. 1, so this is the single hottest kernel in the system. See
/// [`ring_matmul_with`] for the kernel structure.
///
/// # Errors
///
/// Returns [`ShapeError::ShapeMismatch`] if the operands are not rank-2
/// with an agreeing inner dimension, or live on different rings.
pub fn ring_matmul(a: &RingTensor, b: &RingTensor) -> Result<RingTensor, ShapeError> {
    ring_matmul_with(KernelDispatch::active(), a, b)
}

/// [`ring_matmul`] on an explicit kernel table — the entry point benches,
/// per-ISA property tests and accelerator backends use.
///
/// The implementation is cache-blocked with **deferred masking**: because
/// the ring modulus `2^ℓ` divides the accumulator modulus, the inner loops
/// accumulate with plain `wrapping_mul`/`wrapping_add` and the ring mask is
/// applied exactly once per output element at write-out — bit-identical to
/// reducing after every MAC. The accumulator width is picked per ring
/// (`u16` for ℓ ≤ 16, `u32` for ℓ ≤ 32 — every paper configuration —
/// else `u64`), which doubles/quadruples SIMD lane counts on the narrow
/// paper widths. Output rows are processed in register-blocked quads (one
/// pass over each pair of `B` rows updates four `C` rows through the
/// table's `axpy2` kernels) and large products fan out across threads by
/// row chunks; every output element is written by exactly one thread, so
/// parallel execution is deterministic, and the dispatch table only moves
/// *when* the answer is ready, never *what* it is.
/// [`ring_matmul_reference`] keeps the scalar triple loop for
/// cross-checking.
///
/// # Errors
///
/// Returns [`ShapeError::ShapeMismatch`] if the operands are not rank-2
/// with an agreeing inner dimension, or live on different rings.
pub fn ring_matmul_with(
    d: &KernelDispatch,
    a: &RingTensor,
    b: &RingTensor,
) -> Result<RingTensor, ShapeError> {
    let (ra, rb) = (a.ring(), b.ring());
    if ra != rb || a.shape().len() != 2 || b.shape().len() != 2 || a.shape()[1] != b.shape()[0] {
        return Err(ShapeError::ShapeMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let (da, db) = (a.as_slice(), b.as_slice());
    if ra.bits() <= 16 {
        return RingTensor::from_raw(ra, vec![m, n], matmul_narrow_u16(d, ra, m, k, n, da, db));
    }
    if ra.bits() <= 32 {
        return RingTensor::from_raw(ra, vec![m, n], matmul_narrow_u32(d, ra, m, k, n, da, db));
    }
    let mask = ra.mask();
    let (axpy, axpy2) = (d.axpy_u64, d.axpy2_u64);
    let mut out = vec![0u64; m * n];
    // Row-aligned fan-out: size worker chunks so each gets at least
    // PAR_MIN_MACS multiply-accumulates (small products run inline).
    let macs_per_row = k.saturating_mul(n).max(1);
    let min_rows = PAR_MIN_MACS.div_ceil(macs_per_row);
    let mut rows: Vec<&mut [u64]> = out.chunks_mut(n.max(1)).collect();
    aq2pnn_parallel::par_chunks_mut(&mut rows, min_rows, |start, rows| {
        for (q, quad) in rows.chunks_mut(4).enumerate() {
            let i0 = start + q * 4;
            if let [r0, r1, r2, r3] = quad {
                accumulate_quad_u64(
                    axpy,
                    axpy2,
                    [r0, r1, r2, r3],
                    [
                        &da[i0 * k..][..k],
                        &da[(i0 + 1) * k..][..k],
                        &da[(i0 + 2) * k..][..k],
                        &da[(i0 + 3) * k..][..k],
                    ],
                    db,
                    n,
                );
            } else {
                for (t, row) in quad.iter_mut().enumerate() {
                    accumulate_row_u64(axpy, row, &da[(i0 + t) * k..][..k], db, n);
                }
            }
        }
        // Deferred masking: one reduction per element, at write-out.
        for row in rows.iter_mut() {
            for v in row.iter_mut() {
                *v &= mask;
            }
        }
    });
    RingTensor::from_raw(ra, vec![m, n], out)
}

/// Generates one narrow-accumulator matmul path: operands are demoted once
/// (`O(mk + kn)`), the `O(mkn)` accumulation runs wrapping mod the
/// accumulator width through the dispatch table's `axpy`/`axpy2` kernels,
/// and the ring mask is applied at write-out — bit-identical to the `u64`
/// path because `2^ℓ` divides the accumulator modulus.
macro_rules! narrow_matmul {
    ($name:ident, $row_fn:ident, $quad_fn:ident, $t:ty, $axpy_field:ident, $axpy2_field:ident) => {
        #[allow(clippy::cast_possible_truncation)] // ring values fit the accumulator by the width guard
        fn $name(
            d: &KernelDispatch,
            ring: Ring,
            m: usize,
            k: usize,
            n: usize,
            da: &[u64],
            db: &[u64],
        ) -> Vec<u64> {
            let an: Vec<$t> = da.iter().map(|&v| v as $t).collect();
            let bn: Vec<$t> = db.iter().map(|&v| v as $t).collect();
            let mask = ring.mask() as $t;
            let (axpy, axpy2) = (d.$axpy_field, d.$axpy2_field);
            let mut out = vec![0 as $t; m * n];
            let macs_per_row = k.saturating_mul(n).max(1);
            let min_rows = PAR_MIN_MACS.div_ceil(macs_per_row);
            let mut rows: Vec<&mut [$t]> = out.chunks_mut(n.max(1)).collect();
            aq2pnn_parallel::par_chunks_mut(&mut rows, min_rows, |start, rows| {
                for (q, quad) in rows.chunks_mut(4).enumerate() {
                    let i0 = start + q * 4;
                    if let [r0, r1, r2, r3] = quad {
                        $quad_fn(
                            axpy,
                            axpy2,
                            [r0, r1, r2, r3],
                            [
                                &an[i0 * k..][..k],
                                &an[(i0 + 1) * k..][..k],
                                &an[(i0 + 2) * k..][..k],
                                &an[(i0 + 3) * k..][..k],
                            ],
                            &bn,
                            n,
                        );
                    } else {
                        for (t, row) in quad.iter_mut().enumerate() {
                            $row_fn(axpy, row, &an[(i0 + t) * k..][..k], &bn, n);
                        }
                    }
                }
                for row in rows.iter_mut() {
                    for v in row.iter_mut() {
                        *v &= mask;
                    }
                }
            });
            out.into_iter().map(u64::from).collect()
        }

        /// Accumulates `A[i,:] ⊗ B` into one unreduced output row.
        fn $row_fn(
            axpy: fn(&mut [$t], $t, &[$t]),
            row: &mut [$t],
            a_row: &[$t],
            db: &[$t],
            n: usize,
        ) {
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0 {
                    continue;
                }
                axpy(row, av, &db[p * n..p * n + n]);
            }
        }

        /// Quad kernel: one streaming pass over each pair of `B` rows feeds
        /// four unreduced output rows through the 2-step-unrolled `axpy2`,
        /// halving the dominant row load/store traffic versus one `k` step
        /// at a time and reusing each loaded `B` lane four times.
        fn $quad_fn(
            axpy: fn(&mut [$t], $t, &[$t]),
            axpy2: fn(&mut [$t], $t, &[$t], $t, &[$t]),
            rows: [&mut &mut [$t]; 4],
            a_rows: [&[$t]; 4],
            db: &[$t],
            n: usize,
        ) {
            let [r0, r1, r2, r3] = rows;
            let (r0, r1, r2, r3) = (&mut r0[..n], &mut r1[..n], &mut r2[..n], &mut r3[..n]);
            let [a0, a1, a2, a3] = a_rows;
            let k = a0.len();
            let mut p = 0;
            while p + 2 <= k {
                let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
                let (w0, w1, w2, w3) = (a0[p + 1], a1[p + 1], a2[p + 1], a3[p + 1]);
                if v0 | v1 | v2 | v3 | w0 | w1 | w2 | w3 == 0 {
                    p += 2;
                    continue;
                }
                let bp = &db[p * n..p * n + n];
                let bq = &db[(p + 1) * n..(p + 1) * n + n];
                axpy2(r0, v0, bp, w0, bq);
                axpy2(r1, v1, bp, w1, bq);
                axpy2(r2, v2, bp, w2, bq);
                axpy2(r3, v3, bp, w3, bq);
                p += 2;
            }
            while p < k {
                let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
                if v0 | v1 | v2 | v3 != 0 {
                    let bp = &db[p * n..p * n + n];
                    axpy(r0, v0, bp);
                    axpy(r1, v1, bp);
                    axpy(r2, v2, bp);
                    axpy(r3, v3, bp);
                }
                p += 1;
            }
        }
    };
}

narrow_matmul!(
    matmul_narrow_u16,
    accumulate_row_u16,
    accumulate_quad_u16,
    u16,
    axpy_u16,
    axpy2_u16
);
narrow_matmul!(
    matmul_narrow_u32,
    accumulate_row_u32,
    accumulate_quad_u32,
    u32,
    axpy_u32,
    axpy2_u32
);

/// Accumulates `A[i,:] ⊗ B` into one unreduced output row (mod `2^64`).
fn accumulate_row_u64(
    axpy: fn(&mut [u64], u64, &[u64]),
    row: &mut [u64],
    a_row: &[u64],
    db: &[u64],
    n: usize,
) {
    for (p, &av) in a_row.iter().enumerate() {
        if av == 0 {
            continue;
        }
        axpy(row, av, &db[p * n..p * n + n]);
    }
}

/// Register-blocked `u64` quad kernel: one streaming pass over each pair
/// of `B` rows feeds four unreduced output rows through `axpy2`.
fn accumulate_quad_u64(
    axpy: fn(&mut [u64], u64, &[u64]),
    axpy2: fn(&mut [u64], u64, &[u64], u64, &[u64]),
    rows: [&mut &mut [u64]; 4],
    a_rows: [&[u64]; 4],
    db: &[u64],
    n: usize,
) {
    let [r0, r1, r2, r3] = rows;
    let (r0, r1, r2, r3) = (&mut r0[..n], &mut r1[..n], &mut r2[..n], &mut r3[..n]);
    let [a0, a1, a2, a3] = a_rows;
    let k = a0.len();
    let mut p = 0;
    while p + 2 <= k {
        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
        let (w0, w1, w2, w3) = (a0[p + 1], a1[p + 1], a2[p + 1], a3[p + 1]);
        if v0 | v1 | v2 | v3 | w0 | w1 | w2 | w3 == 0 {
            p += 2;
            continue;
        }
        let bp = &db[p * n..p * n + n];
        let bq = &db[(p + 1) * n..(p + 1) * n + n];
        axpy2(r0, v0, bp, w0, bq);
        axpy2(r1, v1, bp, w1, bq);
        axpy2(r2, v2, bp, w2, bq);
        axpy2(r3, v3, bp, w3, bq);
        p += 2;
    }
    while p < k {
        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
        if v0 | v1 | v2 | v3 != 0 {
            let bp = &db[p * n..p * n + n];
            axpy(r0, v0, bp);
            axpy(r1, v1, bp);
            axpy(r2, v2, bp);
            axpy(r3, v3, bp);
        }
        p += 1;
    }
}

/// Scalar reference matrix multiplication: the original triple loop with a
/// full ring reduction after every multiply-accumulate.
///
/// Kept as the ground truth the blocked [`ring_matmul`] is property-tested
/// and benchmarked against; not used on the protocol hot path.
///
/// # Errors
///
/// Returns [`ShapeError::ShapeMismatch`] if the operands are not rank-2
/// with an agreeing inner dimension, or live on different rings.
pub fn ring_matmul_reference(a: &RingTensor, b: &RingTensor) -> Result<RingTensor, ShapeError> {
    let (ra, rb) = (a.ring(), b.ring());
    if ra != rb || a.shape().len() != 2 || b.shape().len() != 2 || a.shape()[1] != b.shape()[0] {
        return Err(ShapeError::ShapeMismatch { lhs: a.shape().to_vec(), rhs: b.shape().to_vec() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0u64; m * n];
    let (da, db) = (a.as_slice(), b.as_slice());
    for i in 0..m {
        for p in 0..k {
            let av = da[i * k + p];
            for j in 0..n {
                out[i * n + j] = ra.add(out[i * n + j], ra.mul(av, db[p * n + j]));
            }
        }
    }
    RingTensor::from_raw(ra, vec![m, n], out)
}

/// Plaintext elementwise (Hadamard) product over a ring.
///
/// # Errors
///
/// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
pub fn ring_hadamard(a: &RingTensor, b: &RingTensor) -> Result<RingTensor, ShapeError> {
    let ring = a.ring();
    a.zip_with(b, |x, y| ring.mul(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let q = Ring::new(16);
        let a = RingTensor::from_signed(q, vec![2, 2], &[1, 2, 3, 4]).unwrap();
        let id = RingTensor::from_signed(q, vec![2, 2], &[1, 0, 0, 1]).unwrap();
        assert_eq!(ring_matmul(&a, &id).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let q = Ring::new(16);
        let a = RingTensor::from_signed(q, vec![2, 3], &[1, -2, 3, 0, 5, -1]).unwrap();
        let b = RingTensor::from_signed(q, vec![3, 2], &[2, 1, 0, -1, 4, 4]).unwrap();
        let c = ring_matmul(&a, &b).unwrap();
        assert_eq!(c.to_signed(), vec![14, 15, -4, -9]);
    }

    #[test]
    fn matmul_wraps_on_ring() {
        let q = Ring::new(8);
        let a = RingTensor::from_signed(q, vec![1, 1], &[100]).unwrap();
        let b = RingTensor::from_signed(q, vec![1, 1], &[3]).unwrap();
        // 300 mod 256 = 44
        assert_eq!(ring_matmul(&a, &b).unwrap().to_signed(), vec![44]);
    }

    #[test]
    fn matmul_shape_checks() {
        let q = Ring::new(8);
        let a = RingTensor::zeros(q, vec![2, 3]);
        let b = RingTensor::zeros(q, vec![2, 3]);
        assert!(matches!(ring_matmul(&a, &b), Err(ShapeError::ShapeMismatch { .. })));
    }

    #[test]
    fn blocked_matches_reference_awkward_shapes() {
        // Exercises the quad kernel, the 1..3-row remainder path, and odd
        // inner/outer dimensions against the scalar reference.
        for &(m, k, n, bits) in
            &[(1, 1, 1, 8), (5, 3, 7, 16), (4, 9, 4, 31), (7, 2, 1, 64), (9, 17, 5, 24)]
        {
            let q = Ring::new(bits);
            let mut s = 0x9e37_79b9_7f4a_7c15u64;
            let mut next = || {
                s = s.wrapping_mul(0xd129_42e4_9c58_05c5).wrapping_add(0xb5);
                s
            };
            let a = RingTensor::from_raw(
                q,
                vec![m, k],
                (0..m * k).map(|_| next() & q.mask()).collect(),
            )
            .unwrap();
            let b = RingTensor::from_raw(
                q,
                vec![k, n],
                (0..k * n).map(|_| next() & q.mask()).collect(),
            )
            .unwrap();
            assert_eq!(
                ring_matmul(&a, &b).unwrap(),
                ring_matmul_reference(&a, &b).unwrap(),
                "shape {m}x{k}x{n} @ {bits} bits"
            );
        }
    }

    #[test]
    fn reference_and_blocked_agree_on_shape_errors() {
        let q = Ring::new(8);
        let a = RingTensor::zeros(q, vec![2, 3]);
        let b = RingTensor::zeros(q, vec![2, 3]);
        assert!(matches!(ring_matmul_reference(&a, &b), Err(ShapeError::ShapeMismatch { .. })));
    }

    #[test]
    fn hadamard_known() {
        let q = Ring::new(16);
        let a = RingTensor::from_signed(q, vec![3], &[2, -3, 4]).unwrap();
        let b = RingTensor::from_signed(q, vec![3], &[5, 6, -7]).unwrap();
        assert_eq!(ring_hadamard(&a, &b).unwrap().to_signed(), vec![10, -18, -28]);
    }
}
