//! Additive (2,2) secret sharing for AQ2PNN.
//!
//! Implements paper Definitions 2–3: a value `x ∈ Z_Q` is split as
//! `⟦x⟧ ← (r, x − r)` between party *i* and party *j*; recovery computes
//! `(x_i + x_j) mod Q`. On top of the plain sharing this crate provides:
//!
//! * [`AShare`] / [`BShare`] — arithmetic and binary (XOR) share tensors,
//!   newtypes so shares cannot be confused with plaintext.
//! * AS-ALU local operations (paper Sec. 4.1.3): C-C addition, P-C
//!   addition/multiplication, negation — everything that needs no
//!   communication.
//! * [`beaver`] — Beaver multiplication triples `⟦Z⟧ = ⟦A⟧·⟦B⟧` (elementwise
//!   and matrix form) produced by a [`dealer::TripleDealer`], the
//!   pre-computed AS-CST buffer contents.
//! * [`a2b`] — the bit-grouping at the heart of the A2BM (paper
//!   Sec. 4.3.2): an ℓ-bit value splits into two 1-bit MSB groups plus
//!   2-bit groups, each later driven through a `(1, 2^w)`-OT.
//! * [`trunc`] — share truncation for 2PC-BNReQ: the SecureML-style local
//!   truncation the hardware uses (probabilistically correct) and an
//!   idealized exact functionality for ablations.
//! * [`kernels`] — the runtime [`kernels::KernelDispatch`] table binding
//!   the GEMM inner loops to the best ISA the host supports (DESIGN.md
//!   §7.4), and the seam an accelerator backend registers into.
//!
//! # Example
//!
//! ```
//! use aq2pnn_ring::{Ring, RingTensor};
//! use aq2pnn_sharing::AShare;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let q = Ring::new(16);
//! let mut rng = StdRng::seed_from_u64(1);
//! let x = RingTensor::from_signed(q, vec![3], &[4, -7, 100])?;
//! let (xi, xj) = AShare::share(&x, &mut rng);
//! assert_eq!(AShare::recover(&xi, &xj)?, x);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a2b;
mod ashare;
pub mod beaver;
mod binary;
pub mod dealer;
pub mod kernels;
mod party;
pub mod trunc;

pub use ashare::AShare;
pub use binary::BShare;
pub use party::PartyId;
