//! Bit grouping for arithmetic-to-binary share conversion (A2BM).
//!
//! Paper Sec. 4.3.2: an ℓ-bit value is split with `||` into groups — for
//! INT8, `x ← x7 || x6 || x5x4 || x3x2 || x1x0`. The two most significant
//! groups carry one bit each (they feed ABReLU's quadrant detection and use
//! `(1,2)`-OT); the remaining bits form 2-bit groups (`(1,4)`-OT). A group
//! of `w` bits is compared through a `(1, 2^w)`-OT in the OT-flow.
//!
//! For even ℓ this yields the paper's `U = ⌊ℓ/2⌋ + 1` groups; for odd ℓ the
//! least-significant group degrades to 1 bit.

use aq2pnn_ring::Ring;
use serde::{Deserialize, Serialize};

/// One bit group of a decomposed value, MSB-first ordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitGroup {
    /// Width of the group in bits (1 or 2).
    pub width: u32,
    /// The group's value (`< 2^width`).
    pub value: u8,
}

impl std::fmt::Debug for BitGroup {
    /// Redacts the group value: groups are slices of a secret share.
    /// Use [`BitGroup::fmt_revealed`] to opt into printing it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitGroup {{ width: {}, value: <redacted> }}", self.width)
    }
}

impl BitGroup {
    /// Debug rendering *including* the secret group value — explicit
    /// opt-in for tests and offline debugging.
    #[must_use]
    pub fn fmt_revealed(&self) -> String {
        // secrecy: allow(secret-sink, "explicit opt-in reveal; the redacted Debug impl is the default")
        format!("BitGroup {{ width: {}, value: {} }}", self.width, self.value)
    }
}

/// Widths of the groups an `bits`-bit value splits into, MSB-first:
/// `[1, 1, 2, 2, …]` with a trailing 1-bit group when `bits` is odd.
///
/// # Panics
///
/// Panics if `bits < 2` (ABReLU needs at least the two quadrant bits).
#[must_use]
pub fn group_widths(bits: u32) -> Vec<u32> {
    assert!(bits >= 2, "bit grouping requires at least 2 bits, got {bits}");
    let mut widths = vec![1, 1];
    let mut remaining = bits - 2;
    while remaining >= 2 {
        widths.push(2);
        remaining -= 2;
    }
    if remaining == 1 {
        widths.push(1);
    }
    widths
}

/// Number of groups (`U` in the paper): `⌊ℓ/2⌋ + 1` for even ℓ.
#[must_use]
pub fn group_count(bits: u32) -> usize {
    group_widths(bits).len()
}

/// Splits `x` (an element of `ring`) into MSB-first bit groups.
///
/// # Panics
///
/// Panics if the ring has fewer than 2 bits.
#[must_use]
pub fn split_groups(ring: Ring, x: u64) -> Vec<BitGroup> {
    let widths = group_widths(ring.bits());
    let mut groups = Vec::with_capacity(widths.len());
    let mut consumed = 0u32;
    for w in widths {
        consumed += w;
        let shift = ring.bits() - consumed;
        let value = ((x >> shift) & ((1u64 << w) - 1)) as u8;
        groups.push(BitGroup { width: w, value });
    }
    groups
}

/// Splits every element of `xs` into its MSB-first group *values*, written
/// as one flat row-major `xs.len() × widths.len()` buffer into `out`
/// (reusing its allocation) — the allocation-lean A2BM entry point of the
/// batched nonlinear engine. `widths` must be `group_widths(ring.bits())`
/// (passed in so callers amortize it across rounds).
///
/// Equivalent to `split_groups(ring, xs[v])[g].value` at `out[v * U + g]`,
/// without the two per-element `Vec`s. The fill fans out across threads;
/// output is bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `widths` does not sum to the ring's bit-length.
pub fn split_groups_into(ring: Ring, xs: &[u64], widths: &[u32], out: &mut Vec<u8>) {
    let total: u32 = widths.iter().sum();
    assert_eq!(total, ring.bits(), "group widths must sum to the ring width");
    let u = widths.len();
    // Per-group shift/mask, precomputed once per batch.
    let mut shifts = [0u32; 64];
    let mut masks = [0u8; 64];
    let mut consumed = 0u32;
    for (g, &w) in widths.iter().enumerate() {
        consumed += w;
        shifts[g] = ring.bits() - consumed;
        masks[g] = ((1u16 << w) - 1) as u8;
    }
    out.clear();
    out.resize(xs.len() * u, 0);
    aq2pnn_parallel::par_fill_indexed(out, 4096, |idx| {
        let (v, g) = (idx / u, idx % u);
        ((xs[v] >> shifts[g]) as u8) & masks[g]
    });
}

/// Reassembles groups produced by [`split_groups`] back into a ring element.
///
/// # Panics
///
/// Panics if the group widths do not sum to the ring's bit-length.
#[must_use]
pub fn join_groups(ring: Ring, groups: &[BitGroup]) -> u64 {
    let total: u32 = groups.iter().map(|g| g.width).sum();
    assert_eq!(total, ring.bits(), "group widths must sum to the ring width");
    let mut x = 0u64;
    for g in groups {
        x = (x << g.width) | u64::from(g.value);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_paper_int8() {
        // INT8: x7 || x6 || x5x4 || x3x2 || x1x0 → U = 5.
        assert_eq!(group_widths(8), vec![1, 1, 2, 2, 2]);
        assert_eq!(group_count(8), 5);
    }

    #[test]
    fn widths_even_matches_formula() {
        for bits in (2..=64).step_by(2) {
            assert_eq!(group_count(bits as u32), bits / 2 + 1, "bits={bits}");
        }
    }

    #[test]
    fn widths_odd_has_trailing_single_bit() {
        assert_eq!(group_widths(13), vec![1, 1, 2, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn paper_example_minus_74() {
        // Fig. 6: INT8(-74) = 1011_0110 → 1 || 0 || 11 || 01 || 10.
        let q = Ring::new(8);
        let x = q.encode_signed(-74);
        let g = split_groups(q, x);
        let values: Vec<u8> = g.iter().map(|g| g.value).collect();
        assert_eq!(values, vec![1, 0, 0b11, 0b01, 0b10]);
        assert_eq!(join_groups(q, &g), x);
    }

    #[test]
    fn paper_example_abrelu_shares() {
        // Sec. 4.4: (-x_i, x_j) = (-125, 7) splits as
        // 1||0||00||00||11 and 0||0||00||01||11.
        let q = Ring::new(8);
        let gi = split_groups(q, q.encode_signed(-125));
        let gj = split_groups(q, q.encode_signed(7));
        let vi: Vec<u8> = gi.iter().map(|g| g.value).collect();
        let vj: Vec<u8> = gj.iter().map(|g| g.value).collect();
        assert_eq!(vi, vec![1, 0, 0b00, 0b00, 0b11]);
        assert_eq!(vj, vec![0, 0, 0b00, 0b01, 0b11]);
    }

    #[test]
    fn split_join_roundtrip_all_widths() {
        for bits in 2..=16u32 {
            let q = Ring::new(bits);
            for x in [0u64, 1, (1 << bits) - 1, 1 << (bits - 1), 0x5a5a & q.mask()] {
                assert_eq!(join_groups(q, &split_groups(q, x)), x, "bits={bits} x={x}");
            }
        }
    }

    #[test]
    fn flat_split_matches_per_element_split() {
        for bits in [2u32, 6, 8, 13, 16] {
            let q = Ring::new(bits);
            let xs: Vec<u64> = (0..997u64).map(|i| (i * 2654435761) & q.mask()).collect();
            let widths = group_widths(bits);
            let mut flat = Vec::new();
            split_groups_into(q, &xs, &widths, &mut flat);
            assert_eq!(flat.len(), xs.len() * widths.len());
            for (v, &x) in xs.iter().enumerate() {
                let expect: Vec<u8> = split_groups(q, x).iter().map(|g| g.value).collect();
                assert_eq!(
                    &flat[v * widths.len()..(v + 1) * widths.len()],
                    &expect[..],
                    "bits={bits} v={v}"
                );
            }
        }
    }

    #[test]
    fn flat_split_reuses_buffer() {
        let q = Ring::new(8);
        let widths = group_widths(8);
        let mut buf = vec![7u8; 1000];
        split_groups_into(q, &[0x5a, 0xff], &widths, &mut buf);
        assert_eq!(buf.len(), 2 * widths.len());
        assert_eq!(
            join_groups(
                q,
                &buf[..widths.len()]
                    .iter()
                    .zip(&widths)
                    .map(|(&value, &width)| BitGroup { width, value })
                    .collect::<Vec<_>>()
            ),
            0x5a
        );
    }

    #[test]
    fn lexicographic_group_order_matches_numeric_unsigned() {
        // Comparing group vectors MSB-first lexicographically must agree
        // with unsigned comparison — the invariant SCM relies on.
        let q = Ring::new(8);
        for a in (0..256u64).step_by(7) {
            for b in (0..256u64).step_by(11) {
                let ga: Vec<u8> = split_groups(q, a).iter().map(|g| g.value).collect();
                let gb: Vec<u8> = split_groups(q, b).iter().map(|g| g.value).collect();
                assert_eq!(ga.cmp(&gb), a.cmp(&b), "a={a} b={b}");
            }
        }
    }
}
