//! Trusted dealer for offline pre-computation.
//!
//! The paper stores pre-computed triples in the AS-CST buffer and notes that
//! "the multiplication triple can be generated using homomorphic encryption
//! or with oblivious transfer" (Sec. 4.1.2). Offline triple generation is
//! orthogonal to the accelerator design, so this reproduction uses the
//! standard *trusted dealer* model for the offline phase: a
//! [`TripleDealer`] seeded with a shared seed samples the correlated
//! randomness and hands each party its half. The online protocol —
//! everything the paper measures — is unchanged.

use crate::beaver::{ring_hadamard, ring_matmul, TripleShare};
use crate::{AShare, PartyId};
use aq2pnn_ring::{Ring, RingTensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

/// Deterministic trusted dealer producing Beaver triples and other
/// correlated randomness for both parties.
///
/// # Example
///
/// ```
/// use aq2pnn_ring::Ring;
/// use aq2pnn_sharing::{beaver::ring_matmul, dealer::TripleDealer, AShare};
///
/// let mut dealer = TripleDealer::from_seed(7);
/// let q = Ring::new(16);
/// let (t0, t1) = dealer.matmul_triple(q, 2, 3, 4);
/// // Z = A ⊗ B holds across the two parties' shares.
/// let a = AShare::recover(&AShare::from_tensor(t0.a.clone()), &AShare::from_tensor(t1.a.clone()))?;
/// let b = AShare::recover(&AShare::from_tensor(t0.b.clone()), &AShare::from_tensor(t1.b.clone()))?;
/// let z = AShare::recover(&AShare::from_tensor(t0.z.clone()), &AShare::from_tensor(t1.z.clone()))?;
/// assert_eq!(z, ring_matmul(&a, &b)?);
/// # Ok::<(), aq2pnn_ring::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TripleDealer {
    rng: ChaCha20Rng,
}

impl TripleDealer {
    /// Creates a dealer from a 64-bit seed (deterministic, reproducible
    /// across the two parties of an experiment).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TripleDealer { rng: ChaCha20Rng::seed_from_u64(seed) }
    }

    /// Samples a matrix-product triple: `A[m,k]`, `B[k,n]`, `Z = A ⊗ B`,
    /// each additively shared. Returns party 0's and party 1's halves.
    pub fn matmul_triple(
        &mut self,
        ring: Ring,
        m: usize,
        k: usize,
        n: usize,
    ) -> (TripleShare, TripleShare) {
        let a = RingTensor::random(ring, vec![m, k], &mut self.rng);
        let b = RingTensor::random(ring, vec![k, n], &mut self.rng);
        let z = ring_matmul(&a, &b).expect("dealer shapes are consistent");
        self.split(a, b, z)
    }

    /// Samples a *structured* matrix triple where the left mask is stored
    /// compactly and expanded through a public linear map before the
    /// product: `Z = expand(A) ⊗ B`.
    ///
    /// This is how convolution triples stay input-sized: `A` has the shape
    /// of the feature map and `expand` is im2col, so the online `E = IN − A`
    /// exchange costs `|feature map|` elements instead of `k²` times that.
    ///
    /// # Panics
    ///
    /// Panics if `expand(A)`'s shape is incompatible with `B`.
    pub fn expanded_matmul_triple(
        &mut self,
        ring: Ring,
        a_shape: &[usize],
        b_shape: &[usize],
        expand: impl Fn(&RingTensor) -> RingTensor,
    ) -> (TripleShare, TripleShare) {
        let a = RingTensor::random(ring, a_shape.to_vec(), &mut self.rng);
        let b = RingTensor::random(ring, b_shape.to_vec(), &mut self.rng);
        let z = ring_matmul(&expand(&a), &b).expect("expand(A) must be conformable with B");
        self.split(a, b, z)
    }

    /// Creates the two parties' halves of a reusable expanded-triple lane
    /// for one static-shape layer (see [`TripleLane`]). Consumes dealer
    /// stream state, so both parties must call in the same order with the
    /// same arguments.
    pub fn expanded_lane(
        &mut self,
        ring: Ring,
        a_shape: &[usize],
        b_shape: &[usize],
    ) -> (TripleLane, TripleLane) {
        let b = RingTensor::random(ring, b_shape.to_vec(), &mut self.rng);
        let (b0, b1) = AShare::share(&b, &mut self.rng);
        // Lane-local PRG, identical on both halves so the parties advance
        // their per-inference triple streams in lockstep.
        let lane_rng = ChaCha20Rng::seed_from_u64(self.rng.gen::<u64>());
        let lane = |b_share: AShare, party: PartyId| TripleLane {
            ring,
            a_shape: a_shape.to_vec(),
            b_plain: b.clone(),
            b_share: b_share.into_tensor(),
            rng: lane_rng.clone(),
            party,
        };
        (lane(b0, PartyId::User), lane(b1, PartyId::ModelProvider))
    }

    /// Samples an elementwise (Hadamard) triple over `shape`.
    pub fn elementwise_triple(
        &mut self,
        ring: Ring,
        shape: &[usize],
    ) -> (TripleShare, TripleShare) {
        let a = RingTensor::random(ring, shape.to_vec(), &mut self.rng);
        let b = RingTensor::random(ring, shape.to_vec(), &mut self.rng);
        let z = ring_hadamard(&a, &b).expect("dealer shapes are consistent");
        self.split(a, b, z)
    }

    /// Samples a fresh sharing of a *known* plaintext tensor — the dealer
    /// side of idealized functionalities (exact truncation / extension).
    pub fn reshare(&mut self, x: &RingTensor) -> (AShare, AShare) {
        AShare::share(x, &mut self.rng)
    }

    /// Samples shared random bits `(r_i, r_j)` with `r = r_i ⊕ r_j`, plus
    /// the arithmetic sharing of each `r` — "daBits", consumed by
    /// boolean-to-arithmetic conversions.
    pub fn dabits(&mut self, ring: Ring, n: usize) -> (DaBitShare, DaBitShare) {
        use rand::Rng;
        let plain: Vec<u8> = (0..n).map(|_| self.rng.gen::<u8>() & 1).collect();
        let (b0, b1) = crate::BShare::share(&plain, &mut self.rng);
        let arith =
            RingTensor::from_raw(ring, vec![n], plain.iter().map(|&b| u64::from(b)).collect())
                .expect("length matches");
        let (a0, a1) = AShare::share(&arith, &mut self.rng);
        (DaBitShare { boolean: b0, arith: a0 }, DaBitShare { boolean: b1, arith: a1 })
    }

    fn split(&mut self, a: RingTensor, b: RingTensor, z: RingTensor) -> (TripleShare, TripleShare) {
        let (a0, a1) = AShare::share(&a, &mut self.rng);
        let (b0, b1) = AShare::share(&b, &mut self.rng);
        let (z0, z1) = AShare::share(&z, &mut self.rng);
        (
            TripleShare { a: a0.into_tensor(), b: b0.into_tensor(), z: z0.into_tensor() },
            TripleShare { a: a1.into_tensor(), b: b1.into_tensor(), z: z1.into_tensor() },
        )
    }
}

/// One party's half of a reusable per-layer triple stream — the offline
/// material a *prepared* model keeps resident between inferences.
///
/// The weight mask `B` is sampled **once** at lane creation and reused for
/// the lifetime of the lane: it masks a static weight matrix, exactly like
/// the paper's pre-deployed AS-WGT-MSK buffer, so its one-time `F = W − B`
/// opening never has to be repeated. Each call to [`TripleLane::next`]
/// draws a **fresh** input mask `A` and product share of
/// `Z = expand(A) ⊗ B` from a lane-local PRG that both parties advance in
/// lockstep. `A` must be fresh per inference — reusing it would open
/// `E = IN − A` under the same mask twice and leak the difference of two
/// private inputs.
#[derive(Debug, Clone)]
pub struct TripleLane {
    ring: Ring,
    a_shape: Vec<usize>,
    // Dealer-held plaintext B, needed to form Z. Holding it inside the
    // lane keeps the trusted-dealer model of this crate: the dealer state
    // embedded in each party's context already sees all plaintext masks.
    b_plain: RingTensor,
    b_share: RingTensor,
    rng: ChaCha20Rng,
    party: PartyId,
}

impl TripleLane {
    /// The ring the lane's triples live in.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The shape of the compact input mask `A`.
    #[must_use]
    pub fn a_shape(&self) -> &[usize] {
        &self.a_shape
    }

    /// This party's share of the static weight mask `B`, for the one-time
    /// `F = W − B` opening at preparation time.
    #[must_use]
    pub fn b_share(&self) -> &RingTensor {
        &self.b_share
    }

    /// Draws this party's share of the next triple: a fresh `A` and
    /// `Z = expand(A) ⊗ B` against the lane's fixed `B`. Both parties must
    /// call in lockstep with the same (public, linear) `expand`.
    pub fn next(&mut self, expand: impl Fn(&RingTensor) -> RingTensor) -> TripleShare {
        let a = RingTensor::random(self.ring, self.a_shape.clone(), &mut self.rng);
        let z =
            ring_matmul(&expand(&a), &self.b_plain).expect("expand(A) must be conformable with B");
        let (a0, a1) = AShare::share(&a, &mut self.rng);
        let (z0, z1) = AShare::share(&z, &mut self.rng);
        let (a_i, z_i) = match self.party {
            PartyId::User => (a0, z0),
            PartyId::ModelProvider => (a1, z1),
        };
        TripleShare { a: a_i.into_tensor(), b: self.b_share.clone(), z: z_i.into_tensor() }
    }
}

/// One party's share of a batch of daBits: the same random bits shared both
/// as XOR bits and as arithmetic ring elements.
#[derive(Clone)]
pub struct DaBitShare {
    /// XOR sharing of the bits.
    pub boolean: crate::BShare,
    /// Additive sharing of the same bits as `{0,1} ⊂ Z_Q`.
    pub arith: AShare,
}

impl std::fmt::Debug for DaBitShare {
    /// Redacts both component shares; their own `Debug` impls redact too,
    /// so this only prints the batch length.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DaBitShare {{ len: {}, boolean/arith: <redacted> }}", self.arith.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BShare;

    fn rec(a: &TripleShare, b: &TripleShare) -> (RingTensor, RingTensor, RingTensor) {
        let r = |x: &RingTensor, y: &RingTensor| x.add(y).unwrap();
        (r(&a.a, &b.a), r(&a.b, &b.b), r(&a.z, &b.z))
    }

    #[test]
    fn matmul_triple_is_consistent() {
        let mut d = TripleDealer::from_seed(1);
        let q = Ring::new(16);
        let (t0, t1) = d.matmul_triple(q, 3, 5, 2);
        let (a, b, z) = rec(&t0, &t1);
        assert_eq!(z, ring_matmul(&a, &b).unwrap());
        assert_eq!(t0.ring(), q);
    }

    #[test]
    fn elementwise_triple_is_consistent() {
        let mut d = TripleDealer::from_seed(2);
        let q = Ring::new(12);
        let (t0, t1) = d.elementwise_triple(q, &[4, 4]);
        let (a, b, z) = rec(&t0, &t1);
        assert_eq!(z, ring_hadamard(&a, &b).unwrap());
    }

    #[test]
    fn dealer_is_deterministic() {
        let q = Ring::new(16);
        let (x0, _) = TripleDealer::from_seed(9).matmul_triple(q, 2, 2, 2);
        let (y0, _) = TripleDealer::from_seed(9).matmul_triple(q, 2, 2, 2);
        assert_eq!(x0.a, y0.a);
    }

    #[test]
    fn lane_triples_consistent_with_fixed_b_and_fresh_a() {
        let mut d = TripleDealer::from_seed(11);
        let q = Ring::new(16);
        let (mut l0, mut l1) = d.expanded_lane(q, &[3, 4], &[4, 2]);
        let ident = |t: &RingTensor| t.clone();
        let (t0a, t1a) = (l0.next(ident), l1.next(ident));
        let (t0b, t1b) = (l0.next(ident), l1.next(ident));
        for (t0, t1) in [(&t0a, &t1a), (&t0b, &t1b)] {
            let (a, b, z) = rec(t0, t1);
            assert_eq!(z, ring_matmul(&a, &b).unwrap());
        }
        // B is the lane's fixed pre-deployed mask; A must be fresh.
        assert_eq!(t0a.b, t0b.b);
        assert_ne!(rec(&t0a, &t1a).0, rec(&t0b, &t1b).0);
    }

    #[test]
    fn dabits_consistent_across_domains() {
        let mut d = TripleDealer::from_seed(3);
        let q = Ring::new(16);
        let (s0, s1) = d.dabits(q, 32);
        let bits = BShare::recover(&s0.boolean, &s1.boolean);
        let arith = AShare::recover(&s0.arith, &s1.arith).unwrap();
        for (b, a) in bits.iter().zip(arith.to_signed()) {
            assert_eq!(i64::from(*b), a);
        }
    }

    #[test]
    fn reshare_recovers_original() {
        let mut d = TripleDealer::from_seed(4);
        let q = Ring::new(16);
        let x = RingTensor::from_signed(q, vec![3], &[7, -7, 0]).unwrap();
        let (a, b) = d.reshare(&x);
        assert_eq!(AShare::recover(&a, &b).unwrap(), x);
    }
}
