//! Binary (XOR) secret shares.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One party's XOR share of a vector of bits.
///
/// ABReLU's comparison outcome and the `T_m` output mask (paper Fig. 4,
/// OUP-MSK buffer) are bit vectors shared as `b = b_i ⊕ b_j`. Bits are
/// stored one per byte (`0`/`1`) for simplicity; the wire format packs them
/// through `aq2pnn_transport::pack_bits` at 1 bit each.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BShare {
    bits: Vec<u8>,
}

impl std::fmt::Debug for BShare {
    /// Redacts the bit vector: an XOR share still leaks its holder's
    /// masked view. Use [`BShare::fmt_revealed`] to opt into printing it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BShare {{ len: {}, bits: <redacted> }}", self.bits.len())
    }
}

impl BShare {
    /// Debug rendering *including* the share bits — explicit opt-in for
    /// tests and offline debugging.
    #[must_use]
    pub fn fmt_revealed(&self) -> String {
        format!("BShare {{ bits: {:?} }}", self.bits)
    }

    /// Wraps raw bits (each value is reduced mod 2).
    #[must_use]
    pub fn from_bits(bits: Vec<u8>) -> Self {
        BShare { bits: bits.into_iter().map(|b| b & 1).collect() }
    }

    /// Splits plaintext bits into two XOR shares.
    #[must_use]
    pub fn share<R: Rng + ?Sized>(plain: &[u8], rng: &mut R) -> (BShare, BShare) {
        let r: Vec<u8> = (0..plain.len()).map(|_| rng.gen::<u8>() & 1).collect();
        let other = plain.iter().zip(&r).map(|(&p, &ri)| (p & 1) ^ ri).collect();
        (BShare { bits: r }, BShare { bits: other })
    }

    /// Recovers the plaintext bits: `b = b_i ⊕ b_j`.
    ///
    /// # Panics
    ///
    /// Panics if the shares disagree in length.
    #[must_use]
    pub fn recover(a: &BShare, b: &BShare) -> Vec<u8> {
        assert_eq!(a.bits.len(), b.bits.len(), "binary share length mismatch");
        a.bits.iter().zip(&b.bits).map(|(&x, &y)| x ^ y).collect()
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the share is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Read-only view of this party's share bits.
    #[must_use]
    pub fn as_bits(&self) -> &[u8] {
        &self.bits
    }

    /// Local XOR with another share: `⟦x ⊕ y⟧ ← (x_i ⊕ y_i, x_j ⊕ y_j)`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn xor(&self, other: &BShare) -> BShare {
        assert_eq!(self.bits.len(), other.bits.len(), "binary share length mismatch");
        BShare { bits: self.bits.iter().zip(&other.bits).map(|(&x, &y)| x ^ y).collect() }
    }

    /// Local XOR with public bits (applied by one party only, chosen by the
    /// caller).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn xor_plain(&self, plain: &[u8]) -> BShare {
        assert_eq!(self.bits.len(), plain.len(), "length mismatch");
        BShare { bits: self.bits.iter().zip(plain).map(|(&x, &p)| x ^ (p & 1)).collect() }
    }

    /// Local NOT: one party flips its bits (caller applies on exactly one
    /// side).
    #[must_use]
    pub fn not(&self) -> BShare {
        BShare { bits: self.bits.iter().map(|&b| b ^ 1).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_recover_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let plain = [1u8, 0, 1, 1, 0, 0, 1, 0];
        let (a, b) = BShare::share(&plain, &mut rng);
        assert_eq!(BShare::recover(&a, &b), plain.to_vec());
    }

    #[test]
    fn xor_homomorphic() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = [1u8, 1, 0, 0];
        let y = [1u8, 0, 1, 0];
        let (xi, xj) = BShare::share(&x, &mut rng);
        let (yi, yj) = BShare::share(&y, &mut rng);
        let zi = xi.xor(&yi);
        let zj = xj.xor(&yj);
        assert_eq!(BShare::recover(&zi, &zj), vec![0, 1, 1, 0]);
    }

    #[test]
    fn not_on_one_side_flips() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = [1u8, 0];
        let (xi, xj) = BShare::share(&x, &mut rng);
        assert_eq!(BShare::recover(&xi.not(), &xj), vec![0, 1]);
    }

    #[test]
    fn from_bits_reduces() {
        let s = BShare::from_bits(vec![3, 2, 255]);
        assert_eq!(s.as_bits(), &[1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = BShare::from_bits(vec![0, 1]);
        let b = BShare::from_bits(vec![0]);
        let _ = a.xor(&b);
    }
}
