//! Property-based tests for the secret-sharing substrate.

use aq2pnn_ring::{IsaLevel, Ring, RingTensor};
use aq2pnn_sharing::a2b::{group_count, group_widths, join_groups, split_groups};
use aq2pnn_sharing::beaver::{ring_hadamard, ring_matmul, ring_matmul_reference, ring_matmul_with};
use aq2pnn_sharing::dealer::TripleDealer;
use aq2pnn_sharing::kernels::KernelDispatch;
use aq2pnn_sharing::{trunc, AShare, BShare, PartyId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring_strategy() -> impl Strategy<Value = Ring> {
    (2u32..=48).prop_map(Ring::new)
}

proptest! {
    #[test]
    fn share_recover_is_identity(
        ring in ring_strategy(),
        raw in proptest::collection::vec(any::<u64>(), 1..32),
        seed in any::<u64>(),
    ) {
        let vals: Vec<u64> = raw.iter().map(|&x| ring.reduce(x)).collect();
        let t = RingTensor::from_raw(ring, vec![vals.len()], vals).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = AShare::share(&t, &mut rng);
        prop_assert_eq!(AShare::recover(&a, &b).unwrap(), t);
    }

    #[test]
    fn local_ops_commute_with_recovery(
        ring in ring_strategy(),
        raw in proptest::collection::vec(any::<u64>(), 8),
        c in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let vals: Vec<u64> = raw.iter().map(|&x| ring.reduce(x)).collect();
        let t = RingTensor::from_raw(ring, vec![8], vals).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = AShare::share(&t, &mut rng);
        // mul_plain
        let rec = AShare::recover(&a.mul_plain(c), &b.mul_plain(c)).unwrap();
        prop_assert_eq!(rec, t.map(|v| ring.mul(v, c)));
        // neg
        let rec = AShare::recover(&a.neg(), &b.neg()).unwrap();
        prop_assert_eq!(rec, t.map(|v| ring.neg(v)));
        // add_plain on one side only
        let rec = AShare::recover(
            &a.add_plain(PartyId::User, c),
            &b.add_plain(PartyId::ModelProvider, c),
        )
        .unwrap();
        prop_assert_eq!(rec, t.map(|v| ring.add(v, c)));
    }

    #[test]
    fn beaver_triples_always_consistent(
        seed in any::<u64>(),
        bits in 4u32..=48,
        m in 1usize..4,
        k in 1usize..4,
        n in 1usize..4,
    ) {
        let ring = Ring::new(bits);
        let mut d = TripleDealer::from_seed(seed);
        let (t0, t1) = d.matmul_triple(ring, m, k, n);
        let a = t0.a.add(&t1.a).unwrap();
        let b = t0.b.add(&t1.b).unwrap();
        let z = t0.z.add(&t1.z).unwrap();
        prop_assert_eq!(z, ring_matmul(&a, &b).unwrap());
    }

    #[test]
    fn blocked_matmul_matches_scalar_reference(
        bits in 1u32..=64,
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        // The cache-blocked, mask-deferred kernel must be bit-identical to
        // the scalar per-element reference on every ring width — including
        // the full-u64 ring (mask = !0) and degenerate 1-bit rings — and
        // across row counts exercising both the 4-row quad path and the
        // 1–3-row remainder path.
        let ring = Ring::new(bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = RingTensor::random(ring, vec![m, k], &mut rng);
        let b = RingTensor::random(ring, vec![k, n], &mut rng);
        prop_assert_eq!(
            ring_matmul(&a, &b).unwrap(),
            ring_matmul_reference(&a, &b).unwrap()
        );
    }

    #[test]
    fn dispatch_matmul_bit_identical_at_boundary_widths(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        // Every ISA's dispatch table must agree bit-for-bit with the scalar
        // triple-loop reference exactly at the accumulator-width dispatch
        // boundaries: around ℓ = 12 and 16 (u16 path), 20 (u32 path, the
        // widest paper ring), and 32 (u32 → u64 crossover).
        let mut rng = StdRng::seed_from_u64(seed);
        for bits in [11u32, 12, 13, 15, 16, 17, 20, 21, 31, 32, 33] {
            let ring = Ring::new(bits);
            let a = RingTensor::random(ring, vec![m, k], &mut rng);
            let b = RingTensor::random(ring, vec![k, n], &mut rng);
            let want = ring_matmul_reference(&a, &b).unwrap();
            for isa in IsaLevel::available() {
                let d = KernelDispatch::for_isa(isa);
                prop_assert_eq!(
                    &ring_matmul_with(&d, &a, &b).unwrap(),
                    &want,
                    "isa={} bits={}", isa, bits
                );
            }
        }
    }

    #[test]
    fn elementwise_triples_always_consistent(seed in any::<u64>(), bits in 4u32..=48) {
        let ring = Ring::new(bits);
        let mut d = TripleDealer::from_seed(seed);
        let (t0, t1) = d.elementwise_triple(ring, &[5]);
        let a = t0.a.add(&t1.a).unwrap();
        let b = t0.b.add(&t1.b).unwrap();
        let z = t0.z.add(&t1.z).unwrap();
        prop_assert_eq!(z, ring_hadamard(&a, &b).unwrap());
    }

    #[test]
    fn a2b_roundtrip_and_counts(bits in 2u32..=48, raw in any::<u64>()) {
        let ring = Ring::new(bits);
        let x = ring.reduce(raw);
        let groups = split_groups(ring, x);
        prop_assert_eq!(groups.len(), group_count(bits));
        prop_assert_eq!(join_groups(ring, &groups), x);
        let widths = group_widths(bits);
        prop_assert_eq!(widths.iter().sum::<u32>(), bits);
        prop_assert!(widths[0] == 1 && widths[1] == 1);
        for (g, w) in groups.iter().zip(&widths) {
            prop_assert!(u32::from(g.value) < (1 << w));
        }
    }

    #[test]
    fn group_lexicographic_equals_unsigned_order(
        bits in 2u32..=24,
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let ring = Ring::new(bits);
        let (x, y) = (ring.reduce(x), ring.reduce(y));
        let gx: Vec<u8> = split_groups(ring, x).iter().map(|g| g.value).collect();
        let gy: Vec<u8> = split_groups(ring, y).iter().map(|g| g.value).collect();
        prop_assert_eq!(gx.cmp(&gy), x.cmp(&y));
    }

    #[test]
    fn bshare_roundtrip(bits in proptest::collection::vec(0u8..2, 1..64), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = BShare::share(&bits, &mut rng);
        prop_assert_eq!(BShare::recover(&a, &b), bits);
    }

    #[test]
    fn local_truncation_error_bounded_for_small_secrets(
        v in -(1i64 << 18)..(1i64 << 18),
        s in 0u32..10,
        seed in any::<u64>(),
    ) {
        // On a 40-bit ring the wrap probability for an 18-bit secret is
        // ≈2^-22 — effectively never under proptest case counts.
        let ring = Ring::new(40);
        let t = RingTensor::from_signed(ring, vec![1], &[v]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = AShare::share(&t, &mut rng);
        let ta = trunc::truncate_share_local(PartyId::User, &a, s);
        let tb = trunc::truncate_share_local(PartyId::ModelProvider, &b, s);
        let rec = AShare::recover(&ta, &tb).unwrap().to_signed()[0];
        prop_assert!((rec - (v >> s)).abs() <= 1, "v={v} s={s} rec={rec}");
    }

    #[test]
    fn dabits_always_consistent(seed in any::<u64>(), bits in 4u32..=32) {
        let ring = Ring::new(bits);
        let mut d = TripleDealer::from_seed(seed);
        let (s0, s1) = d.dabits(ring, 16);
        let plain_bits = BShare::recover(&s0.boolean, &s1.boolean);
        let arith = AShare::recover(&s0.arith, &s1.arith).unwrap();
        for (b, a) in plain_bits.iter().zip(arith.to_signed()) {
            prop_assert_eq!(i64::from(*b), a);
        }
    }
}
