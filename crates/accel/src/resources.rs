//! Bottom-up FPGA resource model (paper Table 3).

use crate::hw::HwConfig;
use serde::{Deserialize, Serialize};
use std::ops::Add;

/// FPGA resource vector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP48 slices.
    pub dsp: u64,
    /// 36 Kb block RAMs (halves allowed).
    pub bram: f64,
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            dsp: self.dsp + o.dsp,
            bram: self.bram + o.bram,
        }
    }
}

/// Per-C-C-multiplication-unit cost (paper Fig. 2(b)): three ring
/// multipliers (2 DSP each at 16×16) plus the adder tree and the party
/// index mux.
const CCMU: Resources = Resources { lut: 180, ff: 320, dsp: 6, bram: 0.0 };

/// The AS-GEMM array: `block_in × block_out` C-C MUs plus row/column
/// broadcast and accumulation.
#[must_use]
pub fn gemm_array(hw: &HwConfig) -> Resources {
    let units = (hw.block_in * hw.block_out) as u64;
    Resources { lut: units * CCMU.lut, ff: units * CCMU.ff, dsp: units * CCMU.dsp, bram: 0.0 }
}

/// The AS-ALU: add / shift / clip lanes.
#[must_use]
pub fn as_alu(hw: &HwConfig) -> Resources {
    Resources { lut: hw.alu_lanes * 1000, ff: hw.alu_lanes * 1875, dsp: 0, bram: 0.0 }
}

/// Sec-COMM module: A2BM bit-slicers, SCM comparison matrix logic and the
/// OT-flow's LUT exponentiation pipelines.
#[must_use]
pub fn sec_comm(_hw: &HwConfig) -> Resources {
    Resources { lut: 38_000, ff: 60_000, dsp: 0, bram: 64.0 }
}

/// On-chip buffers: AS-INP/WGT + the mask buffers, AS-CST, AS-OUP,
/// BS-INP/OUP and OUT-MSK (paper Table 1 / Fig. 1).
#[must_use]
pub fn buffers(_hw: &HwConfig) -> Resources {
    Resources { lut: 4_000, ff: 6_000, dsp: 0, bram: 214.0 }
}

/// LOAD/STORE engines, the instruction queue, and NIC/DRAM interfacing.
#[must_use]
pub fn load_store_control(_hw: &HwConfig) -> Resources {
    Resources { lut: 16_000, ff: 29_000, dsp: 0, bram: 32.0 }
}

/// Total per-party AQ2PNN accelerator resources.
#[must_use]
pub fn aq2pnn_total(hw: &HwConfig) -> Resources {
    gemm_array(hw) + as_alu(hw) + sec_comm(hw) + buffers(hw) + load_store_control(hw)
}

/// The VTA plaintext-DNN baseline reported in paper Table 3.
#[must_use]
pub fn vta_baseline() -> Resources {
    Resources { lut: 24_200, ff: 26_800, dsp: 268, bram: 136.5 }
}

/// Paper Table 3's AQ2PNN-per-party reference values, for cross-checks.
#[must_use]
pub fn paper_reference() -> Resources {
    Resources { lut: 120_000, ff: 207_000, dsp: 1_536, bram: 310.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_table3() {
        let hw = HwConfig::zcu104();
        let total = aq2pnn_total(&hw);
        let paper = paper_reference();
        let close = |a: f64, b: f64| (a - b).abs() / b < 0.02;
        assert!(close(total.lut as f64, paper.lut as f64), "LUT {}", total.lut);
        assert!(close(total.ff as f64, paper.ff as f64), "FF {}", total.ff);
        assert_eq!(total.dsp, paper.dsp);
        assert!(close(total.bram, paper.bram), "BRAM {}", total.bram);
    }

    #[test]
    fn aq2pnn_dwarfs_vta() {
        // Table 3's headline: the 2PC datapath costs ~5x the plaintext VTA.
        let total = aq2pnn_total(&HwConfig::zcu104());
        let vta = vta_baseline();
        assert!(total.lut > 4 * vta.lut);
        assert!(total.dsp > 5 * vta.dsp);
    }

    #[test]
    fn dsp_count_tracks_array_size() {
        let mut hw = HwConfig::zcu104();
        hw.block_in = 8;
        hw.block_out = 8;
        assert_eq!(gemm_array(&hw).dsp, 64 * 6);
    }

    #[test]
    fn resources_add() {
        let a = Resources { lut: 1, ff: 2, dsp: 3, bram: 4.0 };
        let b = a + a;
        assert_eq!(b.lut, 2);
        assert_eq!(b.bram, 8.0);
    }
}
