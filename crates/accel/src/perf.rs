//! End-to-end performance estimation from compiled programs.

use crate::hw::{HwConfig, Overlap};
use crate::power::{party_watts, utilization_for_macs};
use crate::resources::aq2pnn_total;
use aq2pnn::instq::{Instr, Program};
use serde::{Deserialize, Serialize};

/// Performance estimate for one inference of one program — a Table 4 row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Fabric compute time (s), both pipelines.
    pub compute_s: f64,
    /// Link time (s): online bytes + per-message latency.
    pub comm_s: f64,
    /// End-to-end latency per inference (s), per the overlap policy.
    pub latency_s: f64,
    /// Throughput at batch 1.
    pub fps: f64,
    /// Online communication (both directions), MiB.
    pub comm_mib: f64,
    /// Per-party board power (W).
    pub party_watts: f64,
    /// Energy efficiency fps / (2 × party W) — the paper's metric.
    pub efficiency: f64,
}

/// Fabric cycles for one instruction.
#[must_use]
pub fn instr_cycles(instr: &Instr, hw: &HwConfig) -> u64 {
    match instr {
        Instr::LoadWeights { elems, bits } => {
            let bytes = elems * u64::from(*bits).div_ceil(8);
            bytes.div_ceil(hw.dram_bytes_per_cycle)
        }
        Instr::Gemm { m, k, n } => {
            // II = 1 per output row per (block_in, block_out) tile; the
            // three ring products of Eq. 1 pipeline through the same array.
            let tiles = k.div_ceil(hw.block_in as u64) * n.div_ceil(hw.block_out as u64);
            m * tiles
        }
        Instr::Alu { elems, .. } => elems.div_ceil(hw.alu_lanes),
        Instr::Compare { values, groups, slots } => {
            // Per value: encrypt `slots` codes (table lookup + XOR) and run
            // `groups` LUT exponentiations.
            values * (slots * hw.cycles_per_ot_slot + u64::from(*groups) * hw.cycles_per_modexp)
        }
        Instr::Exchange { .. } => 0,
    }
}

/// Estimates one inference of `program` on `hw`.
#[must_use]
pub fn estimate(program: &Program, hw: &HwConfig) -> PerfReport {
    let cycles: u64 = program.instrs.iter().map(|i| instr_cycles(i, hw)).sum();
    let compute_s = cycles as f64 / hw.clock_hz;

    // Online traffic only (the offline weight-mask opening is pre-deployed).
    let online_bytes = program.online_total_bytes();
    let msgs = program.online_messages();
    // Full-duplex link: each direction carries roughly half the bytes; the
    // message latency is paid per round (≈ per message in our schedule).
    let comm_s = hw.network.transfer_seconds(online_bytes / 2, msgs / 2);

    let latency_s = match hw.overlap {
        Overlap::Full => compute_s.max(comm_s),
        Overlap::None => compute_s + comm_s,
    };
    let fps = 1.0 / latency_s;
    let watts = party_watts(&aq2pnn_total(hw), utilization_for_macs(program.gemm_macs()));
    PerfReport {
        compute_s,
        comm_s,
        latency_s,
        fps,
        comm_mib: online_bytes as f64 / (1024.0 * 1024.0),
        party_watts: watts,
        efficiency: fps / (2.0 * watts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn::instq::compile_spec;
    use aq2pnn::ProtocolConfig;
    use aq2pnn_nn::zoo;

    fn report(spec: &aq2pnn_nn::spec::ModelSpec, bits: u32) -> PerfReport {
        let cfg = ProtocolConfig::paper(bits);
        let p = compile_spec(spec, &cfg).expect("spec compiles");
        estimate(&p, &HwConfig::zcu104())
    }

    #[test]
    fn lenet_throughput_near_paper() {
        // Paper Table 4: LeNet5 at 16.68 fps. The network calibration
        // targets this row; accept a 2x band.
        let r = report(&zoo::lenet5(), 16);
        assert!((8.0..34.0).contains(&r.fps), "LeNet5 fps {}", r.fps);
    }

    #[test]
    fn model_size_orders_throughput() {
        let lenet = report(&zoo::lenet5(), 16);
        let alex = report(&zoo::alexnet_mnist(), 16);
        let vgg_c = report(&zoo::vgg16_cifar(), 16);
        let rn50 = report(&zoo::resnet50_imagenet(), 16);
        let vgg_i = report(&zoo::vgg16_imagenet(), 16);
        assert!(lenet.fps > alex.fps, "{} vs {}", lenet.fps, alex.fps);
        assert!(alex.fps > vgg_c.fps);
        assert!(vgg_c.fps > rn50.fps);
        assert!(rn50.fps > vgg_i.fps, "ResNet50 {} vs VGG16-IN {}", rn50.fps, vgg_i.fps);
    }

    #[test]
    fn efficiency_uses_both_parties() {
        let r = report(&zoo::lenet5(), 16);
        assert!((r.efficiency - r.fps / (2.0 * r.party_watts)).abs() < 1e-12);
        assert!((7.0..8.0).contains(&r.party_watts));
    }

    #[test]
    fn narrower_rings_run_faster() {
        let wide = report(&zoo::resnet18_imagenet(), 32);
        let narrow = report(&zoo::resnet18_imagenet(), 16);
        assert!(narrow.latency_s < wide.latency_s);
        assert!(narrow.comm_mib < wide.comm_mib);
    }

    #[test]
    fn ideal_link_leaves_compute_only() {
        let cfg = ProtocolConfig::paper(16);
        let p = compile_spec(&zoo::lenet5(), &cfg).unwrap();
        let hw = HwConfig::zcu104().zcu104_ideal_link();
        let r = estimate(&p, &hw);
        assert!((r.latency_s - r.compute_s).abs() < 1e-12);
    }

    #[test]
    fn gemm_cycles_tile_formula() {
        let hw = HwConfig::zcu104();
        let c = instr_cycles(&Instr::Gemm { m: 100, k: 32, n: 32 }, &hw);
        assert_eq!(c, 100 * 2 * 2);
    }
}
