//! Cycle-approximate simulator of the AQ2PNN FPGA accelerator.
//!
//! The paper deploys two ZCU104 boards (200 MHz fabric, 1000 Mbps LAN)
//! and reports throughput, communication, power and energy efficiency
//! (Tables 3–5). Real boards are not available to this reproduction, so
//! this crate models the accelerator from first principles:
//!
//! * [`hw`] — the hardware configuration: AS-GEMM array geometry
//!   (`BLOCK_IN × BLOCK_OUT` at initiation interval 1, paper Fig. 2),
//!   AS-ALU lanes, SCM throughput, DRAM bandwidth, clock.
//! * [`resources`] — a bottom-up LUT/FF/DSP/BRAM model composed per
//!   module, calibrated so the totals land on the paper's Table 3, plus
//!   the VTA plaintext baseline for the same table.
//! * [`power`] — a resource-utilization power model reproducing the
//!   7.2–7.7 W per-party envelope of Table 4.
//! * [`perf`] — executes a compiled [`aq2pnn::instq::Program`] through
//!   the cycle model and the network model, yielding fps / MiB / W /
//!   fps-per-W — one [`perf::PerfReport`] per Table 4 row.
//!
//! Absolute seconds depend on implementation constants the paper does not
//! publish (per-message software latency on the ARM cores dominates); the
//! defaults are calibrated on the paper's LeNet5 row and documented in
//! EXPERIMENTS.md. Orderings and scaling trends are model-driven.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hw;
pub mod perf;
pub mod power;
pub mod resources;
