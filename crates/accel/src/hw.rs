//! Hardware configuration of the simulated accelerator.

use aq2pnn_transport::NetworkModel;
use serde::{Deserialize, Serialize};

/// How compute and communication interleave when estimating latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Overlap {
    /// Compute and transfer fully overlap (the paper's "continuous
    /// transmission and computation", Sec. 6.4): latency = max(…).
    Full,
    /// Strictly serialized: latency = sum(…). Conservative bound.
    None,
}

/// The simulated accelerator's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Fabric clock in Hz (ZCU104 design: 200 MHz).
    pub clock_hz: f64,
    /// AS-GEMM array input-channel parallelism.
    pub block_in: usize,
    /// AS-GEMM array output-channel parallelism.
    pub block_out: usize,
    /// AS-ALU lanes (elements per cycle).
    pub alu_lanes: u64,
    /// SCM cycles to process one OT slot (table lookup + XOR).
    pub cycles_per_ot_slot: u64,
    /// Cycles per modular exponentiation (LUT-backed, pipelined).
    pub cycles_per_modexp: u64,
    /// DRAM bytes streamed per cycle (LOAD/STORE modules).
    pub dram_bytes_per_cycle: u64,
    /// Compute/communication overlap policy.
    pub overlap: Overlap,
    /// The party-to-party link.
    pub network: NetworkModel,
}

impl HwConfig {
    /// The paper's platform: two ZCU104 boards at 200 MHz, a 16×16
    /// AS-GEMM array (1536 DSPs ≈ 256 C-C multiplication units), and the
    /// 1000 Mbps LAN modeled at its *effective* goodput.
    ///
    /// Calibration (documented in EXPERIMENTS.md): the paper's large-model
    /// throughputs are communication-bound and consistent with ≈250 Mbps
    /// effective transfer (e.g. Table 7's ResNet18 @16-bit: 246 MiB at
    /// 0.243 fps ⇒ ≈250 Mbps one-way) — the realistic TCP goodput of the
    /// PS-side Ethernet once the ARM cores do protocol processing. The
    /// ≈1.3 ms per-message latency is calibrated on the LeNet5 row.
    #[must_use]
    pub fn zcu104() -> Self {
        HwConfig {
            clock_hz: 200e6,
            block_in: 16,
            block_out: 16,
            alu_lanes: 16,
            cycles_per_ot_slot: 1,
            cycles_per_modexp: 4,
            dram_bytes_per_cycle: 16,
            overlap: Overlap::Full,
            network: NetworkModel {
                bandwidth_bps: 250_000_000.0,
                latency_s: 1.3e-3,
                per_message_overhead_bytes: 66,
            },
        }
    }

    /// An idealized variant with a zero-latency link — isolates fabric
    /// compute time in ablations.
    #[must_use]
    pub fn zcu104_ideal_link(mut self) -> Self {
        self.network = NetworkModel::ideal();
        self
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        Self::zcu104()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu104_defaults() {
        let hw = HwConfig::zcu104();
        assert_eq!(hw.clock_hz, 200e6);
        assert_eq!(hw.block_in * hw.block_out, 256);
        assert_eq!(hw.overlap, Overlap::Full);
    }

    #[test]
    fn ideal_link_zeroes_network() {
        let hw = HwConfig::zcu104().zcu104_ideal_link();
        assert_eq!(hw.network.transfer_seconds(1 << 30, 100), 0.0);
    }
}
