//! Board power model (paper Table 4's 7.2–7.7 W per party).

use crate::resources::Resources;

/// Static board power: PS (ARM cores), DRAM, clocking, NIC — drawn
/// regardless of fabric activity.
pub const BOARD_STATIC_W: f64 = 3.0;

/// Dynamic per-resource coefficients at 200 MHz, full toggle.
const W_PER_DSP: f64 = 1.5e-3;
const W_PER_BRAM: f64 = 3.0e-3;
const W_PER_LUT: f64 = 8.0e-6;
const W_PER_FF: f64 = 2.0e-6;

/// Per-party board power for the given resources at a fabric utilization
/// in `[0, 1]`.
///
/// # Panics
///
/// Panics if `utilization` is outside `[0, 1]`.
#[must_use]
pub fn party_watts(res: &Resources, utilization: f64) -> f64 {
    assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0,1]");
    let dynamic = res.dsp as f64 * W_PER_DSP
        + res.bram * W_PER_BRAM
        + res.lut as f64 * W_PER_LUT
        + res.ff as f64 * W_PER_FF;
    BOARD_STATIC_W + dynamic * utilization
}

/// Utilization heuristic from the compute intensity of a model: small
/// models leave the array partially idle; ImageNet-scale models keep it
/// hot. Maps GEMM MAC counts onto `[0.91, 1.0]` logarithmically —
/// bracketing the paper's measured 7.2 W (LeNet5) … 7.7 W (VGG16) span.
#[must_use]
pub fn utilization_for_macs(macs: u64) -> f64 {
    let lg = (macs.max(1) as f64).log10();
    (0.91 + 0.0225 * (lg - 6.0).clamp(0.0, 4.0)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::HwConfig;
    use crate::resources::aq2pnn_total;

    #[test]
    fn full_utilization_lands_in_paper_envelope() {
        let res = aq2pnn_total(&HwConfig::zcu104());
        let w = party_watts(&res, 1.0);
        assert!((7.0..8.0).contains(&w), "full-util power {w} W");
    }

    #[test]
    fn small_models_draw_less() {
        let res = aq2pnn_total(&HwConfig::zcu104());
        let small = party_watts(&res, utilization_for_macs(500_000));
        let big = party_watts(&res, utilization_for_macs(5_000_000_000));
        assert!(small < big);
        assert!((7.0..8.0).contains(&small), "{small}");
        assert!((7.0..8.0).contains(&big), "{big}");
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let res = aq2pnn_total(&HwConfig::zcu104());
        let _ = party_watts(&res, 1.5);
    }
}
