//! Property-based tests for ring arithmetic invariants.

use aq2pnn_ring::{extend, Ring, RingTensor};
use proptest::prelude::*;

fn arb_ring() -> impl Strategy<Value = Ring> {
    (1u32..=64).prop_map(Ring::new)
}

fn ring_and_elems(n: usize) -> impl Strategy<Value = (Ring, Vec<u64>)> {
    arb_ring().prop_flat_map(move |r| {
        (Just(r), proptest::collection::vec(any::<u64>().prop_map(move |x| r.reduce(x)), n))
    })
}

proptest! {
    #[test]
    fn add_commutative((r, v) in ring_and_elems(2)) {
        prop_assert_eq!(r.add(v[0], v[1]), r.add(v[1], v[0]));
    }

    #[test]
    fn add_associative((r, v) in ring_and_elems(3)) {
        prop_assert_eq!(r.add(r.add(v[0], v[1]), v[2]), r.add(v[0], r.add(v[1], v[2])));
    }

    #[test]
    fn additive_inverse((r, v) in ring_and_elems(1)) {
        prop_assert_eq!(r.add(v[0], r.neg(v[0])), 0);
    }

    #[test]
    fn sub_is_add_neg((r, v) in ring_and_elems(2)) {
        prop_assert_eq!(r.sub(v[0], v[1]), r.add(v[0], r.neg(v[1])));
    }

    #[test]
    fn mul_distributes((r, v) in ring_and_elems(3)) {
        prop_assert_eq!(
            r.mul(v[0], r.add(v[1], v[2])),
            r.add(r.mul(v[0], v[1]), r.mul(v[0], v[2]))
        );
    }

    #[test]
    fn mul_commutative((r, v) in ring_and_elems(2)) {
        prop_assert_eq!(r.mul(v[0], v[1]), r.mul(v[1], v[0]));
    }

    #[test]
    fn signed_codec_roundtrip((r, v) in ring_and_elems(1)) {
        let x = v[0];
        prop_assert_eq!(r.encode_signed_wrapping(r.decode_signed(x)), x);
    }

    #[test]
    fn decode_range((r, v) in ring_and_elems(1)) {
        let d = r.decode_signed(v[0]);
        prop_assert!(d >= r.min_signed() && d <= r.max_signed());
    }

    #[test]
    fn msb_iff_negative((r, v) in ring_and_elems(1)) {
        prop_assert_eq!(r.msb(v[0]), r.decode_signed(v[0]) < 0);
    }

    #[test]
    fn pow_adds_exponents(r in (1u32..=32).prop_map(Ring::new), a in any::<u64>(), e1 in 0u64..64, e2 in 0u64..64) {
        let a = r.reduce(a);
        prop_assert_eq!(r.pow(a, e1 + e2), r.mul(r.pow(a, e1), r.pow(a, e2)));
    }

    #[test]
    fn share_recovery((r, v) in ring_and_elems(2)) {
        // [x] <- (r, x - r); rec = (x_i + x_j) mod Q
        let (x, rand) = (v[0], v[1]);
        let (xi, xj) = (rand, r.sub(x, rand));
        prop_assert_eq!(r.add(xi, xj), x);
    }

    #[test]
    fn sign_extension_roundtrip(
        from_bits in 2u32..=32,
        extra in 1u32..=16,
        raw in any::<u64>(),
    ) {
        let from = Ring::new(from_bits);
        let to = Ring::new((from_bits + extra).min(64));
        let x = from.reduce(raw);
        let wide = extend::sign_extend(from, to, x);
        prop_assert_eq!(to.decode_signed(wide), from.decode_signed(x));
        // Narrowing back is the inverse.
        prop_assert_eq!(extend::sign_extend(to, from, wide), x);
    }

    #[test]
    fn local_share_extension_failure_matches_predicate(
        bits in 3u32..=16,
        secret_raw in any::<u64>(),
        share_raw in any::<u64>(),
    ) {
        let q1 = Ring::new(bits);
        let q2 = Ring::new(bits + 8);
        let x = q1.reduce(secret_raw);
        let xi = q1.reduce(share_raw);
        let xj = q1.sub(x, xi);
        let wide = q2.add(
            extend::sign_extend(q1, q2, xi),
            extend::sign_extend(q1, q2, xj),
        );
        let exact = q2.decode_signed(wide) == q1.decode_signed(x);
        prop_assert_eq!(exact, extend::local_extension_is_exact(q1, xi, xj));
    }

    #[test]
    fn tensor_add_matches_scalar((r, v) in ring_and_elems(8)) {
        let a = RingTensor::from_raw(r, vec![4], v[..4].to_vec()).unwrap();
        let b = RingTensor::from_raw(r, vec![4], v[4..].to_vec()).unwrap();
        let sum = a.add(&b).unwrap();
        for i in 0..4 {
            prop_assert_eq!(sum.get(i), r.add(a.get(i), b.get(i)));
        }
    }

    #[test]
    fn shr_arithmetic_is_floor_div(
        bits in 2u32..=32,
        raw in any::<u64>(),
        s in 0u32..8,
    ) {
        let r = Ring::new(bits);
        let x = r.reduce(raw);
        let v = r.decode_signed(x);
        let expect = (v as f64 / (1u64 << s) as f64).floor() as i64;
        prop_assert_eq!(r.decode_signed(r.shr_arithmetic(x, s)), expect);
    }
}
