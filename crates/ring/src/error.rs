//! Error types for ring and tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or using a [`crate::Ring`] with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The requested bit-length is outside `1..=64`.
    InvalidBits(u32),
    /// A value does not fit in the signed range of the ring.
    SignedOutOfRange {
        /// The offending signed value.
        value: i64,
        /// Bit-length of the ring that rejected it.
        bits: u32,
    },
    /// Two operands come from rings of different widths.
    WidthMismatch {
        /// Bit-length of the left-hand operand's ring.
        lhs: u32,
        /// Bit-length of the right-hand operand's ring.
        rhs: u32,
    },
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::InvalidBits(bits) => {
                write!(f, "ring bit-length must be in 1..=64, got {bits}")
            }
            RingError::SignedOutOfRange { value, bits } => {
                write!(f, "signed value {value} does not fit in {bits}-bit two's complement")
            }
            RingError::WidthMismatch { lhs, rhs } => {
                write!(f, "ring width mismatch: {lhs}-bit vs {rhs}-bit")
            }
        }
    }
}

impl Error for RingError {}

/// Error produced by shape-sensitive [`crate::RingTensor`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The element count implied by the shape differs from the data length.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand tensor.
        lhs: Vec<usize>,
        /// Shape of the right-hand tensor.
        rhs: Vec<usize>,
    },
    /// An index addressed a position outside the tensor.
    IndexOutOfBounds {
        /// The flat index that was requested.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::LengthMismatch { expected, actual } => {
                write!(f, "shape implies {expected} elements but {actual} were supplied")
            }
            ShapeError::ShapeMismatch { lhs, rhs } => {
                write!(f, "tensor shapes differ: {lhs:?} vs {rhs:?}")
            }
            ShapeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of {len} elements")
            }
        }
    }
}

impl Error for ShapeError {}
