//! Shaped containers of ring elements.

use crate::{Ring, ShapeError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A shaped tensor of elements of one [`Ring`].
///
/// `RingTensor` is the unit of data held in the accelerator's buffers
/// (AS-INP, AS-WGT, AS-OUP, …) and moved between parties. It is
/// deliberately simple: row-major storage, explicit shape, elementwise
/// helpers. The heavy lifting (GEMM, convolution lowering) lives in the
/// protocol crate.
///
/// # Example
///
/// ```
/// use aq2pnn_ring::{Ring, RingTensor};
///
/// let q = Ring::new(8);
/// let t = RingTensor::from_signed(q, vec![2, 2], &[1, -2, 3, -4])?;
/// let doubled = t.map(|x| q.mul(x, 2));
/// assert_eq!(doubled.to_signed(), vec![2, -4, 6, -8]);
/// # Ok::<(), aq2pnn_ring::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingTensor {
    ring: Ring,
    shape: Vec<usize>,
    data: Vec<u64>,
}

impl RingTensor {
    /// Creates a tensor from raw ring elements.
    ///
    /// Values are reduced into the ring, so any `u64` data is accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_raw(ring: Ring, shape: Vec<usize>, data: Vec<u64>) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError::LengthMismatch { expected, actual: data.len() });
        }
        let data = data.into_iter().map(|x| ring.reduce(x)).collect();
        Ok(RingTensor { ring, shape, data })
    }

    /// Creates a tensor by two's-complement-encoding signed values.
    ///
    /// Values outside the signed range wrap (hardware overflow semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] if `values.len()` differs from
    /// the product of `shape`.
    pub fn from_signed(ring: Ring, shape: Vec<usize>, values: &[i64]) -> Result<Self, ShapeError> {
        let data = values.iter().map(|&v| ring.encode_signed_wrapping(v)).collect();
        Self::from_raw(ring, shape, data)
    }

    /// Creates an all-zero tensor.
    #[must_use]
    pub fn zeros(ring: Ring, shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        RingTensor { ring, shape, data: vec![0; len] }
    }

    /// Creates a tensor of uniformly random ring elements — the mask /
    /// share-randomness generator.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(ring: Ring, shape: Vec<usize>, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| ring.sample(rng)).collect();
        RingTensor { ring, shape, data }
    }

    /// The ring the elements live in.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The tensor shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw element slice (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.data
    }

    /// Mutable raw element slice (row-major). Callers must keep elements
    /// reduced; use [`Ring::reduce`] after arbitrary writes.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its raw storage.
    #[must_use]
    pub fn into_raw(self) -> Vec<u64> {
        self.data
    }

    /// Element at flat index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.data[i]
    }

    /// Sets element at flat index `i` (reduced into the ring).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, v: u64) {
        self.data[i] = self.ring.reduce(v);
    }

    /// Decodes every element to its signed interpretation.
    #[must_use]
    pub fn to_signed(&self) -> Vec<i64> {
        self.data.iter().map(|&x| self.ring.decode_signed(x)).collect()
    }

    /// Applies `f` elementwise, producing a tensor on the same ring.
    #[must_use]
    pub fn map<F: FnMut(u64) -> u64>(&self, mut f: F) -> Self {
        let data = self.data.iter().map(|&x| self.ring.reduce(f(x))).collect();
        RingTensor { ring: self.ring, shape: self.shape.clone(), data }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
    pub fn zip_with<F: FnMut(u64, u64) -> u64>(
        &self,
        other: &Self,
        mut f: F,
    ) -> Result<Self, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let data =
            self.data.iter().zip(&other.data).map(|(&a, &b)| self.ring.reduce(f(a, b))).collect();
        Ok(RingTensor { ring: self.ring, shape: self.shape.clone(), data })
    }

    /// Elementwise ring addition (the AS-ALU C-C addition applied to whole
    /// buffers).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, ShapeError> {
        let ring = self.ring;
        self.zip_with(other, |a, b| ring.add(a, b))
    }

    /// Elementwise ring subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, ShapeError> {
        let ring = self.ring;
        self.zip_with(other, |a, b| ring.sub(a, b))
    }

    /// Moves the tensor to another ring by reinterpreting each element with
    /// local sign extension / truncation of the two's-complement value.
    ///
    /// Extension uses the paper's sign-extension (see [`crate::extend`] for
    /// its probabilistic behaviour on *shares*; on plaintext it is exact as
    /// long as values fit). Narrowing simply wraps.
    #[must_use]
    pub fn recast(&self, target: Ring) -> Self {
        let data =
            self.data.iter().map(|&x| crate::extend::sign_extend(self.ring, target, x)).collect();
        RingTensor { ring: target, shape: self.shape.clone(), data }
    }

    /// Reshapes in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] if the new shape's element
    /// count differs.
    pub fn reshape(&mut self, shape: Vec<usize>) -> Result<(), ShapeError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(ShapeError::LengthMismatch { expected, actual: self.data.len() });
        }
        self.shape = shape;
        Ok(())
    }

    /// Iterates over raw elements.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring8() -> Ring {
        Ring::new(8)
    }

    #[test]
    fn from_raw_validates_len() {
        let err = RingTensor::from_raw(ring8(), vec![2, 3], vec![0; 5]).unwrap_err();
        assert_eq!(err, ShapeError::LengthMismatch { expected: 6, actual: 5 });
    }

    #[test]
    fn from_raw_reduces() {
        let t = RingTensor::from_raw(ring8(), vec![2], vec![0x1ff, 0x100]).unwrap();
        assert_eq!(t.as_slice(), &[0xff, 0x00]);
    }

    #[test]
    fn signed_roundtrip() {
        let t = RingTensor::from_signed(ring8(), vec![4], &[-128, -1, 0, 127]).unwrap();
        assert_eq!(t.to_signed(), vec![-128, -1, 0, 127]);
    }

    #[test]
    fn add_sub_inverse() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = RingTensor::random(ring8(), vec![3, 3], &mut rng);
        let b = RingTensor::random(ring8(), vec![3, 3], &mut rng);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.sub(&b).unwrap(), a);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = RingTensor::zeros(ring8(), vec![2, 2]);
        let b = RingTensor::zeros(ring8(), vec![4]);
        assert!(matches!(a.add(&b), Err(ShapeError::ShapeMismatch { .. })));
    }

    #[test]
    fn recast_widens_signed_values() {
        let q12 = Ring::new(12);
        let q16 = Ring::new(16);
        let t = RingTensor::from_signed(q12, vec![3], &[-147, 0, 2000]).unwrap();
        let wide = t.recast(q16);
        assert_eq!(wide.ring(), q16);
        assert_eq!(wide.to_signed(), vec![-147, 0, 2000]);
    }

    #[test]
    fn recast_narrow_wraps() {
        let q16 = Ring::new(16);
        let q8 = Ring::new(8);
        let t = RingTensor::from_signed(q16, vec![1], &[300]).unwrap();
        // 300 mod 256 = 44
        assert_eq!(t.recast(q8).to_signed(), vec![44]);
    }

    #[test]
    fn reshape_checks_len() {
        let mut t = RingTensor::zeros(ring8(), vec![2, 3]);
        assert!(t.reshape(vec![3, 2]).is_ok());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn paper_fig8_ring_extension_example() {
        // Fig. 8: 12-bit 1111_0110_1101 becomes 16-bit 1111_1111_0110_1101.
        let q12 = Ring::new(12);
        let q16 = Ring::new(16);
        let t = RingTensor::from_raw(q12, vec![1], vec![0b1111_0110_1101]).unwrap();
        assert_eq!(t.recast(q16).get(0), 0b1111_1111_0110_1101);
    }
}
