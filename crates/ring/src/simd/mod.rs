//! Width- and ISA-specialized kernel primitives.
//!
//! This module is the primitive layer under the workspace's runtime
//! kernel dispatch (ROADMAP item 5): small, monomorphic functions —
//! GEMM multiply-accumulate rows, wire-format group packers, A2BM
//! code-table fills — each available as a portable scalar reference
//! ([`scalar`]) and, where the hardware pays for it, as explicit AVX2 /
//! AVX-512 / NEON implementations. The selectors here (`*_for`, `*_fn`)
//! map an [`IsaLevel`] to a plain function pointer; the
//! `KernelDispatch` table in `aq2pnn-sharing` resolves them once at
//! startup, and `aq2pnn-transport` resolves per pack call.
//!
//! Three invariants every kernel keeps, enforced by the property tests
//! in this module and at the call sites:
//!
//! * **Bit-identity** — for any input, every specialized path produces
//!   exactly the bytes/words of its scalar reference. SIMD reassociation
//!   is invisible because all arithmetic wraps and `2^ℓ` divides the
//!   accumulator modulus; packers are pure bit movement.
//! * **Soundness by construction** — `unsafe` exists only inside
//!   [`x86`]/[`neon`], behind safe wrappers that re-check CPU features
//!   at runtime and fall back to scalar. Misusing a selector with a
//!   wrong [`IsaLevel`] can cost speed, never soundness.
//! * **Secrecy discipline** — kernel control flow depends only on
//!   public geometry (lengths, widths), not on the secret words being
//!   processed; see DESIGN.md §7.4.

pub mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

use crate::isa::IsaLevel;

/// `row[j] += v · b[j]` over one accumulator word type (wrapping).
pub type AxpyU16Fn = fn(&mut [u16], u16, &[u16]);
/// `row[j] += v0 · b0[j] + v1 · b1[j]` (wrapping) — the 2-step-unrolled
/// GEMM inner loop.
pub type Axpy2U16Fn = fn(&mut [u16], u16, &[u16], u16, &[u16]);
/// See [`AxpyU16Fn`].
pub type AxpyU32Fn = fn(&mut [u32], u32, &[u32]);
/// See [`Axpy2U16Fn`].
pub type Axpy2U32Fn = fn(&mut [u32], u32, &[u32], u32, &[u32]);
/// See [`AxpyU16Fn`].
pub type AxpyU64Fn = fn(&mut [u64], u64, &[u64]);
/// See [`Axpy2U16Fn`].
pub type Axpy2U64Fn = fn(&mut [u64], u64, &[u64], u64, &[u64]);
/// Packs one aligned 8-element group (exactly `bits` bytes of wire).
pub type PackGroup8Fn = fn(&[u64], &mut [u8]);
/// Unpacks one aligned 8-element group.
pub type UnpackGroup8Fn = fn(&[u8], &mut [u64]);
/// Fills one item's OT slot run from a 4×4 comparison-code row table
/// (standard A2BM group pattern).
pub type FillCodesItemFn = fn(&[u8], &[u64; 16], &mut [u64]);

macro_rules! axpy_selector {
    ($(#[$m:meta])* $name:ident, $fnty:ty, $sc:path, $a2:path, $a5:path, neon: $nn:path) => {
        $(#[$m])*
        #[must_use]
        pub fn $name(isa: IsaLevel) -> $fnty {
            match isa {
                #[cfg(target_arch = "x86_64")]
                IsaLevel::Avx2 => $a2,
                #[cfg(target_arch = "x86_64")]
                IsaLevel::Avx512 => $a5,
                #[cfg(target_arch = "aarch64")]
                IsaLevel::Neon => $nn,
                _ => $sc,
            }
        }
    };
    ($(#[$m:meta])* $name:ident, $fnty:ty, $sc:path, $a2:path, $a5:path) => {
        // No NEON variant: aarch64 routes to the scalar reference.
        $(#[$m])*
        #[must_use]
        pub fn $name(isa: IsaLevel) -> $fnty {
            match isa {
                #[cfg(target_arch = "x86_64")]
                IsaLevel::Avx2 => $a2,
                #[cfg(target_arch = "x86_64")]
                IsaLevel::Avx512 => $a5,
                _ => $sc,
            }
        }
    };
}

axpy_selector!(
    /// Selects the u16 `axpy` kernel (mod `2^16` accumulation, ℓ ≤ 16).
    axpy_u16_for, AxpyU16Fn, scalar::axpy_u16, x86::axpy_u16_avx2, x86::axpy_u16_avx512,
    neon: neon::axpy_u16_neon);
axpy_selector!(
    /// Selects the u16 `axpy2` kernel.
    axpy2_u16_for, Axpy2U16Fn, scalar::axpy2_u16, x86::axpy2_u16_avx2, x86::axpy2_u16_avx512,
    neon: neon::axpy2_u16_neon);
axpy_selector!(
    /// Selects the u32 `axpy` kernel (mod `2^32` accumulation, ℓ ≤ 32).
    axpy_u32_for, AxpyU32Fn, scalar::axpy_u32, x86::axpy_u32_avx2, x86::axpy_u32_avx512,
    neon: neon::axpy_u32_neon);
axpy_selector!(
    /// Selects the u32 `axpy2` kernel.
    axpy2_u32_for, Axpy2U32Fn, scalar::axpy2_u32, x86::axpy2_u32_avx2, x86::axpy2_u32_avx512,
    neon: neon::axpy2_u32_neon);
axpy_selector!(
    /// Selects the u64 `axpy` kernel (mod `2^64` accumulation, ℓ > 32).
    axpy_u64_for, AxpyU64Fn, scalar::axpy_u64, x86::axpy_u64_avx2, x86::axpy_u64_avx512);
axpy_selector!(
    /// Selects the u64 `axpy2` kernel.
    axpy2_u64_for, Axpy2U64Fn, scalar::axpy2_u64, x86::axpy2_u64_avx2, x86::axpy2_u64_avx512);

/// Whether `bits` has a specialized group packer (the widths the adaptive
/// ℓ-profiles put on the wire: 1/2/4-bit codes and bitmaps, plus the
/// paper's 12- and 20-bit ring widths; byte-multiples take the existing
/// aligned fast path in `aq2pnn-transport` and need none).
#[must_use]
pub fn is_specialized_pack_width(bits: u32) -> bool {
    matches!(bits, 1 | 2 | 4 | 12 | 20)
}

/// Selects the packer for one aligned 8-element group of `bits`-bit
/// elements (exactly `bits` bytes of wire), or `None` when `bits` has no
/// specialized kernel and the caller must use its generic bit loop.
#[must_use]
pub fn pack_group8_fn(isa: IsaLevel, bits: u32) -> Option<PackGroup8Fn> {
    #[cfg(target_arch = "x86_64")]
    if matches!(isa, IsaLevel::Avx2 | IsaLevel::Avx512) {
        return match bits {
            1 => Some(x86::pack_group8_sub1_avx2),
            2 => Some(x86::pack_group8_sub2_avx2),
            4 => Some(x86::pack_group8_sub4_avx2),
            12 => Some(scalar::pack_group8_narrow::<12>),
            20 => Some(scalar::pack_group8_even_wide::<20>),
            _ => None,
        };
    }
    let _ = isa;
    match bits {
        1 => Some(scalar::pack_group8_narrow::<1>),
        2 => Some(scalar::pack_group8_narrow::<2>),
        4 => Some(scalar::pack_group8_narrow::<4>),
        12 => Some(scalar::pack_group8_narrow::<12>),
        20 => Some(scalar::pack_group8_even_wide::<20>),
        _ => None,
    }
}

/// Selects the unpacker matching [`pack_group8_fn`].
#[must_use]
pub fn unpack_group8_fn(isa: IsaLevel, bits: u32) -> Option<UnpackGroup8Fn> {
    #[cfg(target_arch = "x86_64")]
    if matches!(isa, IsaLevel::Avx2 | IsaLevel::Avx512) {
        return match bits {
            1 => Some(x86::unpack_group8_sub1_avx2),
            2 => Some(x86::unpack_group8_sub2_avx2),
            4 => Some(x86::unpack_group8_sub4_avx2),
            12 => Some(scalar::unpack_group8_narrow::<12>),
            20 => Some(scalar::unpack_group8_even_wide::<20>),
            _ => None,
        };
    }
    let _ = isa;
    match bits {
        1 => Some(scalar::unpack_group8_narrow::<1>),
        2 => Some(scalar::unpack_group8_narrow::<2>),
        4 => Some(scalar::unpack_group8_narrow::<4>),
        12 => Some(scalar::unpack_group8_narrow::<12>),
        20 => Some(scalar::unpack_group8_even_wide::<20>),
        _ => None,
    }
}

/// Selects the per-item code-table fill for the standard A2BM group
/// pattern, monomorphized for the group counts of the paper's ring
/// widths (`u_cnt` = 7/9/11/17 for ℓ = 12/16/20/32) with a runtime-`U`
/// fallback. `None` only when `u_cnt < 2` (no standard pattern exists).
#[must_use]
pub fn fill_codes_item_fn(isa: IsaLevel, u_cnt: usize) -> Option<FillCodesItemFn> {
    if u_cnt < 2 {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    if matches!(isa, IsaLevel::Avx2 | IsaLevel::Avx512) {
        return Some(match u_cnt {
            7 => x86::fill_codes_item7_avx2,
            9 => x86::fill_codes_item9_avx2,
            11 => x86::fill_codes_item11_avx2,
            17 => x86::fill_codes_item17_avx2,
            _ => x86::fill_codes_item_dyn_avx2,
        });
    }
    let _ = isa;
    Some(match u_cnt {
        7 => scalar::fill_codes_item::<7>,
        9 => scalar::fill_codes_item::<9>,
        11 => scalar::fill_codes_item::<11>,
        17 => scalar::fill_codes_item::<17>,
        _ => scalar::fill_codes_item_dyn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s = s.wrapping_mul(0xd129_42e4_9c58_05c5).wrapping_add(0xb5);
            s
        }
    }

    /// Every supported ISA's axpy/axpy2 kernels must be bit-identical to
    /// the scalar reference, including vector tails at every length.
    #[test]
    #[allow(clippy::cast_possible_truncation)] // low-word truncation is the test fixture
    fn axpy_kernels_match_scalar_on_every_supported_isa() {
        macro_rules! check_width {
            ($t:ty, $isa:expr, $n:expr, $next:expr,
             $axpy_for:ident, $axpy2_for:ident, $axpy_ref:ident, $axpy2_ref:ident) => {{
                let row: Vec<$t> = (0..$n).map(|_| $next() as $t).collect();
                let b0: Vec<$t> = (0..$n).map(|_| $next() as $t).collect();
                let b1: Vec<$t> = (0..$n).map(|_| $next() as $t).collect();
                let (v0, v1) = ($next() as $t, $next() as $t);

                let mut got = row.clone();
                let mut want = row.clone();
                $axpy_for($isa)(&mut got, v0, &b0);
                scalar::$axpy_ref(&mut want, v0, &b0);
                assert_eq!(got, want, "axpy {} n={} isa={}", stringify!($t), $n, $isa);

                let mut got2 = row.clone();
                let mut want2 = row;
                $axpy2_for($isa)(&mut got2, v0, &b0, v1, &b1);
                scalar::$axpy2_ref(&mut want2, v0, &b0, v1, &b1);
                assert_eq!(got2, want2, "axpy2 {} n={} isa={}", stringify!($t), $n, $isa);
            }};
        }
        let mut next = rng_stream(0x9e37_79b9_7f4a_7c15);
        for isa in IsaLevel::available() {
            for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100] {
                check_width!(u16, isa, n, next, axpy_u16_for, axpy2_u16_for, axpy_u16, axpy2_u16);
                check_width!(u32, isa, n, next, axpy_u32_for, axpy2_u32_for, axpy_u32, axpy2_u32);
                check_width!(u64, isa, n, next, axpy_u64_for, axpy2_u64_for, axpy_u64, axpy2_u64);
            }
        }
    }

    #[test]
    fn pack_group_fns_match_scalar_and_roundtrip() {
        let mut next = rng_stream(0x1234_5678_9abc_def1);
        for isa in IsaLevel::available() {
            for bits in [1u32, 2, 4, 12, 20] {
                let mask = (1u64 << bits) - 1;
                let pack = pack_group8_fn(isa, bits).expect("specialized width");
                let unpack = unpack_group8_fn(isa, bits).expect("specialized width");
                let sc_pack = pack_group8_fn(IsaLevel::Scalar, bits).unwrap();
                for trial in 0..64 {
                    // Unmasked inputs check the kernels truncate like the
                    // generic packer does.
                    let elems: Vec<u64> = (0..8)
                        .map(|_| if trial % 2 == 0 { next() & mask } else { next() })
                        .collect();
                    let mut got = vec![0u8; bits as usize];
                    let mut want = vec![0u8; bits as usize];
                    pack(&elems, &mut got);
                    sc_pack(&elems, &mut want);
                    assert_eq!(got, want, "pack bits={bits} isa={isa}");
                    let mut back = vec![0u64; 8];
                    unpack(&got, &mut back);
                    let masked: Vec<u64> = elems.iter().map(|&e| e & mask).collect();
                    assert_eq!(back, masked, "roundtrip bits={bits} isa={isa}");
                }
            }
        }
    }

    #[test]
    fn unspecialized_widths_have_no_group_fn() {
        for bits in [3u32, 5, 8, 11, 13, 16, 21, 31, 32, 33, 64] {
            assert!(pack_group8_fn(IsaLevel::Scalar, bits).is_none(), "bits={bits}");
            assert!(unpack_group8_fn(IsaLevel::Scalar, bits).is_none(), "bits={bits}");
            assert!(!is_specialized_pack_width(bits), "bits={bits}");
        }
        for bits in [1u32, 2, 4, 12, 20] {
            assert!(is_specialized_pack_width(bits), "bits={bits}");
        }
    }

    #[test]
    fn fill_codes_fns_match_scalar_reference() {
        let mut next = rng_stream(0xfeed_f00d_dead_beef);
        // The 4×4 row table: arbitrary distinct words so copies are visible.
        let mut rows = [0u64; 16];
        for (i, r) in rows.iter_mut().enumerate() {
            *r = 0x1000 + i as u64;
        }
        for isa in IsaLevel::available() {
            for u_cnt in [2usize, 3, 7, 9, 11, 17, 33] {
                let f = fill_codes_item_fn(isa, u_cnt).expect("u_cnt >= 2");
                let items = 5;
                let stride = 4 * (u_cnt - 1);
                let mut got = vec![0u64; items * stride];
                let mut want = vec![0u64; items * stride];
                let u_flat: Vec<u8> = (0..items * u_cnt)
                    .map(|i| {
                        // Groups 0/1 are 1-bit, the rest 2-bit wide.
                        let w = if i % u_cnt < 2 { 1 } else { 2 };
                        (next() & ((1 << w) - 1)) as u8
                    })
                    .collect();
                for item in 0..items {
                    let u = &u_flat[item * u_cnt..(item + 1) * u_cnt];
                    f(u, &rows, &mut got[item * stride..(item + 1) * stride]);
                    scalar::fill_codes_item_dyn(
                        u,
                        &rows,
                        &mut want[item * stride..(item + 1) * stride],
                    );
                }
                assert_eq!(got, want, "fill_codes u_cnt={u_cnt} isa={isa}");
            }
        }
        assert!(fill_codes_item_fn(IsaLevel::Scalar, 1).is_none());
    }
}
