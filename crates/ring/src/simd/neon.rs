//! aarch64 NEON kernels (128-bit lanes).
//!
//! Deliberately minimal: only the u16/u32 multiply-accumulate primitives,
//! which map directly onto `vmla` — NEON has no 64-bit integer lane
//! multiply, so the u64 paths and the packers stay on the scalar
//! reference (the dispatch selectors in `super` route them there).
//! The same two-layer safety argument as the x86 module applies: safe
//! `checked` wrappers verify [`IsaLevel::supported`] before entering the
//! `#[target_feature]` kernels, and lengths are asserted before any raw
//! pointer arithmetic.

#![allow(unsafe_code)]

use super::scalar;
use crate::isa::IsaLevel;
use core::arch::aarch64::{
    vaddq_u16, vaddq_u32, vdupq_n_u16, vdupq_n_u32, vld1q_u16, vld1q_u32, vmulq_u16, vmulq_u32,
    vst1q_u16, vst1q_u32,
};

macro_rules! define_axpy {
    ($axpy:ident, $axpy2:ident, $t:ty, $lanes:expr, $dup:path, $load:path, $store:path,
     $mul:path, $add:path) => {
        #[target_feature(enable = "neon")]
        unsafe fn $axpy(row: &mut [$t], v: $t, b: &[$t]) {
            assert_eq!(row.len(), b.len(), "axpy operand length mismatch");
            let n = row.len();
            let vv = $dup(v);
            let rp = row.as_mut_ptr();
            let bp = b.as_ptr();
            let mut j = 0usize;
            while j + $lanes <= n {
                let r = $load(rp.add(j));
                let x = $mul(vv, $load(bp.add(j)));
                $store(rp.add(j), $add(r, x));
                j += $lanes;
            }
            while j < n {
                *rp.add(j) = (*rp.add(j)).wrapping_add(v.wrapping_mul(*bp.add(j)));
                j += 1;
            }
        }

        #[target_feature(enable = "neon")]
        unsafe fn $axpy2(row: &mut [$t], v0: $t, b0: &[$t], v1: $t, b1: &[$t]) {
            assert_eq!(row.len(), b0.len(), "axpy2 operand length mismatch");
            assert_eq!(row.len(), b1.len(), "axpy2 operand length mismatch");
            let n = row.len();
            let vv0 = $dup(v0);
            let vv1 = $dup(v1);
            let rp = row.as_mut_ptr();
            let bp0 = b0.as_ptr();
            let bp1 = b1.as_ptr();
            let mut j = 0usize;
            while j + $lanes <= n {
                let r = $load(rp.add(j));
                let x0 = $mul(vv0, $load(bp0.add(j)));
                let x1 = $mul(vv1, $load(bp1.add(j)));
                $store(rp.add(j), $add(r, $add(x0, x1)));
                j += $lanes;
            }
            while j < n {
                *rp.add(j) = (*rp.add(j))
                    .wrapping_add(v0.wrapping_mul(*bp0.add(j)))
                    .wrapping_add(v1.wrapping_mul(*bp1.add(j)));
                j += 1;
            }
        }
    };
}

define_axpy!(
    axpy_u16_neon_k,
    axpy2_u16_neon_k,
    u16,
    8,
    vdupq_n_u16,
    vld1q_u16,
    vst1q_u16,
    vmulq_u16,
    vaddq_u16
);
define_axpy!(
    axpy_u32_neon_k,
    axpy2_u32_neon_k,
    u32,
    4,
    vdupq_n_u32,
    vld1q_u32,
    vst1q_u32,
    vmulq_u32,
    vaddq_u32
);

macro_rules! checked {
    ($name:ident, $kernel:path, $fallback:path, ($($a:ident: $t:ty),*)) => {
        pub(crate) fn $name($($a: $t),*) {
            if IsaLevel::Neon.supported() {
                // SAFETY: NEON presence verified; memory contracts asserted
                // inside the kernel.
                unsafe { $kernel($($a),*) }
            } else {
                $fallback($($a),*);
            }
        }
    };
}

checked!(axpy_u16_neon, axpy_u16_neon_k, scalar::axpy_u16,
    (row: &mut [u16], v: u16, b: &[u16]));
checked!(axpy2_u16_neon, axpy2_u16_neon_k, scalar::axpy2_u16,
    (row: &mut [u16], v0: u16, b0: &[u16], v1: u16, b1: &[u16]));
checked!(axpy_u32_neon, axpy_u32_neon_k, scalar::axpy_u32,
    (row: &mut [u32], v: u32, b: &[u32]));
checked!(axpy2_u32_neon, axpy2_u32_neon_k, scalar::axpy2_u32,
    (row: &mut [u32], v0: u32, b0: &[u32], v1: u32, b1: &[u32]));
