//! Portable scalar kernels — the reference semantics every SIMD path in
//! this module tree is property-tested bit-identical against.
//!
//! Everything here is safe Rust with wrapping arithmetic. The GEMM
//! primitives (`axpy*`) accumulate mod the accumulator word size; the
//! callers (the mask-deferred matmul in `aq2pnn-sharing`) rely on
//! `2^ℓ` dividing the word modulus, so reassociation and lane order
//! never change the masked result. The group packers are const-generic
//! SWAR: one `u128` accumulator replaces the per-bit shift loop of the
//! generic wire packer for the widths the adaptive ℓ-profiles use.

/// `row[j] += v · b[j]` (wrapping mod `2^16`).
///
/// # Panics
///
/// Panics if `row` and `b` differ in length.
pub fn axpy_u16(row: &mut [u16], v: u16, b: &[u16]) {
    assert_eq!(row.len(), b.len(), "axpy operand length mismatch");
    for (o, &bv) in row.iter_mut().zip(b) {
        *o = o.wrapping_add(v.wrapping_mul(bv));
    }
}

/// `row[j] += v0 · b0[j] + v1 · b1[j]` (wrapping mod `2^16`).
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn axpy2_u16(row: &mut [u16], v0: u16, b0: &[u16], v1: u16, b1: &[u16]) {
    assert_eq!(row.len(), b0.len(), "axpy2 operand length mismatch");
    assert_eq!(row.len(), b1.len(), "axpy2 operand length mismatch");
    for j in 0..row.len() {
        row[j] = row[j].wrapping_add(v0.wrapping_mul(b0[j])).wrapping_add(v1.wrapping_mul(b1[j]));
    }
}

/// `row[j] += v · b[j]` (wrapping mod `2^32`).
///
/// # Panics
///
/// Panics if `row` and `b` differ in length.
pub fn axpy_u32(row: &mut [u32], v: u32, b: &[u32]) {
    assert_eq!(row.len(), b.len(), "axpy operand length mismatch");
    for (o, &bv) in row.iter_mut().zip(b) {
        *o = o.wrapping_add(v.wrapping_mul(bv));
    }
}

/// `row[j] += v0 · b0[j] + v1 · b1[j]` (wrapping mod `2^32`).
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn axpy2_u32(row: &mut [u32], v0: u32, b0: &[u32], v1: u32, b1: &[u32]) {
    assert_eq!(row.len(), b0.len(), "axpy2 operand length mismatch");
    assert_eq!(row.len(), b1.len(), "axpy2 operand length mismatch");
    for j in 0..row.len() {
        row[j] = row[j].wrapping_add(v0.wrapping_mul(b0[j])).wrapping_add(v1.wrapping_mul(b1[j]));
    }
}

/// `row[j] += v · b[j]` (wrapping mod `2^64`).
///
/// # Panics
///
/// Panics if `row` and `b` differ in length.
pub fn axpy_u64(row: &mut [u64], v: u64, b: &[u64]) {
    assert_eq!(row.len(), b.len(), "axpy operand length mismatch");
    for (o, &bv) in row.iter_mut().zip(b) {
        *o = o.wrapping_add(v.wrapping_mul(bv));
    }
}

/// `row[j] += v0 · b0[j] + v1 · b1[j]` (wrapping mod `2^64`).
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn axpy2_u64(row: &mut [u64], v0: u64, b0: &[u64], v1: u64, b1: &[u64]) {
    assert_eq!(row.len(), b0.len(), "axpy2 operand length mismatch");
    assert_eq!(row.len(), b1.len(), "axpy2 operand length mismatch");
    for j in 0..row.len() {
        row[j] = row[j].wrapping_add(v0.wrapping_mul(b0[j])).wrapping_add(v1.wrapping_mul(b1[j]));
    }
}

/// Packs one aligned 8-element group of `BITS ≤ 16`-bit elements
/// (`8·BITS ≤ 128` bits = exactly `BITS` bytes) LSB-first via one `u128`
/// SWAR accumulator. Monomorphized per width, so the shifts, the mask and
/// the output copy length are all compile-time constants.
///
/// # Panics
///
/// Panics if `elems` is not exactly 8 elements or `out` is shorter than
/// `BITS` bytes.
pub fn pack_group8_narrow<const BITS: u32>(elems: &[u64], out: &mut [u8]) {
    const { assert!(BITS >= 1 && BITS <= 16, "narrow group packer covers 1..=16 bits") };
    assert_eq!(elems.len(), 8, "group packer takes exactly 8 elements");
    let mask = (1u128 << BITS) - 1;
    let mut acc = 0u128;
    for (j, &e) in elems.iter().enumerate() {
        acc |= (u128::from(e) & mask) << (BITS as usize * j);
    }
    out[..BITS as usize].copy_from_slice(&acc.to_le_bytes()[..BITS as usize]);
}

/// Inverse of [`pack_group8_narrow`]: one `u128` load, eight constant
/// shift-and-mask extracts.
///
/// # Panics
///
/// Panics if `out` is not exactly 8 elements or `bytes` is shorter than
/// `BITS` bytes.
pub fn unpack_group8_narrow<const BITS: u32>(bytes: &[u8], out: &mut [u64]) {
    const { assert!(BITS >= 1 && BITS <= 16, "narrow group unpacker covers 1..=16 bits") };
    assert_eq!(out.len(), 8, "group unpacker yields exactly 8 elements");
    let mut buf = [0u8; 16];
    buf[..BITS as usize].copy_from_slice(&bytes[..BITS as usize]);
    let acc = u128::from_le_bytes(buf);
    let mask = (1u128 << BITS) - 1;
    #[allow(clippy::cast_possible_truncation)] // masked to BITS ≤ 16 bits
    for (j, slot) in out.iter_mut().enumerate() {
        *slot = ((acc >> (BITS as usize * j)) & mask) as u64;
    }
}

/// Packs one aligned 8-element group of an even `17 ≤ BITS ≤ 32`-bit width
/// as two 4-element `u128` SWAR halves (each `4·BITS` bits = `BITS/2`
/// bytes, byte-aligned because `BITS` is even).
///
/// # Panics
///
/// Panics if `elems` is not exactly 8 elements or `out` is shorter than
/// `BITS` bytes.
pub fn pack_group8_even_wide<const BITS: u32>(elems: &[u64], out: &mut [u8]) {
    const {
        assert!(
            BITS.is_multiple_of(2) && BITS > 16 && BITS <= 32,
            "wide group packer covers even 18..=32"
        );
    };
    assert_eq!(elems.len(), 8, "group packer takes exactly 8 elements");
    let half = (BITS / 2) as usize;
    let mask = (1u128 << BITS) - 1;
    for (h, quad) in elems.chunks_exact(4).enumerate() {
        let mut acc = 0u128;
        for (j, &e) in quad.iter().enumerate() {
            acc |= (u128::from(e) & mask) << (BITS as usize * j);
        }
        out[h * half..(h + 1) * half].copy_from_slice(&acc.to_le_bytes()[..half]);
    }
}

/// Inverse of [`pack_group8_even_wide`].
///
/// # Panics
///
/// Panics if `out` is not exactly 8 elements or `bytes` is shorter than
/// `BITS` bytes.
pub fn unpack_group8_even_wide<const BITS: u32>(bytes: &[u8], out: &mut [u64]) {
    const {
        assert!(
            BITS.is_multiple_of(2) && BITS > 16 && BITS <= 32,
            "wide group unpacker covers even 18..=32"
        );
    };
    assert_eq!(out.len(), 8, "group unpacker yields exactly 8 elements");
    let half = (BITS / 2) as usize;
    let mask = (1u128 << BITS) - 1;
    #[allow(clippy::cast_possible_truncation)] // masked to BITS ≤ 32 bits
    for (h, quad) in out.chunks_exact_mut(4).enumerate() {
        let mut buf = [0u8; 16];
        buf[..half].copy_from_slice(&bytes[h * half..(h + 1) * half]);
        let acc = u128::from_le_bytes(buf);
        for (j, slot) in quad.iter_mut().enumerate() {
            *slot = ((acc >> (BITS as usize * j)) & mask) as u64;
        }
    }
}

/// Fills one item's OT slot run from a 4×4 comparison-code row table for
/// the standard A2BM group pattern (widths `[1, 1, 2, 2, …]`): groups 0–1
/// copy 2 slots each, groups 2… copy 4 slots each, all with compile-time
/// copy lengths when `U` is monomorphized.
///
/// `u` holds the item's `U` group values (each `< 2^width ≤ 4`), `rows` is
/// the precomputed `code(u, ·)` table with row stride 4, `slots` the
/// item's `4·(U−1)` output words.
///
/// # Panics
///
/// Panics if `u.len() != U`, `slots.len() != 4·(U−1)`, or any group value
/// exceeds its row (bounds-checked table indexing).
pub fn fill_codes_item<const U: usize>(u: &[u8], rows: &[u64; 16], slots: &mut [u64]) {
    const { assert!(U >= 2, "the standard pattern has at least the two quadrant groups") };
    assert_eq!(u.len(), U, "group value count mismatch");
    assert_eq!(slots.len(), 4 * (U - 1), "slot run length mismatch");
    let r0 = usize::from(u[0]) * 4;
    slots[0] = rows[r0];
    slots[1] = rows[r0 + 1];
    let r1 = usize::from(u[1]) * 4;
    slots[2] = rows[r1];
    slots[3] = rows[r1 + 1];
    for (i, &ug) in u[2..].iter().enumerate() {
        let r = usize::from(ug) * 4;
        let dst = 4 * (i + 1);
        slots[dst..dst + 4].copy_from_slice(&rows[r..r + 4]);
    }
}

/// Runtime-`U` fallback of [`fill_codes_item`] for group counts outside
/// the monomorphized set.
///
/// # Panics
///
/// Panics under the same conditions as [`fill_codes_item`].
pub fn fill_codes_item_dyn(u: &[u8], rows: &[u64; 16], slots: &mut [u64]) {
    assert!(u.len() >= 2, "the standard pattern has at least the two quadrant groups");
    assert_eq!(slots.len(), 4 * (u.len() - 1), "slot run length mismatch");
    let r0 = usize::from(u[0]) * 4;
    slots[0] = rows[r0];
    slots[1] = rows[r0 + 1];
    let r1 = usize::from(u[1]) * 4;
    slots[2] = rows[r1];
    slots[3] = rows[r1 + 1];
    for (g, &ug) in u.iter().enumerate().skip(2) {
        let r = usize::from(ug) * 4;
        let dst = 4 * (g - 1);
        slots[dst..dst + 4].copy_from_slice(&rows[r..r + 4]);
    }
}
