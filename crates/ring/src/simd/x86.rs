//! x86-64 AVX2 and AVX-512 kernels.
//!
//! The only `unsafe` in the workspace lives in this file (and its aarch64
//! sibling). The safety argument has two independent layers:
//!
//! 1. **Feature soundness** — every `#[target_feature]` kernel is private
//!    to this module and reachable only through a safe `checked` wrapper
//!    that re-verifies the CPU features via [`IsaLevel::supported`]
//!    (a cached `cpuid` read) and falls back to the scalar reference
//!    otherwise. A hand-constructed or mismatched [`IsaLevel`] therefore
//!    cannot execute an unsupported instruction.
//! 2. **Memory soundness** — each kernel asserts the slice-length
//!    contract up front, then walks raw pointers only in `lanes`-sized
//!    steps bounded by those lengths; tails fall through to scalar code
//!    on the same pointers.
//!
//! Secrecy discipline: kernels are branch-free and index-free in the
//! *data* — control flow depends only on public lengths (and, in the
//! code-table fill, on bounds checks that mirror the scalar path's safe
//! indexing). Lane reassociation is invisible mod `2^ℓ` because all
//! arithmetic is wrapping and `2^ℓ` divides the accumulator modulus.

#![allow(unsafe_code)]

use super::scalar;
use crate::isa::IsaLevel;
use core::arch::x86_64::{
    __m256i, _mm256_add_epi16, _mm256_add_epi32, _mm256_add_epi64, _mm256_and_si256,
    _mm256_castsi256_si128, _mm256_loadu_si256, _mm256_mul_epu32, _mm256_mullo_epi16,
    _mm256_mullo_epi32, _mm256_or_si256, _mm256_permute4x64_epi64, _mm256_set1_epi16,
    _mm256_set1_epi32, _mm256_set1_epi64x, _mm256_setr_epi64x, _mm256_slli_epi64,
    _mm256_sllv_epi64, _mm256_srli_epi64, _mm256_srlv_epi64, _mm256_storeu_si256, _mm512_add_epi16,
    _mm512_add_epi32, _mm512_add_epi64, _mm512_loadu_si512, _mm512_mullo_epi16, _mm512_mullo_epi32,
    _mm512_mullo_epi64, _mm512_set1_epi16, _mm512_set1_epi32, _mm512_set1_epi64,
    _mm512_storeu_si512, _mm_cvtsi128_si64, _mm_or_si128, _mm_shuffle_epi32,
};

/// 64-bit lane multiply (low half) on AVX2, which has no native
/// `mullo_epi64`: `lo + ((a_hi·b_lo + a_lo·b_hi) << 32)` from three
/// 32×32→64 multiplies — exact mod `2^64`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mullo_epu64_avx2(a: __m256i, b: __m256i) -> __m256i {
    let lo = _mm256_mul_epu32(a, b);
    let a_hi = _mm256_srli_epi64::<32>(a);
    let b_hi = _mm256_srli_epi64::<32>(b);
    let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
    _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
}

/// Generates the `axpy` / `axpy2` kernel pair for one (feature set,
/// element type, lane width) combination. Memory safety: lengths are
/// asserted equal, the vector loop takes `lanes`-strided in-bounds
/// pointers, the scalar tail covers the remainder.
macro_rules! define_axpy {
    ($feat:literal, $axpy:ident, $axpy2:ident, $t:ty, $cast:ty, $lanes:expr,
     $set1:path, $load:path, $store:path, $mul:path, $add:path) => {
        #[target_feature(enable = $feat)]
        unsafe fn $axpy(row: &mut [$t], v: $t, b: &[$t]) {
            assert_eq!(row.len(), b.len(), "axpy operand length mismatch");
            let n = row.len();
            let vv = $set1(v as $cast);
            let rp = row.as_mut_ptr();
            let bp = b.as_ptr();
            let mut j = 0usize;
            // 2x-unrolled lead loop: two independent load/mul/add/store
            // chains per iteration keep the multiplier port busy (LLVM
            // unrolls the autovectorized scalar loop the same way). No
            // cross-element reassociation, so results stay bit-identical.
            while j + 2 * $lanes <= n {
                let r0 = $load(rp.add(j).cast());
                let r1 = $load(rp.add(j + $lanes).cast());
                let x0 = $mul(vv, $load(bp.add(j).cast()));
                let x1 = $mul(vv, $load(bp.add(j + $lanes).cast()));
                $store(rp.add(j).cast(), $add(r0, x0));
                $store(rp.add(j + $lanes).cast(), $add(r1, x1));
                j += 2 * $lanes;
            }
            while j + $lanes <= n {
                let r = $load(rp.add(j).cast());
                let x = $mul(vv, $load(bp.add(j).cast()));
                $store(rp.add(j).cast(), $add(r, x));
                j += $lanes;
            }
            while j < n {
                *rp.add(j) = (*rp.add(j)).wrapping_add(v.wrapping_mul(*bp.add(j)));
                j += 1;
            }
        }

        #[target_feature(enable = $feat)]
        unsafe fn $axpy2(row: &mut [$t], v0: $t, b0: &[$t], v1: $t, b1: &[$t]) {
            assert_eq!(row.len(), b0.len(), "axpy2 operand length mismatch");
            assert_eq!(row.len(), b1.len(), "axpy2 operand length mismatch");
            let n = row.len();
            let vv0 = $set1(v0 as $cast);
            let vv1 = $set1(v1 as $cast);
            let rp = row.as_mut_ptr();
            let bp0 = b0.as_ptr();
            let bp1 = b1.as_ptr();
            let mut j = 0usize;
            // Same 2x unroll as `axpy`; the per-element sum order
            // `r + (x0 + x1)` is preserved exactly.
            while j + 2 * $lanes <= n {
                let ra = $load(rp.add(j).cast());
                let rb = $load(rp.add(j + $lanes).cast());
                let xa0 = $mul(vv0, $load(bp0.add(j).cast()));
                let xb0 = $mul(vv0, $load(bp0.add(j + $lanes).cast()));
                let xa1 = $mul(vv1, $load(bp1.add(j).cast()));
                let xb1 = $mul(vv1, $load(bp1.add(j + $lanes).cast()));
                $store(rp.add(j).cast(), $add(ra, $add(xa0, xa1)));
                $store(rp.add(j + $lanes).cast(), $add(rb, $add(xb0, xb1)));
                j += 2 * $lanes;
            }
            while j + $lanes <= n {
                let r = $load(rp.add(j).cast());
                let x0 = $mul(vv0, $load(bp0.add(j).cast()));
                let x1 = $mul(vv1, $load(bp1.add(j).cast()));
                $store(rp.add(j).cast(), $add(r, $add(x0, x1)));
                j += $lanes;
            }
            while j < n {
                *rp.add(j) = (*rp.add(j))
                    .wrapping_add(v0.wrapping_mul(*bp0.add(j)))
                    .wrapping_add(v1.wrapping_mul(*bp1.add(j)));
                j += 1;
            }
        }
    };
}

define_axpy!(
    "avx2",
    axpy_u16_avx2_k,
    axpy2_u16_avx2_k,
    u16,
    i16,
    16,
    _mm256_set1_epi16,
    _mm256_loadu_si256,
    _mm256_storeu_si256,
    _mm256_mullo_epi16,
    _mm256_add_epi16
);
define_axpy!(
    "avx2",
    axpy_u32_avx2_k,
    axpy2_u32_avx2_k,
    u32,
    i32,
    8,
    _mm256_set1_epi32,
    _mm256_loadu_si256,
    _mm256_storeu_si256,
    _mm256_mullo_epi32,
    _mm256_add_epi32
);
define_axpy!(
    "avx2",
    axpy_u64_avx2_k,
    axpy2_u64_avx2_k,
    u64,
    i64,
    4,
    _mm256_set1_epi64x,
    _mm256_loadu_si256,
    _mm256_storeu_si256,
    mullo_epu64_avx2,
    _mm256_add_epi64
);

define_axpy!(
    "avx512f,avx512bw",
    axpy_u16_avx512_k,
    axpy2_u16_avx512_k,
    u16,
    i16,
    32,
    _mm512_set1_epi16,
    _mm512_loadu_si512,
    _mm512_storeu_si512,
    _mm512_mullo_epi16,
    _mm512_add_epi16
);
define_axpy!(
    "avx512f",
    axpy_u32_avx512_k,
    axpy2_u32_avx512_k,
    u32,
    i32,
    16,
    _mm512_set1_epi32,
    _mm512_loadu_si512,
    _mm512_storeu_si512,
    _mm512_mullo_epi32,
    _mm512_add_epi32
);
define_axpy!(
    "avx512f,avx512dq",
    axpy_u64_avx512_k,
    axpy2_u64_avx512_k,
    u64,
    i64,
    8,
    _mm512_set1_epi64,
    _mm512_loadu_si512,
    _mm512_storeu_si512,
    _mm512_mullo_epi64,
    _mm512_add_epi64
);

/// Sub-byte group pack (`BITS ∈ {1, 2, 4}`): eight ring elements become
/// `BITS` bytes. Lane shifts move each element's low bits to its slot in
/// the 8·BITS-bit word; a two-step horizontal OR folds the four 64-bit
/// lanes into one.
#[target_feature(enable = "avx2")]
unsafe fn pack_group8_sub_k<const BITS: u32>(elems: &[u64], out: &mut [u8]) {
    const { assert!(BITS == 1 || BITS == 2 || BITS == 4, "sub-byte packer covers 1/2/4 bits") };
    assert_eq!(elems.len(), 8, "group packer takes exactly 8 elements");
    let b = i64::from(BITS);
    let mask = _mm256_set1_epi64x(((1u64 << BITS) - 1) as i64);
    let sh_lo = _mm256_setr_epi64x(0, b, 2 * b, 3 * b);
    let sh_hi = _mm256_setr_epi64x(4 * b, 5 * b, 6 * b, 7 * b);
    let p = elems.as_ptr();
    let e0 = _mm256_loadu_si256(p.cast());
    let e1 = _mm256_loadu_si256(p.add(4).cast());
    let v = _mm256_or_si256(
        _mm256_sllv_epi64(_mm256_and_si256(e0, mask), sh_lo),
        _mm256_sllv_epi64(_mm256_and_si256(e1, mask), sh_hi),
    );
    // OR lanes {0,1} with {2,3}, then the two surviving 64-bit halves.
    let v = _mm256_or_si256(v, _mm256_permute4x64_epi64::<0b0100_1110>(v));
    let lo = _mm256_castsi256_si128(v);
    let lo = _mm_or_si128(lo, _mm_shuffle_epi32::<0b0100_1110>(lo));
    let word = _mm_cvtsi128_si64(lo) as u64;
    out[..BITS as usize].copy_from_slice(&word.to_le_bytes()[..BITS as usize]);
}

/// Inverse of [`pack_group8_sub_k`]: broadcast the packed word, variable
/// right-shift per lane, mask.
#[target_feature(enable = "avx2")]
unsafe fn unpack_group8_sub_k<const BITS: u32>(bytes: &[u8], out: &mut [u64]) {
    const { assert!(BITS == 1 || BITS == 2 || BITS == 4, "sub-byte unpacker covers 1/2/4 bits") };
    assert_eq!(out.len(), 8, "group unpacker yields exactly 8 elements");
    let mut wb = [0u8; 8];
    wb[..BITS as usize].copy_from_slice(&bytes[..BITS as usize]);
    let b = i64::from(BITS);
    let v = _mm256_set1_epi64x(u64::from_le_bytes(wb) as i64);
    let mask = _mm256_set1_epi64x(((1u64 << BITS) - 1) as i64);
    let sh_lo = _mm256_setr_epi64x(0, b, 2 * b, 3 * b);
    let sh_hi = _mm256_setr_epi64x(4 * b, 5 * b, 6 * b, 7 * b);
    let r0 = _mm256_and_si256(_mm256_srlv_epi64(v, sh_lo), mask);
    let r1 = _mm256_and_si256(_mm256_srlv_epi64(v, sh_hi), mask);
    let p = out.as_mut_ptr();
    _mm256_storeu_si256(p.cast(), r0);
    _mm256_storeu_si256(p.add(4).cast(), r1);
}

/// AVX2 variant of [`scalar::fill_codes_item`]: each width-2 group's
/// 4-slot row copy is one 256-bit load/store instead of two 128-bit
/// moves at baseline codegen. Group values stay bounds-asserted exactly
/// like the scalar path's safe indexing.
#[target_feature(enable = "avx2")]
unsafe fn fill_codes_item_k<const U: usize>(u: &[u8], rows: &[u64; 16], slots: &mut [u64]) {
    const { assert!(U >= 2, "the standard pattern has at least the two quadrant groups") };
    assert_eq!(u.len(), U, "group value count mismatch");
    assert_eq!(slots.len(), 4 * (U - 1), "slot run length mismatch");
    let r0 = usize::from(u[0]) * 4;
    slots[0] = rows[r0];
    slots[1] = rows[r0 + 1];
    let r1 = usize::from(u[1]) * 4;
    slots[2] = rows[r1];
    slots[3] = rows[r1 + 1];
    let rp = rows.as_ptr();
    let sp = slots.as_mut_ptr();
    for (i, &ugb) in u[2..].iter().enumerate() {
        let ug = usize::from(ugb);
        assert!(ug < 4, "group value out of table range");
        let row = _mm256_loadu_si256(rp.add(ug * 4).cast());
        _mm256_storeu_si256(sp.add(4 * (i + 1)).cast(), row);
    }
}

/// Runtime-`U` variant of [`fill_codes_item_k`].
#[target_feature(enable = "avx2")]
unsafe fn fill_codes_item_dyn_k(u: &[u8], rows: &[u64; 16], slots: &mut [u64]) {
    assert!(u.len() >= 2, "the standard pattern has at least the two quadrant groups");
    assert_eq!(slots.len(), 4 * (u.len() - 1), "slot run length mismatch");
    let r0 = usize::from(u[0]) * 4;
    slots[0] = rows[r0];
    slots[1] = rows[r0 + 1];
    let r1 = usize::from(u[1]) * 4;
    slots[2] = rows[r1];
    slots[3] = rows[r1 + 1];
    let rp = rows.as_ptr();
    let sp = slots.as_mut_ptr();
    for (g, &ugb) in u.iter().enumerate().skip(2) {
        let ug = usize::from(ugb);
        assert!(ug < 4, "group value out of table range");
        let row = _mm256_loadu_si256(rp.add(ug * 4).cast());
        _mm256_storeu_si256(sp.add(4 * (g - 1)).cast(), row);
    }
}

/// Declares the safe, feature-checked entry point for one unsafe kernel:
/// verify the level's CPU features (cached), else run the scalar
/// reference. These are the only functions the dispatch selectors hand
/// out, so a wrong [`IsaLevel`] degrades to scalar instead of UB.
macro_rules! checked {
    ($name:ident, $level:ident, $kernel:expr, $fallback:expr, ($($a:ident: $t:ty),*)) => {
        pub(crate) fn $name($($a: $t),*) {
            if IsaLevel::$level.supported() {
                // SAFETY: the level's CPU features were just verified present;
                // memory contracts are asserted inside the kernel.
                unsafe { $kernel($($a),*) }
            } else {
                $fallback($($a),*);
            }
        }
    };
}

checked!(axpy_u16_avx2, Avx2, axpy_u16_avx2_k, scalar::axpy_u16,
    (row: &mut [u16], v: u16, b: &[u16]));
checked!(axpy2_u16_avx2, Avx2, axpy2_u16_avx2_k, scalar::axpy2_u16,
    (row: &mut [u16], v0: u16, b0: &[u16], v1: u16, b1: &[u16]));
checked!(axpy_u32_avx2, Avx2, axpy_u32_avx2_k, scalar::axpy_u32,
    (row: &mut [u32], v: u32, b: &[u32]));
checked!(axpy2_u32_avx2, Avx2, axpy2_u32_avx2_k, scalar::axpy2_u32,
    (row: &mut [u32], v0: u32, b0: &[u32], v1: u32, b1: &[u32]));
checked!(axpy_u64_avx2, Avx2, axpy_u64_avx2_k, scalar::axpy_u64,
    (row: &mut [u64], v: u64, b: &[u64]));
checked!(axpy2_u64_avx2, Avx2, axpy2_u64_avx2_k, scalar::axpy2_u64,
    (row: &mut [u64], v0: u64, b0: &[u64], v1: u64, b1: &[u64]));

checked!(axpy_u16_avx512, Avx512, axpy_u16_avx512_k, scalar::axpy_u16,
    (row: &mut [u16], v: u16, b: &[u16]));
checked!(axpy2_u16_avx512, Avx512, axpy2_u16_avx512_k, scalar::axpy2_u16,
    (row: &mut [u16], v0: u16, b0: &[u16], v1: u16, b1: &[u16]));
checked!(axpy_u32_avx512, Avx512, axpy_u32_avx512_k, scalar::axpy_u32,
    (row: &mut [u32], v: u32, b: &[u32]));
checked!(axpy2_u32_avx512, Avx512, axpy2_u32_avx512_k, scalar::axpy2_u32,
    (row: &mut [u32], v0: u32, b0: &[u32], v1: u32, b1: &[u32]));
checked!(axpy_u64_avx512, Avx512, axpy_u64_avx512_k, scalar::axpy_u64,
    (row: &mut [u64], v: u64, b: &[u64]));
checked!(axpy2_u64_avx512, Avx512, axpy2_u64_avx512_k, scalar::axpy2_u64,
    (row: &mut [u64], v0: u64, b0: &[u64], v1: u64, b1: &[u64]));

checked!(pack_group8_sub1_avx2, Avx2, pack_group8_sub_k::<1>, scalar::pack_group8_narrow::<1>,
    (elems: &[u64], out: &mut [u8]));
checked!(pack_group8_sub2_avx2, Avx2, pack_group8_sub_k::<2>, scalar::pack_group8_narrow::<2>,
    (elems: &[u64], out: &mut [u8]));
checked!(pack_group8_sub4_avx2, Avx2, pack_group8_sub_k::<4>, scalar::pack_group8_narrow::<4>,
    (elems: &[u64], out: &mut [u8]));
checked!(unpack_group8_sub1_avx2, Avx2, unpack_group8_sub_k::<1>,
    scalar::unpack_group8_narrow::<1>, (bytes: &[u8], out: &mut [u64]));
checked!(unpack_group8_sub2_avx2, Avx2, unpack_group8_sub_k::<2>,
    scalar::unpack_group8_narrow::<2>, (bytes: &[u8], out: &mut [u64]));
checked!(unpack_group8_sub4_avx2, Avx2, unpack_group8_sub_k::<4>,
    scalar::unpack_group8_narrow::<4>, (bytes: &[u8], out: &mut [u64]));

checked!(fill_codes_item7_avx2, Avx2, fill_codes_item_k::<7>, scalar::fill_codes_item::<7>,
    (u: &[u8], rows: &[u64; 16], slots: &mut [u64]));
checked!(fill_codes_item9_avx2, Avx2, fill_codes_item_k::<9>, scalar::fill_codes_item::<9>,
    (u: &[u8], rows: &[u64; 16], slots: &mut [u64]));
checked!(fill_codes_item11_avx2, Avx2, fill_codes_item_k::<11>, scalar::fill_codes_item::<11>,
    (u: &[u8], rows: &[u64; 16], slots: &mut [u64]));
checked!(fill_codes_item17_avx2, Avx2, fill_codes_item_k::<17>, scalar::fill_codes_item::<17>,
    (u: &[u8], rows: &[u64; 16], slots: &mut [u64]));
checked!(fill_codes_item_dyn_avx2, Avx2, fill_codes_item_dyn_k, scalar::fill_codes_item_dyn,
    (u: &[u8], rows: &[u64; 16], slots: &mut [u64]));
