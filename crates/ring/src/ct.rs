//! Constant-time primitives over `u64` words.
//!
//! The 2PC model (DESIGN.md §"Secrecy discipline") requires every *local*
//! computation to be independent of the secret share values it touches: no
//! branch, table index, allocation size or wire length may be keyed on a
//! share, an OT choice, or anything derived from them. These helpers give
//! the protocol crates branch-free replacements for the comparison /
//! selection idioms that `cargo xtask lint` rejects on secret data
//! (`secret-compare`, `secret-branch`).
//!
//! Every function here is straight-line word arithmetic: the instruction
//! trace is identical for all inputs. Flags are represented as `u64` values
//! in `{0, 1}` so they can feed directly into [`select`] without ever
//! becoming a `bool` (which would invite an `if`).
//!
//! These run on the cold *and* hot paths, so everything is `#[inline]` and
//! compiles to 3–6 ALU ops; the dudect-style harness in
//! `tests/leakage_harness.rs` checks the end-to-end code built from them
//! for timing class-independence.

/// `1` if `x != 0`, else `0`, without branching.
///
/// `x | -x` has its top bit set iff `x != 0` (for `x = 0` both sides are
/// zero; otherwise one of the two has bit 63 set or the OR of the
/// complements does).
#[inline]
#[must_use]
pub fn nonzero(x: u64) -> u64 {
    (x | x.wrapping_neg()) >> 63
}

/// `1` if `x == y`, else `0`, without branching.
#[inline]
#[must_use]
pub fn eq(x: u64, y: u64) -> u64 {
    1 ^ nonzero(x ^ y)
}

/// `1` if `x != y`, else `0`, without branching.
#[inline]
#[must_use]
pub fn ne(x: u64, y: u64) -> u64 {
    nonzero(x ^ y)
}

/// `1` if `x < y` (unsigned), else `0`, without branching.
///
/// This is the borrow bit of the subtraction `x - y`, computed with the
/// classic bit identity instead of a compare-and-set.
#[inline]
#[must_use]
pub fn lt(x: u64, y: u64) -> u64 {
    ((!x & y) | ((!x | y) & x.wrapping_sub(y))) >> 63
}

/// `1` if `x > y` (unsigned), else `0`, without branching.
#[inline]
#[must_use]
pub fn gt(x: u64, y: u64) -> u64 {
    lt(y, x)
}

/// `1` if `x >= y` (unsigned), else `0`, without branching.
#[inline]
#[must_use]
pub fn ge(x: u64, y: u64) -> u64 {
    1 ^ lt(x, y)
}

/// `1` if `x <= y` (unsigned), else `0`, without branching.
#[inline]
#[must_use]
pub fn le(x: u64, y: u64) -> u64 {
    1 ^ gt(x, y)
}

/// Selects `a` when `flag == 1` and `b` when `flag == 0`, without
/// branching.
///
/// `flag` must be exactly `0` or `1` (the contract of every flag produced
/// by this module); other values select a bit-mix of the operands.
#[inline]
#[must_use]
pub fn select(flag: u64, a: u64, b: u64) -> u64 {
    b ^ (flag.wrapping_neg() & (a ^ b))
}

/// Branch-free three-way comparison of `x` and `y` as the Eq. 6 wire code
/// convention used by the secure comparison machine: `1` (less), `2`
/// (equal), `3` (greater).
///
/// `1 + (x >= y) + (x > y)` hits exactly those three values.
#[inline]
#[must_use]
pub fn cmp_code(x: u64, y: u64) -> u64 {
    1 + ge(x, y) + gt(x, y)
}

/// `1` if the slices are equal (same length and all words equal), else `0`,
/// scanning every word of the common prefix regardless of where the first
/// difference sits.
///
/// The length comparison is public (lengths are never secret under the
/// secrecy discipline — the lint's `secret-alloc` rule enforces that), so
/// an early return on mismatched lengths is fine.
#[must_use]
pub fn eq_slices(xs: &[u64], ys: &[u64]) -> u64 {
    if xs.len() != ys.len() {
        return 0;
    }
    let mut acc = 0u64;
    for (&x, &y) in xs.iter().zip(ys) {
        acc |= x ^ y;
    }
    1 ^ nonzero(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_matches_reference() {
        for x in [0u64, 1, 2, u64::MAX, 1 << 63, 0x8000_0001] {
            assert_eq!(nonzero(x), u64::from(x != 0), "x={x}");
        }
    }

    #[test]
    fn eq_ne_exhaustive_small() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                assert_eq!(eq(x, y), u64::from(x == y));
                assert_eq!(ne(x, y), u64::from(x != y));
            }
        }
        assert_eq!(eq(u64::MAX, u64::MAX), 1);
        assert_eq!(eq(u64::MAX, 0), 0);
    }

    #[test]
    fn ordering_matches_reference() {
        let samples =
            [0u64, 1, 2, 127, 128, 255, 1 << 31, (1 << 31) + 1, 1 << 63, u64::MAX - 1, u64::MAX];
        for &x in &samples {
            for &y in &samples {
                assert_eq!(lt(x, y), u64::from(x < y), "lt {x} {y}");
                assert_eq!(gt(x, y), u64::from(x > y), "gt {x} {y}");
                assert_eq!(ge(x, y), u64::from(x >= y), "ge {x} {y}");
                assert_eq!(le(x, y), u64::from(x <= y), "le {x} {y}");
            }
        }
    }

    #[test]
    fn select_picks_by_flag() {
        assert_eq!(select(1, 0xaaaa, 0x5555), 0xaaaa);
        assert_eq!(select(0, 0xaaaa, 0x5555), 0x5555);
        assert_eq!(select(1, u64::MAX, 0), u64::MAX);
        assert_eq!(select(0, u64::MAX, 0), 0);
    }

    #[test]
    fn cmp_code_is_eq6_convention() {
        // LT = 1, EQ = 2, GT = 3 — the comparison-code constants of the SCM.
        assert_eq!(cmp_code(3, 5), 1);
        assert_eq!(cmp_code(5, 5), 2);
        assert_eq!(cmp_code(9, 5), 3);
        for x in 0..4u64 {
            for y in 0..4u64 {
                let expect = match x.cmp(&y) {
                    std::cmp::Ordering::Less => 1,
                    std::cmp::Ordering::Equal => 2,
                    std::cmp::Ordering::Greater => 3,
                };
                assert_eq!(cmp_code(x, y), expect, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn slice_equality() {
        assert_eq!(eq_slices(&[1, 2, 3], &[1, 2, 3]), 1);
        assert_eq!(eq_slices(&[1, 2, 3], &[1, 2, 4]), 0);
        assert_eq!(eq_slices(&[1, 2], &[1, 2, 3]), 0);
        assert_eq!(eq_slices(&[], &[]), 1);
    }
}
