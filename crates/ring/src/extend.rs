//! Ring-size extension — the "Ring Size Extension" stage of paper Fig. 8.
//!
//! The adaptive quantization pipeline shares an `ℓ`-bit secret on a small
//! ring `Q1 = 2^ℓ` and widens it to `Q2 = 2^L` (`L = ℓ + headroom`) before
//! the multiply-accumulate-heavy 2PC-Conv2D so intermediate sums do not
//! overflow. The paper performs the widening *locally*: each party sign
//! extends its own share ("ring size extension is based on the sign
//! extension").
//!
//! # Why local extension is probabilistic
//!
//! Let the secret be `x ∈ Z_{2^ℓ}` with signed value `X = dec(x)` and shares
//! `x = (x_i + x_j) mod 2^ℓ` with `x_i` uniform. Sign-extending both shares
//! yields shares of `enc_L(dec_ℓ(x_i) + dec_ℓ(x_j))`; this equals
//! `enc_L(X)` **iff** `dec_ℓ(x_i) + dec_ℓ(x_j)` stays inside the signed
//! `ℓ`-bit range `[-2^{ℓ-1}, 2^{ℓ-1})`. Over a uniform `x_i` that fails with
//! probability exactly `(X+1)/2^ℓ` for `X ≥ 0` and `(-X-1)/2^ℓ` for `X < 0`
//! — that is, `≈ |X| / 2^ℓ` — see [`failure_probability`] and the
//! exhaustive census test below. Small secrets on a ring with headroom almost never
//! fail, which is precisely the paper's "+4 bits is a suitable ring size"
//! statistical argument (and, at 12 bits and below, the mechanism behind the
//! accuracy cliff in Tables 7–8).
//!
//! The protocol crate exposes both this local strategy and an exact,
//! dealer-assisted one; this module provides the shared mechanics and the
//! analysis helpers the ablation benches use.

use crate::Ring;

/// Reinterprets `x` from ring `from` onto ring `to` by sign extension of the
/// two's-complement value (or wrapping reduction when narrowing).
///
/// This is the per-party local step of the paper's ring-size extension.
///
/// # Example
///
/// ```
/// use aq2pnn_ring::{extend::sign_extend, Ring};
///
/// let (q12, q16) = (Ring::new(12), Ring::new(16));
/// // Paper Fig. 8: 1111_0110_1101 (12-bit) → 1111_1111_0110_1101 (16-bit).
/// assert_eq!(sign_extend(q12, q16, 0b1111_0110_1101), 0b1111_1111_0110_1101);
/// ```
#[must_use]
pub fn sign_extend(from: Ring, to: Ring, x: u64) -> u64 {
    if to.bits() <= from.bits() {
        return to.reduce(x);
    }
    to.encode_signed_wrapping(from.decode_signed(x))
}

/// Reinterprets `x` from ring `from` onto ring `to` by zero extension of the
/// unsigned value (or wrapping reduction when narrowing).
#[must_use]
pub fn zero_extend(from: Ring, to: Ring, x: u64) -> u64 {
    if to.bits() <= from.bits() {
        return to.reduce(x);
    }
    from.reduce(x)
}

/// Whether local sign extension of the share pair `(x_i, x_j)` reproduces
/// the secret exactly, i.e. whether `dec(x_i) + dec(x_j)` stays inside the
/// signed range of `from`.
///
/// Used by tests and by the extension-failure ablation to census failure
/// cases without running the protocol.
#[must_use]
pub fn local_extension_is_exact(from: Ring, xi: u64, xj: u64) -> bool {
    let sum = from.decode_signed(xi) + from.decode_signed(xj);
    sum >= from.min_signed() && sum <= from.max_signed()
}

/// Exact probability (over a uniform random share) that local sign extension
/// of a sharing of the signed secret `x` fails.
///
/// Exhaustive census (see tests) gives exactly `(x+1)/2^ℓ` failing shares
/// for `x ≥ 0` and `(-x-1)/2^ℓ` for `x < 0` — approximately `|x|/2^ℓ`. The
/// asymmetry comes from the asymmetric two's-complement range: `x = -1` can
/// never fail, while `x = 0` fails for the single share pair
/// `(−2^{ℓ-1}, −2^{ℓ-1})`.
///
/// # Panics
///
/// Panics if `x` is outside the signed range of `from`.
#[must_use]
pub fn failure_probability(from: Ring, x: i64) -> f64 {
    assert!(x >= from.min_signed() && x <= from.max_signed(), "secret out of ring range");
    let count = if x >= 0 { x + 1 } else { -x - 1 };
    count as f64 / from.modulus() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extend_preserves_signed_value() {
        let (q8, q16) = (Ring::new(8), Ring::new(16));
        for v in -128..=127i64 {
            let x = q8.encode_signed(v);
            assert_eq!(q16.decode_signed(sign_extend(q8, q16, x)), v);
        }
    }

    #[test]
    fn zero_extend_preserves_unsigned_value() {
        let (q8, q16) = (Ring::new(8), Ring::new(16));
        assert_eq!(zero_extend(q8, q16, 0xff), 0xff);
        assert_eq!(zero_extend(q16, q8, 0x1ff), 0xff);
    }

    #[test]
    fn same_width_is_identity() {
        let q = Ring::new(10);
        assert_eq!(sign_extend(q, q, 0x3ff), 0x3ff);
    }

    /// Exhaustive census on a 6-bit ring: the number of failing shares for a
    /// secret X must match the closed form behind [`failure_probability`].
    #[test]
    fn failure_census_matches_formula() {
        let q = Ring::new(6);
        for x in q.min_signed()..=q.max_signed() {
            let enc = q.encode_signed(x);
            let mut failures = 0i64;
            for r in 0..(1u64 << 6) {
                let (xi, xj) = (r, q.sub(enc, r));
                if !local_extension_is_exact(q, xi, xj) {
                    failures += 1;
                }
            }
            let expected = if x >= 0 { x + 1 } else { -x - 1 };
            assert_eq!(failures, expected, "secret {x}");
            let p = failure_probability(q, x);
            assert!((p - failures as f64 / 64.0).abs() < 1e-12);
        }
    }

    /// When extension does not fail, the extended shares recover the secret
    /// in the big ring.
    #[test]
    fn successful_extension_recovers_secret() {
        let (q1, q2) = (Ring::new(6), Ring::new(10));
        for x in q1.min_signed()..=q1.max_signed() {
            let enc = q1.encode_signed(x);
            for r in 0..(1u64 << 6) {
                let (xi, xj) = (r, q1.sub(enc, r));
                let (ei, ej) = (sign_extend(q1, q2, xi), sign_extend(q1, q2, xj));
                let rec = q2.decode_signed(q2.add(ei, ej));
                if local_extension_is_exact(q1, xi, xj) {
                    assert_eq!(rec, x);
                } else {
                    // Failure is off by exactly ±2^ℓ.
                    assert_eq!((rec - x).abs(), 64, "secret {x}, share {r}");
                }
            }
        }
    }
}
