//! The [`Ring`] descriptor: modular arithmetic on `Z_{2^ℓ}`.

use crate::RingError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Arithmetic context for the unsigned integer ring `Z_Q`, `Q = 2^ℓ`.
///
/// Per paper Definition 1, all protocol operations take a modulus `Q`; in a
/// hardware accelerator the modulus is free (bit-length overflow), and here
/// it is a single `&`-mask. A `Ring` is `Copy` and meant to be passed around
/// by value.
///
/// Elements are stored as `u64` with all bits above `ℓ` clear. Operations
/// never inspect high bits of their inputs beyond masking them off, so any
/// `u64` can be fed in via [`Ring::reduce`].
///
/// # Example
///
/// ```
/// use aq2pnn_ring::Ring;
///
/// let q = Ring::new(8);
/// assert_eq!(q.add(200, 100), 44);      // (200 + 100) mod 256
/// assert_eq!(q.decode_signed(0b1001_1100), -100);
/// assert_eq!(q.encode_signed(-100), 0b1001_1100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ring {
    bits: u32,
    mask: u64,
}

impl Ring {
    /// Creates the ring `Z_{2^bits}`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=64`. Use [`Ring::try_new`] for a
    /// fallible variant.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        Self::try_new(bits).expect("ring bit-length must be in 1..=64")
    }

    /// Creates the ring `Z_{2^bits}`, failing on an invalid bit-length.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidBits`] if `bits` is not in `1..=64`.
    pub fn try_new(bits: u32) -> Result<Self, RingError> {
        if bits == 0 || bits > 64 {
            return Err(RingError::InvalidBits(bits));
        }
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        Ok(Ring { bits, mask })
    }

    /// Bit-length `ℓ` of the ring (`Q = 2^ℓ`).
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The mask `Q - 1` selecting the low `ℓ` bits.
    #[must_use]
    pub fn mask(self) -> u64 {
        self.mask
    }

    /// The modulus `Q = 2^ℓ` as a `u128` (it does not fit in `u64` when
    /// `ℓ = 64`).
    #[must_use]
    pub fn modulus(self) -> u128 {
        1u128 << self.bits
    }

    /// Reduces an arbitrary `u64` into the ring (`x mod Q`).
    #[must_use]
    pub fn reduce(self, x: u64) -> u64 {
        x & self.mask
    }

    /// Whether `x` is a canonical ring element (no bits above `ℓ`).
    #[must_use]
    pub fn contains(self, x: u64) -> bool {
        x & !self.mask == 0
    }

    /// `(a + b) mod Q`.
    #[must_use]
    pub fn add(self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & self.mask
    }

    /// `(a - b) mod Q`.
    #[must_use]
    pub fn sub(self, a: u64, b: u64) -> u64 {
        a.wrapping_sub(b) & self.mask
    }

    /// `(-a) mod Q`.
    #[must_use]
    pub fn neg(self, a: u64) -> u64 {
        a.wrapping_neg() & self.mask
    }

    /// `(a * b) mod Q`.
    #[must_use]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        a.wrapping_mul(b) & self.mask
    }

    /// `(a^e) mod Q` by square-and-multiply, constant-time in `e`: the
    /// exponent is OT key material, so the ladder runs a fixed `ℓ`
    /// iterations (monomorphized for the widths the OT group serves
    /// without a LUT) and folds each bit in with a branch-free select.
    ///
    /// Used by the OT-flow's Diffie-Hellman-style masking; on the FPGA this
    /// is a look-up table (paper Sec. 4.3.1), which is only feasible because
    /// the ring is small — the software mirror of that LUT covers `ℓ ≤ 20`
    /// (`OtGroup`), so this ladder is the hot path exactly on the wider
    /// rings, where cutting 64 iterations to `ℓ` matters most.
    /// [`Ring::pow_reference`] keeps the full 64-iteration ladder as the
    /// cross-check ground truth.
    #[must_use]
    pub fn pow(self, a: u64, e: u64) -> u64 {
        match self.bits {
            12 => self.pow_ladder::<12>(a, e),
            16 => self.pow_ladder::<16>(a, e),
            20 => self.pow_ladder::<20>(a, e),
            24 => self.pow_ladder::<24>(a, e),
            32 => self.pow_ladder::<32>(a, e),
            bits => self.pow_ladder_dyn(a, e, bits),
        }
    }

    /// The truncated constant-time ladder, monomorphized per width so the
    /// fixed-trip-count loop fully unrolls.
    ///
    /// Why `ℓ` iterations suffice: `a^e = a^{e mod 2^ℓ} · (a^{2^ℓ})^{e_hi}`
    /// with `e_hi = ⌊e / 2^ℓ⌋`. After the `ℓ` squarings,
    /// `base = a^{2^ℓ} mod 2^ℓ`, which is `1` for odd `a` (odd residues
    /// have order dividing `2^{ℓ-2}`) and `0` for even `a` (2-adic
    /// valuation `≥ 2^ℓ ≥ ℓ`) — in both cases `(a^{2^ℓ})^{e_hi}` equals
    /// `base` itself whenever `e_hi ≠ 0`, so the entire high half of the
    /// exponent folds into one multiply, gated branch-free.
    fn pow_ladder<const BITS: u32>(self, a: u64, e: u64) -> u64 {
        debug_assert_eq!(self.bits, BITS);
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        for i in 0..BITS {
            let bit = (e >> i) & 1;
            acc = crate::ct::select(bit, self.mul(acc, base), acc);
            base = self.mul(base, base);
        }
        // Two-step shift: BITS may be 64, and a single `e >> 64` is UB.
        let e_hi = (e >> (BITS - 1)) >> 1;
        crate::ct::select(crate::ct::nonzero(e_hi), self.mul(acc, base), acc)
    }

    /// Runtime-width fallback of [`Ring::pow_ladder`] for rings outside the
    /// monomorphized set. Identical math; the trip count is the (public)
    /// ring width, never a secret.
    fn pow_ladder_dyn(self, a: u64, e: u64, bits: u32) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        for i in 0..bits {
            let bit = (e >> i) & 1;
            acc = crate::ct::select(bit, self.mul(acc, base), acc);
            base = self.mul(base, base);
        }
        let e_hi = (e >> (bits - 1)) >> 1;
        crate::ct::select(crate::ct::nonzero(e_hi), self.mul(acc, base), acc)
    }

    /// The pre-specialization 64-iteration constant-time ladder, kept as
    /// ground truth for property tests and as the serial baseline for
    /// benches. Bit-identical to [`Ring::pow`] on every input.
    #[must_use]
    pub fn pow_reference(self, a: u64, e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        for i in 0..64 {
            let bit = (e >> i) & 1;
            acc = crate::ct::select(bit, self.mul(acc, base), acc);
            base = self.mul(base, base);
        }
        acc
    }

    /// Samples a uniformly random ring element.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        rng.gen::<u64>() & self.mask
    }

    /// Smallest representable signed value, `-2^{ℓ-1}` (or `0` for `ℓ = 1`…
    /// by convention `ℓ = 1` encodes `{0, -1}`; the value is `-1`).
    #[must_use]
    pub fn min_signed(self) -> i64 {
        if self.bits == 64 {
            i64::MIN
        } else {
            -(1i64 << (self.bits - 1))
        }
    }

    /// Largest representable signed value, `2^{ℓ-1} - 1`.
    #[must_use]
    pub fn max_signed(self) -> i64 {
        if self.bits == 64 {
            i64::MAX
        } else {
            (1i64 << (self.bits - 1)) - 1
        }
    }

    /// Encodes a signed integer by two's complement (paper Fig. 3, `enc`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `[min_signed, max_signed]`. Use
    /// [`Ring::try_encode_signed`] for a fallible variant.
    #[must_use]
    pub fn encode_signed(self, v: i64) -> u64 {
        self.try_encode_signed(v).expect("signed value out of range for ring")
    }

    /// Encodes a signed integer, failing when it does not fit.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::SignedOutOfRange`] if `v` is outside the
    /// `ℓ`-bit two's-complement range.
    pub fn try_encode_signed(self, v: i64) -> Result<u64, RingError> {
        if v < self.min_signed() || v > self.max_signed() {
            return Err(RingError::SignedOutOfRange { value: v, bits: self.bits });
        }
        Ok((v as u64) & self.mask)
    }

    /// Encodes a signed integer that may exceed the signed range by wrapping
    /// it onto the ring (`v mod Q`). This models hardware overflow.
    #[must_use]
    pub fn encode_signed_wrapping(self, v: i64) -> u64 {
        (v as u64) & self.mask
    }

    /// Decodes a ring element by two's complement (paper Fig. 3, `rec` + `enc⁻¹`).
    #[must_use]
    pub fn decode_signed(self, x: u64) -> i64 {
        let x = x & self.mask;
        let shift = 64 - self.bits;
        ((x << shift) as i64) >> shift
    }

    /// Most significant bit of `x` in this ring — the sign bit of the
    /// two's-complement interpretation.
    #[must_use]
    pub fn msb(self, x: u64) -> bool {
        (x >> (self.bits - 1)) & 1 == 1
    }

    /// Extracts bit `i` (0 = LSB) of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ℓ`.
    #[must_use]
    pub fn bit(self, x: u64, i: u32) -> bool {
        assert!(i < self.bits, "bit index {i} out of range for {}-bit ring", self.bits);
        (x >> i) & 1 == 1
    }

    /// The top `n` bits of `x` as a small unsigned integer. ABReLU's quadrant
    /// detection (paper Fig. 7) reads the top 2 bits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > ℓ`.
    #[must_use]
    pub fn top_bits(self, x: u64, n: u32) -> u64 {
        assert!(n >= 1 && n <= self.bits, "cannot take top {n} bits of a {}-bit ring", self.bits);
        (x & self.mask) >> (self.bits - n)
    }

    /// Logical right shift inside the ring: `⌊x / 2^s⌋` of the *unsigned*
    /// representative.
    #[must_use]
    pub fn shr_logical(self, x: u64, s: u32) -> u64 {
        if s >= 64 {
            0
        } else {
            (x & self.mask) >> s
        }
    }

    /// Arithmetic right shift of the *signed* interpretation, re-encoded on
    /// the ring: `enc(⌊dec(x) / 2^s⌋)` with flooring division.
    ///
    /// This is the plaintext-equivalent of the re-quantization (`ReQ`)
    /// truncation in the paper's `BNReQ` operator.
    #[must_use]
    pub fn shr_arithmetic(self, x: u64, s: u32) -> u64 {
        let v = self.decode_signed(x);
        let shifted = if s >= 63 {
            if v < 0 {
                -1
            } else {
                0
            }
        } else {
            v >> s
        };
        self.encode_signed_wrapping(shifted)
    }

    /// Left shift inside the ring: `(x * 2^s) mod Q`.
    #[must_use]
    pub fn shl(self, x: u64, s: u32) -> u64 {
        if s >= 64 {
            0
        } else {
            x.wrapping_shl(s) & self.mask
        }
    }

    /// Clips the signed interpretation of `x` into `[lo, hi]` and re-encodes.
    ///
    /// The AS-ALU supports clipping (paper Sec. 4.1.3); the quantizer uses it
    /// to saturate activations to the target bit-width.
    #[must_use]
    pub fn clip_signed(self, x: u64, lo: i64, hi: i64) -> u64 {
        let v = self.decode_signed(x).clamp(lo, hi);
        self.encode_signed_wrapping(v)
    }
}

impl fmt::Display for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Z_2^{}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_bounds() {
        assert!(Ring::try_new(0).is_err());
        assert!(Ring::try_new(65).is_err());
        assert!(Ring::try_new(1).is_ok());
        assert!(Ring::try_new(64).is_ok());
        assert_eq!(Ring::new(8).mask(), 0xff);
        assert_eq!(Ring::new(64).mask(), u64::MAX);
    }

    #[test]
    fn modulus_matches_bits() {
        assert_eq!(Ring::new(12).modulus(), 1 << 12);
        assert_eq!(Ring::new(64).modulus(), 1u128 << 64);
    }

    #[test]
    fn add_sub_wraps() {
        let q = Ring::new(8);
        assert_eq!(q.add(255, 1), 0);
        assert_eq!(q.sub(0, 1), 255);
        assert_eq!(q.neg(1), 255);
        assert_eq!(q.neg(0), 0);
    }

    #[test]
    fn mul_wraps() {
        let q = Ring::new(8);
        assert_eq!(q.mul(16, 16), 0);
        assert_eq!(q.mul(255, 255), 1); // (-1)^2 = 1
    }

    #[test]
    fn pow_matches_naive() {
        let q = Ring::new(16);
        for &(base, exp) in &[(3u64, 5u64), (7, 0), (0, 3), (65535, 2), (5, 17)] {
            let mut naive = 1u64;
            for _ in 0..exp {
                naive = q.mul(naive, base);
            }
            assert_eq!(q.pow(base, exp), naive, "pow({base},{exp})");
        }
    }

    /// The truncated `ℓ`-iteration ladder (monomorphized and dynamic
    /// widths alike) must agree with the 64-iteration reference on every
    /// input class that stresses the high-exponent fold: zero/odd/even
    /// bases, exponents below and far above `2^ℓ`, and all-ones patterns.
    #[test]
    fn pow_matches_reference_across_widths() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xb007);
        for bits in [1u32, 2, 3, 11, 12, 13, 16, 20, 21, 24, 25, 31, 32, 33, 48, 63, 64] {
            let q = Ring::new(bits);
            for &(a, e) in &[
                (0u64, 0u64),
                (0, 1),
                (0, u64::MAX),
                (1, u64::MAX),
                (2, 1u64 << 40),
                (5, (1u64 << 63) + 7),
                (u64::MAX, u64::MAX),
            ] {
                assert_eq!(q.pow(a, e), q.pow_reference(a, e), "bits={bits} a={a} e={e}");
            }
            for _ in 0..200 {
                let (a, e) = (rng.gen::<u64>(), rng.gen::<u64>());
                assert_eq!(q.pow(a, e), q.pow_reference(a, e), "bits={bits} a={a} e={e}");
            }
        }
    }

    #[test]
    fn signed_codec_roundtrip_edges() {
        let q = Ring::new(8);
        assert_eq!(q.min_signed(), -128);
        assert_eq!(q.max_signed(), 127);
        for v in -128..=127 {
            assert_eq!(q.decode_signed(q.encode_signed(v)), v);
        }
        assert!(q.try_encode_signed(128).is_err());
        assert!(q.try_encode_signed(-129).is_err());
    }

    #[test]
    fn signed_codec_64_bit() {
        let q = Ring::new(64);
        assert_eq!(q.decode_signed(q.encode_signed(i64::MIN)), i64::MIN);
        assert_eq!(q.decode_signed(q.encode_signed(i64::MAX)), i64::MAX);
        assert_eq!(q.decode_signed(q.encode_signed(-1)), -1);
    }

    #[test]
    fn paper_example_int8_minus_100() {
        // Sec. 4.4: INT8(-100) has binary representation 1001_1100.
        let q = Ring::new(8);
        assert_eq!(q.encode_signed(-100), 0b1001_1100);
        assert_eq!(q.encode_signed(5), 0b0000_0101);
    }

    #[test]
    fn msb_is_sign() {
        let q = Ring::new(12);
        assert!(q.msb(q.encode_signed(-1)));
        assert!(!q.msb(q.encode_signed(0)));
        assert!(!q.msb(q.encode_signed(q.max_signed())));
        assert!(q.msb(q.encode_signed(q.min_signed())));
    }

    #[test]
    fn top_bits_quadrant() {
        let q = Ring::new(8);
        // -125 = 1000_0011b → top 2 bits 10
        assert_eq!(q.top_bits(q.encode_signed(-125), 2), 0b10);
        // 7 = 0000_0111b → top 2 bits 00
        assert_eq!(q.top_bits(q.encode_signed(7), 2), 0b00);
    }

    #[test]
    fn shifts() {
        let q = Ring::new(8);
        assert_eq!(q.shr_logical(q.encode_signed(-4), 1), 0b0111_1110);
        assert_eq!(q.decode_signed(q.shr_arithmetic(q.encode_signed(-4), 1)), -2);
        assert_eq!(q.decode_signed(q.shr_arithmetic(q.encode_signed(-5), 1)), -3); // floor
        assert_eq!(q.decode_signed(q.shr_arithmetic(q.encode_signed(5), 1)), 2);
        assert_eq!(q.shl(0b1000_0001, 1), 0b0000_0010);
    }

    #[test]
    fn clip() {
        let q = Ring::new(16);
        assert_eq!(q.decode_signed(q.clip_signed(q.encode_signed(300), -128, 127)), 127);
        assert_eq!(q.decode_signed(q.clip_signed(q.encode_signed(-300), -128, 127)), -128);
        assert_eq!(q.decode_signed(q.clip_signed(q.encode_signed(50), -128, 127)), 50);
    }

    #[test]
    fn sample_is_in_ring() {
        let q = Ring::new(5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(q.contains(q.sample(&mut rng)));
        }
    }

    #[test]
    fn ring_display() {
        assert_eq!(Ring::new(16).to_string(), "Z_2^16");
    }
}
