//! Dynamic-width ring arithmetic for AQ2PNN.
//!
//! Everything in the AQ2PNN protocol ([MICRO '23]) happens on an unsigned
//! integer ring `Z_Q` with `Q = 2^ℓ` (paper Definition 1). Unlike CPU/GPU
//! frameworks that are pinned to 32- or 64-bit rings by their instruction
//! set, the FPGA design picks `ℓ` *per layer stage* — that adaptivity is the
//! paper's core idea, and this crate is the substrate that makes it cheap:
//! a [`Ring`] is a tiny copyable descriptor (`ℓ` + a bit mask) and all
//! arithmetic is masked `u64` operations.
//!
//! The crate provides:
//!
//! * [`Ring`] — modular arithmetic on `Z_{2^ℓ}` for any `1 ≤ ℓ ≤ 64`,
//!   including the two's-complement signed codec used throughout the paper
//!   (Fig. 3 "encode with 2's complement method").
//! * [`RingTensor`] — a shaped container of ring elements with elementwise
//!   and indexing helpers, the unit of data moved between protocol buffers.
//! * [`extend`] — ring-size extension (`Q1 = 2^12 → Q2 = 2^16` in Fig. 8),
//!   both the paper's local sign-extension and the exact analysis used to
//!   bound its failure probability.
//! * [`ct`] — branch-free comparison/selection primitives the protocol
//!   crates use wherever a computation touches secret share values, so
//!   local timing stays share-independent (see DESIGN.md §"Secrecy
//!   discipline").
//! * [`isa`] / [`simd`] — runtime CPU-feature detection and the width- and
//!   ISA-specialized kernel primitives (AVX2/AVX-512/NEON with a scalar
//!   reference) behind the workspace's kernel dispatch layer
//!   (DESIGN.md §7.4).
//!
//! # Example
//!
//! ```
//! use aq2pnn_ring::Ring;
//!
//! let q1 = Ring::new(12); // Z_{2^12}
//! let x = q1.encode_signed(-74);
//! assert_eq!(q1.decode_signed(x), -74);
//!
//! // Additive shares wrap around the ring modulus.
//! let r = 0x5a5 & q1.mask();
//! let (xi, xj) = (r, q1.sub(x, r));
//! assert_eq!(q1.add(xi, xj), x);
//! ```
//!
//! [MICRO '23]: https://doi.org/10.1145/3613424.3614297

// `deny`, not `forbid`: the SIMD intrinsic kernels in `simd::x86`/
// `simd::neon` opt back in with module-local `#![allow(unsafe_code)]` and
// carry the safety argument (feature-checked safe wrappers, asserted
// length contracts) documented there and in DESIGN.md §7.4. Everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ct;
mod error;
pub mod extend;
pub mod isa;
mod ring;
pub mod simd;
mod tensor;

pub use error::{RingError, ShapeError};
pub use isa::IsaLevel;
pub use ring::Ring;
pub use tensor::RingTensor;

/// The paper's headroom rule of thumb (Sec. 5.1): an `ℓ`-bit plaintext model
/// is carried on a `2^{ℓ+4}` ring, e.g. 12-bit values on a 16-bit ring.
pub const HEADROOM_BITS: u32 = 4;
