//! Runtime CPU-feature detection for the explicit-SIMD kernel paths.
//!
//! The workspace used to lean on `-C target-cpu=native` autovectorization
//! for its vector code (DESIGN.md §7.4, former "codegen note"). The kernel
//! dispatch layer replaces that bet with an explicit contract: every
//! SIMD path is selected **at runtime** from [`IsaLevel::detect`], so a
//! binary compiled for the portable x86-64 SSE2 baseline still runs the
//! AVX2/AVX-512 kernels on hardware that has them — and a binary compiled
//! with native codegen never executes an instruction the host lacks.
//!
//! [`IsaLevel::active`] is the startup-selected level every hot path uses
//! (the `KernelDispatch` table in `aq2pnn-sharing` and the wire packers in
//! `aq2pnn-transport` both read it); benches and property tests iterate
//! [`IsaLevel::available`] to pin every reachable path bit-identical to
//! the scalar reference on the machine at hand.

use std::fmt;

/// One selectable kernel implementation tier.
///
/// The ordering is *not* meaningful across architectures (NEON is neither
/// below nor above AVX2); use [`IsaLevel::supported`] to ask whether a
/// level can run on this machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaLevel {
    /// Portable scalar fallback — always present, and the reference
    /// semantics every other level is property-tested against.
    Scalar,
    /// x86-64 AVX2: 256-bit lanes (u16×16 / u32×8 / u64×4).
    Avx2,
    /// x86-64 AVX-512 (F+BW+DQ+VL): 512-bit lanes (u16×32 / u32×16 /
    /// u64×8) with native 64-bit lane multiplies.
    Avx512,
    /// aarch64 NEON: 128-bit lanes (u16×8 / u32×4); 64-bit lane kernels
    /// stay scalar (NEON has no 64-bit integer multiply).
    Neon,
}

impl IsaLevel {
    /// Every level in canonical order (scalar first).
    pub const ALL: [IsaLevel; 4] =
        [IsaLevel::Scalar, IsaLevel::Avx2, IsaLevel::Avx512, IsaLevel::Neon];

    /// The level's stable lowercase name (`scalar`/`avx2`/`avx512`/`neon`)
    /// — the `AQ2PNN_ISA` vocabulary and the `isa` field of bench rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IsaLevel::Scalar => "scalar",
            IsaLevel::Avx2 => "avx2",
            IsaLevel::Avx512 => "avx512",
            IsaLevel::Neon => "neon",
        }
    }

    /// Parses an [`IsaLevel::name`] string (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<IsaLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(IsaLevel::Scalar),
            "avx2" => Some(IsaLevel::Avx2),
            "avx512" => Some(IsaLevel::Avx512),
            "neon" => Some(IsaLevel::Neon),
            _ => None,
        }
    }

    /// Whether this machine can execute the level's kernels.
    ///
    /// This is the **soundness gate** for every `unsafe` SIMD call in
    /// [`crate::simd`]: a `#[target_feature]` function is only ever
    /// invoked behind `supported() == true`. Under Miri only the scalar
    /// level reports supported — the interpreter has no CPUID.
    #[must_use]
    pub fn supported(self) -> bool {
        #[cfg(miri)]
        {
            self == IsaLevel::Scalar
        }
        #[cfg(not(miri))]
        {
            match self {
                IsaLevel::Scalar => true,
                #[cfg(target_arch = "x86_64")]
                IsaLevel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
                #[cfg(target_arch = "x86_64")]
                IsaLevel::Avx512 => {
                    std::arch::is_x86_feature_detected!("avx512f")
                        && std::arch::is_x86_feature_detected!("avx512bw")
                        && std::arch::is_x86_feature_detected!("avx512dq")
                        && std::arch::is_x86_feature_detected!("avx512vl")
                }
                #[cfg(target_arch = "aarch64")]
                IsaLevel::Neon => true, // NEON is part of the aarch64 base ISA
                #[allow(unreachable_patterns)] // levels of other architectures
                _ => false,
            }
        }
    }

    /// The best level this machine supports (AVX-512 ≻ AVX2 ≻ scalar on
    /// x86-64, NEON on aarch64).
    #[must_use]
    pub fn detect() -> IsaLevel {
        if IsaLevel::Avx512.supported() {
            IsaLevel::Avx512
        } else if IsaLevel::Avx2.supported() {
            IsaLevel::Avx2
        } else if IsaLevel::Neon.supported() {
            IsaLevel::Neon
        } else {
            IsaLevel::Scalar
        }
    }

    /// Every level this machine supports, scalar first — the iteration
    /// set for per-ISA property tests and bench variant rows.
    #[must_use]
    pub fn available() -> Vec<IsaLevel> {
        IsaLevel::ALL.iter().copied().filter(|l| l.supported()).collect()
    }

    /// The level the process-wide kernel dispatch uses, selected **once**
    /// at first use: the `AQ2PNN_ISA` environment variable when it names a
    /// supported level, otherwise [`IsaLevel::detect`]. An unsupported or
    /// unparseable override falls back to detection rather than failing —
    /// CI drives the same test matrix across heterogeneous runners.
    #[must_use]
    pub fn active() -> IsaLevel {
        static ACTIVE: std::sync::OnceLock<IsaLevel> = std::sync::OnceLock::new();
        *ACTIVE.get_or_init(|| {
            match std::env::var("AQ2PNN_ISA").ok().as_deref().and_then(IsaLevel::parse) {
                Some(l) if l.supported() => l,
                _ => IsaLevel::detect(),
            }
        })
    }
}

impl fmt::Display for IsaLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported() {
        assert!(IsaLevel::Scalar.supported());
        assert!(IsaLevel::available().contains(&IsaLevel::Scalar));
    }

    #[test]
    fn detect_is_supported() {
        assert!(IsaLevel::detect().supported());
        assert!(IsaLevel::active().supported());
    }

    #[test]
    fn names_roundtrip() {
        for l in IsaLevel::ALL {
            assert_eq!(IsaLevel::parse(l.name()), Some(l));
            assert_eq!(IsaLevel::parse(&l.name().to_uppercase()), Some(l));
        }
        assert_eq!(IsaLevel::parse("sse9"), None);
    }

    #[test]
    fn available_is_subset_of_all_and_deduplicated() {
        let av = IsaLevel::available();
        for l in &av {
            assert!(IsaLevel::ALL.contains(l));
        }
        let mut dedup = av.clone();
        dedup.dedup();
        assert_eq!(av, dedup);
    }
}
