//! Property-based tests for the quantization substrate.

use aq2pnn_nn::quant::Requant;
use proptest::prelude::*;

proptest! {
    /// Dyadic approximation stays within 2^-(mult_bits-2) relative error.
    #[test]
    fn requant_ratio_error_bounded(
        ratio in 1e-8f64..32.0,
        mult_bits in 8u32..=24,
    ) {
        let q = Requant::from_ratio(ratio, mult_bits).unwrap();
        let rel = (q.ratio() - ratio).abs() / ratio;
        let bound = 1.0 / (1u64 << (mult_bits - 2)) as f64;
        prop_assert!(rel <= bound, "ratio {ratio} mult_bits {mult_bits}: rel {rel} > {bound}");
        // The multiplier respects its bit budget.
        prop_assert!(q.mult > 0 && q.mult < (1 << (mult_bits - 1)));
    }

    /// Requantization is monotone: a larger accumulator never maps to a
    /// smaller output (floor shift of a positive-multiplier product).
    #[test]
    fn requant_apply_is_monotone(
        mult in 1i64..(1 << 15),
        shift in 0u32..30,
        a in -(1i64 << 40)..(1i64 << 40),
        delta in 0i64..(1 << 20),
    ) {
        let q = Requant { mult, shift };
        prop_assert!(q.apply(a + delta) >= q.apply(a));
    }

    /// Requantization commutes with negation up to the floor asymmetry:
    /// |apply(-a) + apply(a)| ≤ 1.
    #[test]
    fn requant_negation_near_symmetric(
        mult in 1i64..(1 << 15),
        shift in 1u32..30,
        a in -(1i64 << 40)..(1i64 << 40),
    ) {
        let q = Requant { mult, shift };
        let s = q.apply(a) + q.apply(-a);
        prop_assert!((-1..=0).contains(&s), "a={a}: sum {s}");
    }

    /// apply() tracks the real-valued product within one unit.
    #[test]
    fn requant_apply_tracks_real_product(
        mult in 1i64..(1 << 15),
        shift in 0u32..30,
        a in -(1i64 << 30)..(1i64 << 30),
    ) {
        let q = Requant { mult, shift };
        let real = (a as f64) * (mult as f64) / (1u64 << shift) as f64;
        // Only check when the f64 path is exact enough.
        if shift <= 31 {
            let got = q.apply(a) as f64;
            prop_assert!((got - real).abs() <= 1.0, "a={a}: {got} vs {real}");
        }
    }
}
