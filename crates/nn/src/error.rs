//! Error type for model construction and inference.

use std::error::Error;
use std::fmt;

/// Errors from model construction, shape inference, or inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// An operator received an input of incompatible shape.
    ShapeMismatch {
        /// Operator description.
        op: String,
        /// Shape expected by the operator.
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
    },
    /// A spec is structurally invalid (e.g. pooling larger than its input).
    InvalidSpec(String),
    /// Quantization failed (e.g. calibration produced a degenerate range).
    Quantization(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { op, expected, actual } => {
                write!(f, "{op}: expected input shape {expected:?}, got {actual:?}")
            }
            NnError::InvalidSpec(msg) => write!(f, "invalid model spec: {msg}"),
            NnError::Quantization(msg) => write!(f, "quantization failed: {msg}"),
        }
    }
}

impl Error for NnError {}
