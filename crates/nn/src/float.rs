//! Float networks with forward and backward passes.
//!
//! [`FloatNet`] instantiates a [`ModelSpec`] with He-initialized weights
//! and supports SGD training — the "model provider trains in the plaintext
//! domain" half of the paper's pipeline (Fig. 8 step ①). The layer set
//! matches the spec language: Conv2d, Linear, BatchNorm (spatial statistics
//! in training mode), ReLU, Max/Avg pooling, global pooling, flatten and
//! residual blocks.
//!
//! The implementation is deliberately simple (single-sample loops, direct
//! convolution): the trainable models in this reproduction are small by
//! design; ImageNet-scale specs are used for cost modeling and synthetic
//! calibration only.

use crate::data::{Sample, SyntheticVision};
use crate::spec::{ModelSpec, OpSpec, TensorShape};
use crate::NnError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch-norm numerical floor.
const BN_EPS: f32 = 1e-5;
/// Running-statistics momentum.
const BN_MOMENTUM: f32 = 0.1;

/// One instantiated layer with parameters, gradients and backward caches.
#[derive(Debug, Clone)]
pub(crate) enum Layer {
    Conv2d {
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
        w: Vec<f32>,
        b: Vec<f32>,
        dw: Vec<f32>,
        db: Vec<f32>,
        cache_in: Vec<f32>,
    },
    Linear {
        in_f: usize,
        out_f: usize,
        w: Vec<f32>,
        b: Vec<f32>,
        dw: Vec<f32>,
        db: Vec<f32>,
        cache_in: Vec<f32>,
    },
    BatchNorm {
        c: usize,
        spatial: usize,
        gamma: Vec<f32>,
        beta: Vec<f32>,
        dgamma: Vec<f32>,
        dbeta: Vec<f32>,
        running_mean: Vec<f32>,
        running_var: Vec<f32>,
        cache_xhat: Vec<f32>,
        cache_inv_std: Vec<f32>,
    },
    Relu {
        cache_mask: Vec<bool>,
    },
    MaxPool {
        k: usize,
        stride: usize,
        pad: usize,
        c: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
        cache_argmax: Vec<usize>,
    },
    AvgPool {
        k: usize,
        stride: usize,
        pad: usize,
        c: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
    },
    GlobalAvgPool {
        c: usize,
        in_hw: (usize, usize),
    },
    Flatten,
    Residual {
        main: Vec<Layer>,
        shortcut: Vec<Layer>,
    },
}

/// A float network instantiated from a [`ModelSpec`].
#[derive(Debug, Clone)]
pub struct FloatNet {
    spec: ModelSpec,
    pub(crate) layers: Vec<Layer>,
}

impl FloatNet {
    /// Builds the network with He-initialized weights from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if the spec fails shape inference.
    pub fn init(spec: &ModelSpec, seed: u64) -> Result<Self, NnError> {
        spec.infer_shapes()?; // validate up front
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(spec.ops.len());
        let mut shape = spec.input;
        for op in &spec.ops {
            let (layer, out) = build_layer(op, shape, &mut rng)?;
            layers.push(layer);
            shape = out;
        }
        Ok(FloatNet { spec: spec.clone(), layers })
    }

    /// The spec this network was built from.
    #[must_use]
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Inference forward pass (BatchNorm uses running statistics).
    #[must_use]
    pub fn forward(&mut self, image: &[f32]) -> Vec<f32> {
        forward_layers(&mut self.layers, image.to_vec(), false)
    }

    /// Training forward pass (BatchNorm uses spatial batch statistics and
    /// caches for backward).
    #[must_use]
    pub fn forward_train(&mut self, image: &[f32]) -> Vec<f32> {
        forward_layers(&mut self.layers, image.to_vec(), true)
    }

    /// Backpropagates `grad` (∂loss/∂logits), accumulating parameter
    /// gradients.
    pub fn backward(&mut self, grad: &[f32]) {
        let _ = backward_layers(&mut self.layers, grad.to_vec());
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            zero_layer(l);
        }
    }

    /// Applies one SGD step `w ← w − lr·dw`.
    pub fn sgd_step(&mut self, lr: f32) {
        for l in &mut self.layers {
            step_layer(l, lr);
        }
    }

    /// Cross-entropy of logits against a label, plus ∂loss/∂logits.
    #[must_use]
    pub fn softmax_ce(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
        let loss = -(probs[label].max(1e-12)).ln();
        let mut grad = probs;
        grad[label] -= 1.0;
        (loss, grad)
    }

    /// Trains for `epochs` passes of minibatch SGD; returns the final
    /// epoch's mean loss.
    pub fn train_epochs(
        &mut self,
        data: &SyntheticVision,
        epochs: usize,
        batch: usize,
        lr: f32,
    ) -> f32 {
        let mut rng = StdRng::seed_from_u64(0xda7a);
        let mut last_loss = f32::NAN;
        let n = data.train().len();
        for _ in 0..epochs {
            let mut order: Vec<usize> = (0..n).collect();
            // Fisher-Yates shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0f32;
            for chunk in order.chunks(batch) {
                self.zero_grads();
                for &idx in chunk {
                    let s = &data.train()[idx];
                    let logits = self.forward_train(&s.image);
                    let (loss, grad) = Self::softmax_ce(&logits, s.label);
                    epoch_loss += loss;
                    self.backward(&grad);
                }
                self.sgd_step(lr / chunk.len() as f32);
            }
            last_loss = epoch_loss / n as f32;
        }
        last_loss
    }

    /// Top-1 accuracy over a sample set.
    #[must_use]
    pub fn accuracy(&mut self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| {
                let logits = self.forward(&s.image);
                crate::tensor::argmax_i64(
                    &logits.iter().map(|&v| (v * 1e6) as i64).collect::<Vec<_>>(),
                ) == s.label
            })
            .count();
        correct as f64 / samples.len() as f64
    }
}

fn he_normal(rng: &mut StdRng, fan_in: usize) -> f32 {
    // Box–Muller.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    z * (2.0 / fan_in as f32).sqrt()
}

fn build_layer(
    op: &OpSpec,
    input: TensorShape,
    rng: &mut StdRng,
) -> Result<(Layer, TensorShape), NnError> {
    let out = {
        // reuse spec inference via a one-op spec
        let tmp = ModelSpec { name: String::new(), input, ops: vec![op.clone()] };
        tmp.output_shape()?
    };
    let layer = match (op, input, out) {
        (
            OpSpec::Conv2d { out_c, k, stride, pad },
            TensorShape::Chw(ic, ih, iw),
            TensorShape::Chw(_, oh, ow),
        ) => {
            let fan_in = ic * k * k;
            let w = (0..out_c * fan_in).map(|_| he_normal(rng, fan_in)).collect();
            Layer::Conv2d {
                in_c: ic,
                out_c: *out_c,
                k: *k,
                stride: *stride,
                pad: *pad,
                in_hw: (ih, iw),
                out_hw: (oh, ow),
                w,
                b: vec![0.0; *out_c],
                dw: vec![0.0; out_c * fan_in],
                db: vec![0.0; *out_c],
                cache_in: Vec::new(),
            }
        }
        (OpSpec::Linear { out: of }, TensorShape::Flat(inf), _) => Layer::Linear {
            in_f: inf,
            out_f: *of,
            w: (0..of * inf).map(|_| he_normal(rng, inf)).collect(),
            b: vec![0.0; *of],
            dw: vec![0.0; of * inf],
            db: vec![0.0; *of],
            cache_in: Vec::new(),
        },
        (OpSpec::BatchNorm, TensorShape::Chw(c, h, w), _) => Layer::BatchNorm {
            c,
            spatial: h * w,
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            dgamma: vec![0.0; c],
            dbeta: vec![0.0; c],
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            cache_xhat: Vec::new(),
            cache_inv_std: Vec::new(),
        },
        (OpSpec::BatchNorm, TensorShape::Flat(_), _) => {
            return Err(NnError::InvalidSpec("BatchNorm on flat activations unsupported".into()))
        }
        (OpSpec::ReLU, ..) => Layer::Relu { cache_mask: Vec::new() },
        (
            OpSpec::MaxPool { k, stride, pad },
            TensorShape::Chw(c, ih, iw),
            TensorShape::Chw(_, oh, ow),
        ) => Layer::MaxPool {
            k: *k,
            stride: *stride,
            pad: *pad,
            c,
            in_hw: (ih, iw),
            out_hw: (oh, ow),
            cache_argmax: Vec::new(),
        },
        (
            OpSpec::AvgPool { k, stride, pad },
            TensorShape::Chw(c, ih, iw),
            TensorShape::Chw(_, oh, ow),
        ) => Layer::AvgPool {
            k: *k,
            stride: *stride,
            pad: *pad,
            c,
            in_hw: (ih, iw),
            out_hw: (oh, ow),
        },
        (OpSpec::GlobalAvgPool, TensorShape::Chw(c, h, w), _) => {
            Layer::GlobalAvgPool { c, in_hw: (h, w) }
        }
        (OpSpec::Flatten, ..) => Layer::Flatten,
        (OpSpec::Residual { main, shortcut }, shape, _) => {
            let mut ml = Vec::new();
            let mut cur = shape;
            for sub in main {
                let (l, o) = build_layer(sub, cur, rng)?;
                ml.push(l);
                cur = o;
            }
            let mut sl = Vec::new();
            let mut scur = shape;
            for sub in shortcut {
                let (l, o) = build_layer(sub, scur, rng)?;
                sl.push(l);
                scur = o;
            }
            Layer::Residual { main: ml, shortcut: sl }
        }
        (op, input, _) => {
            return Err(NnError::InvalidSpec(format!("cannot build {op:?} on input {input}")))
        }
    };
    Ok((layer, out))
}

/// Inference-mode forward through a single (non-residual) layer — used by
/// the quantizer's calibration pass, which handles residuals itself.
pub(crate) fn forward_one_eval(l: &mut Layer, x: Vec<f32>) -> Vec<f32> {
    forward_layer(l, x, false)
}

fn forward_layers(layers: &mut [Layer], mut x: Vec<f32>, train: bool) -> Vec<f32> {
    for l in layers {
        x = forward_layer(l, x, train);
    }
    x
}

#[allow(clippy::too_many_lines)]
fn forward_layer(l: &mut Layer, x: Vec<f32>, train: bool) -> Vec<f32> {
    match l {
        Layer::Conv2d { in_c, out_c, k, stride, pad, in_hw, out_hw, w, b, cache_in, .. } => {
            let (ih, iw) = *in_hw;
            let (oh, ow) = *out_hw;
            let mut out = vec![0.0f32; *out_c * oh * ow];
            for oc in 0..*out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b[oc];
                        for ic in 0..*in_c {
                            for ky in 0..*k {
                                let iy = (oy * *stride + ky) as i64 - *pad as i64;
                                if iy < 0 || iy >= ih as i64 {
                                    continue;
                                }
                                for kx in 0..*k {
                                    let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                    if ix < 0 || ix >= iw as i64 {
                                        continue;
                                    }
                                    acc += w[((oc * *in_c + ic) * *k + ky) * *k + kx]
                                        * x[(ic * ih + iy as usize) * iw + ix as usize];
                                }
                            }
                        }
                        out[(oc * oh + oy) * ow + ox] = acc;
                    }
                }
            }
            if train {
                *cache_in = x;
            }
            out
        }
        Layer::Linear { in_f, out_f, w, b, cache_in, .. } => {
            let mut out = vec![0.0f32; *out_f];
            for of in 0..*out_f {
                let row = &w[of * *in_f..(of + 1) * *in_f];
                let mut acc = b[of];
                for (wi, xi) in row.iter().zip(&x) {
                    acc += wi * xi;
                }
                out[of] = acc;
            }
            if train {
                *cache_in = x;
            }
            out
        }
        Layer::BatchNorm {
            c,
            spatial,
            gamma,
            beta,
            running_mean,
            running_var,
            cache_xhat,
            cache_inv_std,
            ..
        } => {
            let n = *spatial as f32;
            let mut out = vec![0.0f32; x.len()];
            if train {
                cache_xhat.resize(x.len(), 0.0);
                cache_inv_std.resize(*c, 0.0);
            }
            for ch in 0..*c {
                let slice = &x[ch * spatial.to_owned()..(ch + 1) * *spatial];
                let (mean, var) = if train {
                    let mean: f32 = slice.iter().sum::<f32>() / n;
                    let var: f32 = slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
                    running_mean[ch] = (1.0 - BN_MOMENTUM) * running_mean[ch] + BN_MOMENTUM * mean;
                    running_var[ch] = (1.0 - BN_MOMENTUM) * running_var[ch] + BN_MOMENTUM * var;
                    (mean, var)
                } else {
                    (running_mean[ch], running_var[ch])
                };
                let inv_std = 1.0 / (var + BN_EPS).sqrt();
                if train {
                    cache_inv_std[ch] = inv_std;
                }
                for (i, &v) in slice.iter().enumerate() {
                    let xhat = (v - mean) * inv_std;
                    if train {
                        cache_xhat[ch * spatial.to_owned() + i] = xhat;
                    }
                    out[ch * spatial.to_owned() + i] = gamma[ch] * xhat + beta[ch];
                }
            }
            out
        }
        Layer::Relu { cache_mask } => {
            if train {
                *cache_mask = x.iter().map(|&v| v > 0.0).collect();
            }
            x.into_iter().map(|v| v.max(0.0)).collect()
        }
        Layer::MaxPool { k, stride, pad, c, in_hw, out_hw, cache_argmax } => {
            let (ih, iw) = *in_hw;
            let (oh, ow) = *out_hw;
            let mut out = vec![0.0f32; *c * oh * ow];
            if train {
                cache_argmax.resize(out.len(), 0);
            }
            for ch in 0..*c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..*k {
                            let iy = (oy * *stride + ky) as i64 - *pad as i64;
                            if iy < 0 || iy >= ih as i64 {
                                continue;
                            }
                            for kx in 0..*k {
                                let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                if ix < 0 || ix >= iw as i64 {
                                    continue;
                                }
                                let idx = (ch * ih + iy as usize) * iw + ix as usize;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = (ch * oh + oy) * ow + ox;
                        out[o] = best;
                        if train {
                            cache_argmax[o] = best_idx;
                        }
                    }
                }
            }
            out
        }
        Layer::AvgPool { k, stride, pad, c, in_hw, out_hw } => {
            let (ih, iw) = *in_hw;
            let (oh, ow) = *out_hw;
            let norm = 1.0 / ((*k * *k) as f32);
            let mut out = vec![0.0f32; *c * oh * ow];
            for ch in 0..*c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..*k {
                            let iy = (oy * *stride + ky) as i64 - *pad as i64;
                            if iy < 0 || iy >= ih as i64 {
                                continue;
                            }
                            for kx in 0..*k {
                                let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                if ix < 0 || ix >= iw as i64 {
                                    continue;
                                }
                                acc += x[(ch * ih + iy as usize) * iw + ix as usize];
                            }
                        }
                        out[(ch * oh + oy) * ow + ox] = acc * norm;
                    }
                }
            }
            out
        }
        Layer::GlobalAvgPool { c, in_hw } => {
            let n = (in_hw.0 * in_hw.1) as f32;
            (0..*c)
                .map(|ch| {
                    x[ch * in_hw.0 * in_hw.1..(ch + 1) * in_hw.0 * in_hw.1].iter().sum::<f32>() / n
                })
                .collect()
        }
        Layer::Flatten => x,
        Layer::Residual { main, shortcut } => {
            let m = forward_layers(main, x.clone(), train);
            let s = if shortcut.is_empty() { x } else { forward_layers(shortcut, x, train) };
            m.iter().zip(&s).map(|(a, b)| a + b).collect()
        }
    }
}

fn backward_layers(layers: &mut [Layer], mut g: Vec<f32>) -> Vec<f32> {
    for l in layers.iter_mut().rev() {
        g = backward_layer(l, g);
    }
    g
}

#[allow(clippy::too_many_lines)]
fn backward_layer(l: &mut Layer, g: Vec<f32>) -> Vec<f32> {
    match l {
        Layer::Conv2d {
            in_c, out_c, k, stride, pad, in_hw, out_hw, w, dw, db, cache_in, ..
        } => {
            let (ih, iw) = *in_hw;
            let (oh, ow) = *out_hw;
            let x = cache_in;
            let mut gin = vec![0.0f32; *in_c * ih * iw];
            for oc in 0..*out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[(oc * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        db[oc] += go;
                        for ic in 0..*in_c {
                            for ky in 0..*k {
                                let iy = (oy * *stride + ky) as i64 - *pad as i64;
                                if iy < 0 || iy >= ih as i64 {
                                    continue;
                                }
                                for kx in 0..*k {
                                    let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                    if ix < 0 || ix >= iw as i64 {
                                        continue;
                                    }
                                    let widx = ((oc * *in_c + ic) * *k + ky) * *k + kx;
                                    let xidx = (ic * ih + iy as usize) * iw + ix as usize;
                                    dw[widx] += x[xidx] * go;
                                    gin[xidx] += w[widx] * go;
                                }
                            }
                        }
                    }
                }
            }
            gin
        }
        Layer::Linear { in_f, out_f, w, dw, db, cache_in, .. } => {
            let x = cache_in;
            let mut gin = vec![0.0f32; *in_f];
            for of in 0..*out_f {
                let go = g[of];
                db[of] += go;
                let row = &w[of * *in_f..(of + 1) * *in_f];
                let drow = &mut dw[of * *in_f..(of + 1) * *in_f];
                for i in 0..*in_f {
                    drow[i] += x[i] * go;
                    gin[i] += row[i] * go;
                }
            }
            gin
        }
        Layer::BatchNorm {
            c, spatial, gamma, dgamma, dbeta, cache_xhat, cache_inv_std, ..
        } => {
            let n = *spatial as f32;
            let mut gin = vec![0.0f32; g.len()];
            for ch in 0..*c {
                let base = ch * *spatial;
                let gslice = &g[base..base + *spatial];
                let xhat = &cache_xhat[base..base + *spatial];
                let sum_g: f32 = gslice.iter().sum();
                let sum_gx: f32 = gslice.iter().zip(xhat).map(|(a, b)| a * b).sum();
                dbeta[ch] += sum_g;
                dgamma[ch] += sum_gx;
                let scale = gamma[ch] * cache_inv_std[ch];
                for i in 0..*spatial {
                    gin[base + i] = scale * (gslice[i] - sum_g / n - xhat[i] * sum_gx / n);
                }
            }
            gin
        }
        Layer::Relu { cache_mask } => {
            g.into_iter().zip(cache_mask.iter()).map(|(v, &m)| if m { v } else { 0.0 }).collect()
        }
        Layer::MaxPool { c, in_hw, out_hw, cache_argmax, .. } => {
            let mut gin = vec![0.0f32; *c * in_hw.0 * in_hw.1];
            for (o, &go) in g.iter().enumerate() {
                gin[cache_argmax[o]] += go;
            }
            let _ = out_hw;
            gin
        }
        Layer::AvgPool { k, stride, pad, c, in_hw, out_hw } => {
            let (ih, iw) = *in_hw;
            let (oh, ow) = *out_hw;
            let norm = 1.0 / ((*k * *k) as f32);
            let mut gin = vec![0.0f32; *c * ih * iw];
            for ch in 0..*c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[(ch * oh + oy) * ow + ox] * norm;
                        for ky in 0..*k {
                            let iy = (oy * *stride + ky) as i64 - *pad as i64;
                            if iy < 0 || iy >= ih as i64 {
                                continue;
                            }
                            for kx in 0..*k {
                                let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                if ix < 0 || ix >= iw as i64 {
                                    continue;
                                }
                                gin[(ch * ih + iy as usize) * iw + ix as usize] += go;
                            }
                        }
                    }
                }
            }
            gin
        }
        Layer::GlobalAvgPool { c, in_hw } => {
            let n = in_hw.0 * in_hw.1;
            let mut gin = vec![0.0f32; *c * n];
            for ch in 0..*c {
                let go = g[ch] / n as f32;
                for v in &mut gin[ch * n..(ch + 1) * n] {
                    *v = go;
                }
            }
            gin
        }
        Layer::Flatten => g,
        Layer::Residual { main, shortcut } => {
            let gm = backward_layers(main, g.clone());
            let gs = if shortcut.is_empty() { g } else { backward_layers(shortcut, g) };
            gm.iter().zip(&gs).map(|(a, b)| a + b).collect()
        }
    }
}

fn zero_layer(l: &mut Layer) {
    match l {
        Layer::Conv2d { dw, db, .. } | Layer::Linear { dw, db, .. } => {
            dw.iter_mut().for_each(|v| *v = 0.0);
            db.iter_mut().for_each(|v| *v = 0.0);
        }
        Layer::BatchNorm { dgamma, dbeta, .. } => {
            dgamma.iter_mut().for_each(|v| *v = 0.0);
            dbeta.iter_mut().for_each(|v| *v = 0.0);
        }
        Layer::Residual { main, shortcut } => {
            main.iter_mut().for_each(zero_layer);
            shortcut.iter_mut().for_each(zero_layer);
        }
        _ => {}
    }
}

fn step_layer(l: &mut Layer, lr: f32) {
    match l {
        Layer::Conv2d { w, b, dw, db, .. } | Layer::Linear { w, b, dw, db, .. } => {
            for (wi, di) in w.iter_mut().zip(dw.iter()) {
                *wi -= lr * di;
            }
            for (bi, di) in b.iter_mut().zip(db.iter()) {
                *bi -= lr * di;
            }
        }
        Layer::BatchNorm { gamma, beta, dgamma, dbeta, .. } => {
            for (gi, di) in gamma.iter_mut().zip(dgamma.iter()) {
                *gi -= lr * di;
            }
            for (bi, di) in beta.iter_mut().zip(dbeta.iter()) {
                *bi -= lr * di;
            }
        }
        Layer::Residual { main, shortcut } => {
            main.iter_mut().for_each(|l| step_layer(l, lr));
            shortcut.iter_mut().for_each(|l| step_layer(l, lr));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticVision;
    use crate::zoo;

    #[test]
    fn forward_shapes() {
        let mut net = FloatNet::init(&zoo::tiny_cnn(4), 1).unwrap();
        let x = vec![0.1f32; 3 * 16 * 16];
        assert_eq!(net.forward(&x).len(), 4);
        let mut lenet = FloatNet::init(&zoo::lenet5(), 1).unwrap();
        assert_eq!(lenet.forward(&vec![0.0; 28 * 28]).len(), 10);
    }

    #[test]
    fn residual_net_forward() {
        let mut net = FloatNet::init(&zoo::tiny_resnet(4), 2).unwrap();
        assert_eq!(net.forward(&vec![0.2f32; 3 * 16 * 16]).len(), 4);
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let (loss, grad) = FloatNet::softmax_ce(&[1.0, 2.0, -1.0], 1);
        assert!(loss > 0.0);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
        assert!(grad[1] < 0.0);
    }

    /// Finite-difference gradient check on a small conv+fc net.
    #[test]
    fn gradients_match_finite_differences() {
        let spec = ModelSpec {
            name: "gc".into(),
            input: TensorShape::Chw(1, 5, 5),
            ops: vec![
                OpSpec::Conv2d { out_c: 2, k: 3, stride: 1, pad: 1 },
                OpSpec::ReLU,
                OpSpec::MaxPool { k: 2, stride: 2, pad: 0 },
                OpSpec::Flatten,
                OpSpec::Linear { out: 3 },
            ],
        };
        let mut net = FloatNet::init(&spec, 3).unwrap();
        let x: Vec<f32> = (0..25).map(|i| (i as f32 / 25.0) - 0.4).collect();
        let label = 2;

        // Analytic gradient for one conv weight and one linear weight.
        net.zero_grads();
        let logits = net.forward_train(&x);
        let (_, grad) = FloatNet::softmax_ce(&logits, label);
        net.backward(&grad);
        let (aw, al) = match (&net.layers[0], &net.layers[4]) {
            (Layer::Conv2d { dw, .. }, Layer::Linear { dw: dl, .. }) => (dw[4], dl[7]),
            _ => unreachable!(),
        };

        // Numeric gradient.
        let eps = 1e-3f32;
        let loss_at = |net: &mut FloatNet| {
            let logits = net.forward_train(&x);
            FloatNet::softmax_ce(&logits, label).0
        };
        let perturb_conv = |net: &mut FloatNet, d: f32| {
            if let Layer::Conv2d { w, .. } = &mut net.layers[0] {
                w[4] += d;
            }
        };
        perturb_conv(&mut net, eps);
        let lp = loss_at(&mut net);
        perturb_conv(&mut net, -2.0 * eps);
        let lm = loss_at(&mut net);
        perturb_conv(&mut net, eps);
        let num_w = (lp - lm) / (2.0 * eps);
        assert!((aw - num_w).abs() < 2e-2, "conv grad {aw} vs fd {num_w}");

        let perturb_lin = |net: &mut FloatNet, d: f32| {
            if let Layer::Linear { w, .. } = &mut net.layers[4] {
                w[7] += d;
            }
        };
        perturb_lin(&mut net, eps);
        let lp = loss_at(&mut net);
        perturb_lin(&mut net, -2.0 * eps);
        let lm = loss_at(&mut net);
        perturb_lin(&mut net, eps);
        let num_l = (lp - lm) / (2.0 * eps);
        assert!((al - num_l).abs() < 2e-2, "linear grad {al} vs fd {num_l}");
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let data = SyntheticVision::tiny(4, 11);
        let mut net = FloatNet::init(&zoo::tiny_cnn(4), 5).unwrap();
        let before = net.accuracy(data.test());
        let loss0 = net.train_epochs(&data, 1, 8, 0.05);
        let loss1 = net.train_epochs(&data, 3, 8, 0.05);
        assert!(loss1 < loss0, "loss did not decrease: {loss0} -> {loss1}");
        let after = net.accuracy(data.test());
        assert!(after > before.max(0.5), "accuracy {before} -> {after}");
    }

    use crate::spec::{ModelSpec, OpSpec, TensorShape};
}
