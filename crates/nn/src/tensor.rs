//! Minimal f32 tensor in CHW layout (single image; batching is a loop).

use serde::{Deserialize, Serialize};

/// A dense f32 tensor with an explicit shape, row-major.
///
/// The float training stack works on single examples in CHW layout; the
/// quantized and 2PC engines consume flattened views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from shape and data.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    #[must_use]
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape {shape:?} implies {n} elements, got {}", data.len());
        Tensor { shape, data }
    }

    /// All-zero tensor.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// The shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only data slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor into its raw storage.
    #[must_use]
    pub fn into_raw(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    #[must_use]
    pub fn reshaped(mut self, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape to {shape:?} changes element count");
        self.shape = shape;
        self
    }

    /// Largest-value index (argmax) — classification decision.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    #[must_use]
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

/// Argmax over a plain slice (shared by the integer engines).
///
/// # Panics
///
/// Panics if the slice is empty.
#[must_use]
pub fn argmax_i64(xs: &[i64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_reshape() {
        let t = Tensor::new(vec![2, 3], vec![0.0; 6]);
        assert_eq!(t.shape(), &[2, 3]);
        let t = t.reshaped(vec![3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "implies")]
    fn bad_length_panics() {
        let _ = Tensor::new(vec![2, 2], vec![0.0; 3]);
    }

    #[test]
    fn argmax_picks_first_max() {
        let t = Tensor::new(vec![4], vec![1.0, 5.0, 5.0, 2.0]);
        assert_eq!(t.argmax(), 1);
        assert_eq!(argmax_i64(&[3, -1, 9, 9]), 2);
    }
}
