//! Shape-level model specifications.
//!
//! A [`ModelSpec`] describes an architecture independent of its weights:
//! operator list, shapes, and derived cost figures (MACs, parameters,
//! ReLU/comparison counts). Everything downstream — float initialization,
//! quantization, the 2PC engine, the FPGA simulator's per-layer timing,
//! and communication estimates — is driven by the same spec, so the full
//! ImageNet-scale architectures (paper Tables 4–8) can be costed even where
//! running them functionally would need the real dataset.

use crate::NnError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of an activation flowing between operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorShape {
    /// Channel × height × width feature map.
    Chw(usize, usize, usize),
    /// Flat vector.
    Flat(usize),
}

impl TensorShape {
    /// Total element count.
    #[must_use]
    pub fn elements(self) -> usize {
        match self {
            TensorShape::Chw(c, h, w) => c * h * w,
            TensorShape::Flat(n) => n,
        }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorShape::Chw(c, h, w) => write!(f, "{c}x{h}x{w}"),
            TensorShape::Flat(n) => write!(f, "{n}"),
        }
    }
}

/// One operator in a model spec. Input channel/feature counts are inferred
/// during shape propagation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpSpec {
    /// 2D convolution (square kernel) with bias.
    Conv2d {
        /// Output channels.
        out_c: usize,
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        pad: usize,
    },
    /// Fully-connected layer with bias.
    Linear {
        /// Output features.
        out: usize,
    },
    /// Batch normalization over channels (folded into `BNReQ` when
    /// quantized, paper Sec. 5.1).
    BatchNorm,
    /// Rectified linear unit — `ABReLU` in the ciphertext domain.
    ReLU,
    /// Max pooling (comparison-based in 2PC; expensive, paper Sec. 6.5).
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side (padding participates with -inf).
        pad: usize,
    },
    /// Average pooling (AS-ALU only in 2PC; cheap).
    AvgPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        pad: usize,
    },
    /// Global average pooling to `C×1×1`.
    GlobalAvgPool,
    /// Flattens a feature map to a vector.
    Flatten,
    /// Residual block: `out = main(x) + shortcut(x)`; an empty shortcut is
    /// the identity.
    Residual {
        /// Main branch operators.
        main: Vec<OpSpec>,
        /// Shortcut branch operators (empty = identity).
        shortcut: Vec<OpSpec>,
    },
}

/// Coarse operator category used by cost models and the 2PC compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution (AS-GEMM bound).
    Conv,
    /// Fully connected (AS-GEMM bound).
    Linear,
    /// Batch norm / re-quantization (AS-ALU bound).
    BatchNorm,
    /// ReLU (Sec-COMM bound).
    Relu,
    /// Max pooling (Sec-COMM bound).
    MaxPool,
    /// Average pooling (AS-ALU bound).
    AvgPool,
    /// Global average pooling (AS-ALU bound).
    GlobalAvgPool,
    /// Residual addition (AS-ALU bound).
    Add,
    /// Layout-only op.
    Flatten,
}

/// Derived per-layer cost record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Hierarchical label, e.g. `"block3.main.conv1"`.
    pub label: String,
    /// Operator category.
    pub kind: LayerKind,
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Elements entering the operator.
    pub input_elems: u64,
    /// Elements leaving the operator.
    pub output_elems: u64,
    /// Weight (and bias) parameter count.
    pub weight_elems: u64,
    /// Secure comparisons the operator needs in 2PC (ReLU: one per output;
    /// MaxPool: `k·k − 1` per output).
    pub comparisons: u64,
}

/// A complete architecture description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"resnet18-imagenet"`.
    pub name: String,
    /// Input activation shape.
    pub input: TensorShape,
    /// Operator list.
    pub ops: Vec<OpSpec>,
}

impl ModelSpec {
    /// Propagates shapes through the network; returns the shape after each
    /// top-level operator.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if an operator cannot accept its
    /// inferred input shape.
    pub fn infer_shapes(&self) -> Result<Vec<TensorShape>, NnError> {
        let mut shapes = Vec::with_capacity(self.ops.len());
        let mut cur = self.input;
        for (i, op) in self.ops.iter().enumerate() {
            cur = infer_op(op, cur, &format!("op{i}"))?;
            shapes.push(cur);
        }
        Ok(shapes)
    }

    /// The final output shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] on shape-inference failure.
    pub fn output_shape(&self) -> Result<TensorShape, NnError> {
        Ok(*self.infer_shapes()?.last().unwrap_or(&self.input))
    }

    /// Per-layer cost records, depth-first through residual blocks.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] on shape-inference failure.
    pub fn layer_costs(&self) -> Result<Vec<LayerCost>, NnError> {
        let mut out = Vec::new();
        let mut cur = self.input;
        for (i, op) in self.ops.iter().enumerate() {
            cur = cost_op(op, cur, &format!("op{i}"), &mut out)?;
        }
        Ok(out)
    }

    /// Total multiply-accumulates for one inference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] on shape-inference failure.
    pub fn total_macs(&self) -> Result<u64, NnError> {
        Ok(self.layer_costs()?.iter().map(|l| l.macs).sum())
    }

    /// Total parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] on shape-inference failure.
    pub fn total_params(&self) -> Result<u64, NnError> {
        Ok(self.layer_costs()?.iter().map(|l| l.weight_elems).sum())
    }

    /// Total secure comparisons (ReLU + MaxPool) — the Sec-COMM workload.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] on shape-inference failure.
    pub fn total_comparisons(&self) -> Result<u64, NnError> {
        Ok(self.layer_costs()?.iter().map(|l| l.comparisons).sum())
    }

    /// Replaces every MaxPool with an AvgPool of the same geometry — the
    /// Sec. 6.5 structural optimization (Tables 6–8).
    #[must_use]
    pub fn with_avg_pooling(&self) -> ModelSpec {
        fn swap(ops: &[OpSpec]) -> Vec<OpSpec> {
            ops.iter()
                .map(|op| match op {
                    OpSpec::MaxPool { k, stride, pad } => {
                        OpSpec::AvgPool { k: *k, stride: *stride, pad: *pad }
                    }
                    OpSpec::Residual { main, shortcut } => {
                        OpSpec::Residual { main: swap(main), shortcut: swap(shortcut) }
                    }
                    other => other.clone(),
                })
                .collect()
        }
        ModelSpec {
            name: format!("{}-avgpool", self.name),
            input: self.input,
            ops: swap(&self.ops),
        }
    }
}

fn pool_out(h: usize, k: usize, stride: usize, pad: usize) -> usize {
    (h + 2 * pad - k) / stride + 1
}

fn infer_op(op: &OpSpec, input: TensorShape, label: &str) -> Result<TensorShape, NnError> {
    let invalid = |msg: String| Err(NnError::InvalidSpec(format!("{label}: {msg}")));
    match op {
        OpSpec::Conv2d { out_c, k, stride, pad } => match input {
            TensorShape::Chw(_, h, w) => {
                if h + 2 * pad < *k || w + 2 * pad < *k {
                    return invalid(format!("conv k={k} larger than padded input {h}x{w}"));
                }
                let oh = (h + 2 * pad - k) / stride + 1;
                let ow = (w + 2 * pad - k) / stride + 1;
                Ok(TensorShape::Chw(*out_c, oh, ow))
            }
            TensorShape::Flat(_) => invalid("conv needs a CHW input".into()),
        },
        OpSpec::Linear { out } => match input {
            TensorShape::Flat(_) => Ok(TensorShape::Flat(*out)),
            TensorShape::Chw(..) => invalid("linear needs a flat input (insert Flatten)".into()),
        },
        OpSpec::BatchNorm | OpSpec::ReLU => Ok(input),
        OpSpec::MaxPool { k, stride, pad } | OpSpec::AvgPool { k, stride, pad } => match input {
            TensorShape::Chw(c, h, w) => {
                if h + 2 * pad < *k || w + 2 * pad < *k {
                    return invalid(format!("pool k={k} larger than padded input {h}x{w}"));
                }
                Ok(TensorShape::Chw(
                    c,
                    pool_out(h, *k, *stride, *pad),
                    pool_out(w, *k, *stride, *pad),
                ))
            }
            TensorShape::Flat(_) => invalid("pool needs a CHW input".into()),
        },
        OpSpec::GlobalAvgPool => match input {
            TensorShape::Chw(c, _, _) => Ok(TensorShape::Chw(c, 1, 1)),
            TensorShape::Flat(_) => invalid("global pool needs a CHW input".into()),
        },
        OpSpec::Flatten => Ok(TensorShape::Flat(input.elements())),
        OpSpec::Residual { main, shortcut } => {
            let mut m = input;
            for (i, sub) in main.iter().enumerate() {
                m = infer_op(sub, m, &format!("{label}.main.{i}"))?;
            }
            let mut s = input;
            for (i, sub) in shortcut.iter().enumerate() {
                s = infer_op(sub, s, &format!("{label}.shortcut.{i}"))?;
            }
            if m != s {
                return invalid(format!("residual branch shapes differ: {m} vs {s}"));
            }
            Ok(m)
        }
    }
}

fn cost_op(
    op: &OpSpec,
    input: TensorShape,
    label: &str,
    out: &mut Vec<LayerCost>,
) -> Result<TensorShape, NnError> {
    let output = infer_op(op, input, label)?;
    let (in_e, out_e) = (input.elements() as u64, output.elements() as u64);
    match op {
        OpSpec::Conv2d { out_c, k, .. } => {
            let in_c = match input {
                TensorShape::Chw(c, _, _) => c,
                TensorShape::Flat(_) => unreachable!("validated by infer_op"),
            };
            let macs = out_e * (in_c * k * k) as u64;
            let weights = (out_c * in_c * k * k + out_c) as u64;
            out.push(LayerCost {
                label: label.to_owned(),
                kind: LayerKind::Conv,
                macs,
                input_elems: in_e,
                output_elems: out_e,
                weight_elems: weights,
                comparisons: 0,
            });
        }
        OpSpec::Linear { out: o } => {
            let macs = in_e * *o as u64;
            out.push(LayerCost {
                label: label.to_owned(),
                kind: LayerKind::Linear,
                macs,
                input_elems: in_e,
                output_elems: out_e,
                weight_elems: macs + *o as u64,
                comparisons: 0,
            });
        }
        OpSpec::BatchNorm => out.push(LayerCost {
            label: label.to_owned(),
            kind: LayerKind::BatchNorm,
            macs: in_e,
            input_elems: in_e,
            output_elems: out_e,
            weight_elems: 2 * channels(input) as u64,
            comparisons: 0,
        }),
        OpSpec::ReLU => out.push(LayerCost {
            label: label.to_owned(),
            kind: LayerKind::Relu,
            macs: 0,
            input_elems: in_e,
            output_elems: out_e,
            weight_elems: 0,
            comparisons: out_e,
        }),
        OpSpec::MaxPool { k, .. } => out.push(LayerCost {
            label: label.to_owned(),
            kind: LayerKind::MaxPool,
            macs: 0,
            input_elems: in_e,
            output_elems: out_e,
            weight_elems: 0,
            comparisons: out_e * (k * k - 1) as u64,
        }),
        OpSpec::AvgPool { k, .. } => out.push(LayerCost {
            label: label.to_owned(),
            kind: LayerKind::AvgPool,
            macs: out_e * (k * k) as u64,
            input_elems: in_e,
            output_elems: out_e,
            weight_elems: 0,
            comparisons: 0,
        }),
        OpSpec::GlobalAvgPool => out.push(LayerCost {
            label: label.to_owned(),
            kind: LayerKind::GlobalAvgPool,
            macs: in_e,
            input_elems: in_e,
            output_elems: out_e,
            weight_elems: 0,
            comparisons: 0,
        }),
        OpSpec::Flatten => out.push(LayerCost {
            label: label.to_owned(),
            kind: LayerKind::Flatten,
            macs: 0,
            input_elems: in_e,
            output_elems: out_e,
            weight_elems: 0,
            comparisons: 0,
        }),
        OpSpec::Residual { main, shortcut } => {
            let mut cur = input;
            for (i, sub) in main.iter().enumerate() {
                cur = cost_op(sub, cur, &format!("{label}.main.{i}"), out)?;
            }
            let mut s = input;
            for (i, sub) in shortcut.iter().enumerate() {
                s = cost_op(sub, s, &format!("{label}.shortcut.{i}"), out)?;
            }
            out.push(LayerCost {
                label: format!("{label}.add"),
                kind: LayerKind::Add,
                macs: out_e,
                input_elems: 2 * out_e,
                output_elems: out_e,
                weight_elems: 0,
                comparisons: 0,
            });
        }
    }
    Ok(output)
}

fn channels(shape: TensorShape) -> usize {
    match shape {
        TensorShape::Chw(c, _, _) => c,
        TensorShape::Flat(n) => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lenet_like() -> ModelSpec {
        ModelSpec {
            name: "test".into(),
            input: TensorShape::Chw(1, 28, 28),
            ops: vec![
                OpSpec::Conv2d { out_c: 6, k: 5, stride: 1, pad: 2 },
                OpSpec::ReLU,
                OpSpec::MaxPool { k: 2, stride: 2, pad: 0 },
                OpSpec::Conv2d { out_c: 16, k: 5, stride: 1, pad: 0 },
                OpSpec::ReLU,
                OpSpec::MaxPool { k: 2, stride: 2, pad: 0 },
                OpSpec::Flatten,
                OpSpec::Linear { out: 120 },
                OpSpec::ReLU,
                OpSpec::Linear { out: 10 },
            ],
        }
    }

    #[test]
    fn shape_inference_lenet() {
        let s = lenet_like();
        let shapes = s.infer_shapes().unwrap();
        assert_eq!(shapes[0], TensorShape::Chw(6, 28, 28));
        assert_eq!(shapes[2], TensorShape::Chw(6, 14, 14));
        assert_eq!(shapes[3], TensorShape::Chw(16, 10, 10));
        assert_eq!(shapes[5], TensorShape::Chw(16, 5, 5));
        assert_eq!(shapes[6], TensorShape::Flat(400));
        assert_eq!(s.output_shape().unwrap(), TensorShape::Flat(10));
    }

    #[test]
    fn conv_macs_formula() {
        let s = ModelSpec {
            name: "c".into(),
            input: TensorShape::Chw(3, 8, 8),
            ops: vec![OpSpec::Conv2d { out_c: 4, k: 3, stride: 1, pad: 1 }],
        };
        let c = &s.layer_costs().unwrap()[0];
        // 4 out-ch × 8×8 out-pix × 3 in-ch × 9 taps
        assert_eq!(c.macs, 4 * 64 * 27);
        assert_eq!(c.weight_elems, (4 * 3 * 9 + 4) as u64);
    }

    #[test]
    fn comparisons_count_relu_and_maxpool() {
        let s = lenet_like();
        let relu: u64 = s
            .layer_costs()
            .unwrap()
            .iter()
            .filter(|l| l.kind == LayerKind::Relu)
            .map(|l| l.comparisons)
            .sum();
        // ReLUs: 6*28*28 + 16*10*10 + 120 = 4704 + 1600 + 120.
        assert_eq!(relu, 4704 + 1600 + 120);
        let pool: u64 = s
            .layer_costs()
            .unwrap()
            .iter()
            .filter(|l| l.kind == LayerKind::MaxPool)
            .map(|l| l.comparisons)
            .sum();
        // 2×2 maxpool: 3 comparisons per output.
        assert_eq!(pool, 3 * (6 * 14 * 14 + 16 * 5 * 5));
    }

    #[test]
    fn residual_shapes_must_agree() {
        let bad = ModelSpec {
            name: "bad".into(),
            input: TensorShape::Chw(4, 8, 8),
            ops: vec![OpSpec::Residual {
                main: vec![OpSpec::Conv2d { out_c: 8, k: 3, stride: 1, pad: 1 }],
                shortcut: vec![],
            }],
        };
        assert!(matches!(bad.infer_shapes(), Err(NnError::InvalidSpec(_))));
    }

    #[test]
    fn residual_with_projection_ok() {
        let good = ModelSpec {
            name: "good".into(),
            input: TensorShape::Chw(4, 8, 8),
            ops: vec![OpSpec::Residual {
                main: vec![
                    OpSpec::Conv2d { out_c: 8, k: 3, stride: 2, pad: 1 },
                    OpSpec::BatchNorm,
                    OpSpec::ReLU,
                    OpSpec::Conv2d { out_c: 8, k: 3, stride: 1, pad: 1 },
                ],
                shortcut: vec![OpSpec::Conv2d { out_c: 8, k: 1, stride: 2, pad: 0 }],
            }],
        };
        assert_eq!(good.output_shape().unwrap(), TensorShape::Chw(8, 4, 4));
        // Costs include both branches plus the add.
        let kinds: Vec<LayerKind> = good.layer_costs().unwrap().iter().map(|l| l.kind).collect();
        assert!(kinds.contains(&LayerKind::Add));
        assert_eq!(kinds.iter().filter(|k| **k == LayerKind::Conv).count(), 3);
    }

    #[test]
    fn avg_pool_swap() {
        let s = lenet_like().with_avg_pooling();
        assert!(s.name.ends_with("-avgpool"));
        assert_eq!(s.total_comparisons().unwrap(), 4704 + 1600 + 120); // only ReLUs remain
    }

    #[test]
    fn invalid_pool_rejected() {
        let s = ModelSpec {
            name: "p".into(),
            input: TensorShape::Chw(1, 2, 2),
            ops: vec![OpSpec::MaxPool { k: 3, stride: 1, pad: 0 }],
        };
        assert!(s.infer_shapes().is_err());
    }
}
