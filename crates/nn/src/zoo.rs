//! The paper's model zoo as [`ModelSpec`]s.
//!
//! Exact geometry for the evaluated architectures (paper Sec. 5.2 / 6):
//! LeNet5 and AlexNet at MNIST/CIFAR scale, VGG16 and ResNet18 at CIFAR and
//! ImageNet scale, ResNet50 at ImageNet scale — plus small trainable
//! variants used for the in-repo accuracy experiments (see DESIGN.md on the
//! dataset substitution). All specs are plain data; pass them to
//! [`crate::float::FloatNet`], [`crate::quant::QuantModel`], the 2PC engine,
//! or the FPGA cost model.

use crate::spec::{ModelSpec, OpSpec, TensorShape};

use OpSpec::{BatchNorm, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool, ReLU, Residual};

fn conv(out_c: usize, k: usize, stride: usize, pad: usize) -> OpSpec {
    Conv2d { out_c, k, stride, pad }
}

fn maxpool(k: usize, stride: usize) -> OpSpec {
    MaxPool { k, stride, pad: 0 }
}

/// LeNet5 for MNIST (1×28×28 → 10 classes); the paper's small-size model.
#[must_use]
pub fn lenet5() -> ModelSpec {
    ModelSpec {
        name: "lenet5-mnist".into(),
        input: TensorShape::Chw(1, 28, 28),
        ops: vec![
            conv(6, 5, 1, 2),
            ReLU,
            maxpool(2, 2),
            conv(16, 5, 1, 0),
            ReLU,
            maxpool(2, 2),
            Flatten,
            Linear { out: 120 },
            ReLU,
            Linear { out: 84 },
            ReLU,
            Linear { out: 10 },
        ],
    }
}

/// Small-image AlexNet (the Falcon-lineage MNIST/CIFAR variant: the
/// stride-4 11×11 stem is kept, which shrinks the feature maps to 8×8
/// immediately — this is what makes AlexNet's 2PC communication tiny
/// compared to VGG16 at the same input size, paper Sec. 6.4).
///
/// # Panics
///
/// Panics if the input is smaller than 16×16.
#[must_use]
pub fn alexnet(input: TensorShape, classes: usize) -> ModelSpec {
    let name = match input {
        TensorShape::Chw(1, ..) => "alexnet-mnist",
        TensorShape::Chw(_, h, _) if h > 64 => "alexnet-large",
        _ => "alexnet-cifar10",
    };
    ModelSpec {
        name: name.into(),
        input,
        ops: vec![
            conv(96, 11, 4, 5),
            ReLU,
            MaxPool { k: 3, stride: 2, pad: 0 },
            conv(256, 5, 1, 2),
            ReLU,
            MaxPool { k: 3, stride: 2, pad: 0 },
            conv(384, 3, 1, 1),
            ReLU,
            conv(384, 3, 1, 1),
            ReLU,
            conv(256, 3, 1, 1),
            ReLU,
            Flatten,
            Linear { out: 256 },
            ReLU,
            Linear { out: 256 },
            ReLU,
            Linear { out: classes },
        ],
    }
}

/// AlexNet at MNIST geometry.
#[must_use]
pub fn alexnet_mnist() -> ModelSpec {
    alexnet(TensorShape::Chw(1, 28, 28), 10)
}

/// AlexNet at CIFAR10 geometry.
#[must_use]
pub fn alexnet_cifar() -> ModelSpec {
    alexnet(TensorShape::Chw(3, 32, 32), 10)
}

fn vgg_features() -> Vec<OpSpec> {
    let cfg: &[&[usize]] =
        &[&[64, 64], &[128, 128], &[256, 256, 256], &[512, 512, 512], &[512, 512, 512]];
    let mut ops = Vec::new();
    for stage in cfg {
        for &c in *stage {
            ops.push(conv(c, 3, 1, 1));
            ops.push(BatchNorm);
            ops.push(ReLU);
        }
        ops.push(maxpool(2, 2));
    }
    ops
}

/// VGG16 for CIFAR10: 13 conv layers + a single classifier layer, matching
/// the paper's CIFAR training setup ("only one linear layer for the final
/// output", Sec. 5.2).
#[must_use]
pub fn vgg16_cifar() -> ModelSpec {
    let mut ops = vgg_features();
    ops.push(Flatten);
    ops.push(Linear { out: 10 });
    ModelSpec { name: "vgg16-cifar10".into(), input: TensorShape::Chw(3, 32, 32), ops }
}

/// VGG16 for ImageNet (3×224×224 → 1000), full 4096-wide classifier.
#[must_use]
pub fn vgg16_imagenet() -> ModelSpec {
    let mut ops = vgg_features();
    ops.push(Flatten);
    ops.extend([Linear { out: 4096 }, ReLU, Linear { out: 4096 }, ReLU, Linear { out: 1000 }]);
    ModelSpec { name: "vgg16-imagenet".into(), input: TensorShape::Chw(3, 224, 224), ops }
}

/// A ResNet basic block (two 3×3 convs), with projection shortcut when the
/// geometry changes. The trailing ReLU (after the add) is appended by the
/// caller-visible spec.
fn basic_block(out_c: usize, stride: usize, project: bool) -> Vec<OpSpec> {
    let shortcut = if project { vec![conv(out_c, 1, stride, 0), BatchNorm] } else { vec![] };
    vec![
        Residual {
            main: vec![conv(out_c, 3, stride, 1), BatchNorm, ReLU, conv(out_c, 3, 1, 1), BatchNorm],
            shortcut,
        },
        ReLU,
    ]
}

/// A ResNet bottleneck block (1×1 → 3×3 → 1×1×4).
fn bottleneck_block(mid_c: usize, stride: usize, project: bool) -> Vec<OpSpec> {
    let out_c = 4 * mid_c;
    let shortcut = if project { vec![conv(out_c, 1, stride, 0), BatchNorm] } else { vec![] };
    vec![
        Residual {
            main: vec![
                conv(mid_c, 1, 1, 0),
                BatchNorm,
                ReLU,
                conv(mid_c, 3, stride, 1),
                BatchNorm,
                ReLU,
                conv(out_c, 1, 1, 0),
                BatchNorm,
            ],
            shortcut,
        },
        ReLU,
    ]
}

/// ResNet18 for ImageNet (3×224×224 → 1000).
#[must_use]
pub fn resnet18_imagenet() -> ModelSpec {
    let mut ops = vec![conv(64, 7, 2, 3), BatchNorm, ReLU, MaxPool { k: 3, stride: 2, pad: 1 }];
    for (stage, &c) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let project = block == 0 && stage > 0;
            ops.extend(basic_block(c, stride, project));
        }
    }
    ops.extend([GlobalAvgPool, Flatten, Linear { out: 1000 }]);
    ModelSpec { name: "resnet18-imagenet".into(), input: TensorShape::Chw(3, 224, 224), ops }
}

/// ResNet18 for CIFAR10 (3×32×32 → 10): 3×3 stem, no stem pooling.
#[must_use]
pub fn resnet18_cifar() -> ModelSpec {
    let mut ops = vec![conv(64, 3, 1, 1), BatchNorm, ReLU];
    for (stage, &c) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let project = block == 0 && stage > 0;
            ops.extend(basic_block(c, stride, project));
        }
    }
    ops.extend([GlobalAvgPool, Flatten, Linear { out: 10 }]);
    ModelSpec { name: "resnet18-cifar10".into(), input: TensorShape::Chw(3, 32, 32), ops }
}

/// ResNet50 for ImageNet (3×224×224 → 1000), the paper's large-size model
/// with "16 building blocks".
#[must_use]
pub fn resnet50_imagenet() -> ModelSpec {
    let mut ops = vec![conv(64, 7, 2, 3), BatchNorm, ReLU, MaxPool { k: 3, stride: 2, pad: 1 }];
    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (stage, &(c, blocks)) in stages.iter().enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let project = block == 0;
            ops.extend(bottleneck_block(c, stride, project));
        }
    }
    ops.extend([GlobalAvgPool, Flatten, Linear { out: 1000 }]);
    ModelSpec { name: "resnet50-imagenet".into(), input: TensorShape::Chw(3, 224, 224), ops }
}

/// A single ResNet50 bottleneck building block as a standalone spec —
/// used by the operator-wise profiling of paper Table 5 (its case study is
/// "the 6th building block", the second block of stage 2: 512×28×28 input,
/// 128-channel bottleneck, identity shortcut).
#[must_use]
pub fn resnet50_building_block6() -> ModelSpec {
    let mut ops = Vec::new();
    ops.extend(bottleneck_block(128, 1, false));
    ModelSpec { name: "resnet50-block6".into(), input: TensorShape::Chw(512, 28, 28), ops }
}

/// A small trainable CNN for the in-repo synthetic-dataset experiments
/// (3×16×16 input).
#[must_use]
pub fn tiny_cnn(classes: usize) -> ModelSpec {
    ModelSpec {
        name: "tiny-cnn".into(),
        input: TensorShape::Chw(3, 16, 16),
        ops: vec![
            conv(8, 3, 1, 1),
            ReLU,
            maxpool(2, 2),
            conv(16, 3, 1, 1),
            ReLU,
            maxpool(2, 2),
            Flatten,
            Linear { out: 32 },
            ReLU,
            Linear { out: classes },
        ],
    }
}

/// A small trainable CNN with BatchNorm and a residual block — exercises
/// every 2PC operator type (Conv, BNReQ, ABReLU, MaxPool, residual Add) at
/// test-friendly scale.
#[must_use]
pub fn tiny_resnet(classes: usize) -> ModelSpec {
    let mut ops = vec![conv(8, 3, 1, 1), BatchNorm, ReLU];
    ops.extend(basic_block(8, 1, false));
    ops.extend(basic_block(16, 2, true));
    ops.extend([GlobalAvgPool, Flatten, Linear { out: classes }]);
    ModelSpec { name: "tiny-resnet".into(), input: TensorShape::Chw(3, 16, 16), ops }
}

/// A small trainable CNN with AvgPool instead of MaxPool (the Sec. 6.5
/// comparison at trainable scale).
#[must_use]
pub fn tiny_cnn_avgpool(classes: usize) -> ModelSpec {
    let mut spec = tiny_cnn(classes);
    spec = spec.with_avg_pooling();
    spec.name = "tiny-cnn-avgpool".into();
    spec
}

/// All ImageNet-scale specs of the paper's evaluation, for sweep harnesses.
#[must_use]
pub fn imagenet_zoo() -> Vec<ModelSpec> {
    vec![resnet18_imagenet(), resnet50_imagenet(), vgg16_imagenet()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerKind;

    #[test]
    fn lenet5_shapes() {
        let s = lenet5();
        assert_eq!(s.output_shape().unwrap(), TensorShape::Flat(10));
        // Classic LeNet5 parameter count ≈ 61,706.
        assert_eq!(s.total_params().unwrap(), 61_706);
    }

    #[test]
    fn alexnet_output_dims() {
        assert_eq!(alexnet_mnist().output_shape().unwrap(), TensorShape::Flat(10));
        assert_eq!(alexnet_cifar().output_shape().unwrap(), TensorShape::Flat(10));
    }

    #[test]
    fn vgg16_has_13_convs_and_correct_output() {
        let s = vgg16_imagenet();
        let convs = s.layer_costs().unwrap().iter().filter(|l| l.kind == LayerKind::Conv).count();
        assert_eq!(convs, 13);
        assert_eq!(s.output_shape().unwrap(), TensorShape::Flat(1000));
        // VGG16 ImageNet ≈ 138.4 M params.
        let p = s.total_params().unwrap();
        assert!((138_000_000..139_000_000).contains(&p), "params={p}");
    }

    #[test]
    fn resnet18_imagenet_structure() {
        let s = resnet18_imagenet();
        assert_eq!(s.output_shape().unwrap(), TensorShape::Flat(1000));
        // Torchvision ResNet18 ≈ 11.69 M params.
        let p = s.total_params().unwrap();
        assert!((11_400_000..11_900_000).contains(&p), "params={p}");
        let convs = s.layer_costs().unwrap().iter().filter(|l| l.kind == LayerKind::Conv).count();
        assert_eq!(convs, 20); // 1 stem + 16 block convs + 3 projections
                               // ≈ 1.8 GMACs.
        let m = s.total_macs().unwrap();
        assert!((1_700_000_000..1_900_000_000).contains(&m), "macs={m}");
    }

    #[test]
    fn resnet50_imagenet_structure() {
        let s = resnet50_imagenet();
        assert_eq!(s.output_shape().unwrap(), TensorShape::Flat(1000));
        // Torchvision ResNet50 ≈ 25.6 M params.
        let p = s.total_params().unwrap();
        assert!((25_000_000..26_100_000).contains(&p), "params={p}");
        // 16 residual blocks (3+4+6+3).
        let adds = s.layer_costs().unwrap().iter().filter(|l| l.kind == LayerKind::Add).count();
        assert_eq!(adds, 16);
        // ≈ 4.1 GMACs.
        let m = s.total_macs().unwrap();
        assert!((3_900_000_000..4_300_000_000).contains(&m), "macs={m}");
    }

    #[test]
    fn vgg16_cifar_single_classifier() {
        let s = vgg16_cifar();
        let linears =
            s.layer_costs().unwrap().iter().filter(|l| l.kind == LayerKind::Linear).count();
        assert_eq!(linears, 1);
        assert_eq!(s.output_shape().unwrap(), TensorShape::Flat(10));
    }

    #[test]
    fn vgg16_has_more_pooling_comparisons_than_resnet50() {
        // The Sec. 6.1 observation: VGG16 contains more max-pooling than
        // ResNet50, degrading its relative 2PC performance.
        let vgg_pool: u64 = vgg16_imagenet()
            .layer_costs()
            .unwrap()
            .iter()
            .filter(|l| l.kind == LayerKind::MaxPool)
            .map(|l| l.comparisons)
            .sum();
        let rn_pool: u64 = resnet50_imagenet()
            .layer_costs()
            .unwrap()
            .iter()
            .filter(|l| l.kind == LayerKind::MaxPool)
            .map(|l| l.comparisons)
            .sum();
        assert!(vgg_pool > rn_pool, "vgg {vgg_pool} vs resnet {rn_pool}");
    }

    #[test]
    fn tiny_models_are_valid() {
        for s in [tiny_cnn(4), tiny_resnet(4), tiny_cnn_avgpool(4)] {
            assert_eq!(s.output_shape().unwrap(), TensorShape::Flat(4), "{}", s.name);
        }
    }

    #[test]
    fn avg_pool_swap_removes_pool_comparisons() {
        let s = resnet18_imagenet();
        let swapped = s.with_avg_pooling();
        let pool_cmp: u64 = swapped
            .layer_costs()
            .unwrap()
            .iter()
            .filter(|l| l.kind == LayerKind::MaxPool)
            .map(|l| l.comparisons)
            .sum();
        assert_eq!(pool_cmp, 0);
        assert!(swapped.total_comparisons().unwrap() < s.total_comparisons().unwrap());
    }
}
