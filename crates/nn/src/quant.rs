//! Post-training quantization and integer inference.
//!
//! Follows the paper's scheme (Sec. 5.1, after HAWQ-v3): symmetric
//! per-layer scales, BatchNorm folded into the preceding convolution, and
//! re-quantization by a **dyadic** multiplier — scale factor `I_m` and
//! truncation bits `I_e`, so that `y = (acc · I_m) >> I_e`. Dyadic requant
//! is what makes the ciphertext version possible: `BNReQ` becomes one P-C
//! multiplication plus a share truncation on the ring (paper Fig. 8 step ⑦).
//!
//! Two inference paths exist:
//!
//! * [`QuantModel::forward`] — the plaintext quantized model of Fig. 9(a):
//!   exact integer arithmetic with saturating activation clipping.
//! * [`QuantModel::forward_ring`] — the ciphertext-domain *pipeline
//!   simulation* of Fig. 9(c) in the stay-wide structure the engine uses:
//!   values live wrapped on the MAC ring `Q2`; ABReLU and max-pool
//!   decisions are made on the value's low `Q1` bits (the deterministic
//!   accuracy cliff of Tables 7–8 / Figs. 10–11); SecureML-style
//!   truncation noise (±1 LSB plus a rare `≈|x|/2^{Q2}` wrap) is injected
//!   stochastically. `forward_ring_exact` is the noise-free variant that
//!   the integration tests prove bit-identical to the real 2PC engine.

use crate::float::{FloatNet, Layer};
use crate::spec::TensorShape;
use crate::tensor::argmax_i64;
use crate::NnError;
use aq2pnn_ring::Ring;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Quantization hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight bit-width (paper: 8).
    pub weight_bits: u32,
    /// Activation bit-width of the plaintext quantized model (paper: 8,
    /// carried on a 12-bit ring which is then extended to 16).
    pub act_bits: u32,
    /// Bit-width of the dyadic multiplier `I_m`.
    pub mult_bits: u32,
}

impl QuantConfig {
    /// The paper's default: INT8 weights and activations, 16-bit `I_m`.
    #[must_use]
    pub fn int8() -> Self {
        QuantConfig { weight_bits: 8, act_bits: 8, mult_bits: 16 }
    }
}

/// A dyadic re-quantization factor `I_m / 2^{I_e}` (paper Sec. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requant {
    /// The integer multiplier `I_m`.
    pub mult: i64,
    /// The truncation bit count `I_e`.
    pub shift: u32,
}

impl Requant {
    /// Identity requantization.
    #[must_use]
    pub fn identity() -> Self {
        Requant { mult: 1, shift: 0 }
    }

    /// Best dyadic approximation of a positive real ratio with a
    /// `mult_bits`-bit multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Quantization`] if `ratio` is not finite and
    /// positive.
    pub fn from_ratio(ratio: f64, mult_bits: u32) -> Result<Self, NnError> {
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(NnError::Quantization(format!("requant ratio {ratio} must be positive")));
        }
        let target = 1i64 << (mult_bits - 1);
        let mut shift = 0u32;
        let mut scaled = ratio;
        while (scaled.round() as i64) < target / 2 && shift < 62 {
            scaled *= 2.0;
            shift += 1;
        }
        while scaled.round() as i64 >= target && shift > 0 {
            scaled /= 2.0;
            shift -= 1;
        }
        if scaled.round() as i64 >= target {
            return Err(NnError::Quantization(format!("requant ratio {ratio} too large")));
        }
        Ok(Requant { mult: scaled.round().max(1.0) as i64, shift })
    }

    /// Applies the requantization with flooring shift — the semantics of
    /// the 2PC truncation.
    #[must_use]
    pub fn apply(&self, acc: i64) -> i64 {
        (acc.wrapping_mul(self.mult)) >> self.shift
    }

    /// The real ratio this dyadic pair approximates.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.mult as f64 / (1u64 << self.shift) as f64
    }
}

/// One operator of a quantized model. Weights are BN-folded integers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantOp {
    /// Convolution + folded BN + requantization (`2PC-Conv2D` + `2PC-BNReQ`).
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Input spatial dims.
        in_hw: (usize, usize),
        /// Output spatial dims.
        out_hw: (usize, usize),
        /// Quantized weights `[out_c × in_c × k × k]`.
        w: Vec<i64>,
        /// Quantized bias (at accumulator scale).
        bias: Vec<i64>,
        /// Output requantization.
        requant: Requant,
    },
    /// Fully connected + requantization.
    Linear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Quantized weights `[out_f × in_f]`.
        w: Vec<i64>,
        /// Quantized bias (at accumulator scale).
        bias: Vec<i64>,
        /// Output requantization.
        requant: Requant,
    },
    /// ReLU (→ ABReLU in 2PC).
    Relu,
    /// Max pooling (→ SCM comparisons in 2PC).
    MaxPool {
        /// Window.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Channels.
        c: usize,
        /// Input spatial dims.
        in_hw: (usize, usize),
        /// Output spatial dims.
        out_hw: (usize, usize),
    },
    /// Average pooling: sum then dyadic division (AS-ALU only in 2PC).
    AvgPool {
        /// Window.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Channels.
        c: usize,
        /// Input spatial dims.
        in_hw: (usize, usize),
        /// Output spatial dims.
        out_hw: (usize, usize),
        /// Dyadic `1/k²`.
        requant: Requant,
    },
    /// Global average pooling: sum then dyadic division.
    GlobalAvgPool {
        /// Channels.
        c: usize,
        /// Input spatial dims.
        in_hw: (usize, usize),
        /// Dyadic `1/(h·w)`.
        requant: Requant,
    },
    /// Layout change only.
    Flatten,
    /// Pure rescale between activation scales (AS-ALU mul + truncate).
    Rescale {
        /// The dyadic scale change.
        requant: Requant,
    },
    /// Residual block; both branches are requantized to a common output
    /// scale before the add.
    Residual {
        /// Main branch.
        main: Vec<QuantOp>,
        /// Shortcut branch (already includes its rescale; empty means the
        /// identity was rescaled via `shortcut_rescale`).
        shortcut: Vec<QuantOp>,
    },
}

/// A quantized model: integer ops plus input/output scales.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantModel {
    /// Architecture name (from the spec).
    pub name: String,
    /// Input shape.
    pub input_shape: TensorShape,
    /// The operator list.
    pub ops: Vec<QuantOp>,
    /// Input activation scale (float = int × scale).
    pub input_scale: f32,
    /// Output logit scale.
    pub output_scale: f32,
    /// Activation bit-width.
    pub act_bits: u32,
    /// Weight bit-width.
    pub weight_bits: u32,
}

fn qmax(bits: u32) -> i64 {
    (1i64 << (bits - 1)) - 1
}

/// Quantizes a float image with a public input scale, clamping to the
/// signed `bits`-bit range — the standalone form of
/// [`QuantModel::quantize_input`], usable without holding the full model
/// (e.g. by a prepared-model runner that only retains the scale).
#[must_use]
pub fn quantize_image(image: &[f32], input_scale: f32, act_bits: u32) -> Vec<i64> {
    let q = qmax(act_bits);
    image.iter().map(|&v| ((v / input_scale).round() as i64).clamp(-q - 1, q)).collect()
}

impl QuantModel {
    /// Quantizes a trained float network using calibration images to set
    /// the activation scales (post-training quantization, paper Sec. 5.1).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Quantization`] on degenerate calibration ranges
    /// and [`NnError::InvalidSpec`] for unsupported structures (e.g. a
    /// BatchNorm not preceded by a convolution).
    pub fn quantize(
        net: &FloatNet,
        calibration: &[Vec<f32>],
        cfg: &QuantConfig,
    ) -> Result<QuantModel, NnError> {
        if calibration.is_empty() {
            return Err(NnError::Quantization("empty calibration set".into()));
        }
        // Collect per-layer max-abs activations (DFS order, residual adds
        // get their own entry).
        let mut net = net.clone();
        let mut ranges: Vec<f32> = Vec::new();
        let mut input_max = 0f32;
        for img in calibration {
            input_max = input_max.max(img.iter().fold(0f32, |m, &v| m.max(v.abs())));
            let mut local = Vec::new();
            let _ = collect_ranges(&mut net.layers, img.clone(), &mut local);
            if ranges.is_empty() {
                ranges = local;
            } else {
                for (r, l) in ranges.iter_mut().zip(local) {
                    *r = r.max(l);
                }
            }
        }
        let input_scale = scale_for(input_max, cfg.act_bits)?;

        let mut idx = 0usize;
        let (ops, output_scale) =
            quantize_layers(&net.layers, &ranges, &mut idx, input_scale, cfg)?;
        Ok(QuantModel {
            name: net.spec().name.clone(),
            input_shape: net.spec().input,
            ops,
            input_scale,
            output_scale,
            act_bits: cfg.act_bits,
            weight_bits: cfg.weight_bits,
        })
    }

    /// Quantizes a float image to the model's integer input domain.
    #[must_use]
    pub fn quantize_input(&self, image: &[f32]) -> Vec<i64> {
        quantize_image(image, self.input_scale, self.act_bits)
    }

    /// Plaintext integer inference: quantize input, run ops, return integer
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the image has the wrong size.
    pub fn forward(&self, image: &[f32]) -> Result<Vec<i64>, NnError> {
        self.forward_int(&self.quantize_input(image))
    }

    /// Integer inference from an already-quantized input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input has the wrong size.
    pub fn forward_int(&self, input: &[i64]) -> Result<Vec<i64>, NnError> {
        if input.len() != self.input_shape.elements() {
            return Err(NnError::ShapeMismatch {
                op: "forward_int".into(),
                expected: vec![self.input_shape.elements()],
                actual: vec![input.len()],
            });
        }
        let clip = qmax(self.act_bits);
        Ok(run_ops(&self.ops, input.to_vec(), &mut Saturate { clip }))
    }

    /// Ciphertext-pipeline simulation (see module docs): activations on a
    /// `q1_bits` carrier ring, extended to `q2_bits` for convolution, with
    /// the local share-extension and share-truncation failure modes
    /// injected stochastically at their analytic rates.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the image has the wrong size.
    pub fn forward_ring(
        &self,
        image: &[f32],
        q1_bits: u32,
        q2_bits: u32,
        seed: u64,
    ) -> Result<Vec<i64>, NnError> {
        if image.len() != self.input_shape.elements() {
            return Err(NnError::ShapeMismatch {
                op: "forward_ring".into(),
                expected: vec![self.input_shape.elements()],
                actual: vec![image.len()],
            });
        }
        let mut sim = RingSim {
            q1: Ring::new(q1_bits),
            q2: Ring::new(q2_bits),
            rng: StdRng::seed_from_u64(seed),
        };
        let input = self.quantize_input(image);
        // Wrap the input onto the carrier ring first.
        let x: Vec<i64> = input.iter().map(|&v| sim.wrap_q1(v)).collect();
        Ok(run_ops(&self.ops, x, &mut sim))
    }

    /// Deterministic ciphertext-ring reference: like the 2PC engine with
    /// exact share conversions — accumulators wrap on `Q2 = 2^{q2_bits}`,
    /// activations wrap on `Q1 = 2^{q1_bits}`, no stochastic failures.
    /// Bit-identical to `aq2pnn`'s engine under `ProtocolConfig::exact`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the image has the wrong size.
    pub fn forward_ring_exact(
        &self,
        image: &[f32],
        q1_bits: u32,
        q2_bits: u32,
    ) -> Result<Vec<i64>, NnError> {
        if image.len() != self.input_shape.elements() {
            return Err(NnError::ShapeMismatch {
                op: "forward_ring_exact".into(),
                expected: vec![self.input_shape.elements()],
                actual: vec![image.len()],
            });
        }
        let mut policy = WrapExact { q1: Ring::new(q1_bits), q2: Ring::new(q2_bits) };
        let input = self.quantize_input(image);
        let x: Vec<i64> = input.iter().map(|&v| policy.on_activation(v)).collect();
        Ok(run_ops(&self.ops, x, &mut policy))
    }

    /// Top-1 accuracy of plaintext integer inference.
    #[must_use]
    pub fn accuracy(&self, samples: &[crate::data::Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.forward(&s.image).map(|l| argmax_i64(&l) == s.label).unwrap_or(false))
            .count();
        correct as f64 / samples.len() as f64
    }

    /// Top-1 accuracy of the ciphertext-pipeline simulation at the given
    /// ring widths.
    #[must_use]
    pub fn accuracy_ring(&self, samples: &[crate::data::Sample], q1: u32, q2: u32) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                self.forward_ring(&s.image, q1, q2, *i as u64)
                    .map(|l| argmax_i64(&l) == s.label)
                    .unwrap_or(false)
            })
            .count();
        correct as f64 / samples.len() as f64
    }
}

fn scale_for(max_abs: f32, bits: u32) -> Result<f32, NnError> {
    if !max_abs.is_finite() || max_abs <= 0.0 {
        return Err(NnError::Quantization(format!("degenerate activation range {max_abs}")));
    }
    Ok(max_abs / qmax(bits) as f32)
}

/// Runs the float layers, recording max-abs after every layer (and after
/// residual adds). Must visit layers in exactly the order
/// [`quantize_layers`] walks them.
fn collect_ranges(layers: &mut [Layer], x: Vec<f32>, out: &mut Vec<f32>) -> Vec<f32> {
    let mut cur = x;
    for l in layers {
        cur = match l {
            Layer::Residual { main, shortcut } => {
                let m = collect_ranges(main, cur.clone(), out);
                let s = if shortcut.is_empty() { cur } else { collect_ranges(shortcut, cur, out) };
                let sum: Vec<f32> = m.iter().zip(&s).map(|(a, b)| a + b).collect();
                out.push(max_abs(&sum));
                sum
            }
            other => {
                let y = forward_eval(other, cur);
                out.push(max_abs(&y));
                y
            }
        };
    }
    cur
}

fn forward_eval(l: &mut Layer, x: Vec<f32>) -> Vec<f32> {
    // Reuse the float stack's inference path through a one-layer slice.
    crate::float::forward_one_eval(l, x)
}

fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0f32, |m, &v| m.max(v.abs()))
}

/// Walks float layers and calibration ranges, emitting quantized ops.
/// Returns the ops and the output activation scale.
fn quantize_layers(
    layers: &[Layer],
    ranges: &[f32],
    idx: &mut usize,
    in_scale: f32,
    cfg: &QuantConfig,
) -> Result<(Vec<QuantOp>, f32), NnError> {
    let mut ops = Vec::new();
    let mut scale = in_scale;
    let mut i = 0usize;
    while i < layers.len() {
        match &layers[i] {
            Layer::Conv2d { in_c, out_c, k, stride, pad, in_hw, out_hw, w, b, .. } => {
                // Fold a directly-following BatchNorm.
                let (wf, bf, consumed) =
                    if let Some(Layer::BatchNorm {
                        gamma, beta, running_mean, running_var, ..
                    }) = layers.get(i + 1)
                    {
                        let mut wf = w.clone();
                        let mut bf = b.clone();
                        let fan = in_c * k * k;
                        for oc in 0..*out_c {
                            let inv = gamma[oc] / (running_var[oc] + 1e-5).sqrt();
                            for wi in &mut wf[oc * fan..(oc + 1) * fan] {
                                *wi *= inv;
                            }
                            bf[oc] = (bf[oc] - running_mean[oc]) * inv + beta[oc];
                        }
                        (wf, bf, 2)
                    } else {
                        (w.clone(), b.clone(), 1)
                    };
                // Output range: after BN if folded.
                let out_range = ranges[*idx + consumed - 1];
                *idx += consumed;
                let out_scale = scale_for(out_range, cfg.act_bits)?;
                let w_scale = scale_for(max_abs(&wf).max(1e-12), cfg.weight_bits)?;
                let wq: Vec<i64> = wf.iter().map(|&v| (v / w_scale).round() as i64).collect();
                let bq: Vec<i64> =
                    bf.iter().map(|&v| (v / (w_scale * scale)).round() as i64).collect();
                let requant =
                    Requant::from_ratio(f64::from(w_scale * scale / out_scale), cfg.mult_bits)?;
                ops.push(QuantOp::Conv2d {
                    in_c: *in_c,
                    out_c: *out_c,
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    in_hw: *in_hw,
                    out_hw: *out_hw,
                    w: wq,
                    bias: bq,
                    requant,
                });
                scale = out_scale;
                i += consumed;
            }
            Layer::Linear { in_f, out_f, w, b, .. } => {
                let out_range = ranges[*idx];
                *idx += 1;
                let out_scale = scale_for(out_range, cfg.act_bits)?;
                let w_scale = scale_for(max_abs(w).max(1e-12), cfg.weight_bits)?;
                let wq: Vec<i64> = w.iter().map(|&v| (v / w_scale).round() as i64).collect();
                let bq: Vec<i64> =
                    b.iter().map(|&v| (v / (w_scale * scale)).round() as i64).collect();
                let requant =
                    Requant::from_ratio(f64::from(w_scale * scale / out_scale), cfg.mult_bits)?;
                ops.push(QuantOp::Linear { in_f: *in_f, out_f: *out_f, w: wq, bias: bq, requant });
                scale = out_scale;
                i += 1;
            }
            Layer::BatchNorm { .. } => {
                return Err(NnError::InvalidSpec(
                    "BatchNorm must directly follow a convolution for BNReQ folding".into(),
                ));
            }
            Layer::Relu { .. } => {
                *idx += 1;
                ops.push(QuantOp::Relu);
                i += 1;
            }
            Layer::MaxPool { k, stride, pad, c, in_hw, out_hw, .. } => {
                *idx += 1;
                ops.push(QuantOp::MaxPool {
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    c: *c,
                    in_hw: *in_hw,
                    out_hw: *out_hw,
                });
                i += 1;
            }
            Layer::AvgPool { k, stride, pad, c, in_hw, out_hw } => {
                *idx += 1;
                let requant = Requant::from_ratio(1.0 / (*k * *k) as f64, cfg.mult_bits)?;
                ops.push(QuantOp::AvgPool {
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    c: *c,
                    in_hw: *in_hw,
                    out_hw: *out_hw,
                    requant,
                });
                i += 1;
            }
            Layer::GlobalAvgPool { c, in_hw } => {
                *idx += 1;
                let requant = Requant::from_ratio(1.0 / (in_hw.0 * in_hw.1) as f64, cfg.mult_bits)?;
                ops.push(QuantOp::GlobalAvgPool { c: *c, in_hw: *in_hw, requant });
                i += 1;
            }
            Layer::Flatten => {
                *idx += 1;
                ops.push(QuantOp::Flatten);
                i += 1;
            }
            Layer::Residual { main, shortcut } => {
                let (main_ops, main_scale) = quantize_layers(main, ranges, idx, scale, cfg)?;
                let (mut short_ops, short_scale) = if shortcut.is_empty() {
                    (Vec::new(), scale)
                } else {
                    quantize_layers(shortcut, ranges, idx, scale, cfg)?
                };
                // The add's calibrated output scale.
                let add_range = ranges[*idx];
                *idx += 1;
                let out_scale = scale_for(add_range, cfg.act_bits)?;
                let mut main_ops = main_ops;
                main_ops.push(QuantOp::Rescale {
                    requant: Requant::from_ratio(f64::from(main_scale / out_scale), cfg.mult_bits)?,
                });
                short_ops.push(QuantOp::Rescale {
                    requant: Requant::from_ratio(
                        f64::from(short_scale / out_scale),
                        cfg.mult_bits,
                    )?,
                });
                ops.push(QuantOp::Residual { main: main_ops, shortcut: short_ops });
                scale = out_scale;
                i += 1;
            }
        }
    }
    Ok((ops, scale))
}

/// Post-accumulation / post-requant value policy — saturating (plaintext)
/// or ring-wrapping with failure injection (ciphertext simulation).
trait ValuePolicy {
    /// Applied to each accumulator before requantization.
    fn on_accum(&mut self, acc: i64) -> i64;
    /// Applied to each value after requantization.
    fn on_activation(&mut self, v: i64) -> i64;
    /// Applied to each value entering a MAC-heavy op (ring extension point).
    fn on_extend(&mut self, v: i64) -> i64;
    /// Applied to each residual-add output (carrier-ring wrap point).
    fn on_residual(&mut self, v: i64) -> i64 {
        v
    }
    /// The ReLU decision — ABReLU compares the value's low `Q1` bits, so
    /// ring policies evaluate the sign of the *narrowed* value.
    fn relu_positive(&mut self, v: i64) -> bool {
        v > 0
    }
    /// The max-pool pairwise decision (`a` wins over `b`), likewise made
    /// on the narrowed difference in the ciphertext domain.
    fn max_prefer_first(&mut self, a: i64, b: i64) -> bool {
        a > b
    }
}

struct Saturate {
    clip: i64,
}

impl ValuePolicy for Saturate {
    fn on_accum(&mut self, acc: i64) -> i64 {
        acc
    }
    fn on_activation(&mut self, v: i64) -> i64 {
        v.clamp(-self.clip - 1, self.clip)
    }
    fn on_extend(&mut self, v: i64) -> i64 {
        v
    }
}

/// Deterministic ciphertext-ring reference for the (default) stay-wide
/// pipeline: values live wrapped on `Q2`; ABReLU / max-pool decisions are
/// made on the value's low `Q1` bits; share conversions are exact. This
/// is bit-identical to the 2PC engine configured with
/// `ProtocolConfig::exact(q1)` — the integration tests assert it.
struct WrapExact {
    q1: Ring,
    q2: Ring,
}

impl WrapExact {
    fn wrap2(&self, v: i64) -> i64 {
        self.q2.decode_signed(self.q2.encode_signed_wrapping(v))
    }
    fn narrow1(&self, v: i64) -> i64 {
        self.q1.decode_signed(self.q1.encode_signed_wrapping(v))
    }
}

impl ValuePolicy for WrapExact {
    fn on_accum(&mut self, acc: i64) -> i64 {
        self.wrap2(acc)
    }
    fn on_activation(&mut self, v: i64) -> i64 {
        self.wrap2(v)
    }
    fn on_extend(&mut self, v: i64) -> i64 {
        v
    }
    fn on_residual(&mut self, v: i64) -> i64 {
        self.wrap2(v)
    }
    fn relu_positive(&mut self, v: i64) -> bool {
        self.narrow1(v) > 0
    }
    fn max_prefer_first(&mut self, a: i64, b: i64) -> bool {
        self.narrow1(a.wrapping_sub(b)) > 0
    }
}

/// The ciphertext-pipeline simulator (Fig. 9(c) with failure injection).
struct RingSim {
    q1: Ring,
    q2: Ring,
    rng: StdRng,
}

impl RingSim {
    fn wrap_q1(&self, v: i64) -> i64 {
        self.q1.decode_signed(self.q1.encode_signed_wrapping(v))
    }
    fn wrap_q2(&self, v: i64) -> i64 {
        self.q2.decode_signed(self.q2.encode_signed_wrapping(v))
    }
}

impl ValuePolicy for RingSim {
    fn on_accum(&mut self, acc: i64) -> i64 {
        // The accumulator lives on Q2: overflow wraps deterministically.
        self.wrap_q2(acc)
    }

    fn on_activation(&mut self, v: i64) -> i64 {
        // Stay-wide pipeline: the value remains on Q2 after BNReQ.
        // SecureML local truncation adds ±1 LSB half the time, plus a
        // rare catastrophic wrap with probability ≈ |v|/Q2 (the BNReQ
        // widening/truncation failure mass).
        let mut v = self.wrap_q2(v);
        if self.rng.gen::<bool>() {
            let delta = if self.rng.gen::<bool>() { 1 } else { -1 };
            v = self.wrap_q2(v + delta);
        }
        let p = (v.unsigned_abs() + 1) as f64 / self.q2.modulus() as f64;
        if self.rng.gen::<f64>() < p {
            let half = 1i64 << (self.q2.bits() - 1);
            v = self.wrap_q2(v + if v >= 0 { -half } else { half });
        }
        v
    }

    fn on_residual(&mut self, v: i64) -> i64 {
        self.wrap_q2(v)
    }

    fn on_extend(&mut self, v: i64) -> i64 {
        // Stay-wide: no per-activation share extension ever happens.
        v
    }

    fn relu_positive(&mut self, v: i64) -> bool {
        // ABReLU compares the low Q1 bits — the deterministic cliff.
        self.wrap_q1(v) > 0
    }

    fn max_prefer_first(&mut self, a: i64, b: i64) -> bool {
        self.wrap_q1(a.wrapping_sub(b)) > 0
    }
}

#[allow(clippy::too_many_lines)]
fn run_ops<P: ValuePolicy>(ops: &[QuantOp], mut x: Vec<i64>, policy: &mut P) -> Vec<i64> {
    for op in ops {
        x = match op {
            QuantOp::Conv2d { in_c, out_c, k, stride, pad, in_hw, out_hw, w, bias, requant } => {
                let xin: Vec<i64> = x.iter().map(|&v| policy.on_extend(v)).collect();
                let (ih, iw) = *in_hw;
                let (oh, ow) = *out_hw;
                let mut out = vec![0i64; *out_c * oh * ow];
                for oc in 0..*out_c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = bias[oc];
                            for ic in 0..*in_c {
                                for ky in 0..*k {
                                    let iy = (oy * *stride + ky) as i64 - *pad as i64;
                                    if iy < 0 || iy >= ih as i64 {
                                        continue;
                                    }
                                    for kx in 0..*k {
                                        let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                        if ix < 0 || ix >= iw as i64 {
                                            continue;
                                        }
                                        acc += w[((oc * *in_c + ic) * *k + ky) * *k + kx]
                                            * xin[(ic * ih + iy as usize) * iw + ix as usize];
                                    }
                                }
                            }
                            let acc = policy.on_accum(acc);
                            out[(oc * oh + oy) * ow + ox] =
                                policy.on_activation(requant.apply(acc));
                        }
                    }
                }
                out
            }
            QuantOp::Linear { in_f, out_f, w, bias, requant } => {
                let xin: Vec<i64> = x.iter().map(|&v| policy.on_extend(v)).collect();
                let mut out = vec![0i64; *out_f];
                for of in 0..*out_f {
                    let mut acc = bias[of];
                    for (wi, xi) in w[of * *in_f..(of + 1) * *in_f].iter().zip(&xin) {
                        acc += wi * xi;
                    }
                    let acc = policy.on_accum(acc);
                    out[of] = policy.on_activation(requant.apply(acc));
                }
                out
            }
            QuantOp::Relu => {
                x.into_iter().map(|v| if policy.relu_positive(v) { v } else { 0 }).collect()
            }
            QuantOp::MaxPool { k, stride, pad, c, in_hw, out_hw } => {
                // Same pairing tournament the 2PC engine runs, so ring
                // policies agree bit for bit even when comparisons wrap.
                let (ih, iw) = *in_hw;
                let (oh, ow) = *out_hw;
                let mut out = vec![0i64; *c * oh * ow];
                for ch in 0..*c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut window = Vec::with_capacity(*k * *k);
                            for ky in 0..*k {
                                let iy = (oy * *stride + ky) as i64 - *pad as i64;
                                if iy < 0 || iy >= ih as i64 {
                                    continue;
                                }
                                for kx in 0..*k {
                                    let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                    if ix < 0 || ix >= iw as i64 {
                                        continue;
                                    }
                                    window.push(x[(ch * ih + iy as usize) * iw + ix as usize]);
                                }
                            }
                            while window.len() > 1 {
                                let mut next = Vec::with_capacity(window.len() / 2 + 1);
                                for pair in window.chunks(2) {
                                    if pair.len() == 2 {
                                        let first = policy.max_prefer_first(pair[0], pair[1]);
                                        next.push(if first { pair[0] } else { pair[1] });
                                    } else {
                                        next.push(pair[0]);
                                    }
                                }
                                window = next;
                            }
                            out[(ch * oh + oy) * ow + ox] = window[0];
                        }
                    }
                }
                out
            }
            QuantOp::AvgPool { k, stride, pad, c, in_hw, out_hw, requant } => {
                let (ih, iw) = *in_hw;
                let (oh, ow) = *out_hw;
                let mut out = vec![0i64; *c * oh * ow];
                for ch in 0..*c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = 0i64;
                            for ky in 0..*k {
                                let iy = (oy * *stride + ky) as i64 - *pad as i64;
                                if iy < 0 || iy >= ih as i64 {
                                    continue;
                                }
                                for kx in 0..*k {
                                    let ix = (ox * *stride + kx) as i64 - *pad as i64;
                                    if ix < 0 || ix >= iw as i64 {
                                        continue;
                                    }
                                    acc += x[(ch * ih + iy as usize) * iw + ix as usize];
                                }
                            }
                            out[(ch * oh + oy) * ow + ox] =
                                policy.on_activation(requant.apply(acc));
                        }
                    }
                }
                out
            }
            QuantOp::GlobalAvgPool { c, in_hw, requant } => {
                let n = in_hw.0 * in_hw.1;
                (0..*c)
                    .map(|ch| {
                        let acc: i64 = x[ch * n..(ch + 1) * n].iter().sum();
                        policy.on_activation(requant.apply(acc))
                    })
                    .collect()
            }
            QuantOp::Flatten => x,
            QuantOp::Rescale { requant } => {
                x.into_iter().map(|v| policy.on_activation(requant.apply(v))).collect()
            }
            QuantOp::Residual { main, shortcut } => {
                let m = run_ops(main, x.clone(), policy);
                let s = run_ops(shortcut, x, policy);
                m.iter().zip(&s).map(|(a, b)| policy.on_residual(a + b)).collect()
            }
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticVision;
    use crate::zoo;

    fn trained_tiny() -> (FloatNet, SyntheticVision) {
        let data = SyntheticVision::tiny(4, 21);
        let mut net = FloatNet::init(&zoo::tiny_cnn(4), 22).unwrap();
        net.train_epochs(&data, 4, 8, 0.05);
        (net, data)
    }

    #[test]
    fn requant_from_ratio_accuracy() {
        for &r in &[0.5f64, 0.001, 0.9999, 1.0, 3.25, 1e-6] {
            let q = Requant::from_ratio(r, 16).unwrap();
            let rel = (q.ratio() - r).abs() / r;
            assert!(rel < 1e-3, "ratio {r}: dyadic {} off by {rel}", q.ratio());
        }
        assert!(Requant::from_ratio(0.0, 16).is_err());
        assert!(Requant::from_ratio(f64::NAN, 16).is_err());
    }

    #[test]
    fn requant_apply_is_floor() {
        let q = Requant { mult: 3, shift: 2 }; // ×0.75
        assert_eq!(q.apply(4), 3);
        assert_eq!(q.apply(-4), -3);
        assert_eq!(q.apply(-5), -4); // floor(-3.75)
    }

    #[test]
    fn quantized_model_close_to_float() {
        let (mut net, data) = trained_tiny();
        let q = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8()).unwrap();
        // Agreement on argmax between float and int8 inference.
        let mut agree = 0;
        let n = 64;
        for s in data.test().iter().take(n) {
            let f = net.forward(&s.image);
            let fi = f.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let fa = f.iter().position(|&v| v == fi).unwrap();
            let qa = argmax_i64(&q.forward(&s.image).unwrap());
            if fa == qa {
                agree += 1;
            }
        }
        assert!(f64::from(agree) / n as f64 > 0.85, "argmax agreement {agree}/{n}");
    }

    #[test]
    fn quantized_accuracy_tracks_float() {
        let (mut net, data) = trained_tiny();
        let facc = net.accuracy(data.test());
        let q = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8()).unwrap();
        let qacc = q.accuracy(data.test());
        assert!(facc > 0.6, "float model too weak: {facc}");
        assert!(qacc > facc - 0.12, "int8 accuracy {qacc} vs float {facc}");
    }

    #[test]
    fn residual_model_quantizes_and_runs() {
        let data = SyntheticVision::tiny(4, 31);
        let mut net = FloatNet::init(&zoo::tiny_resnet(4), 32).unwrap();
        net.train_epochs(&data, 2, 8, 0.03);
        let q = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8()).unwrap();
        let out = q.forward(&data.test()[0].image).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn ring_sim_wide_ring_matches_plaintext_mostly() {
        let (net, data) = trained_tiny();
        let q = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8()).unwrap();
        // 20/28-bit rings: failure probabilities are negligible.
        let base = q.accuracy(data.test());
        let ring = q.accuracy_ring(data.test(), 20, 28);
        assert!((base - ring).abs() < 0.06, "plaintext {base} vs wide-ring {ring}");
    }

    #[test]
    fn ring_sim_narrow_ring_collapses() {
        // The Tables 7/8 cliff: once the carrier cannot hold the value
        // range (INT8 needs 8 bits; at 7 every |x| ≥ 64 wraps in the
        // ABReLU comparison), accuracy collapses deterministically.
        let (net, data) = trained_tiny();
        let q = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8()).unwrap();
        let wide = q.accuracy_ring(data.test(), 20, 28);
        let narrow = q.accuracy_ring(data.test(), 7, 15);
        assert!(
            narrow < wide - 0.15,
            "expected collapse: wide-ring {wide} vs narrow-ring {narrow}"
        );
    }

    #[test]
    fn ring_sim_degradation_is_monotone_in_carrier_width() {
        // Sweeping the carrier from wide to narrow should not *improve*
        // accuracy (allowing small stochastic wiggle).
        let (net, data) = trained_tiny();
        let q = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8()).unwrap();
        let samples = &data.test()[..64];
        let accs: Vec<f64> =
            [22u32, 16, 10, 7].iter().map(|&b| q.accuracy_ring(samples, b, b + 12)).collect();
        assert!(accs[0] >= accs[2] - 0.08, "{accs:?}");
        assert!(accs[0] >= accs[3] - 0.08, "{accs:?}");
    }

    #[test]
    fn input_quantization_clamps() {
        let (net, data) = trained_tiny();
        let q = QuantModel::quantize(&net, &data.calibration(8), &QuantConfig::int8()).unwrap();
        let big = vec![100f32; q.input_shape.elements()];
        let qi = q.quantize_input(&big);
        assert!(qi.iter().all(|v| (-128..=127).contains(v)));
    }

    #[test]
    fn empty_calibration_rejected() {
        let (net, _) = trained_tiny();
        assert!(matches!(
            QuantModel::quantize(&net, &[], &QuantConfig::int8()),
            Err(NnError::Quantization(_))
        ));
    }
}
