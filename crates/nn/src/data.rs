//! Deterministic synthetic vision datasets.
//!
//! The paper trains/evaluates on MNIST, CIFAR10 and ImageNet. Those corpora
//! are not available offline, so this module generates *synthetic* stand-ins
//! (see DESIGN.md): each class gets a smooth random prototype (a sum of
//! low-frequency sinusoids per channel) and samples are noisy, shifted
//! renderings of their class prototype. The datasets are deterministic in
//! their seed, linearly non-trivial, and hard enough that accuracy responds
//! to quantization error — which is what the bit-width experiments need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One labelled image in CHW layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Pixel data, `c·h·w` floats roughly in `[-1, 1]`.
    pub image: Vec<f32>,
    /// Class index.
    pub label: usize,
}

/// A deterministic synthetic classification dataset.
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    classes: usize,
    shape: (usize, usize, usize),
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl SyntheticVision {
    /// Generates a dataset with the given geometry.
    ///
    /// `noise` is the per-pixel Gaussian noise σ added on top of the class
    /// prototype (`≈0.3` gives a learnable-but-not-trivial task).
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or any dimension is zero.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        classes: usize,
        c: usize,
        h: usize,
        w: usize,
        n_train: usize,
        n_test: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && c > 0 && h > 0 && w > 0, "degenerate dataset geometry");
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes: Vec<Vec<f32>> =
            (0..classes).map(|_| prototype(c, h, w, &mut rng)).collect();
        let make = |n: usize, rng: &mut StdRng| -> Vec<Sample> {
            (0..n)
                .map(|i| {
                    let label = i % classes;
                    let image = render(&prototypes[label], c, h, w, noise, rng);
                    Sample { image, label }
                })
                .collect()
        };
        let train = make(n_train, &mut rng);
        let test = make(n_test, &mut rng);
        SyntheticVision { classes, shape: (c, h, w), train, test }
    }

    /// A 3×16×16 dataset matching [`crate::zoo::tiny_cnn`] (512 train / 128
    /// test samples).
    #[must_use]
    pub fn tiny(classes: usize, seed: u64) -> Self {
        Self::generate(classes, 3, 16, 16, 512, 128, 0.3, seed)
    }

    /// A 1×28×28, 10-class dataset matching [`crate::zoo::lenet5`].
    #[must_use]
    pub fn mnist_like(seed: u64) -> Self {
        Self::generate(10, 1, 28, 28, 800, 200, 0.3, seed)
    }

    /// A 3×16×16 dataset whose class signal lives in a few **sparse
    /// spikes** (bright pixels at class-specific, jittered locations) on a
    /// noisy background. Peak-detection tasks are where max pooling beats
    /// average pooling — the mechanism behind paper Table 6.
    #[must_use]
    pub fn spiky(classes: usize, seed: u64) -> Self {
        assert!(classes > 0, "degenerate dataset geometry");
        let (c, h, w) = (3usize, 16usize, 16usize);
        let mut rng = StdRng::seed_from_u64(seed);
        // Per class: 4 spike sites (channel, y, x).
        let sites: Vec<Vec<(usize, usize, usize)>> = (0..classes)
            .map(|_| {
                (0..4)
                    .map(|_| {
                        (rng.gen_range(0..c), rng.gen_range(2..h - 2), rng.gen_range(2..w - 2))
                    })
                    .collect()
            })
            .collect();
        let make = |n: usize, rng: &mut StdRng| -> Vec<Sample> {
            (0..n)
                .map(|i| {
                    let label = i % classes;
                    let mut image: Vec<f32> =
                        (0..c * h * w).map(|_| gaussian(rng) * 0.25).collect();
                    for &(sc, sy, sx) in &sites[label] {
                        let jy = (sy as i64 + rng.gen_range(-1i64..=1)) as usize % h;
                        let jx = (sx as i64 + rng.gen_range(-1i64..=1)) as usize % w;
                        image[(sc * h + jy) * w + jx] = 1.4 + gaussian(rng) * 0.1;
                    }
                    Sample { image, label }
                })
                .collect()
        };
        let train = make(512, &mut rng);
        let test = make(128, &mut rng);
        SyntheticVision { classes, shape: (c, h, w), train, test }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image shape `(c, h, w)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        self.shape
    }

    /// Training split.
    #[must_use]
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Test split.
    #[must_use]
    pub fn test(&self) -> &[Sample] {
        &self.test
    }

    /// The first `n` training images — the post-training-quantization
    /// calibration set (paper Sec. 5.1 "characterizes the distribution of
    /// run-time activation").
    #[must_use]
    pub fn calibration(&self, n: usize) -> Vec<Vec<f32>> {
        self.train.iter().take(n).map(|s| s.image.clone()).collect()
    }

    /// All test images without labels.
    #[must_use]
    pub fn test_images(&self) -> Vec<Vec<f32>> {
        self.test.iter().map(|s| s.image.clone()).collect()
    }
}

/// Smooth random prototype: a few random sinusoids per channel.
fn prototype(c: usize, h: usize, w: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut img = vec![0.0f32; c * h * w];
    for ch in 0..c {
        let waves: Vec<(f32, f32, f32, f32)> = (0..4)
            .map(|_| {
                (
                    rng.gen_range(0.5..2.5),                   // fx
                    rng.gen_range(0.5..2.5),                   // fy
                    rng.gen_range(0.0..std::f32::consts::TAU), // phase
                    rng.gen_range(0.4..1.0),                   // amplitude
                )
            })
            .collect();
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0f32;
                for &(fx, fy, p, a) in &waves {
                    let t = fx * x as f32 / w as f32 + fy * y as f32 / h as f32;
                    v += a * (std::f32::consts::TAU * t + p).sin();
                }
                img[ch * h * w + y * w + x] = v / 2.0;
            }
        }
    }
    img
}

/// Renders a noisy, slightly shifted instance of a prototype.
fn render(proto: &[f32], c: usize, h: usize, w: usize, noise: f32, rng: &mut StdRng) -> Vec<f32> {
    let (dy, dx) = (rng.gen_range(-1i64..=1), rng.gen_range(-1i64..=1));
    let gain = rng.gen_range(0.85..1.15f32);
    let mut img = vec![0.0f32; c * h * w];
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = (y as i64 + dy).rem_euclid(h as i64) as usize;
                let sx = (x as i64 + dx).rem_euclid(w as i64) as usize;
                let base = proto[ch * h * w + sy * w + sx] * gain;
                img[ch * h * w + y * w + x] = (base + gaussian(rng) * noise).clamp(-1.5, 1.5);
            }
        }
    }
    img
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = SyntheticVision::tiny(4, 1);
        let b = SyntheticVision::tiny(4, 1);
        assert_eq!(a.train()[0], b.train()[0]);
        let c = SyntheticVision::tiny(4, 2);
        assert_ne!(a.train()[0].image, c.train()[0].image);
    }

    #[test]
    fn splits_and_labels() {
        let d = SyntheticVision::tiny(4, 3);
        assert_eq!(d.train().len(), 512);
        assert_eq!(d.test().len(), 128);
        assert!(d.train().iter().all(|s| s.label < 4));
        // Balanced labels.
        let count0 = d.train().iter().filter(|s| s.label == 0).count();
        assert_eq!(count0, 128);
    }

    #[test]
    fn pixels_bounded() {
        let d = SyntheticVision::mnist_like(5);
        for s in d.train().iter().take(10) {
            assert_eq!(s.image.len(), 28 * 28);
            assert!(s.image.iter().all(|v| v.abs() <= 1.5));
        }
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        // Nearest-prototype classification on clean prototypes should beat
        // chance by a wide margin — the dataset is learnable.
        let d = SyntheticVision::tiny(4, 7);
        // Estimate per-class means from train, classify test by nearest mean.
        let (c, h, w) = d.shape();
        let n = c * h * w;
        let mut means = vec![vec![0.0f32; n]; 4];
        let mut counts = [0usize; 4];
        for s in d.train() {
            counts[s.label] += 1;
            for (m, &v) in means[s.label].iter_mut().zip(&s.image) {
                *m += v;
            }
        }
        for (m, &cnt) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= cnt as f32;
            }
        }
        let mut correct = 0;
        for s in d.test() {
            let mut best = (f32::INFINITY, 0usize);
            for (k, m) in means.iter().enumerate() {
                let dist: f32 = m.iter().zip(&s.image).map(|(a, b)| (a - b).powi(2)).sum();
                if dist < best.0 {
                    best = (dist, k);
                }
            }
            if best.1 == s.label {
                correct += 1;
            }
        }
        let acc = f64::from(correct) / d.test().len() as f64;
        assert!(acc > 0.6, "nearest-mean accuracy only {acc}");
    }

    #[test]
    fn spiky_dataset_properties() {
        let d = SyntheticVision::spiky(8, 3);
        assert_eq!(d.classes(), 8);
        assert_eq!(d.train().len(), 512);
        assert_eq!(d.shape(), (3, 16, 16));
        // Every sample carries at least one strong spike.
        for s in d.train().iter().take(20) {
            let max = s.image.iter().fold(f32::MIN, |m, &v| m.max(v));
            assert!(max > 1.0, "spike missing: max {max}");
        }
        // Deterministic.
        let e = SyntheticVision::spiky(8, 3);
        assert_eq!(d.train()[0], e.train()[0]);
    }

    #[test]
    fn calibration_subset() {
        let d = SyntheticVision::tiny(4, 9);
        assert_eq!(d.calibration(16).len(), 16);
        assert_eq!(d.calibration(16)[0], d.train()[0].image);
    }
}
