//! Quantized DNN substrate for AQ2PNN.
//!
//! AQ2PNN evaluates on quantized versions of LeNet5, AlexNet, VGG16,
//! ResNet18 and ResNet50 (paper Sec. 5–6). This crate is the complete
//! plaintext side of that story, built from scratch:
//!
//! * [`spec`] — shape-level model descriptions ([`spec::ModelSpec`]) with
//!   shape inference and cost accounting (MACs, parameters, activation and
//!   comparison counts) — the input to both the 2PC engine and the FPGA
//!   cost model.
//! * [`zoo`] — the paper's architectures as specs, at MNIST / CIFAR10 /
//!   ImageNet geometry, plus small trainable variants.
//! * [`tensor`] — a minimal f32 NCHW tensor.
//! * [`float`] — float networks instantiated from a spec with forward
//!   **and backward** passes (He init, SGD with momentum), so small models
//!   are genuinely trained inside this repository.
//! * [`data`] — deterministic synthetic vision datasets standing in for
//!   MNIST/CIFAR (see DESIGN.md for the substitution rationale).
//! * [`quant`] — HAWQ-v3-style post-training quantization: symmetric
//!   per-layer scales, BN folding, dyadic `BNReQ` re-quantization
//!   (`I_m`, `I_e` of paper Sec. 5.1), and an integer inference engine that
//!   can optionally wrap its accumulators on a `2^ℓ` ring to emulate the
//!   ciphertext domain — the mechanism behind the paper's accuracy-vs-ring
//!   tables.
//!
//! # Example: train, quantize, compare
//!
//! ```
//! use aq2pnn_nn::data::SyntheticVision;
//! use aq2pnn_nn::float::FloatNet;
//! use aq2pnn_nn::quant::{QuantConfig, QuantModel};
//! use aq2pnn_nn::zoo;
//!
//! let spec = zoo::tiny_cnn(4);
//! let data = SyntheticVision::tiny(4, 42);
//! let mut net = FloatNet::init(&spec, 7)?;
//! net.train_epochs(&data, 1, 8, 0.05);
//! let q = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())?;
//! let logits = q.forward(&data.test_images()[0])?;
//! assert_eq!(logits.len(), 4);
//! # Ok::<(), aq2pnn_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
mod error;
pub mod float;
pub mod quant;
pub mod spec;
pub mod tensor;
pub mod zoo;

pub use error::NnError;
