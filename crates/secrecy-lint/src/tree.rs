//! Token-tree layer: groups the flat token stream by `()`/`[]`/`{}`.

use crate::lexer::{Tok, TokKind};

/// A token tree: either a leaf token or a delimited group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Tok),
    /// A delimited group and its contents.
    Group {
        /// Opening delimiter: `(`, `[` or `{`.
        delim: char,
        /// 1-based line of the opening delimiter.
        open_line: u32,
        /// Trees inside the delimiters.
        items: Vec<Tree>,
    },
}

impl Tree {
    /// The source line this tree starts on.
    #[must_use]
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { open_line, .. } => *open_line,
        }
    }

    /// The leaf's identifier text, if this is an identifier leaf.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(Tok { kind: TokKind::Ident(s), .. }) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the operator leaf `op`.
    #[must_use]
    pub fn is_op(&self, op: &str) -> bool {
        matches!(self, Tree::Leaf(Tok { kind: TokKind::Op(o), .. }) if *o == op)
    }

    /// The group contents if this is a group with delimiter `delim`.
    #[must_use]
    pub fn group(&self, want: char) -> Option<&[Tree]> {
        match self {
            Tree::Group { delim, items, .. } if *delim == want => Some(items),
            _ => None,
        }
    }

    /// A compact single-token rendering, for diagnostics and type strings.
    #[must_use]
    pub fn text(&self) -> String {
        match self {
            Tree::Leaf(t) => match &t.kind {
                TokKind::Ident(s) | TokKind::Num(s) => s.clone(),
                TokKind::Str(_) => "\"…\"".to_string(),
                TokKind::Char => "'…'".to_string(),
                TokKind::Lifetime => "'_".to_string(),
                TokKind::Op(o) => (*o).to_string(),
                TokKind::Open(c) | TokKind::Close(c) => c.to_string(),
            },
            Tree::Group { delim, items, .. } => {
                let close = match delim {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                };
                let inner: Vec<String> = items.iter().map(Tree::text).collect();
                format!("{delim}{}{close}", inner.join(" "))
            }
        }
    }
}

/// Builds token trees from a flat stream. Unbalanced delimiters are
/// tolerated: stray closers are dropped, unclosed groups end at EOF.
#[must_use]
pub fn build(toks: Vec<Tok>) -> Vec<Tree> {
    // Stack of (delim, open_line, items).
    let mut stack: Vec<(char, u32, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::Open(c) => {
                stack.push((c, t.line, std::mem::take(&mut top)));
                // `top` now collects the group's items.
            }
            TokKind::Close(_) => {
                if let Some((delim, open_line, parent)) = stack.pop() {
                    let items = std::mem::replace(&mut top, parent);
                    top.push(Tree::Group { delim, open_line, items });
                }
            }
            _ => top.push(Tree::Leaf(t)),
        }
    }
    // Close any unterminated groups.
    while let Some((delim, open_line, parent)) = stack.pop() {
        let items = std::mem::replace(&mut top, parent);
        top.push(Tree::Group { delim, open_line, items });
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn nests_groups() {
        let trees = build(lex("f(a, g[1]) { x }").0);
        assert_eq!(trees.len(), 3); // f, (…), {…}
        let args = trees[1].group('(').unwrap();
        assert!(args.iter().any(|t| t.group('[').is_some()));
        assert!(trees[2].group('{').is_some());
    }

    #[test]
    fn tolerates_unbalanced() {
        let trees = build(lex("(a").0);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].group('(').is_some());
    }
}
