//! Shared fixture harness for both analysis passes.
//!
//! Fixtures are ordinary Rust sources under `fixtures/` with inline
//! *expect markers*:
//!
//! ```text
//! t[i]; // expect: secret-index
//! let g = self.a.lock(); // expect[+1]: blocking-while-locked
//! ```
//!
//! `// expect: rule[, rule…]` asserts those rules fire on that line;
//! `// expect[+N]:` offsets the expectation N lines down (for rules
//! reported at a different line than the seeded construct). The check is
//! exact and bidirectional: every expected `(line, rule)` must fire, and
//! nothing else may. Clean fixtures assert zero violations.
//!
//! The harness backs both the crate's own unit tests and the
//! `cargo xtask lint --self-test` / `lint-concurrency --self-test`
//! commands, so the linters are exercised against known-good and
//! known-bad inputs in the same way everywhere.

use std::collections::BTreeSet;

use crate::model::Report;
use crate::{lint_sources, ConcLinter, Config};

/// Which analysis pass a fixture targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// The secret-independence (taint) pass.
    Secrecy,
    /// The concurrency-soundness pass.
    Conc,
}

/// Parses `// expect…` markers out of raw fixture source.
#[must_use]
pub fn expected(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, l) in src.lines().enumerate() {
        let Ok(ln) = u32::try_from(i + 1) else { continue };
        let Some(pos) = l.find("// expect") else { continue };
        let rest = &l[pos + "// expect".len()..];
        let (off, rest) = if let Some(r) = rest.strip_prefix('[') {
            let Some(end) = r.find(']') else { continue };
            let off: u32 = r[..end].trim_start_matches('+').parse().unwrap_or(0);
            (off, &r[end + 1..])
        } else {
            (0, rest)
        };
        let Some(rules) = rest.trim_start().strip_prefix(':') else { continue };
        for rule in rules.split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.insert((ln + off, rule.to_string()));
            }
        }
    }
    out
}

/// Runs one pass over a single named source.
#[must_use]
pub fn run_pass(pass: Pass, name: &str, src: &str) -> Report {
    match pass {
        Pass::Secrecy => lint_sources(Config::aq2pnn(), &[(name.to_string(), src.to_string())]),
        Pass::Conc => {
            let mut l = ConcLinter::new();
            l.add_file(name, src);
            l.run()
        }
    }
}

/// Checks a violation fixture: the emitted `(line, rule)` set must equal
/// the expect-marker set exactly. Returns human-readable mismatches.
#[must_use]
pub fn check_fixture(pass: Pass, name: &str, src: &str) -> Vec<String> {
    let want = expected(src);
    let report = run_pass(pass, name, src);
    let got: BTreeSet<(u32, String)> =
        report.violations.iter().map(|v| (v.line, v.rule.name().to_string())).collect();
    let mut errors = Vec::new();
    if want.is_empty() {
        errors.push(format!("{name}: violation fixture carries no `// expect` markers"));
    }
    for (line, rule) in want.difference(&got) {
        errors.push(format!("{name}:{line}: expected `{rule}` did not fire"));
    }
    for (line, rule) in got.difference(&want) {
        errors.push(format!("{name}:{line}: unexpected `{rule}` fired"));
    }
    errors
}

/// Checks a clean fixture: the pass must emit nothing at all.
#[must_use]
pub fn check_clean(pass: Pass, name: &str, src: &str) -> Vec<String> {
    let report = run_pass(pass, name, src);
    report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{name}:{}: `{}` fired on a clean fixture: {}",
                v.line,
                v.rule.name(),
                v.message
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_markers_parse_offsets_and_lists() {
        let src = "a // expect: r1, r2\nb\nc // expect[+2]: r3\n";
        let want = expected(src);
        assert!(want.contains(&(1, "r1".into())));
        assert!(want.contains(&(1, "r2".into())));
        assert!(want.contains(&(5, "r3".into())));
        assert_eq!(want.len(), 3);
    }

    #[test]
    fn secrecy_violations_fixture_matches_markers() {
        let src = include_str!("../fixtures/violations.rs");
        let errors = check_fixture(Pass::Secrecy, "fixtures/violations.rs", src);
        assert!(errors.is_empty(), "{}", errors.join("\n"));
    }

    #[test]
    fn secrecy_clean_fixture_is_clean() {
        let src = include_str!("../fixtures/clean.rs");
        let errors = check_clean(Pass::Secrecy, "fixtures/clean.rs", src);
        assert!(errors.is_empty(), "{}", errors.join("\n"));
    }

    #[test]
    fn conc_violations_fixture_matches_markers() {
        let src = include_str!("../fixtures/conc_violations.rs");
        let errors = check_fixture(Pass::Conc, "fixtures/conc_violations.rs", src);
        assert!(errors.is_empty(), "{}", errors.join("\n"));
    }

    #[test]
    fn conc_clean_fixture_is_clean() {
        let src = include_str!("../fixtures/conc_clean.rs");
        let errors = check_clean(Pass::Conc, "fixtures/conc_clean.rs", src);
        assert!(errors.is_empty(), "{}", errors.join("\n"));
    }
}
