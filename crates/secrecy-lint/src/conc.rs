//! Concurrency-soundness pass.
//!
//! Shares the lexer → token-tree front end with the taint pass and
//! analyzes the whole workspace for four classes of synchronization bugs
//! in the hand-rolled sync layer:
//!
//! - `lock-order-cycle` — two lock *classes* (a `Mutex`/`RwLock` struct
//!   field, named `crate:file.field`) acquired in inconsistent order
//!   somewhere in the workspace call graph;
//! - `blocking-while-locked` — a guard held across a blocking operation
//!   (channel send/recv, TCP I/O, `thread::sleep`/`park`/`join`, or a
//!   `Condvar::wait` on a *different* lock);
//! - `condvar-misuse` — a `Condvar::wait` outside a predicate loop, or a
//!   notify on a condvar class with no waiter anywhere in the workspace;
//! - `guard-escape` — a function returning a lock guard, widening the
//!   critical section beyond the acquiring function.
//!
//! The analysis is intraprocedural with call summaries: each function is
//! summarized as "may acquire these classes / may block / returns a
//! guard", and summaries propagate to call sites in a fixpoint before a
//! final reporting pass. Guard lifetimes follow Rust's temporary-scope
//! rules closely enough for this codebase: statement temporaries die at
//! `;`, plain `if`/`while` condition temporaries die at `{`,
//! `match`/`if let`/`for` scrutinee temporaries extend through the
//! construct, and `let`-bound guards live to the end of the enclosing
//! block (or until an explicit `drop(guard)`).
//!
//! Accepted exceptions are annotated in-tree with
//! `// sync: allow(rule, "reason")` — same grammar, window and
//! unused-allow policy as the secrecy pass (see [`crate::model`]).
//! Closures passed to known thread-spawn entry points (`spawn`,
//! `spawn_named`, `submit`) are analyzed with an *empty* lock context
//! and their effects are not merged into the spawning function.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::lexer::{self, Ns};
use crate::model::{self, AllowSite, Report, Rule, Violation};
use crate::tree::{self, Tree};

/// Method/function names treated as blocking operations.
const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_deadline",
    "recv_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "flush",
    "accept",
    "connect",
    "connect_timeout",
    "sleep",
    "park",
    "join",
];

/// Postfix calls that keep a just-acquired guard flowing to its binding
/// (`let g = m.lock().unwrap();`).
const PRESERVE: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Call sites whose closure arguments run on another thread: walked with
/// an empty lock context, effects not merged into the caller.
const DEFERRED: &[&str] = &["spawn", "spawn_named", "submit"];

/// Names too ambiguous for cross-file call resolution: a call to one of
/// these only resolves if the *same file* defines it.
const AMBIENT: &[&str] = &[
    "lock", "read", "write", "take", "pop", "push", "next", "len", "clear", "get", "insert",
    "send", "recv", "wait", "drop", "clone", "new", "default", "flush", "add", "observe", "call",
    "run", "info", "begin", "end", "fmt", "from", "into", "shutdown", "join", "spawn", "submit",
    "expect", "unwrap", "is_empty", "iter",
];

/// One function extracted for analysis.
struct ConcFn {
    name: String,
    line: u32,
    /// Return-type text (tokens between `->` and the body), or empty.
    ret: String,
    body: Vec<Tree>,
}

/// Per-file IR: lock/condvar field registries plus extracted functions.
struct FileIr {
    name: String,
    prefix: String,
    /// Struct field name → lock class (`crate:file.field`).
    lock_fields: HashMap<String, String>,
    /// Struct field name → condvar class.
    cv_fields: HashMap<String, String>,
    fns: Vec<ConcFn>,
}

/// The concurrency linter: add files, then [`ConcLinter::run`].
pub struct ConcLinter {
    files: Vec<FileIr>,
    allows: Vec<AllowSite>,
    pre_violations: Vec<Violation>,
}

impl Default for ConcLinter {
    fn default() -> Self {
        Self::new()
    }
}

/// Derives the lock-class prefix `crate:stem` from a registered path
/// (the component after `crates` plus the file stem).
fn class_prefix(name: &str) -> String {
    let parts: Vec<&str> = name.split(['/', '\\']).collect();
    let stem = parts.last().map_or("", |p| p.trim_end_matches(".rs"));
    if let Some(pos) = parts.iter().position(|p| *p == "crates") {
        if let Some(krate) = parts.get(pos + 1) {
            return format!("{krate}:{stem}");
        }
    }
    stem.to_string()
}

impl ConcLinter {
    /// Creates an empty concurrency linter.
    #[must_use]
    pub fn new() -> Self {
        ConcLinter { files: Vec::new(), allows: Vec::new(), pre_violations: Vec::new() }
    }

    /// Parses and registers one source file.
    pub fn add_file(&mut self, name: &str, src: &str) {
        let (toks, comments) = lexer::lex(src);
        let trees = tree::build(toks);
        let parsed = model::parse_directives(name, Ns::Sync, &comments);
        self.pre_violations.extend(parsed.malformed);
        self.allows.extend(parsed.allows);
        let mut ir = FileIr {
            name: name.to_string(),
            prefix: class_prefix(name),
            lock_fields: HashMap::new(),
            cv_fields: HashMap::new(),
            fns: Vec::new(),
        };
        scan_items(&trees, &mut ir);
        self.files.push(ir);
    }
}

/// Walks a tree sequence extracting struct field registries and
/// functions, recursing into `mod`/`impl`/`trait` bodies and skipping
/// anything under a `test`-flavoured attribute (`#[cfg(test)]`,
/// `#[cfg(all(loom, test))]`, `#[test]`).
fn scan_items(trees: &[Tree], ir: &mut FileIr) {
    let mut attrs = String::new();
    let mut i = 0usize;
    while i < trees.len() {
        // Attribute: `#` `[...]` (or `#![...]`).
        if trees[i].is_op("#") {
            let mut j = i + 1;
            if j < trees.len() && trees[j].is_op("!") {
                j += 1;
            }
            if j < trees.len() && trees[j].group('[').is_some() {
                attrs.push_str(&trees[j].text());
                i = j + 1;
                continue;
            }
        }
        let skip = attrs.contains("test");
        match trees[i].ident() {
            Some("struct") if !skip => {
                i = scan_struct(trees, i + 1, ir);
            }
            Some("mod" | "impl" | "trait") => {
                // Recurse into the body group unless cfg(test)-like.
                let mut j = i + 1;
                while j < trees.len() && trees[j].group('{').is_none() && !trees[j].is_op(";") {
                    j += 1;
                }
                if !skip {
                    if let Some(items) = trees.get(j).and_then(|t| t.group('{')) {
                        scan_items(items, ir);
                    }
                }
                i = j + 1;
            }
            Some("fn") if !skip => {
                i = scan_fn(trees, i, ir);
            }
            _ => i += 1,
        }
        attrs.clear();
    }
}

/// Registers named-struct lock/condvar fields; returns the next cursor.
/// Tuple structs register nothing (their fields have no names to key a
/// lock class on — the sync facade's newtypes rely on this).
fn scan_struct(trees: &[Tree], mut i: usize, ir: &mut FileIr) -> usize {
    while i < trees.len() {
        if trees[i].is_op(";") || trees[i].group('(').is_some() {
            return i + 1; // tuple struct or unit struct
        }
        if let Some(items) = trees[i].group('{') {
            register_fields(items, ir);
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Splits a named-struct body on top-level commas (tracking `<`/`>`
/// angle depth, since generics are not delimiter groups) and registers
/// each `name: Mutex<…>` / `RwLock<…>` / `Condvar` field.
fn register_fields(items: &[Tree], ir: &mut FileIr) {
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut chunks: Vec<&[Tree]> = Vec::new();
    for (i, t) in items.iter().enumerate() {
        if t.is_op("<") {
            depth += 1;
        } else if t.is_op("<<") {
            depth += 2;
        } else if t.is_op(">") {
            depth -= 1;
        } else if t.is_op(">>") {
            depth -= 2;
        } else if t.is_op(",") && depth == 0 {
            chunks.push(&items[start..i]);
            start = i + 1;
        }
    }
    chunks.push(&items[start..]);
    for chunk in chunks {
        let Some(colon) = chunk.iter().position(|t| t.is_op(":")) else { continue };
        let Some(fname) = chunk[..colon].iter().rev().find_map(Tree::ident) else { continue };
        let ty = &chunk[colon + 1..];
        let class = format!("{}.{}", ir.prefix, fname);
        for (k, t) in ty.iter().enumerate() {
            match t.ident() {
                Some("Mutex" | "RwLock") if ty.get(k + 1).is_some_and(|n| n.is_op("<")) => {
                    ir.lock_fields.insert(fname.to_string(), class.clone());
                }
                Some("Condvar") => {
                    ir.cv_fields.insert(fname.to_string(), class.clone());
                }
                _ => {}
            }
        }
    }
}

/// Extracts one `fn` starting at the `fn` keyword; returns the cursor
/// past its body. Handles generic parameter lists (angle depth) so a
/// `Fn(…)` bound is not mistaken for the parameter list.
fn scan_fn(trees: &[Tree], i: usize, ir: &mut FileIr) -> usize {
    let line = trees[i].line();
    let Some(name) = trees.get(i + 1).and_then(Tree::ident) else { return i + 1 };
    let mut j = i + 2;
    let mut depth = 0i32;
    // Find the parameter list at angle depth 0.
    while j < trees.len() {
        let t = &trees[j];
        if t.is_op("<") {
            depth += 1;
        } else if t.is_op("<<") {
            depth += 2;
        } else if t.is_op(">") {
            depth -= 1;
        } else if t.is_op(">>") {
            depth -= 2;
        } else if depth == 0 && t.group('(').is_some() {
            break;
        } else if t.is_op(";") || t.group('{').is_some() {
            return j + 1; // malformed / macro — bail
        }
        j += 1;
    }
    // Collect return-type text up to the body (or `;` for trait sigs).
    let mut ret = String::new();
    let mut saw_arrow = false;
    j += 1;
    while j < trees.len() {
        let t = &trees[j];
        if let Some(body) = t.group('{') {
            ir.fns.push(ConcFn { name: name.to_string(), line, ret, body: body.to_vec() });
            return j + 1;
        }
        if t.is_op(";") {
            return j + 1; // trait method signature without body
        }
        if saw_arrow {
            ret.push_str(&t.text());
            ret.push(' ');
        }
        if t.is_op("->") {
            saw_arrow = true;
        }
        j += 1;
    }
    j
}

/// A function's cross-call summary.
#[derive(Clone, Default, PartialEq)]
struct Summary {
    /// Lock classes the function (transitively) may acquire.
    acquires: BTreeSet<String>,
    /// First blocking operation (op name, line), if any.
    blocks: Option<(String, u32)>,
    /// Class of the guard the function returns, if it returns one.
    returns_guard: Option<String>,
    /// Whether the declared return type names a guard.
    has_guard_ret: bool,
    /// First class acquired in the body (guard-escape class inference).
    first_acq: Option<String>,
}

impl Summary {
    fn merge(&mut self, other: Summary) {
        self.acquires.extend(other.acquires);
        if self.blocks.is_none() {
            self.blocks = other.blocks;
        }
        if self.returns_guard.is_none() {
            self.returns_guard = other.returns_guard;
        }
        self.has_guard_ret |= other.has_guard_ret;
        if self.first_acq.is_none() {
            self.first_acq = other.first_acq;
        }
    }
}

/// A lock-order edge: `from` held while `to` acquired, at (file, line).
#[derive(Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
}

/// Everything the final emit pass collects.
#[derive(Default)]
struct Sink {
    edges: Vec<Edge>,
    violations: Vec<Violation>,
    /// Condvar classes with at least one wait.
    cv_waits: BTreeSet<String>,
    /// (class, file, line) of each notify on a resolved condvar class.
    cv_notifies: Vec<(String, String, u32)>,
}

impl ConcLinter {
    /// Runs the analysis and applies `// sync: allow` annotations.
    #[must_use]
    pub fn run(mut self) -> Report {
        // Cross-file resolution map: fn name → its unique defining file.
        let mut by_name: HashMap<&str, BTreeSet<usize>> = HashMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for f in &file.fns {
                by_name.entry(&f.name).or_default().insert(fi);
            }
        }
        let global: HashMap<String, usize> = by_name
            .iter()
            .filter(|(name, files)| files.len() == 1 && !AMBIENT.contains(name))
            .map(|(name, files)| ((*name).to_string(), *files.iter().next().unwrap()))
            .collect();

        // Fixpoint over call summaries.
        let mut summaries: HashMap<(usize, String), Summary> = HashMap::new();
        for _ in 0..10 {
            let mut next: HashMap<(usize, String), Summary> = HashMap::new();
            for (fi, file) in self.files.iter().enumerate() {
                for f in &file.fns {
                    let mut sink = Sink::default();
                    let s =
                        walk_fn(file, fi, f, &self.files, &summaries, &global, false, &mut sink);
                    next.entry((fi, f.name.clone())).or_default().merge(s);
                }
            }
            let stable = next == summaries;
            summaries = next;
            if stable {
                break;
            }
        }

        if std::env::var("CONC_DEBUG").is_ok() {
            for ((fi, name), sum) in &summaries {
                if !sum.acquires.is_empty() {
                    eprintln!(
                        "DBG {}::{name} acquires {:?} blocks {:?}",
                        self.files[*fi].name, sum.acquires, sum.blocks
                    );
                }
            }
        }
        // Final emit pass.
        let mut sink = Sink::default();
        let mut functions = 0usize;
        for (fi, file) in self.files.iter().enumerate() {
            for f in &file.fns {
                functions += 1;
                let _ = walk_fn(file, fi, f, &self.files, &summaries, &global, true, &mut sink);
            }
        }

        // Notify-without-waiter: a condvar class someone notifies but
        // nobody anywhere waits on.
        let mut seen_notify: BTreeSet<String> = BTreeSet::new();
        for (class, file, line) in &sink.cv_notifies {
            if !sink.cv_waits.contains(class) && seen_notify.insert(class.clone()) {
                sink.violations.push(Violation {
                    file: file.clone(),
                    line: *line,
                    rule: Rule::CondvarMisuse,
                    message: format!(
                        "notify on condvar `{class}` but no `.wait()` on it anywhere in the \
                         analyzed set"
                    ),
                });
            }
        }

        // Lock-order-cycle allows sanction individual edges: remove the
        // edge and mark the allow used *before* cycle detection.
        let mut edges = sink.edges;
        edges.retain(|e| {
            for a in &mut self.allows {
                if a.rule == Rule::LockOrderCycle
                    && a.file == e.file
                    && e.line >= a.line
                    && e.line <= a.line + model::ALLOW_WINDOW
                {
                    a.used = true;
                    return false;
                }
            }
            true
        });
        // Dedup edges by (from, to), keeping the first site seen.
        let mut first: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        for e in &edges {
            first.entry((e.from.clone(), e.to.clone())).or_insert_with(|| (e.file.clone(), e.line));
        }
        sink.violations.extend(detect_cycles(&first));

        let mut violations = sink.violations;
        violations.extend(self.pre_violations);
        model::apply_allows(&mut violations, &mut self.allows);
        Report { violations, allows: self.allows, files: self.files.len(), functions }
    }
}

/// Strongly-connected-component cycle detection (Kosaraju's two-pass
/// DFS). Every SCC with more than one class — or a single class with a
/// self-edge (re-entrant acquisition) — is a potential deadlock and
/// yields one violation listing its member classes and every
/// participating edge with the site that introduced it. Unlike a
/// zero-in-degree peel, an SCC never drags in acyclic downstream nodes.
fn detect_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Violation> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut fwd: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut rev: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
        fwd.entry(from).or_default().push(to);
        rev.entry(to).or_default().push(from);
    }
    // Pass 1: forward-graph DFS recording post-order finish times.
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut order: Vec<&str> = Vec::new();
    for &root in &nodes {
        if seen.contains(root) {
            continue;
        }
        seen.insert(root);
        let mut stack = vec![(root, 0usize)];
        while let Some((node, idx)) = stack.pop() {
            let succs = fwd.get(node).map_or(&[][..], Vec::as_slice);
            if let Some(&next) = succs.get(idx) {
                stack.push((node, idx + 1));
                if seen.insert(next) {
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
            }
        }
    }
    // Pass 2: reverse-graph DFS in reverse finish order labels SCCs.
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut n_comp = 0usize;
    for &root in order.iter().rev() {
        if comp.contains_key(root) {
            continue;
        }
        comp.insert(root, n_comp);
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            for &p in rev.get(node).map_or(&[][..], Vec::as_slice) {
                if !comp.contains_key(p) {
                    comp.insert(p, n_comp);
                    stack.push(p);
                }
            }
        }
        n_comp += 1;
    }
    let mut out = Vec::new();
    for c in 0..n_comp {
        let members: Vec<&str> = nodes.iter().filter(|n| comp[*n] == c).copied().collect();
        let self_loop = members.len() == 1
            && edges.contains_key(&(members[0].to_string(), members[0].to_string()));
        if members.len() < 2 && !self_loop {
            continue;
        }
        let mut site: Option<(String, u32)> = None;
        let mut detail: Vec<String> = Vec::new();
        for ((f, t), (ef, el)) in edges {
            // Within an SCC every node reaches every other, so each
            // member-to-member edge lies on some cycle.
            if members.contains(&f.as_str()) && members.contains(&t.as_str()) {
                let here = (ef.clone(), *el);
                if site.as_ref().is_none_or(|s| here < *s) {
                    site = Some(here);
                }
                detail.push(format!("{f} -> {t} ({ef}:{el})"));
            }
        }
        let (file, line) = site.unwrap_or_default();
        out.push(Violation {
            file,
            line,
            rule: Rule::LockOrderCycle,
            message: format!(
                "inconsistent lock acquisition order creates a potential deadlock cycle among \
                 {}; edges: {}",
                members.join(", "),
                detail.join(", ")
            ),
        });
    }
    out
}

/// A lock guard currently in scope during the walk.
#[derive(Clone)]
struct Held {
    class: String,
    /// `let`-binding name, if the guard is bound (releasable by `drop`).
    binding: Option<String>,
    /// Statement temporary: dies at the next `;`.
    temp: bool,
    /// Extended scrutinee temporary (`match`/`if let`/`for`): dies at the
    /// end of the enclosing statement, not at inner `;`s.
    ext: bool,
    /// Acquisition line (where blocking-while-locked is reported).
    line: u32,
}

/// RHS binding context for a `let` statement: the first acquisition in
/// the RHS chain binds to `name` unless the chain copies out of the
/// guard (`*` prefix) or applies a non-guard-preserving postfix.
struct Bind {
    name: String,
    copy: bool,
}

struct Walker<'a> {
    file: &'a FileIr,
    fi: usize,
    summaries: &'a HashMap<(usize, String), Summary>,
    global: &'a HashMap<String, usize>,
    emit: bool,
    /// Inside a closure handed to a thread-spawn entry point: effects do
    /// not merge into the spawning function's summary.
    deferred: bool,
    sum: Summary,
    /// Per-function dedup for blocking-while-locked (one per class).
    blocked_classes: BTreeSet<String>,
}

/// Whether the postfix chain starting at `j` keeps the guard flowing to
/// the binding (only `?` and `.unwrap()`-family calls, through the end
/// of the RHS slice).
fn chain_preserves(trees: &[Tree], mut j: usize) -> bool {
    while j < trees.len() {
        if trees[j].is_op("?") {
            j += 1;
            continue;
        }
        if trees[j].is_op(".")
            && trees.get(j + 1).and_then(Tree::ident).is_some_and(|m| PRESERVE.contains(&m))
            && trees.get(j + 2).is_some_and(|g| g.group('(').is_some())
        {
            j += 3;
            continue;
        }
        return false;
    }
    true
}

/// Removes statement temporaries at positions `from..` (lets outer-scope
/// temporaries survive a nested block).
fn purge_temps(held: &mut Vec<Held>, from: usize, also_ext: bool) {
    let mut i = from.min(held.len());
    while i < held.len() {
        if held[i].temp || (also_ext && held[i].ext) {
            held.remove(i);
        } else {
            i += 1;
        }
    }
}

/// The first argument of a call: its trailing identifier (the guard name
/// for `cv.wait(st)`) and whether it is passed by reference.
fn first_arg_info(args: &[Tree]) -> (Option<String>, bool) {
    let end = args.iter().position(|t| t.is_op(",")).unwrap_or(args.len());
    let chunk = &args[..end];
    let by_ref = chunk.iter().any(|t| t.is_op("&"));
    let name =
        chunk.iter().rev().find_map(Tree::ident).filter(|n| *n != "mut").map(ToString::to_string);
    (name, by_ref)
}

impl Walker<'_> {
    /// Resolves a callee summary. Same-file definitions win, but only for
    /// calls that plausibly target this file's own impl — `self.f()`,
    /// `Self::f()`, or a bare `f()`. A method on a *foreign* receiver
    /// (`conn.stream.shutdown()`, `self.link.reconnect()`) must not
    /// resolve to a same-named method on the enclosing type; those fall
    /// through to cross-file resolution, which requires the name to be
    /// workspace-unique and non-ambient.
    fn resolve(&self, name: &str, local: bool) -> Option<Summary> {
        if local {
            if let Some(s) = self.summaries.get(&(self.fi, name.to_string())) {
                return Some(s.clone());
            }
        }
        let fi = *self.global.get(name)?;
        self.summaries.get(&(fi, name.to_string())).cloned()
    }

    fn note_block(&mut self, op: &str, line: u32) {
        if !self.deferred && self.sum.blocks.is_none() {
            self.sum.blocks = Some((op.to_string(), line));
        }
    }

    /// Records a blocking operation: marks the summary and, in the emit
    /// pass, reports every held guard at its acquisition site.
    fn block_violation(&mut self, sink: &mut Sink, held: &[Held], op: &str, line: u32) {
        self.note_block(op, line);
        if !self.emit {
            return;
        }
        for h in held {
            if self.blocked_classes.insert(h.class.clone()) {
                sink.violations.push(Violation {
                    file: self.file.name.clone(),
                    line: h.line,
                    rule: Rule::BlockingWhileLocked,
                    message: format!(
                        "guard for `{}` (acquired here) is held across blocking `{op}` at line \
                         {line}",
                        h.class
                    ),
                });
            }
        }
    }

    /// Records an acquisition: lock-order edges against everything held,
    /// summary update, and the new `Held` entry.
    fn acquire(
        &mut self,
        sink: &mut Sink,
        held: &mut Vec<Held>,
        class: &str,
        line: u32,
        binding: Option<String>,
    ) {
        if self.emit {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for h in held.iter() {
                if seen.insert(&h.class) {
                    sink.edges.push(Edge {
                        from: h.class.clone(),
                        to: class.to_string(),
                        file: self.file.name.clone(),
                        line,
                    });
                }
            }
        }
        if !self.deferred {
            self.sum.acquires.insert(class.to_string());
            if self.sum.first_acq.is_none() {
                self.sum.first_acq = Some(class.to_string());
            }
        }
        let temp = binding.is_none();
        held.push(Held { class: class.to_string(), binding, temp, ext: false, line });
    }

    /// Walks a `{}` body: statements split at top-level `;`, statement
    /// temporaries dying at each boundary, block-scoped guards at exit.
    fn walk_block(&mut self, sink: &mut Sink, items: &[Tree], held: &mut Vec<Held>, depth: u32) {
        let base = held.len();
        let mut start = 0usize;
        for i in 0..=items.len() {
            if i == items.len() || items[i].is_op(";") {
                if i > start {
                    self.walk_stmt(sink, &items[start..i], held, depth);
                }
                purge_temps(held, base, false);
                start = i + 1;
            }
        }
        while held.len() > base {
            held.pop();
        }
    }

    fn walk_stmt(&mut self, sink: &mut Sink, st: &[Tree], held: &mut Vec<Held>, depth: u32) {
        let hbase = held.len();
        // Skip leading attributes.
        let mut s = 0usize;
        while s + 1 < st.len() && st[s].is_op("#") && st[s + 1].group('[').is_some() {
            s += 2;
        }
        let st = &st[s..];
        if st.is_empty() {
            return;
        }
        if st[0].ident() == Some("let") {
            self.walk_let(sink, st, held, depth);
        } else {
            let mut bind = None;
            self.walk_exprs(sink, st, held, depth, &mut bind);
        }
        // Extended scrutinee temporaries die with the statement.
        purge_temps(held, hbase, true);
    }

    /// `let [mut] name [: ty] = rhs` — binds the first guard acquired in
    /// the RHS chain to `name` when the chain preserves the guard.
    fn walk_let(&mut self, sink: &mut Sink, st: &[Tree], held: &mut Vec<Held>, depth: u32) {
        let mut i = 1usize;
        while st.get(i).and_then(Tree::ident) == Some("mut") {
            i += 1;
        }
        let name = st.get(i).and_then(Tree::ident).map(ToString::to_string);
        // Find the top-level `=` (outside generic angle brackets).
        let mut depth_angle = 0i32;
        let mut eq = None;
        for (k, t) in st.iter().enumerate().skip(i) {
            if t.is_op("<") {
                depth_angle += 1;
            } else if t.is_op(">") {
                depth_angle -= 1;
            } else if t.is_op("=") && depth_angle == 0 {
                eq = Some(k);
                break;
            }
        }
        let Some(eq) = eq else {
            // `let x;` — nothing to walk.
            return;
        };
        let rhs = &st[eq + 1..];
        if rhs.first().is_some_and(|t| t.group('{').is_some()) {
            // Block-expression RHS: an ordinary scope, binding not a guard.
            if let Some(items) = rhs[0].group('{') {
                self.walk_block(sink, items, held, depth);
            }
            let mut bind = None;
            self.walk_exprs(sink, &rhs[1..], held, depth, &mut bind);
            return;
        }
        let copy = rhs.first().is_some_and(|t| t.is_op("*"));
        let mut bind = name.map(|name| Bind { name, copy });
        self.walk_exprs(sink, rhs, held, depth, &mut bind);
    }
}

impl Walker<'_> {
    /// Linear expression walk: keyword-aware (conditions, loops, match
    /// scrutinees), with calls dispatched through [`Walker::handle_call`].
    fn walk_exprs(
        &mut self,
        sink: &mut Sink,
        trees: &[Tree],
        held: &mut Vec<Held>,
        depth: u32,
        bind: &mut Option<Bind>,
    ) {
        // (keyword, held base at keyword, scrutinee-extends-into-body)
        let mut cond: Option<(&'static str, usize, bool)> = None;
        let mut pending_loop = false;
        let mut i = 0usize;
        while i < trees.len() {
            let t = &trees[i];
            if let Some(id) = t.ident() {
                // A call or acquisition: `id(…)` or `recv.id(…)`.
                if trees.get(i + 1).is_some_and(|g| g.group('(').is_some()) {
                    let consumed = self.handle_call(sink, trees, i, held, depth, bind);
                    i += consumed;
                    continue;
                }
                match id {
                    "if" => cond = Some(("if", held.len(), false)),
                    "while" => cond = Some(("while", held.len(), false)),
                    "for" => cond = Some(("for", held.len(), true)),
                    "match" => cond = Some(("match", held.len(), true)),
                    "loop" => pending_loop = true,
                    "let" => {
                        if let Some(c) = cond.as_mut() {
                            c.2 = true; // `if let` / `while let`
                        }
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            if let Some(items) = t.group('{') {
                let looped = pending_loop || matches!(cond, Some(("while" | "for", _, _)));
                let d = depth + u32::from(looped);
                if let Some((kw, base, extends)) = cond.take() {
                    if extends {
                        // Scrutinee temporaries live through the construct.
                        for h in held.iter_mut().skip(base) {
                            if h.temp {
                                h.temp = false;
                                h.ext = true;
                            }
                        }
                    } else {
                        // Plain `if`/`while` condition temporaries die at `{`.
                        purge_temps(held, base, false);
                    }
                    if kw == "match" {
                        // Arms are comma-separated expressions, not statements.
                        let mut none = None;
                        self.walk_exprs(sink, items, held, depth, &mut none);
                    } else {
                        self.walk_block(sink, items, held, d);
                    }
                } else {
                    self.walk_block(sink, items, held, d);
                }
                pending_loop = false;
                i += 1;
                continue;
            }
            if let Some(items) = t.group('(').or_else(|| t.group('[')) {
                let mut none = None;
                self.walk_exprs(sink, items, held, depth, &mut none);
            }
            i += 1;
        }
    }

    /// Handles `id(…)` / `recv.id(…)` at `trees[i]`; returns how many
    /// top-level trees were consumed (identifier + argument group).
    #[allow(clippy::too_many_lines)]
    fn handle_call(
        &mut self,
        sink: &mut Sink,
        trees: &[Tree],
        i: usize,
        held: &mut Vec<Held>,
        depth: u32,
        bind: &mut Option<Bind>,
    ) -> usize {
        let id = trees[i].ident().unwrap_or_default().to_string();
        let id = id.as_str();
        let args = trees[i + 1].group('(').unwrap_or(&[]);
        let line = trees[i + 1].line();
        let is_method = i >= 1 && trees[i - 1].is_op(".");
        let recv = if is_method && i >= 2 { trees[i - 2].ident() } else { None };

        // 1. Lock acquisition on a registered lock field.
        if matches!(id, "lock" | "read" | "write") && is_method {
            if let Some(class) = recv.and_then(|r| self.file.lock_fields.get(r)).cloned() {
                if args.is_empty() {
                    let binding = bind
                        .take()
                        .and_then(|b| (!b.copy && chain_preserves(trees, i + 2)).then_some(b.name));
                    self.acquire(sink, held, &class, line, binding);
                    return 2;
                }
                if id == "read" {
                    // `.read(buf)` on something that shadows a lock field
                    // is I/O, not an acquisition.
                    self.block_violation(sink, held, "read", line);
                    return 2;
                }
                return 2;
            }
        }

        // 2. Condvar wait: removes the waited guard from the effective
        // held set, flags foreign guards and non-loop waits.
        if matches!(id, "wait" | "wait_timeout") && is_method {
            let cv_class = recv.and_then(|r| self.file.cv_fields.get(r)).cloned();
            let (guard, by_ref) = first_arg_info(args);
            let idx = guard
                .as_deref()
                .and_then(|g| held.iter().position(|h| h.binding.as_deref() == Some(g)));
            if cv_class.is_some() || idx.is_some() {
                self.note_block("Condvar::wait", line);
                let removed = idx.map(|k| held.remove(k));
                if !held.is_empty() {
                    self.block_violation(sink, held, "Condvar::wait", line);
                }
                if depth == 0 && self.emit {
                    sink.violations.push(Violation {
                        file: self.file.name.clone(),
                        line,
                        rule: Rule::CondvarMisuse,
                        message: "`Condvar::wait` outside a predicate loop — spurious wakeups \
                                  make the awaited condition unreliable"
                            .to_string(),
                    });
                }
                if let Some(c) = cv_class {
                    sink.cv_waits.insert(c);
                }
                if let Some(mut e) = removed {
                    // By-value waits rebind the returned guard; by-ref
                    // waits leave it in place under its old name.
                    if !by_ref {
                        if let Some(b) = bind.take() {
                            e.binding = Some(b.name);
                        }
                    }
                    held.push(e);
                }
                return 2;
            }
            // An unresolved `wait` (e.g. `Child::wait`) still blocks.
            self.block_violation(sink, held, id, line);
            return 2;
        }

        // 3. Condvar notify bookkeeping.
        if matches!(id, "notify_one" | "notify_all") && is_method {
            if let Some(class) = recv.and_then(|r| self.file.cv_fields.get(r)).cloned() {
                sink.cv_notifies.push((class, self.file.name.clone(), line));
            }
            return 2;
        }

        // 4. Known blocking operations. `join` only blocks with no
        // arguments (a thread handle) — `slice::join(sep)` is formatting.
        if BLOCKING.contains(&id) && (id != "join" || args.is_empty()) {
            self.block_violation(sink, held, id, line);
            let mut none = None;
            self.walk_exprs(sink, args, held, depth, &mut none);
            return 2;
        }

        // 5. `drop(guard)` releases a bound guard.
        if id == "drop" && !is_method {
            if let Some(name) = (args.len() == 1).then(|| args[0].ident()).flatten() {
                held.retain(|h| h.binding.as_deref() != Some(name));
                return 2;
            }
        }

        // 6. Thread-spawn entry points: the closure runs elsewhere, with
        // no inherited lock context; effects stay out of this summary.
        if DEFERRED.contains(&id) {
            let saved = self.deferred;
            self.deferred = true;
            let mut empty = Vec::new();
            let mut none = None;
            self.walk_exprs(sink, args, &mut empty, 0, &mut none);
            self.deferred = saved;
            return 2;
        }

        // 7. Resolved call: propagate the callee summary; closure args
        // are walked as if running under the callee's locks.
        let local = !is_method || recv == Some("self");
        if let Some(s) = self.resolve(id, local) {
            if self.emit && !held.is_empty() {
                let mut seen: BTreeSet<&str> = BTreeSet::new();
                for h in held.iter() {
                    if !seen.insert(&h.class) {
                        continue;
                    }
                    for a in &s.acquires {
                        sink.edges.push(Edge {
                            from: h.class.clone(),
                            to: a.clone(),
                            file: self.file.name.clone(),
                            line,
                        });
                    }
                }
                if let Some((op, _)) = &s.blocks {
                    let op = format!("{op} (via `{id}`)");
                    self.block_violation(sink, held, &op, line);
                }
            }
            if !self.deferred {
                self.sum.acquires.extend(s.acquires.iter().cloned());
                if self.sum.blocks.is_none() {
                    self.sum.blocks.clone_from(&s.blocks);
                }
            }
            if let Some(class) = &s.returns_guard {
                let binding = bind
                    .take()
                    .and_then(|b| (!b.copy && chain_preserves(trees, i + 2)).then_some(b.name));
                self.acquire(sink, held, &class.clone(), line, binding);
            }
            // Closure arguments may run while the callee holds its locks.
            let base = held.len();
            for a in &s.acquires {
                held.push(Held { class: a.clone(), binding: None, temp: true, ext: false, line });
            }
            let mut none = None;
            self.walk_exprs(sink, args, held, depth, &mut none);
            held.truncate(base);
            return 2;
        }

        // 8. Unresolved call: just walk the arguments.
        let mut none = None;
        self.walk_exprs(sink, args, held, depth, &mut none);
        2
    }
}

/// Analyzes one function, emitting into `sink` when `emit` is set, and
/// returns its summary.
#[allow(clippy::too_many_arguments)]
fn walk_fn(
    file: &FileIr,
    fi: usize,
    f: &ConcFn,
    _files: &[FileIr],
    summaries: &HashMap<(usize, String), Summary>,
    global: &HashMap<String, usize>,
    emit: bool,
    sink: &mut Sink,
) -> Summary {
    let mut w = Walker {
        file,
        fi,
        summaries,
        global,
        emit,
        deferred: false,
        sum: Summary::default(),
        blocked_classes: BTreeSet::new(),
    };
    if ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"].iter().any(|g| f.ret.contains(g)) {
        w.sum.has_guard_ret = true;
        if emit {
            sink.violations.push(Violation {
                file: file.name.clone(),
                line: f.line,
                rule: Rule::GuardEscape,
                message: format!(
                    "`{}` returns a lock guard — the critical section escapes its acquiring \
                     function",
                    f.name
                ),
            });
        }
    }
    let mut held = Vec::new();
    w.walk_block(sink, &f.body, &mut held, 0);
    if w.sum.has_guard_ret && w.sum.returns_guard.is_none() {
        w.sum.returns_guard.clone_from(&w.sum.first_acq);
    }
    w.sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Report {
        let mut l = ConcLinter::new();
        l.add_file("t.rs", src);
        l.run()
    }

    fn rules(r: &Report) -> Vec<&'static str> {
        r.violations.iter().map(|v| v.rule.name()).collect()
    }

    const PAIR: &str = "struct S { a: Mutex<u64>, b: Mutex<u64> }\n";

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{PAIR}impl S {{\n fn f(&self) {{ let x = self.a.lock(); let y = self.b.lock(); }}\n \
             fn g(&self) {{ let x = self.a.lock(); let y = self.b.lock(); }}\n}}"
        );
        let r = lint(&src);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn inverted_order_is_a_cycle() {
        let src = format!(
            "{PAIR}impl S {{\n fn f(&self) {{ let x = self.a.lock(); let y = self.b.lock(); }}\n \
             fn g(&self) {{ let y = self.b.lock(); let x = self.a.lock(); }}\n}}"
        );
        let r = lint(&src);
        assert_eq!(rules(&r), vec!["lock-order-cycle"], "{:?}", r.violations);
        assert!(r.violations[0].message.contains("t.a"));
    }

    #[test]
    fn cycle_through_call_summary() {
        // f holds a and calls h (which locks b); g inverts directly.
        let src = format!(
            "{PAIR}impl S {{\n fn f(&self) {{ let x = self.a.lock(); self.h(); }}\n \
             fn h(&self) {{ let y = self.b.lock(); }}\n \
             fn g(&self) {{ let y = self.b.lock(); let x = self.a.lock(); }}\n}}"
        );
        let r = lint(&src);
        assert_eq!(rules(&r), vec!["lock-order-cycle"], "{:?}", r.violations);
    }

    #[test]
    fn drop_releases_before_blocking() {
        let src = format!(
            "{PAIR}impl S {{\n fn f(&self, ep: &E) {{ let g = self.a.lock(); drop(g); \
             ep.send(1); }}\n}}"
        );
        let r = lint(&src);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn blocking_propagates_through_callee() {
        let src = format!(
            "{PAIR}impl S {{\n fn slow(&self) {{ std::thread::sleep(d); }}\n \
             fn f(&self) {{ let g = self.a.lock(); self.slow(); }}\n}}"
        );
        let r = lint(&src);
        assert_eq!(rules(&r), vec!["blocking-while-locked"], "{:?}", r.violations);
    }

    #[test]
    fn spawned_closures_run_without_inherited_locks() {
        // The guard is held at the spawn call, but the closure runs on
        // another thread: no blocking-while-locked, and the closure's
        // lock does not leak into the caller's summary.
        let src = format!(
            "{PAIR}impl S {{\n fn f(&self, w: &W) {{ let g = self.a.lock(); \
             w.spawn(move || {{ std::thread::sleep(d); let y = self.b.lock(); }}); }}\n}}"
        );
        let r = lint(&src);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn statement_temp_does_not_pin_the_lock() {
        let src = format!(
            "{PAIR}impl S {{\n fn f(&self, ep: &E) {{ let n = *self.a.lock(); ep.send(n); }}\n}}"
        );
        let r = lint(&src);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn guard_escape_and_caller_tracking() {
        // `lock()` escapes a guard; `f` uses it and blocks while held.
        let src = format!(
            "{PAIR}impl S {{\n fn lock(&self) -> MutexGuard<u64> {{ self.a.lock() }}\n \
             fn f(&self, ep: &E) {{ let g = self.lock(); ep.send(1); }}\n}}"
        );
        let r = lint(&src);
        let rs = rules(&r);
        assert!(rs.contains(&"guard-escape"), "{:?}", r.violations);
        assert!(rs.contains(&"blocking-while-locked"), "{:?}", r.violations);
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = format!(
            "{PAIR}#[cfg(test)]\nmod tests {{\n fn f(s: &S, ep: &E) {{ let g = s.a.lock(); \
             ep.send(1); }}\n}}"
        );
        let r = lint(&src);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn allow_suppresses_and_unused_allow_fires() {
        let src = format!(
            "{PAIR}impl S {{\n fn f(&self, ep: &E) {{\n \
             // sync: allow(blocking-while-locked, \"handoff by design\")\n \
             let g = self.a.lock(); ep.send(1); }}\n \
             // sync: allow(guard-escape, \"nothing here\")\n fn g(&self) {{}}\n}}"
        );
        let r = lint(&src);
        assert_eq!(rules(&r), vec!["unused-allow"], "{:?}", r.violations);
        assert!(r.allows.iter().any(|a| a.used));
    }
}
